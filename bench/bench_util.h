// Shared helpers for the paper-exhibit benchmark harnesses.

#ifndef HEF_BENCH_BENCH_UTIL_H_
#define HEF_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cstdio>
#include <functional>
#include <limits>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "perf/perf_counters.h"

namespace hef::bench {

struct Measurement {
  double ms = 0;               // best-of-repetitions wall clock
  double median_ms = 0;        // median of the timed repetitions
  // One entry per timed repetition, in run order. Never includes the
  // warm-up run.
  std::vector<double> samples_ms;
  PerfReading perf;            // counters for the best run (or invalid)
};

// Runs `fn` `repetitions` times (after one warm-up) and returns the
// fastest run's wall clock and counters plus all timed samples and their
// median. The warm-up run is never timed, so it cannot leak into the
// reported best/median.
inline Measurement MeasureBest(const std::function<void()>& fn,
                               int repetitions, PerfCounters* counters) {
  HEF_CHECK_MSG(repetitions >= 1, "repetitions %d < 1", repetitions);
  fn();  // warm-up
  Measurement best;
  best.ms = std::numeric_limits<double>::max();
  best.samples_ms.reserve(static_cast<std::size_t>(repetitions));
  for (int r = 0; r < repetitions; ++r) {
    counters->Start();
    Stopwatch sw;
    fn();
    const double ms = sw.ElapsedMillis();
    const PerfReading reading = counters->Stop();
    best.samples_ms.push_back(ms);
    if (ms < best.ms) {
      best.ms = ms;
      best.perf = reading;
    }
  }
  // Exactly one sample per requested repetition — the warm-up is excluded
  // from the reported statistics by construction.
  HEF_CHECK(best.samples_ms.size() ==
            static_cast<std::size_t>(repetitions));
  std::vector<double> sorted = best.samples_ms;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t mid = sorted.size() / 2;
  best.median_ms = sorted.size() % 2 == 1
                       ? sorted[mid]
                       : 0.5 * (sorted[mid - 1] + sorted[mid]);
  return best;
}

// Formats a counter column, "n/a" when the PMU was unavailable.
inline std::string PerfNum(const PerfReading& r, double value, int digits) {
  if (!r.valid) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

inline std::string CountScaled(const PerfReading& r, std::uint64_t count,
                               double scale, int digits = 1) {
  if (!r.valid) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f",
                digits, static_cast<double>(count) / scale);
  return buf;
}

}  // namespace hef::bench

#endif  // HEF_BENCH_BENCH_UTIL_H_
