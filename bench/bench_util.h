// Shared helpers for the paper-exhibit benchmark harnesses.

#ifndef HEF_BENCH_BENCH_UTIL_H_
#define HEF_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <functional>
#include <limits>
#include <string>

#include "common/stopwatch.h"
#include "perf/perf_counters.h"

namespace hef::bench {

struct Measurement {
  double ms = 0;               // best-of-repetitions wall clock
  PerfReading perf;            // counters for the best run (or invalid)
};

// Runs `fn` `repetitions` times (after one warm-up) and returns the
// fastest run's wall clock and counters.
inline Measurement MeasureBest(const std::function<void()>& fn,
                               int repetitions, PerfCounters* counters) {
  fn();  // warm-up
  Measurement best;
  best.ms = std::numeric_limits<double>::max();
  for (int r = 0; r < repetitions; ++r) {
    counters->Start();
    Stopwatch sw;
    fn();
    const double ms = sw.ElapsedMillis();
    const PerfReading reading = counters->Stop();
    if (ms < best.ms) {
      best.ms = ms;
      best.perf = reading;
    }
  }
  return best;
}

// Formats a counter column, "n/a" when the PMU was unavailable.
inline std::string PerfNum(const PerfReading& r, double value, int digits) {
  if (!r.valid) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

inline std::string CountScaled(const PerfReading& r, std::uint64_t count,
                               double scale, int digits = 1) {
  if (!r.valid) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f",
                digits, static_cast<double>(count) / scale);
  return buf;
}

}  // namespace hef::bench

#endif  // HEF_BENCH_BENCH_UTIL_H_
