// Ablation: Bloom pre-filtering of star-join probes (the SIMD Bloom
// filter technique from the paper's related work, integrated into the HEF
// pipeline). For each SSB query, compares the hybrid engine with and
// without per-dimension Bloom filters. Expected shape: Bloom pays on
// selective joins against large dimension tables (it replaces cache-miss
// hash probes with hits into a much smaller bit array) and is overhead on
// high-hit-rate joins.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "exec/runtime.h"
#include "ssb/database.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddInt64("repetitions", 3, "measurement repetitions");
  flags.AddBool("verify", true, "cross-check against the reference");
  flags.AddString("threads", "auto",
                  "worker threads per engine: auto (one per hardware "
                  "thread) or a count; the paper's per-core exhibits use 1");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }

  std::printf("== Bloom pre-filter ablation ==\n");
  const double sf = flags.GetDouble("sf");
  std::printf("scale factor %.2f — generating data...\n\n", sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);

  // Cold end-to-end runs: the ablation's subject includes the Bloom build,
  // which a warm plan cache would hide.
  EngineConfig plain_cfg;
  plain_cfg.flavor = Flavor::kHybrid;
  plain_cfg.threads = threads.value();
  plain_cfg.plan_cache = false;
  EngineConfig bloom_cfg = plain_cfg;
  bloom_cfg.bloom_prefilter = true;
  SsbEngine plain(db, plain_cfg);
  SsbEngine bloom(db, bloom_cfg);

  PerfCounters counters;
  TextTable table;
  table.AddRow({"Query", "hybrid (ms)", "hybrid+bloom (ms)", "speedup",
                "qualifying"});
  for (const QueryId query : PaperFigureQueries()) {
    if (flags.GetBool("verify")) {
      const QueryResult want = RunReferenceQuery(db, query);
      HEF_CHECK_MSG(plain.Run(query) == want, "plain mismatch");
      HEF_CHECK_MSG(bloom.Run(query) == want, "bloom mismatch");
    }
    const auto p = bench::MeasureBest([&] { plain.Run(query); },
                                      repetitions, &counters);
    const auto b = bench::MeasureBest([&] { bloom.Run(query); },
                                      repetitions, &counters);
    table.AddRow({QueryName(query), TextTable::Num(p.ms, 1),
                  TextTable::Num(b.ms, 1),
                  TextTable::Num(p.ms / b.ms, 2) + "x",
                  std::to_string(plain.Run(query).qualifying_rows)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
