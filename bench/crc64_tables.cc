// Reproduces Tables VIII / IX: CRC64 execution time and IPC for the purely
// scalar, purely AVX-512 and HEF-tuned hybrid implementations. CRC64 is
// the paper's gather-bound workload: its inner loop is a chain of
// table lookups (vpgatherqq, latency 26 / throughput 5), so this benchmark
// isolates the pack optimization. Host table measured; both paper
// testbeds evaluated through the port model.

#include <cstdio>

#include "algo/crc64.h"
#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "portmodel/port_model.h"
#include "telemetry/bench_report.h"
#include "tuner/kernel_tuners.h"
#include "tuner/tune_trace.h"

namespace hef {
namespace {

void PrintModelTable(const char* name, const ProcessorModel& model,
                     const HybridConfig& hybrid) {
  const PortModel pm(model);
  TextTable table;
  table.AddRow({"Model " + std::string(name), "Scalar", "AVX-512", "Hybrid"});
  std::vector<std::string> cycles_row = {"cycles/elem"};
  std::vector<std::string> time_row = {"pred. ns/elem"};
  std::vector<std::string> ipc_row = {"model IPC"};
  for (const HybridConfig& cfg :
       {HybridConfig::PureScalar(), HybridConfig::PureSimd(), hybrid}) {
    const auto r = pm.Simulate(
        KernelTrace::Build(Crc64Kernel::Ops(), cfg, Isa::kAvx512), 64);
    cycles_row.push_back(TextTable::Num(r.CyclesPerElement(), 2));
    time_row.push_back(TextTable::Num(r.NanosPerElement(), 2));
    ipc_row.push_back(TextTable::Num(r.Ipc(), 2));
  }
  table.AddRow(cycles_row);
  table.AddRow(time_row);
  table.AddRow(ipc_row);
  std::printf("%s\n", table.ToString().c_str());
}

int Main(int argc, char** argv) {
  FlagParser flags;
  // CRC64 is gather-bound (~5-7 ns/element), far from DRAM bandwidth, so
  // a larger default than the Murmur bench is safe; still configurable.
  flags.AddInt64("elements", 1 << 22,
                 "64-bit elements checksummed per measurement");
  flags.AddInt64("repetitions", 7, "measurement repetitions");
  flags.AddBool("tune", true, "find the hybrid optimum with the tuner");
  flags.AddString("hybrid", "v8s0p1",
                  "hybrid coordinates when --tune=false (paper optimum)");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const auto n = static_cast<std::size_t>(flags.GetInt64("elements"));
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));

  std::printf("== CRC64 synthetic benchmark (paper Tables VIII/IX) ==\n");
  std::printf("checksumming %zu 64-bit elements per run\n\n", n);

  telemetry::BenchReport report("crc64_tables");
  report.SetConfig("elements", static_cast<std::int64_t>(n));
  report.SetConfig("repetitions", repetitions);
  report.SetConfig("tuned", flags.GetBool("tune"));

  HybridConfig hybrid{8, 0, 1};
  if (flags.GetBool("tune")) {
    const TuneResult tuned = TuneCrc64({});
    report.AddSection("tune_trace", TuneTraceToJson(tuned));
    hybrid = tuned.best;
    std::printf("tuned hybrid optimum on this host: %s "
                "(%d nodes tested)\n\n",
                hybrid.ToString().c_str(), tuned.nodes_tested);
  } else {
    hybrid = HybridConfig::Parse(flags.GetString("hybrid")).value();
  }

  AlignedBuffer<std::uint64_t> in(n, 256), out(n, 256);
  Rng rng(2);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();

  PerfCounters counters;
  if (!counters.available()) {
    std::printf("note: %s\n\n", counters.error().c_str());
  }

  TextTable table;
  table.AddRow({"Attributes", "Scalar", "AVX-512", "Hybrid"});
  std::vector<std::string> time_row = {"Time (ms)"};
  std::vector<std::string> ns_row = {"ns/elem"};
  std::vector<std::string> ipc_row = {"IPC"};
  const std::pair<const char*, HybridConfig> variants[] = {
      {"scalar", HybridConfig::PureScalar()},
      {"simd", HybridConfig::PureSimd()},
      {"hybrid", hybrid}};
  for (const auto& [label, cfg] : variants) {
    const auto m = bench::MeasureBest(
        [&] { Crc64Array(cfg, in.data(), out.data(), n); }, repetitions,
        &counters);
    time_row.push_back(TextTable::Num(m.ms, 2));
    ns_row.push_back(TextTable::Num(m.ms * 1e6 / static_cast<double>(n), 2));
    ipc_row.push_back(bench::PerfNum(m.perf, m.perf.Ipc(), 2));
    auto& row = report.AddResult();
    row.Set("kernel", "crc64")
        .Set("variant", label)
        .Set("config", cfg.ToString())
        .Set("ms", m.ms)
        .Set("median_ms", m.median_ms)
        .Set("ns_per_elem", m.ms * 1e6 / static_cast<double>(n));
    if (m.perf.valid) {
      row.Set("instructions", m.perf.instructions)
          .Set("ipc", m.perf.Ipc())
          .Set("llc_misses", m.perf.llc_misses)
          .Set("pmu_scaled", m.perf.scaled);
    }
  }
  table.AddRow(time_row);
  table.AddRow(ns_row);
  table.AddRow(ipc_row);
  std::printf("Host (measured):\n%s\n", table.ToString().c_str());

  PrintModelTable("silver4110 (Table VIII shape)",
                  ProcessorModel::Silver4110(), hybrid);
  PrintModelTable("gold6240r (Table IX shape)", ProcessorModel::Gold6240R(),
                  hybrid);
  std::printf(
      "Paper shape: packing independent gather chains cuts time well below "
      "both pure flavours (2.8x vs scalar on the Silver testbed).\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
