// Google-benchmark microbenchmarks for every kernel flavour: per-element
// cost of MurmurHash, CRC64, hash probe and gather across (v, s, p)
// coordinates. Complements the paper-exhibit harnesses with
// statistically-managed measurements.

#include <benchmark/benchmark.h>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "algo/fmix32.h"
#include "engine/primitives.h"
#include "engine/scan.h"
#include "table/bloom_filter.h"
#include "table/group_agg.h"
#include "table/linear_hash_table.h"
#include "table/probe.h"
#include "table/radix_partition.h"

namespace hef {
namespace {

constexpr std::size_t kElements = 1 << 16;  // L2-resident: compute-bound

// Encodes (v, s, p) into benchmark args.
void KernelConfigs(benchmark::internal::Benchmark* b) {
  for (const HybridConfig cfg :
       {HybridConfig{0, 1, 1}, HybridConfig{0, 3, 2}, HybridConfig{1, 0, 1},
        HybridConfig{1, 0, 3}, HybridConfig{1, 3, 2}, HybridConfig{2, 2, 2},
        HybridConfig{2, 0, 2}}) {
    b->Args({cfg.v, cfg.s, cfg.p});
  }
}

HybridConfig ArgConfig(const benchmark::State& state) {
  return HybridConfig{static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)),
                      static_cast<int>(state.range(2))};
}

void BM_Murmur(benchmark::State& state) {
  const HybridConfig cfg = ArgConfig(state);
  AlignedBuffer<std::uint64_t> in(kElements, 256), out(kElements, 256);
  Rng rng(1);
  for (std::size_t i = 0; i < kElements; ++i) in[i] = rng.Next();
  for (auto _ : state) {
    MurmurHashArray(cfg, in.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_Murmur)->Apply(KernelConfigs);

void BM_Crc64(benchmark::State& state) {
  const HybridConfig cfg = ArgConfig(state);
  AlignedBuffer<std::uint64_t> in(kElements, 256), out(kElements, 256);
  Rng rng(2);
  for (std::size_t i = 0; i < kElements; ++i) in[i] = rng.Next();
  for (auto _ : state) {
    Crc64Array(cfg, in.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_Crc64)->Apply(KernelConfigs);

void BM_Crc64Pack(benchmark::State& state) {
  // Pure-SIMD pack sweep: the Fig. 3 mechanism in isolation.
  const HybridConfig cfg{static_cast<int>(state.range(0)), 0, 1};
  AlignedBuffer<std::uint64_t> in(kElements, 512), out(kElements, 512);
  Rng rng(3);
  for (std::size_t i = 0; i < kElements; ++i) in[i] = rng.Next();
  for (auto _ : state) {
    Crc64Array(cfg, in.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_Crc64Pack)->DenseRange(1, 8, 1);

void BM_Probe(benchmark::State& state) {
  const HybridConfig cfg = ArgConfig(state);
  const std::size_t table_keys = kElements / 4;
  LinearHashTable table(table_keys);
  for (std::uint64_t k = 0; k < table_keys; ++k) table.Insert(k * 2 + 1, k);
  AlignedBuffer<std::uint64_t> keys(kElements, 256), out(kElements, 256);
  Rng rng(4);
  for (std::size_t i = 0; i < kElements; ++i) {
    keys[i] = rng.Uniform(0, table_keys * 2);
  }
  for (auto _ : state) {
    ProbeArray(cfg, table, keys.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_Probe)->Apply(KernelConfigs);

void BM_Gather(benchmark::State& state) {
  const HybridConfig cfg = ArgConfig(state);
  AlignedBuffer<std::uint64_t> base(kElements, 256), idx(kElements, 256),
      out(kElements, 256);
  Rng rng(5);
  for (std::size_t i = 0; i < kElements; ++i) {
    base[i] = rng.Next();
    idx[i] = rng.Uniform(0, kElements - 1);
  }
  for (auto _ : state) {
    GatherArray(cfg, base.data(), idx.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_Gather)->Apply(KernelConfigs);

void BM_BloomProbe(benchmark::State& state) {
  const HybridConfig cfg = ArgConfig(state);
  BloomFilter filter(kElements / 4);
  Rng rng(6);
  for (std::size_t i = 0; i < kElements / 4; ++i) {
    filter.Insert(rng.Uniform(0, 1 << 22));
  }
  AlignedBuffer<std::uint64_t> keys(kElements, 256), out(kElements, 256);
  for (std::size_t i = 0; i < kElements; ++i) {
    keys[i] = rng.Uniform(0, 1 << 22);
  }
  for (auto _ : state) {
    BloomProbeArray(cfg, filter, keys.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_BloomProbe)->Apply(KernelConfigs);

void BM_GroupAgg(benchmark::State& state) {
  // Scalar loop vs conflict-detected vector accumulate; arg = group count
  // (small domains conflict often, large domains rarely).
  const bool use_simd = state.range(0) != 0;
  const auto groups = static_cast<std::size_t>(state.range(1));
  AlignedBuffer<std::uint64_t> gids(kElements, 64), vals(kElements, 64);
  Rng rng(8);
  for (std::size_t i = 0; i < kElements; ++i) {
    gids[i] = rng.Uniform(0, groups - 1);
    vals[i] = rng.Uniform(0, 100);
  }
  std::vector<std::uint64_t> agg(groups), cnt(groups);
  for (auto _ : state) {
    GroupSumAdd(use_simd, gids.data(), vals.data(), kElements, agg.data(),
                cnt.data());
    benchmark::DoNotOptimize(agg.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(use_simd ? "simd" : "scalar");
}
BENCHMARK(BM_GroupAgg)
    ->Args({0, 16})
    ->Args({1, 16})
    ->Args({0, 4096})
    ->Args({1, 4096});

void BM_RadixPartition(benchmark::State& state) {
  const int bits = static_cast<int>(state.range(0));
  AlignedBuffer<std::uint64_t> keys(kElements, 64), vals(kElements, 64),
      scratch(kElements, 64), out_k(kElements, 64), out_v(kElements, 64);
  Rng rng(9);
  for (std::size_t i = 0; i < kElements; ++i) {
    keys[i] = rng.Next();
    vals[i] = i;
  }
  for (auto _ : state) {
    auto parts = RadixPartition(HybridConfig{1, 3, 2}, keys.data(),
                                vals.data(), kElements, bits,
                                scratch.data(), out_k.data(), out_v.data());
    benchmark::DoNotOptimize(parts.offsets.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
}
BENCHMARK(BM_RadixPartition)->Arg(4)->Arg(8)->Arg(12);

void BM_ScanRangeBitmap(benchmark::State& state) {
  const Flavor flavor =
      state.range(0) == 0 ? Flavor::kScalar : Flavor::kSimd;
  AlignedBuffer<std::uint64_t> col(kElements, 64);
  AlignedBuffer<std::uint64_t> bitmap(BitmapWords(kElements), 8);
  Rng rng(10);
  for (std::size_t i = 0; i < kElements; ++i) col[i] = rng.Uniform(0, 99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ScanRangeBitmap(flavor, col.data(), kElements,
                                             25, 74, bitmap.data()));
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(FlavorName(flavor));
}
BENCHMARK(BM_ScanRangeBitmap)->Arg(0)->Arg(1);

void BM_Fmix32(benchmark::State& state) {
  // 32-bit-lane kernel (Table II vint32): sixteen lanes per zmm.
  const HybridConfig cfg = ArgConfig(state);
  AlignedBuffer<std::uint32_t> in(kElements, 512), out(kElements, 512);
  Rng rng(7);
  for (std::size_t i = 0; i < kElements; ++i) {
    in[i] = static_cast<std::uint32_t>(rng.Next());
  }
  for (auto _ : state) {
    Fmix32Array(cfg, in.data(), out.data(), kElements);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * kElements);
  state.SetLabel(cfg.ToString());
}
BENCHMARK(BM_Fmix32)->Apply(KernelConfigs);

}  // namespace
}  // namespace hef

BENCHMARK_MAIN();
