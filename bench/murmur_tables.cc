// Reproduces Tables VI / VII and the murmur columns of the synthetic
// evaluation (§V-C): MurmurHash execution time and IPC for the purely
// scalar, purely SIMD, and HEF-tuned hybrid implementations.
//
// The paper reports both Xeon testbeds; the host table is measured, and
// the two processor models are additionally evaluated through the
// issue-port simulator (cycles/element and predicted time) so both
// microarchitectures' shapes are reproduced on a single machine.

#include <cstdio>

#include "algo/murmur.h"
#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "portmodel/port_model.h"
#include "telemetry/bench_report.h"
#include "tuner/kernel_tuners.h"
#include "tuner/tune_trace.h"

namespace hef {
namespace {

void PrintModelTable(const char* name, const ProcessorModel& model,
                     const HybridConfig& hybrid) {
  const PortModel pm(model);
  TextTable table;
  table.AddRow({"Model " + std::string(name), "Scalar", "SIMD", "Hybrid"});
  std::vector<HybridConfig> configs = {HybridConfig::PureScalar(),
                                       HybridConfig::PureSimd(), hybrid};
  std::vector<std::string> cycles_row = {"cycles/elem"};
  std::vector<std::string> time_row = {"pred. ns/elem"};
  std::vector<std::string> ipc_row = {"model IPC"};
  for (const HybridConfig& cfg : configs) {
    const auto r = pm.Simulate(
        KernelTrace::Build(MurmurKernel::Ops(), cfg, Isa::kAvx512), 64);
    cycles_row.push_back(TextTable::Num(r.CyclesPerElement(), 2));
    time_row.push_back(TextTable::Num(r.NanosPerElement(), 2));
    ipc_row.push_back(TextTable::Num(r.Ipc(), 2));
  }
  table.AddRow(cycles_row);
  table.AddRow(time_row);
  table.AddRow(ipc_row);
  std::printf("%s\n", table.ToString().c_str());
}

int Main(int argc, char** argv) {
  FlagParser flags;
  // Cache-resident by default: the paper's 10^9-element stream is
  // compute-bound on a server memory system, but saturates a single VM
  // core's DRAM bandwidth, which would mask the execution-unit effect
  // being measured. Pass a larger --elements to see the streaming regime.
  flags.AddInt64("elements", 1 << 19,
                 "64-bit elements hashed per measurement");
  flags.AddInt64("repetitions", 20, "measurement repetitions");
  flags.AddBool("tune", true, "find the hybrid optimum with the tuner");
  flags.AddString("hybrid", "v1s3p2",
                  "hybrid coordinates when --tune=false (paper optimum)");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const auto n = static_cast<std::size_t>(flags.GetInt64("elements"));
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));

  std::printf("== MurmurHash synthetic benchmark (paper Tables VI/VII) ==\n");
  std::printf("hashing %zu 64-bit elements per run\n\n", n);

  telemetry::BenchReport report("murmur_tables");
  report.SetConfig("elements", static_cast<std::int64_t>(n));
  report.SetConfig("repetitions", repetitions);
  report.SetConfig("tuned", flags.GetBool("tune"));

  HybridConfig hybrid{1, 3, 2};
  if (flags.GetBool("tune")) {
    const TuneResult tuned = TuneMurmur({});
    report.AddSection("tune_trace", TuneTraceToJson(tuned));
    hybrid = tuned.best;
    std::printf("tuned hybrid optimum on this host: %s "
                "(%d nodes tested)\n\n",
                hybrid.ToString().c_str(), tuned.nodes_tested);
  } else {
    hybrid = HybridConfig::Parse(flags.GetString("hybrid")).value();
  }

  AlignedBuffer<std::uint64_t> in(n, 256), out(n, 256);
  Rng rng(1);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();

  PerfCounters counters;
  if (!counters.available()) {
    std::printf("note: %s\n\n", counters.error().c_str());
  }

  TextTable table;
  table.AddRow({"Attributes", "Scalar", "SIMD", "Hybrid"});
  std::vector<std::string> time_row = {"Time (ms)"};
  std::vector<std::string> ns_row = {"ns/elem"};
  std::vector<std::string> ipc_row = {"IPC"};
  const std::pair<const char*, HybridConfig> variants[] = {
      {"scalar", HybridConfig::PureScalar()},
      {"simd", HybridConfig::PureSimd()},
      {"hybrid", hybrid}};
  for (const auto& [label, cfg] : variants) {
    const auto m = bench::MeasureBest(
        [&] { MurmurHashArray(cfg, in.data(), out.data(), n); },
        repetitions, &counters);
    time_row.push_back(TextTable::Num(m.ms, 2));
    ns_row.push_back(TextTable::Num(m.ms * 1e6 / static_cast<double>(n), 2));
    ipc_row.push_back(bench::PerfNum(m.perf, m.perf.Ipc(), 2));
    auto& row = report.AddResult();
    row.Set("kernel", "murmur")
        .Set("variant", label)
        .Set("config", cfg.ToString())
        .Set("ms", m.ms)
        .Set("median_ms", m.median_ms)
        .Set("ns_per_elem", m.ms * 1e6 / static_cast<double>(n));
    if (m.perf.valid) {
      row.Set("instructions", m.perf.instructions)
          .Set("ipc", m.perf.Ipc())
          .Set("llc_misses", m.perf.llc_misses)
          .Set("pmu_scaled", m.perf.scaled);
    }
  }
  table.AddRow(time_row);
  table.AddRow(ns_row);
  table.AddRow(ipc_row);
  std::printf("Host (measured):\n%s\n", table.ToString().c_str());

  PrintModelTable("silver4110 (Table VI shape)",
                  ProcessorModel::Silver4110(), hybrid);
  PrintModelTable("gold6240r (Table VII shape)", ProcessorModel::Gold6240R(),
                  hybrid);
  std::printf(
      "Paper shape: hybrid < min(scalar, SIMD); scalar IPC > hybrid IPC > "
      "SIMD IPC.\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
