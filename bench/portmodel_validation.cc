// Validation of the issue-port simulator against host measurements: for
// every compiled (v, s, p) implementation of the Murmur and CRC64 kernels,
// compare the model's predicted cycles/element ranking with measured
// wall-clock per element, reporting Spearman rank correlation. The model
// substitutes for PMU µop events in Figs. 11-14 (DESIGN.md §5), so its
// *ordering* fidelity — does it rank faster implementations first? — is
// what this harness checks.

#include <algorithm>
#include <cstdio>
#include <limits>
#include <vector>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "portmodel/port_model.h"

namespace hef {
namespace {

double SpearmanRank(const std::vector<double>& a,
                    const std::vector<double>& b) {
  const std::size_t n = a.size();
  auto ranks = [n](const std::vector<double>& v) {
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&v](std::size_t x, std::size_t y) { return v[x] < v[y]; });
    std::vector<double> r(n);
    for (std::size_t i = 0; i < n; ++i) r[order[i]] = static_cast<double>(i);
    return r;
  };
  const auto ra = ranks(a);
  const auto rb = ranks(b);
  double d2 = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = ra[i] - rb[i];
    d2 += d * d;
  }
  const double dn = static_cast<double>(n);
  return 1.0 - 6.0 * d2 / (dn * (dn * dn - 1.0));
}

template <typename RunFn>
void Validate(const char* name, const std::vector<OpClass>& ops,
              const std::vector<HybridConfig>& configs, const RunFn& run,
              std::size_t elements, int repetitions) {
  const PortModel model(ProcessorModel::Host());

  TextTable table;
  table.AddRow({"config", "model cyc/elem", "measured ns/elem"});
  std::vector<double> predicted, measured;
  for (const HybridConfig& cfg : configs) {
    const auto sim =
        model.Simulate(KernelTrace::Build(ops, cfg, Isa::kAvx512), 32);
    run(cfg);  // warm-up
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < repetitions; ++r) {
      Stopwatch sw;
      run(cfg);
      best = std::min(best, sw.ElapsedSeconds());
    }
    const double ns = best * 1e9 / static_cast<double>(elements);
    predicted.push_back(sim.CyclesPerElement());
    measured.push_back(ns);
    table.AddRow({cfg.ToString(), TextTable::Num(sim.CyclesPerElement(), 2),
                  TextTable::Num(ns, 2)});
  }
  std::printf("%s:\n%s", name, table.ToString().c_str());
  std::printf("Spearman rank correlation (model vs host): %.2f\n\n",
              SpearmanRank(predicted, measured));
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("elements", 1 << 17, "elements per measurement");
  flags.AddInt64("repetitions", 7, "measurement repetitions");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.GetInt64("elements"));
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));

  std::printf("== port-model validation (DESIGN.md §5 substitution) ==\n\n");

  AlignedBuffer<std::uint64_t> in(n, 512), out(n, 512);
  Rng rng(9);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();

  const std::vector<HybridConfig> murmur_cfgs = {
      {0, 1, 1}, {0, 3, 1}, {1, 0, 1}, {1, 0, 3},
      {1, 3, 2}, {2, 2, 2}, {2, 4, 4}};
  Validate(
      "MurmurHash", MurmurKernel::Ops(), murmur_cfgs,
      [&](const HybridConfig& cfg) {
        MurmurHashArray(cfg, in.data(), out.data(), n);
      },
      n, repetitions);

  const std::vector<HybridConfig> crc_cfgs = {
      {0, 1, 1}, {0, 3, 2}, {1, 0, 1}, {2, 0, 1},
      {4, 0, 1}, {8, 0, 1}, {1, 3, 2}};
  Validate(
      "CRC64", Crc64Kernel::Ops(), crc_cfgs,
      [&](const HybridConfig& cfg) {
        Crc64Array(cfg, in.data(), out.data(), n);
      },
      n, repetitions);

  std::printf(
      "A positive correlation means the simulator ranks implementations "
      "like the silicon does; exact cycle counts are not expected to "
      "match (the model omits the memory hierarchy).\n");
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
