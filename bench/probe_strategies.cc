// Probe-strategy comparison across table footprints: scalar, purely SIMD,
// HEF hybrid, and IMV-style interleaved probes on hash tables sweeping
// from L1-resident to DRAM-resident. Positions HEF against the related
// work the paper discusses ([11] IMV): hybrid execution targets
// execution-unit parallelism, IMV targets memory latency — so hybrid
// should win when the table is cache-resident and interleaving should
// catch up (or win) as misses dominate.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "table/linear_hash_table.h"
#include "table/probe.h"
#include "table/probe_interleaved.h"
#include "tuner/kernel_tuners.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("probes", 1 << 21, "keys probed per measurement");
  flags.AddInt64("repetitions", 5, "measurement repetitions");
  flags.AddInt64("depth", 4, "IMV interleave depth");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }
  const auto n = static_cast<std::size_t>(flags.GetInt64("probes"));
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const int depth = static_cast<int>(flags.GetInt64("depth"));

  std::printf("== probe strategies vs table footprint ==\n");
  std::printf("%zu probes per run, ~50%% hit rate, IMV depth %d\n\n", n,
              depth);

  PerfCounters counters;
  TextTable table;
  table.AddRow({"table keys", "slab (MiB)", "scalar (ns)", "simd (ns)",
                "hybrid (ns)", "hybrid cfg", "imv (ns)"});

  for (std::size_t table_keys : {std::size_t{1} << 10, std::size_t{1} << 14,
                                 std::size_t{1} << 17, std::size_t{1} << 20,
                                 std::size_t{1} << 22}) {
    LinearHashTable ht(table_keys);
    for (std::uint64_t k = 0; k < table_keys; ++k) ht.Insert(k * 2 + 1, k);

    AlignedBuffer<std::uint64_t> keys(n, 256), out(n, 256);
    Rng rng(61);
    for (std::size_t i = 0; i < n; ++i) {
      keys[i] = rng.Uniform(0, table_keys * 2);
    }

    // Tune the hybrid probe at this footprint (the paper's point: the
    // optimum shifts with the cache level the table lands in).
    KernelTuneOptions topt;
    topt.elements = std::min<std::size_t>(n, 1 << 18);
    topt.probe_table_keys = table_keys;
    topt.repetitions = 3;
    const HybridConfig hybrid = TuneProbe(topt).best;

    auto measure = [&](auto&& fn) {
      return bench::MeasureBest(fn, repetitions, &counters).ms * 1e6 /
             static_cast<double>(n);
    };
    const double scalar_ns = measure([&] {
      ProbeArray(HybridConfig::PureScalar(), ht, keys.data(), out.data(), n);
    });
    const double simd_ns = measure([&] {
      ProbeArray(HybridConfig::PureSimd(), ht, keys.data(), out.data(), n);
    });
    const double hybrid_ns = measure(
        [&] { ProbeArray(hybrid, ht, keys.data(), out.data(), n); });
    const double imv_ns = measure([&] {
      ProbeArrayInterleaved(ht, keys.data(), out.data(), n, depth);
    });

    const double slab_mib =
        static_cast<double>(ht.capacity()) * 2 * 8 / (1 << 20);
    table.AddRow({std::to_string(table_keys), TextTable::Num(slab_mib, 1),
                  TextTable::Num(scalar_ns, 2), TextTable::Num(simd_ns, 2),
                  TextTable::Num(hybrid_ns, 2), hybrid.ToString(),
                  TextTable::Num(imv_ns, 2)});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
