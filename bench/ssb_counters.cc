// Reproduces Tables III / IV / V: detailed runtime information for one SSB
// query — instruction count, LLC misses, IPC, average frequency and time —
// for the Scalar / SIMD / Voila / Hybrid implementations.
//
//   ssb_counters --query=3.3 --sf=1     # Table III analogue
//   ssb_counters --query=2.3 --sf=2     # Table IV analogue
//   ssb_counters --query=2.1 --sf=4     # Table V analogue
//
// On hosts without PMU access (most VMs) the counter rows print n/a and
// the wall-clock row remains (see DESIGN.md §5).

#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "telemetry/bench_report.h"
#include "tuner/kernel_tuners.h"
#include "tuner/query_tuner.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("query", "3.3", "SSB query (e.g. 2.1)");
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddInt64("repetitions", 3, "measurement repetitions");
  flags.AddBool("tune", true, "tune hybrid kernels first");
  flags.AddBool("csv", false, "emit CSV");
  flags.AddString("threads", "1",
                  "worker threads per engine: auto or a count. Defaults "
                  "to 1 because the PMU group follows the measuring "
                  "thread — per-core counters (the Tables' subject) are "
                  "only attributable single-threaded");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const auto query_r = ParseQueryId(flags.GetString("query"));
  if (!query_r.ok()) {
    std::fprintf(stderr, "%s\n", query_r.status().ToString().c_str());
    return 1;
  }
  const QueryId query = query_r.value();
  const double sf = flags.GetDouble("sf");
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }

  std::printf("== SSB counter harness (paper Tables III-V) ==\n");
  std::printf("query %s at SF %.2f — generating data...\n",
              QueryName(query), sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);

  EngineConfig hybrid_cfg;
  hybrid_cfg.flavor = Flavor::kHybrid;
  if (flags.GetBool("tune")) {
    // Tune on a predefined test query (§III-A), as in ssb_figures.
    QueryTuneOptions qopt;
    qopt.initial_probe = hybrid_cfg.probe_cfg;
    qopt.repetitions = 3;
    hybrid_cfg.probe_cfg =
        TuneQueriesProbe(db, {QueryId::kQ2_1, QueryId::kQ3_1,
                              QueryId::kQ4_1},
                         qopt)
            .probe;
    KernelTuneOptions gopt;
    gopt.repetitions = 7;
    gopt.elements = 1 << 18;
    hybrid_cfg.gather_cfg = TuneGather(gopt).best;
    std::printf("hybrid kernels: probe %s, gather %s\n",
                hybrid_cfg.probe_cfg.ToString().c_str(),
                hybrid_cfg.gather_cfg.ToString().c_str());
  }

  EngineConfig scalar_cfg;
  scalar_cfg.flavor = Flavor::kScalar;
  EngineConfig simd_cfg;
  simd_cfg.flavor = Flavor::kSimd;
  // Table-exhibit timing: every repetition is a cold end-to-end run.
  VoilaConfig voila_cfg;
  voila_cfg.threads = threads.value();
  voila_cfg.plan_cache = false;
  for (EngineConfig* cfg : {&scalar_cfg, &simd_cfg, &hybrid_cfg}) {
    cfg->threads = threads.value();
    cfg->plan_cache = false;
  }
  SsbEngine scalar_engine(db, scalar_cfg);
  SsbEngine simd_engine(db, simd_cfg);
  SsbEngine hybrid_engine(db, hybrid_cfg);
  VoilaEngine voila_engine(db, voila_cfg);

  PerfCounters counters;
  if (!counters.available()) {
    std::printf("note: %s\n", counters.error().c_str());
  }

  const auto scalar = bench::MeasureBest(
      [&] { scalar_engine.Run(query); }, repetitions, &counters);
  const auto simd = bench::MeasureBest([&] { simd_engine.Run(query); },
                                       repetitions, &counters);
  const auto voila = bench::MeasureBest([&] { voila_engine.Run(query); },
                                        repetitions, &counters);
  const auto hybrid = bench::MeasureBest(
      [&] { hybrid_engine.Run(query); }, repetitions, &counters);

  TextTable table;
  table.AddRow({"Attributes", "Scalar", "SIMD", "Voila", "Hybrid"});
  table.AddRow({"Instructions (10^8)",
                bench::CountScaled(scalar.perf, scalar.perf.instructions, 1e8),
                bench::CountScaled(simd.perf, simd.perf.instructions, 1e8),
                bench::CountScaled(voila.perf, voila.perf.instructions, 1e8),
                bench::CountScaled(hybrid.perf, hybrid.perf.instructions,
                                   1e8)});
  table.AddRow({"LLC-misses (10^6)",
                bench::CountScaled(scalar.perf, scalar.perf.llc_misses, 1e6,
                                   2),
                bench::CountScaled(simd.perf, simd.perf.llc_misses, 1e6, 2),
                bench::CountScaled(voila.perf, voila.perf.llc_misses, 1e6,
                                   2),
                bench::CountScaled(hybrid.perf, hybrid.perf.llc_misses, 1e6,
                                   2)});
  table.AddRow({"IPC", bench::PerfNum(scalar.perf, scalar.perf.Ipc(), 2),
                bench::PerfNum(simd.perf, simd.perf.Ipc(), 2),
                bench::PerfNum(voila.perf, voila.perf.Ipc(), 2),
                bench::PerfNum(hybrid.perf, hybrid.perf.Ipc(), 2)});
  table.AddRow(
      {"Frequency (GHz)",
       bench::PerfNum(scalar.perf, scalar.perf.FrequencyGhz(), 2),
       bench::PerfNum(simd.perf, simd.perf.FrequencyGhz(), 2),
       bench::PerfNum(voila.perf, voila.perf.FrequencyGhz(), 2),
       bench::PerfNum(hybrid.perf, hybrid.perf.FrequencyGhz(), 2)});
  table.AddRow({"Time (ms)", TextTable::Num(scalar.ms, 0),
                TextTable::Num(simd.ms, 0), TextTable::Num(voila.ms, 0),
                TextTable::Num(hybrid.ms, 0)});

  std::printf("\n%s\n", flags.GetBool("csv") ? table.ToCsv().c_str()
                                             : table.ToString().c_str());

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    telemetry::BenchReport report("ssb_counters");
    report.SetConfig("query", QueryName(query));
    report.SetConfig("scale_factor", sf);
    report.SetConfig("repetitions", repetitions);
    report.SetConfig("tuned", flags.GetBool("tune"));
    report.SetConfig("threads",
                     static_cast<std::int64_t>(threads.value()));
    const std::pair<const char*, const bench::Measurement*> measured[] = {
        {"scalar", &scalar},
        {"simd", &simd},
        {"voila", &voila},
        {"hybrid", &hybrid}};
    for (const auto& [engine, m] : measured) {
      auto& row = report.AddResult();
      row.Set("query", QueryName(query))
          .Set("engine", engine)
          .Set("ms", m->ms)
          .Set("median_ms", m->median_ms);
      if (m->perf.valid) {
        row.Set("instructions", m->perf.instructions)
            .Set("ipc", m->perf.Ipc())
            .Set("llc_misses", m->perf.llc_misses)
            .Set("frequency_ghz", m->perf.FrequencyGhz())
            .Set("pmu_scaled", m->perf.scaled);
      }
    }
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
