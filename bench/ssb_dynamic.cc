// Ablation: static (globally tuned) versus dynamic per-query operator
// selection — the paper's §VII future-work extension, implemented in
// src/tuner/query_tuner. For each SSB query this harness compares
//
//   default   the EngineConfig default hybrid point (paper's SSB optimum),
//   global    one probe coordinate tuned on a standalone probe workload
//             (the paper's method),
//   dynamic   a probe coordinate tuned on the query itself.
//
// The paper predicts dynamic >= global ("it may not be the optimal
// implementation for the whole query").

#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "tuner/kernel_tuners.h"
#include "tuner/query_tuner.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 0.5, "SSB scale factor");
  flags.AddInt64("repetitions", 3, "measurement repetitions per query");
  flags.AddString("threads", "auto",
                  "worker threads per engine: auto (one per hardware "
                  "thread) or a count; the paper's per-core exhibits use 1");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }

  std::printf("== static vs dynamic operator selection (paper §VII) ==\n");
  const double sf = flags.GetDouble("sf");
  std::printf("scale factor %.2f — generating data...\n", sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);

  // Global tuning (the paper's offline phase on a proxy workload).
  KernelTuneOptions topt;
  topt.repetitions = 5;
  topt.elements = 1 << 18;
  topt.probe_table_keys = db.part.n;
  topt.probe_hit_rate = 0.3;
  const HybridConfig global_probe = TuneProbe(topt).best;
  std::printf("globally tuned probe: %s\n\n",
              global_probe.ToString().c_str());

  PerfCounters counters;
  TextTable table;
  table.AddRow({"Query", "default (ms)", "global (ms)", "dynamic (ms)",
                "dynamic cfg", "nodes", "dyn/global"});

  for (const QueryId query : PaperFigureQueries()) {
    // Paper-exhibit timing: every repetition is a cold end-to-end run.
    EngineConfig default_cfg;
    default_cfg.flavor = Flavor::kHybrid;
    default_cfg.threads = threads.value();
    default_cfg.plan_cache = false;
    SsbEngine default_engine(db, default_cfg);

    EngineConfig global_cfg = default_cfg;
    global_cfg.probe_cfg = global_probe;
    SsbEngine global_engine(db, global_cfg);

    QueryTuneOptions qopt;
    qopt.initial_probe = global_probe;
    qopt.repetitions = repetitions;
    const QueryTuneResult dynamic = TuneQueryProbe(db, query, qopt);
    EngineConfig dynamic_cfg = default_cfg;
    dynamic_cfg.probe_cfg = dynamic.probe;
    SsbEngine dynamic_engine(db, dynamic_cfg);

    const auto d = bench::MeasureBest(
        [&] { default_engine.Run(query); }, repetitions, &counters);
    const auto g = bench::MeasureBest(
        [&] { global_engine.Run(query); }, repetitions, &counters);
    const auto y = bench::MeasureBest(
        [&] { dynamic_engine.Run(query); }, repetitions, &counters);

    table.AddRow({QueryName(query), TextTable::Num(d.ms, 1),
                  TextTable::Num(g.ms, 1), TextTable::Num(y.ms, 1),
                  dynamic.probe.ToString(),
                  std::to_string(dynamic.nodes_tested),
                  TextTable::Num(g.ms / y.ms, 2) + "x"});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", table.ToString().c_str());
  std::printf(
      "Expected shape: dynamic <= global on queries whose selectivity or "
      "table footprint differs from the proxy tuning workload.\n");
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
