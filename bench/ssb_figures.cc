// Reproduces Figures 8 / 9 / 10: SSB query execution times for the four
// implementations — purely scalar, purely SIMD, Voila, and HEF hybrid —
// at a chosen scale factor. The paper runs SF10 / SF20 / SF50 on two Xeon
// testbeds; this harness runs SF1 / SF2 / SF4 by default on the host (see
// DESIGN.md §5 for the substitution rationale) — pass --sf to change.
//
//   ssb_figures --sf=1              # Figure 8 analogue (small scale)
//   ssb_figures --sf=2              # Figure 9 analogue (medium scale)
//   ssb_figures --sf=4              # Figure 10 analogue (large scale)

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "telemetry/bench_report.h"
#include "tuner/kernel_tuners.h"
#include "tuner/query_tuner.h"
#include "tuner/tune_trace.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddInt64("repetitions", 3, "measurement repetitions per query");
  flags.AddBool("tune", true,
                "tune the hybrid kernel coordinates before measuring");
  flags.AddBool("csv", false, "emit CSV instead of an aligned table");
  flags.AddBool("all-queries", false,
                "include Q1.x (the paper's figures exclude them)");
  flags.AddBool("verify", true,
                "cross-check all engines against the reference executor");
  flags.AddString("threads", "auto",
                  "worker threads per engine: auto (one per hardware "
                  "thread) or a count; the paper's per-core exhibits use 1");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const double sf = flags.GetDouble("sf");
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }

  telemetry::BenchReport report("ssb_figures");
  report.SetConfig("scale_factor", sf);
  report.SetConfig("repetitions", repetitions);
  report.SetConfig("tuned", flags.GetBool("tune"));
  report.SetConfig("threads", static_cast<std::int64_t>(threads.value()));

  std::printf("== SSB figure harness (paper Figs. 8-10) ==\n");
  std::printf("scale factor %.2f — generating data...\n", sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);
  std::printf("database resident size: %.1f MiB, %zu lineorder rows\n",
              static_cast<double>(db.TotalBytes()) / (1 << 20),
              db.lineorder.n);

  EngineConfig hybrid_cfg;
  hybrid_cfg.flavor = Flavor::kHybrid;
  if (flags.GetBool("tune")) {
    std::printf("tuning hybrid kernels (offline phase)...\n");
    // The paper's optimizer runs "predefined test queries" (§III-A), not
    // synthetic proxies: tune the probe coordinate on a representative
    // multi-join query end to end, and the gather on its standalone
    // workload (gathers are uniform across queries).
    QueryTuneOptions qopt;
    qopt.initial_probe = hybrid_cfg.probe_cfg;
    qopt.repetitions = 3;
    const QueryTuneResult probe = TuneQueriesProbe(
        db, {QueryId::kQ2_1, QueryId::kQ3_1, QueryId::kQ4_1}, qopt);
    report.AddSection("probe_tune_trace", TuneTraceToJson(probe.search));
    KernelTuneOptions gopt;
    gopt.repetitions = 7;
    gopt.elements = 1 << 18;
    const TuneResult gather = TuneGather(gopt);
    hybrid_cfg.probe_cfg = probe.probe;
    hybrid_cfg.gather_cfg = gather.best;
    std::printf("  probe kernel:  %s (%d nodes, test queries "
                "Q2.1/Q3.1/Q4.1)\n",
                probe.probe.ToString().c_str(), probe.nodes_tested);
    std::printf("  gather kernel: %s (%d nodes tested)\n",
                gather.best.ToString().c_str(), gather.nodes_tested);
  } else {
    std::printf("using default hybrid coordinates %s\n",
                hybrid_cfg.probe_cfg.ToString().c_str());
  }

  EngineConfig scalar_cfg;
  scalar_cfg.flavor = Flavor::kScalar;
  EngineConfig simd_cfg;
  simd_cfg.flavor = Flavor::kSimd;

  // Paper-exhibit timing: every repetition is a cold end-to-end run
  // (join build + pipeline), so plan caching stays off here.
  VoilaConfig voila_cfg;
  voila_cfg.threads = threads.value();
  voila_cfg.plan_cache = false;
  for (EngineConfig* cfg : {&scalar_cfg, &simd_cfg, &hybrid_cfg}) {
    cfg->threads = threads.value();
    cfg->plan_cache = false;
  }

  SsbEngine scalar_engine(db, scalar_cfg);
  SsbEngine simd_engine(db, simd_cfg);
  SsbEngine hybrid_engine(db, hybrid_cfg);
  VoilaEngine voila_engine(db, voila_cfg);

  PerfCounters counters;
  TextTable table;
  table.AddRow({"Query", "Scalar (ms)", "SIMD (ms)", "Voila (ms)",
                "HEF (ms)", "HEF/Scalar", "HEF/SIMD", "HEF/Voila"});

  const auto& queries =
      flags.GetBool("all-queries") ? AllQueries() : PaperFigureQueries();
  for (const QueryId query : queries) {
    if (flags.GetBool("verify")) {
      const QueryResult want = RunReferenceQuery(db, query);
      HEF_CHECK_MSG(scalar_engine.Run(query) == want, "scalar mismatch");
      HEF_CHECK_MSG(simd_engine.Run(query) == want, "simd mismatch");
      HEF_CHECK_MSG(hybrid_engine.Run(query) == want, "hybrid mismatch");
      HEF_CHECK_MSG(voila_engine.Run(query) == want, "voila mismatch");
    }
    const auto scalar = bench::MeasureBest(
        [&] { scalar_engine.Run(query); }, repetitions, &counters);
    const auto simd = bench::MeasureBest(
        [&] { simd_engine.Run(query); }, repetitions, &counters);
    const auto voila = bench::MeasureBest(
        [&] { voila_engine.Run(query); }, repetitions, &counters);
    const auto hybrid = bench::MeasureBest(
        [&] { hybrid_engine.Run(query); }, repetitions, &counters);
    const std::pair<const char*, const bench::Measurement*> measured[] = {
        {"scalar", &scalar},
        {"simd", &simd},
        {"voila", &voila},
        {"hybrid", &hybrid}};
    for (const auto& [engine, m] : measured) {
      auto& row = report.AddResult();
      row.Set("query", QueryName(query))
          .Set("engine", engine)
          .Set("ms", m->ms)
          .Set("median_ms", m->median_ms);
      if (m->perf.valid) {
        row.Set("instructions", m->perf.instructions)
            .Set("ipc", m->perf.Ipc())
            .Set("llc_misses", m->perf.llc_misses)
            .Set("pmu_scaled", m->perf.scaled);
      }
    }
    table.AddRow({QueryName(query), TextTable::Num(scalar.ms, 1),
                  TextTable::Num(simd.ms, 1), TextTable::Num(voila.ms, 1),
                  TextTable::Num(hybrid.ms, 1),
                  TextTable::Num(scalar.ms / hybrid.ms, 2) + "x",
                  TextTable::Num(simd.ms / hybrid.ms, 2) + "x",
                  TextTable::Num(voila.ms / hybrid.ms, 2) + "x"});
    std::printf(".");
    std::fflush(stdout);
  }
  std::printf("\n\n%s\n", flags.GetBool("csv") ? table.ToCsv().c_str()
                                               : table.ToString().c_str());
  std::printf(
      "Paper shape (Figs. 8-10): HEF <= both pure flavours everywhere; "
      "HEF beats Voila at low selectivity (Q2.1, Q3.1, Q4.1/4.2), Voila "
      "competitive at very high selectivity (Q2.3, Q3.3, Q3.4).\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
