// Scale trend across Figs. 8 -> 9 -> 10 in one harness: geometric-mean
// speedups of HEF over Scalar / SIMD / Voila at several scale factors.
// The paper's argument: hash tables move down the cache hierarchy as SF
// grows, changing both the absolute times and who wins by how much.
//
//   ssb_scaling [--sfs=0.25,0.5,1] [--repetitions=3]

#include <cmath>
#include <cstdio>
#include <sstream>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

std::vector<double> ParseSfs(const std::string& text) {
  std::vector<double> sfs;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, ',')) {
    sfs.push_back(std::strtod(item.c_str(), nullptr));
  }
  return sfs;
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("sfs", "0.25,0.5,1", "comma-separated scale factors");
  flags.AddInt64("repetitions", 3, "measurement repetitions per query");
  flags.AddString("threads", "auto",
                  "worker threads per engine: auto (one per hardware "
                  "thread) or a count; the paper's per-core exhibits use 1");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }
  const std::vector<double> sfs = ParseSfs(flags.GetString("sfs"));
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }

  std::printf("== SSB scale trend (Figs. 8-10 in one sweep) ==\n");
  std::printf("geomean over the ten figure queries; hybrid at the "
              "default v1s1p3 (the paper's SSB optimum) for "
              "cross-scale comparability\n\n");

  PerfCounters counters;
  TextTable table;
  table.AddRow({"SF", "lineorder rows", "HEF/Scalar", "HEF/SIMD",
                "HEF/Voila", "HEF total (ms)"});

  for (const double sf : sfs) {
    const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);
    EngineConfig scalar_cfg;
    scalar_cfg.flavor = Flavor::kScalar;
    EngineConfig simd_cfg;
    simd_cfg.flavor = Flavor::kSimd;
    EngineConfig hybrid_cfg;
    hybrid_cfg.flavor = Flavor::kHybrid;
    // Paper-exhibit timing: every repetition is a cold end-to-end run.
    VoilaConfig voila_cfg;
    voila_cfg.threads = threads.value();
    voila_cfg.plan_cache = false;
    for (EngineConfig* cfg : {&scalar_cfg, &simd_cfg, &hybrid_cfg}) {
      cfg->threads = threads.value();
      cfg->plan_cache = false;
    }
    SsbEngine scalar_engine(db, scalar_cfg);
    SsbEngine simd_engine(db, simd_cfg);
    SsbEngine hybrid_engine(db, hybrid_cfg);
    VoilaEngine voila_engine(db, voila_cfg);

    double log_vs_scalar = 0, log_vs_simd = 0, log_vs_voila = 0;
    double hef_total_ms = 0;
    for (const QueryId query : PaperFigureQueries()) {
      const double s = bench::MeasureBest(
          [&] { scalar_engine.Run(query); }, repetitions, &counters).ms;
      const double v = bench::MeasureBest(
          [&] { simd_engine.Run(query); }, repetitions, &counters).ms;
      const double o = bench::MeasureBest(
          [&] { voila_engine.Run(query); }, repetitions, &counters).ms;
      const double h = bench::MeasureBest(
          [&] { hybrid_engine.Run(query); }, repetitions, &counters).ms;
      log_vs_scalar += std::log(s / h);
      log_vs_simd += std::log(v / h);
      log_vs_voila += std::log(o / h);
      hef_total_ms += h;
      std::printf(".");
      std::fflush(stdout);
    }
    const double q = static_cast<double>(PaperFigureQueries().size());
    table.AddRow({TextTable::Num(sf, 2), std::to_string(db.lineorder.n),
                  TextTable::Num(std::exp(log_vs_scalar / q), 2) + "x",
                  TextTable::Num(std::exp(log_vs_simd / q), 2) + "x",
                  TextTable::Num(std::exp(log_vs_voila / q), 2) + "x",
                  TextTable::Num(hef_total_ms, 0)});
  }
  std::printf("\n\n%s\n", table.ToString().c_str());
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
