// Serving-throughput harness: replays an SSB query mix round-robin for a
// fixed wall-clock duration and reports queries/sec plus latency
// percentiles — the workload the execution runtime (persistent TaskPool,
// work-stealing morsel scheduler, plan cache) exists for.
//
//   ssb_throughput --sf=1 --duration=10                  # warm plan cache
//   ssb_throughput --sf=1 --duration=10 --cold_plans     # rebuild per run
//   ssb_throughput --flavor=voila --threads=4 --json=out.json
//   ssb_throughput --deadline_ms=5 --max_retries=2       # serving limits
//   ssb_throughput --encoding=auto --pruning             # chunked storage
//   ssb_throughput --encoding=auto --drop_flat           # compressed RSS
//
// --cold_plans invalidates the plan cache before every query, reproducing
// the pre-runtime behaviour (every Run rebuilds dimension hash tables and
// Bloom filters); the warm/cold qps ratio is the plan cache's payoff.
// Scheduler counters (exec.morsels_dispatched, exec.steals, ...) land in
// the --json report's metrics dump.
//
// The replay loop exercises the serving contract: every query runs
// through the fallible Run overload under an optional per-query deadline
// (--deadline_ms), deadline-exceeded / cancelled / failed outcomes are
// counted per query and in total, and retryable failures (Internal,
// IoError — not deadline or cancellation) are retried up to --max_retries
// times with jittered exponential backoff. --flavor=auto picks the best
// flavour the host admits.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "exec/runtime.h"
#include "perf/pmu_sampler.h"
#include "ssb/chunked_fact.h"
#include "ssb/database.h"
#include "storage/encoding.h"
#include "telemetry/bench_report.h"
#include "telemetry/diagnostics.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"
#include "telemetry/metrics_http.h"
#include "telemetry/profiler.h"
#include "telemetry/span.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

std::vector<QueryId> ParseMix(const std::string& text) {
  if (text == "all") return AllQueries();
  if (text == "figures") return PaperFigureQueries();
  std::vector<QueryId> mix;
  std::string item;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ',') {
      item += text[i];
      continue;
    }
    const auto id = ParseQueryId(item);
    HEF_CHECK_MSG(id.ok(), "bad query '%s' in --queries", item.c_str());
    mix.push_back(id.value());
    item.clear();
  }
  return mix;
}

// Latencies are recorded into log-linear histograms in microseconds
// (integer ticks fine enough that the <=6.25% bucket width dominates the
// error) and read back as milliseconds.
double HistQuantileMs(const telemetry::Histogram& hist, double q) {
  return hist.Quantile(q) * 1e-3;
}

double HistMeanMs(const telemetry::Histogram& hist) {
  return hist.Mean() * 1e-3;
}

// Only transient failures are worth retrying; a deadline or cancellation
// would just expire again, and InvalidArgument/Unsupported are
// deterministic.
bool IsRetryable(StatusCode code) {
  return code == StatusCode::kInternal || code == StatusCode::kIoError;
}

// Jittered exponential backoff before retry `attempt` (1-based): capped
// doubling scaled by U[0.5, 1.5) so a burst of failing replicas does not
// retry in lockstep.
void BackoffBeforeRetry(int attempt, Rng& rng) {
  const int exp = std::min(attempt - 1, 6);
  const double base_ms = 1.0 * static_cast<double>(1 << exp);
  const double jitter = 0.5 + rng.NextDouble();
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(base_ms * jitter));
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddDouble("duration", 10.0, "measurement seconds");
  flags.AddInt64("warmup", 1, "untimed passes over the mix before timing");
  flags.AddString("flavor", "hybrid",
                  "scalar | simd | hybrid | voila | auto (best supported)");
  flags.AddDouble("deadline_ms", 0.0,
                  "per-query deadline in milliseconds (0 = none); "
                  "queries exceeding it stop cooperatively and count as "
                  "deadline_exceeded");
  flags.AddInt64("max_retries", 0,
                 "retries per query for transient failures (Internal / "
                 "IoError), with jittered exponential backoff");
  flags.AddString("queries", "all",
                  "query mix: all | figures | comma-separated ids");
  flags.AddString("threads", "auto",
                  "worker threads: auto (one per hardware thread) or a "
                  "count");
  flags.AddBool("cold_plans", false,
                "invalidate the plan cache before every query (the "
                "pre-runtime rebuild-per-Run baseline)");
  flags.AddString("encoding", "flat",
                  "fact-table storage: flat (plain arrays, the default) "
                  "or a chunked-shadow policy — auto | plain | dict | "
                  "for; any chunked policy scans through per-block "
                  "decode");
  flags.AddBool("pruning", false,
                "zone-map / histogram chunk pruning before morsel "
                "dispatch (requires a chunked --encoding)");
  flags.AddBool("drop_flat", false,
                "free the flat fact columns after verification so the "
                "resident fact footprint is the encoded one (requires a "
                "chunked --encoding)");
  flags.AddBool("verify", true,
                "cross-check one pass of the mix against the reference");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  flags.AddString("profile", "",
                  "sample the replay loop with the wall-clock profiler "
                  "and write collapsed stacks (flamegraph.pl format) to "
                  "this path");
  flags.AddString("trace", "",
                  "write a chrome://tracing trace-event file (spans plus "
                  "PMU counter tracks) to this path");
  flags.AddInt64("metrics_port", -1,
                 "serve Prometheus text metrics on "
                 "http://127.0.0.1:PORT/metrics while the bench runs "
                 "(0 = ephemeral port, -1 = off); the same server exposes "
                 "/healthz /statusz /tracez /flightz");
  flags.AddBool("stats", false,
                "collect per-operator stats on every replayed query so "
                "/tracez completions carry EXPLAIN trees (adds per-op "
                "timing overhead)");
  flags.AddString("slow_log", "",
                  "append slow/failed queries as JSONL to this path");
  flags.AddDouble("slow_ms", 100.0,
                  "slow-query threshold in milliseconds for --slow_log; "
                  "errors are always logged");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const double sf = flags.GetDouble("sf");
  const double duration = flags.GetDouble("duration");
  const auto warmup = static_cast<int>(flags.GetInt64("warmup"));
  const bool cold_plans = flags.GetBool("cold_plans");
  const double deadline_ms = flags.GetDouble("deadline_ms");
  const auto max_retries = static_cast<int>(flags.GetInt64("max_retries"));
  std::string flavor_name = flags.GetString("flavor");
  const std::vector<QueryId> mix = ParseMix(flags.GetString("queries"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }
  HEF_CHECK_MSG(!mix.empty(), "empty query mix");

  const std::string encoding = flags.GetString("encoding");
  const bool chunked = encoding != "flat";
  const bool pruning = flags.GetBool("pruning");
  const bool drop_flat = flags.GetBool("drop_flat");
  storage::EncodingPolicy policy = storage::EncodingPolicy::kAuto;
  if (chunked &&
      !storage::EncodingPolicyByName(encoding.c_str(), &policy)) {
    std::fprintf(stderr,
                 "--encoding=%s: want flat | auto | plain | dict | for\n",
                 encoding.c_str());
    return 1;
  }
  if ((pruning || drop_flat) && !chunked) {
    std::fprintf(stderr,
                 "--pruning / --drop_flat require a chunked --encoding\n");
    return 1;
  }
  if (chunked && flags.GetString("flavor") == "voila") {
    std::fprintf(stderr, "--encoding: the voila flavor scans flat only\n");
    return 1;
  }

  // Observability side-channels: the debug HTTP server (Prometheus
  // scrape plus /statusz /tracez /flightz), the crash-time flight dump,
  // the slow-query JSONL log, and span tracing with PMU counter lanes.
  const char* flight_dir = std::getenv("HEF_FLIGHT_DIR");
  telemetry::FlightRecorder::InstallCrashHandler(
      flight_dir != nullptr ? flight_dir : "");
  const std::string slow_log = flags.GetString("slow_log");
  if (!slow_log.empty() &&
      !telemetry::Diagnostics::Get().SetSlowQueryLog(
          slow_log, flags.GetDouble("slow_ms"))) {
    std::fprintf(stderr, "slow_log: cannot open %s\n", slow_log.c_str());
    return 1;
  }
  telemetry::MetricsHttpServer metrics_server;
  const int metrics_port = static_cast<int>(flags.GetInt64("metrics_port"));
  if (metrics_port >= 0) {
    const Status ms = metrics_server.Start(metrics_port);
    if (!ms.ok()) {
      std::fprintf(stderr, "metrics: %s\n", ms.ToString().c_str());
      return 1;
    }
    std::printf("serving http://127.0.0.1:%d/{metrics,healthz,statusz,"
                "tracez,flightz}\n",
                metrics_server.port());
  }
  const std::string trace_path = flags.GetString("trace");
  PmuSampler pmu_sampler;
  if (!trace_path.empty()) {
    telemetry::SpanTracer::Get().SetEnabled(true);
    (void)pmu_sampler.Start();
  }

  std::printf("== SSB serving throughput ==\n");
  std::printf("flavor %s, %zu-query mix, %.1fs, threads=%s, plans %s\n",
              flavor_name.c_str(), mix.size(), duration,
              flags.GetString("threads").c_str(),
              cold_plans ? "cold" : "warm");
  std::printf("scale factor %.2f — generating data...\n", sf);
  ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);
  double compression = 0.0;
  if (chunked) {
    ssb::ChunkedFactOptions chunk_options;
    chunk_options.policy = policy;
    Stopwatch encode_sw;
    ssb::EnsureChunked(db, chunk_options);
    const std::size_t encoded = db.chunked->EncodedBytes();
    const std::size_t plain = db.chunked->PlainBytes();
    compression = static_cast<double>(plain) / static_cast<double>(encoded);
    std::printf("encoding %s: %zu chunks x %zu rows, %.1f MiB -> %.1f MiB "
                "(%.2fx) in %.0f ms, pruning %s\n",
                encoding.c_str(), db.chunked->num_chunks(),
                db.chunked->chunk_rows(),
                static_cast<double>(plain) / (1 << 20),
                static_cast<double>(encoded) / (1 << 20), compression,
                encode_sw.ElapsedMillis(), pruning ? "on" : "off");
  }

  // One engine, queried repeatedly — the serving shape. The voila flavor
  // exercises the interpreter comparator on the same runtime.
  std::unique_ptr<SsbEngine> hef_engine;
  std::unique_ptr<VoilaEngine> voila_engine;
  if (flavor_name == "voila") {
    VoilaConfig config;
    config.threads = threads.value();
    config.collect_stats = flags.GetBool("stats");
    voila_engine = std::make_unique<VoilaEngine>(db, config);
  } else {
    // Serving admission: a named flavour the host cannot run is an
    // error, "auto" falls back to the best supported one.
    const auto flavor = ResolveFlavorFlag(flavor_name);
    if (!flavor.ok()) {
      std::fprintf(stderr, "%s\n", flavor.status().ToString().c_str());
      return 1;
    }
    if (flavor_name == "auto" || flavor_name.empty()) {
      flavor_name = FlavorName(flavor.value());
      std::printf("flavor auto -> %s\n", flavor_name.c_str());
    }
    EngineConfig config;
    config.flavor = flavor.value();
    config.threads = threads.value();
    config.collect_stats = flags.GetBool("stats");
    config.chunked_scan = chunked;
    config.scan_pruning = pruning;
    hef_engine = std::make_unique<SsbEngine>(db, config);
  }
  auto run = [&](QueryId id) {
    return hef_engine != nullptr ? hef_engine->Run(id)
                                 : voila_engine->Run(id);
  };
  auto run_ctx = [&](QueryId id, const exec::QueryContext& ctx) {
    return hef_engine != nullptr ? hef_engine->Run(id, ctx)
                                 : voila_engine->Run(id, ctx);
  };
  auto invalidate = [&] {
    if (hef_engine != nullptr) {
      hef_engine->InvalidatePlanCache();
    } else {
      voila_engine->InvalidatePlanCache();
    }
  };

  if (flags.GetBool("verify")) {
    for (const QueryId id : mix) {
      HEF_CHECK_MSG(run(id) == RunReferenceQuery(db, id), "%s mismatch",
                    QueryName(id));
    }
    if (cold_plans) invalidate();
  }
  if (drop_flat) {
    // Verification (reference engine) is done with the flat columns; from
    // here on every fact access decodes from the chunked shadow, so the
    // replay runs against the compressed footprint.
    ssb::DropFlatFact(db);
    std::printf("dropped flat fact columns; resident database %.1f MiB\n",
                static_cast<double>(db.TotalBytes()) / (1 << 20));
  }
  for (int w = 0; w < warmup; ++w) {
    for (const QueryId id : mix) {
      if (cold_plans) invalidate();
      run(id);
    }
  }

  auto& registry = telemetry::MetricsRegistry::Get();
  const std::uint64_t morsels0 =
      registry.counter("exec.morsels_dispatched").value();
  const std::uint64_t steals0 = registry.counter("exec.steals").value();

  const std::string profile_path = flags.GetString("profile");
  if (!profile_path.empty()) {
    // Cover only the measured replay loop, so samples attribute to the
    // engines' spans rather than generation or warmup.
    const Status ps = telemetry::Profiler::Get().Start();
    if (!ps.ok()) {
      std::fprintf(stderr, "profiler: %s\n", ps.ToString().c_str());
      return 1;
    }
  }

  // The replay loop: round-robin over the mix until the clock runs out,
  // one latency sample per successful query execution. Each attempt runs
  // under its own deadline context; transient failures retry with
  // backoff, terminal outcomes are counted and the loop moves on — a
  // serving process does not die because one request did.
  //
  // Latencies land in log-linear histograms (microsecond ticks): one per
  // query for the table rows, plus the process-wide hef.query_latency
  // registry histogram that the Prometheus endpoint and the report's
  // metrics dump (bucket bounds, counts, sum, quantiles) expose.
  std::vector<std::unique_ptr<telemetry::Histogram>> per_query_hist;
  for (std::size_t q = 0; q < mix.size(); ++q) {
    per_query_hist.push_back(std::make_unique<telemetry::Histogram>());
  }
  telemetry::Histogram& latency_hist =
      registry.histogram("hef.query_latency");
  std::vector<std::uint64_t> per_query_timeouts(mix.size(), 0);
  // Chunk-pruning effectiveness, captured from each query's first
  // successful result (the pruning pass runs at plan build, so the
  // scanned/total split is stable across replays).
  std::vector<std::uint64_t> per_query_chunks_scanned(mix.size(), 0);
  std::vector<std::uint64_t> per_query_chunks_total(mix.size(), 0);
  std::uint64_t n_ok = 0;
  std::uint64_t n_cancelled = 0, n_deadline = 0, n_failed = 0,
                n_retries = 0;
  Rng backoff_rng(0x5eedf00dULL);
  const std::uint64_t t_begin = MonotonicNanos();
  const auto t_end = t_begin + static_cast<std::uint64_t>(duration * 1e9);
  std::size_t next = 0;
  while (MonotonicNanos() < t_end) {
    const std::size_t qi = next % mix.size();
    const QueryId id = mix[qi];
    if (cold_plans) invalidate();
    const std::uint64_t q0 = MonotonicNanos();
    int attempt = 0;
    while (true) {
      exec::QueryContext ctx;
      if (deadline_ms > 0) {
        ctx = exec::QueryContext::WithDeadline(deadline_ms * 1e-3);
      }
      const Result<QueryResult> result = run_ctx(id, ctx);
      if (result.ok()) {
        const std::uint64_t micros = (MonotonicNanos() - q0) / 1000;
        per_query_hist[qi]->Observe(micros);
        latency_hist.Observe(micros);
        per_query_chunks_scanned[qi] = result.value().chunks_scanned;
        per_query_chunks_total[qi] = result.value().chunks_total;
        ++n_ok;
        break;
      }
      const StatusCode code = result.status().code();
      if (code == StatusCode::kDeadlineExceeded) {
        ++n_deadline;
        ++per_query_timeouts[qi];
        break;
      }
      if (code == StatusCode::kCancelled) {
        ++n_cancelled;
        break;
      }
      if (!IsRetryable(code) || attempt >= max_retries) {
        ++n_failed;
        if (n_failed <= 5) {
          std::fprintf(stderr, "%s failed: %s\n", QueryName(id),
                       result.status().ToString().c_str());
        }
        break;
      }
      ++attempt;
      ++n_retries;
      BackoffBeforeRetry(attempt, backoff_rng);
    }
    ++next;
  }
  const double elapsed =
      static_cast<double>(MonotonicNanos() - t_begin) * 1e-9;

  std::vector<telemetry::ProfileSample> profile_samples;
  if (!profile_path.empty()) {
    telemetry::Profiler::Get().Stop();
    profile_samples = telemetry::Profiler::Get().TakeSamples();
  }

  const std::uint64_t morsels =
      registry.counter("exec.morsels_dispatched").value() - morsels0;
  const std::uint64_t steals =
      registry.counter("exec.steals").value() - steals0;
  const auto pool_threads =
      static_cast<int>(registry.gauge("exec.pool_threads").value());

  const double qps = static_cast<double>(n_ok) / elapsed;
  const double p50 = HistQuantileMs(latency_hist, 0.50);
  const double p95 = HistQuantileMs(latency_hist, 0.95);
  const double p99 = HistQuantileMs(latency_hist, 0.99);
  const double p999 = HistQuantileMs(latency_hist, 0.999);

  telemetry::BenchReport report("ssb_throughput");
  report.SetConfig("scale_factor", sf);
  report.SetConfig("duration_s", duration);
  report.SetConfig("flavor", flavor_name);
  report.SetConfig("queries", flags.GetString("queries"));
  report.SetConfig("threads", static_cast<std::int64_t>(threads.value()));
  report.SetConfig("resolved_threads", exec::ResolveThreads(threads.value()));
  report.SetConfig("cold_plans", cold_plans);
  report.SetConfig("deadline_ms", deadline_ms);
  report.SetConfig("max_retries", static_cast<std::int64_t>(max_retries));
  report.SetConfig("encoding", encoding);
  report.SetConfig("pruning", pruning);
  if (chunked) {
    report.SetConfig("compression_ratio", compression);
    report.SetConfig("drop_flat", drop_flat);
  }

  TextTable table;
  {
    std::vector<std::string> header = {"query",     "runs",     "timeouts",
                                       "mean (ms)", "p50 (ms)", "p99 (ms)"};
    if (chunked) header.push_back("chunks");
    table.AddRow(header);
  }
  for (std::size_t q = 0; q < mix.size(); ++q) {
    const telemetry::Histogram& hist = *per_query_hist[q];
    const std::uint64_t runs = hist.Count();
    if (runs == 0 && per_query_timeouts[q] == 0) continue;
    const double mean = HistMeanMs(hist);
    const double qp50 = HistQuantileMs(hist, 0.50);
    const double qp99 = HistQuantileMs(hist, 0.99);
    std::vector<std::string> row = {QueryName(mix[q]), std::to_string(runs),
                                    std::to_string(per_query_timeouts[q]),
                                    TextTable::Num(mean, 2),
                                    TextTable::Num(qp50, 2),
                                    TextTable::Num(qp99, 2)};
    if (chunked) {
      row.push_back(std::to_string(per_query_chunks_scanned[q]) + "/" +
                    std::to_string(per_query_chunks_total[q]));
    }
    table.AddRow(row);
    // The encoding/pruning cells make the row identity variant-aware, so
    // a merged multi-variant report diffs cleanly against a merged
    // baseline (and bench_diff --ignore can match across variants).
    auto& result_row = report.AddResult();
    result_row.Set("query", QueryName(mix[q]))
        .Set("encoding", encoding)
        .Set("pruning", pruning ? "on" : "off")
        .Set("runs", runs)
        .Set("timeouts", per_query_timeouts[q])
        .Set("mean_ms", mean)
        .Set("p50_ms", qp50)
        .Set("p99_ms", qp99);
    if (chunked) {
      result_row.Set("chunks_scanned", per_query_chunks_scanned[q])
          .Set("chunks_total", per_query_chunks_total[q]);
    }
  }
  report.AddResult()
      .Set("query", "TOTAL")
      .Set("encoding", encoding)
      .Set("pruning", pruning ? "on" : "off")
      .Set("runs", n_ok)
      .Set("qps", qps)
      .Set("p50_ms", p50)
      .Set("p95_ms", p95)
      .Set("p99_ms", p99)
      .Set("p999_ms", p999)
      .Set("elapsed_s", elapsed)
      .Set("cancelled", n_cancelled)
      .Set("deadline_exceeded", n_deadline)
      .Set("failed", n_failed)
      .Set("retries", n_retries)
      .Set("morsels_dispatched", morsels)
      .Set("steals", steals)
      .Set("pool_threads", pool_threads);

  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("total: %llu ok queries in %.2fs -> %.1f queries/sec\n",
              static_cast<unsigned long long>(n_ok), elapsed, qps);
  std::printf("outcomes: %llu cancelled, %llu deadline_exceeded, "
              "%llu failed, %llu retries\n",
              static_cast<unsigned long long>(n_cancelled),
              static_cast<unsigned long long>(n_deadline),
              static_cast<unsigned long long>(n_failed),
              static_cast<unsigned long long>(n_retries));
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
              "p999 %.2f ms\n",
              p50, p95, p99, p999);
  std::printf("scheduler: %llu morsels dispatched, %llu steals, %d pool "
              "threads\n",
              static_cast<unsigned long long>(morsels),
              static_cast<unsigned long long>(steals), pool_threads);
  if (chunked) {
    std::uint64_t scanned = 0, total = 0;
    for (std::size_t q = 0; q < mix.size(); ++q) {
      scanned += per_query_chunks_scanned[q];
      total += per_query_chunks_total[q];
    }
    std::printf("storage: %s encoding %.2fx, pruning %s — %llu/%llu "
                "chunks scanned per mix pass (%.0f%% pruned)\n",
                encoding.c_str(), compression, pruning ? "on" : "off",
                static_cast<unsigned long long>(scanned),
                static_cast<unsigned long long>(total),
                total == 0 ? 0.0
                           : 100.0 * static_cast<double>(total - scanned) /
                                 static_cast<double>(total));
  }

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  if (!profile_path.empty()) {
    const Status fs = telemetry::Profiler::WriteFoldedFile(profile_path,
                                                           profile_samples);
    if (!fs.ok()) {
      std::fprintf(stderr, "profiler: %s\n", fs.ToString().c_str());
      return 1;
    }
    std::printf("profile (%s):\n%s", profile_path.c_str(),
                telemetry::Profiler::SelfTimeTable(
                    profile_samples,
                    telemetry::Profiler::Get().period_nanos())
                    .c_str());
  }
  if (!trace_path.empty()) {
    pmu_sampler.Stop();
    const Status ts = telemetry::SpanTracer::Get().WriteTraceFile(trace_path);
    if (!ts.ok()) {
      std::fprintf(stderr, "trace: %s\n", ts.ToString().c_str());
      return 1;
    }
    std::printf("wrote trace to %s (open in chrome://tracing)\n",
                trace_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
