// Serving-throughput harness: replays an SSB query mix round-robin for a
// fixed wall-clock duration and reports queries/sec plus latency
// percentiles — the workload the execution runtime (persistent TaskPool,
// work-stealing morsel scheduler, plan cache) exists for.
//
//   ssb_throughput --sf=1 --duration=10                  # warm plan cache
//   ssb_throughput --sf=1 --duration=10 --cold_plans     # rebuild per run
//   ssb_throughput --flavor=voila --threads=4 --json=out.json
//   ssb_throughput --deadline_ms=5 --max_retries=2       # serving limits
//
// --cold_plans invalidates the plan cache before every query, reproducing
// the pre-runtime behaviour (every Run rebuilds dimension hash tables and
// Bloom filters); the warm/cold qps ratio is the plan cache's payoff.
// Scheduler counters (exec.morsels_dispatched, exec.steals, ...) land in
// the --json report's metrics dump.
//
// The replay loop exercises the serving contract: every query runs
// through the fallible Run overload under an optional per-query deadline
// (--deadline_ms), deadline-exceeded / cancelled / failed outcomes are
// counted per query and in total, and retryable failures (Internal,
// IoError — not deadline or cancellation) are retried up to --max_retries
// times with jittered exponential backoff. --flavor=auto picks the best
// flavour the host admits.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/macros.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "telemetry/bench_report.h"
#include "telemetry/metrics.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

std::vector<QueryId> ParseMix(const std::string& text) {
  if (text == "all") return AllQueries();
  if (text == "figures") return PaperFigureQueries();
  std::vector<QueryId> mix;
  std::string item;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ',') {
      item += text[i];
      continue;
    }
    const auto id = ParseQueryId(item);
    HEF_CHECK_MSG(id.ok(), "bad query '%s' in --queries", item.c_str());
    mix.push_back(id.value());
    item.clear();
  }
  return mix;
}

// Exact percentile over the sorted sample vector (nearest-rank).
double PercentileMs(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

// Only transient failures are worth retrying; a deadline or cancellation
// would just expire again, and InvalidArgument/Unsupported are
// deterministic.
bool IsRetryable(StatusCode code) {
  return code == StatusCode::kInternal || code == StatusCode::kIoError;
}

// Jittered exponential backoff before retry `attempt` (1-based): capped
// doubling scaled by U[0.5, 1.5) so a burst of failing replicas does not
// retry in lockstep.
void BackoffBeforeRetry(int attempt, Rng& rng) {
  const int exp = std::min(attempt - 1, 6);
  const double base_ms = 1.0 * static_cast<double>(1 << exp);
  const double jitter = 0.5 + rng.NextDouble();
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(base_ms * jitter));
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddDouble("duration", 10.0, "measurement seconds");
  flags.AddInt64("warmup", 1, "untimed passes over the mix before timing");
  flags.AddString("flavor", "hybrid",
                  "scalar | simd | hybrid | voila | auto (best supported)");
  flags.AddDouble("deadline_ms", 0.0,
                  "per-query deadline in milliseconds (0 = none); "
                  "queries exceeding it stop cooperatively and count as "
                  "deadline_exceeded");
  flags.AddInt64("max_retries", 0,
                 "retries per query for transient failures (Internal / "
                 "IoError), with jittered exponential backoff");
  flags.AddString("queries", "all",
                  "query mix: all | figures | comma-separated ids");
  flags.AddString("threads", "auto",
                  "worker threads: auto (one per hardware thread) or a "
                  "count");
  flags.AddBool("cold_plans", false,
                "invalidate the plan cache before every query (the "
                "pre-runtime rebuild-per-Run baseline)");
  flags.AddBool("verify", true,
                "cross-check one pass of the mix against the reference");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const double sf = flags.GetDouble("sf");
  const double duration = flags.GetDouble("duration");
  const auto warmup = static_cast<int>(flags.GetInt64("warmup"));
  const bool cold_plans = flags.GetBool("cold_plans");
  const double deadline_ms = flags.GetDouble("deadline_ms");
  const auto max_retries = static_cast<int>(flags.GetInt64("max_retries"));
  std::string flavor_name = flags.GetString("flavor");
  const std::vector<QueryId> mix = ParseMix(flags.GetString("queries"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }
  HEF_CHECK_MSG(!mix.empty(), "empty query mix");

  std::printf("== SSB serving throughput ==\n");
  std::printf("flavor %s, %zu-query mix, %.1fs, threads=%s, plans %s\n",
              flavor_name.c_str(), mix.size(), duration,
              flags.GetString("threads").c_str(),
              cold_plans ? "cold" : "warm");
  std::printf("scale factor %.2f — generating data...\n", sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);

  // One engine, queried repeatedly — the serving shape. The voila flavor
  // exercises the interpreter comparator on the same runtime.
  std::unique_ptr<SsbEngine> hef_engine;
  std::unique_ptr<VoilaEngine> voila_engine;
  if (flavor_name == "voila") {
    VoilaConfig config;
    config.threads = threads.value();
    voila_engine = std::make_unique<VoilaEngine>(db, config);
  } else {
    // Serving admission: a named flavour the host cannot run is an
    // error, "auto" falls back to the best supported one.
    const auto flavor = ResolveFlavorFlag(flavor_name);
    if (!flavor.ok()) {
      std::fprintf(stderr, "%s\n", flavor.status().ToString().c_str());
      return 1;
    }
    if (flavor_name == "auto" || flavor_name.empty()) {
      flavor_name = FlavorName(flavor.value());
      std::printf("flavor auto -> %s\n", flavor_name.c_str());
    }
    EngineConfig config;
    config.flavor = flavor.value();
    config.threads = threads.value();
    hef_engine = std::make_unique<SsbEngine>(db, config);
  }
  auto run = [&](QueryId id) {
    return hef_engine != nullptr ? hef_engine->Run(id)
                                 : voila_engine->Run(id);
  };
  auto run_ctx = [&](QueryId id, const exec::QueryContext& ctx) {
    return hef_engine != nullptr ? hef_engine->Run(id, ctx)
                                 : voila_engine->Run(id, ctx);
  };
  auto invalidate = [&] {
    if (hef_engine != nullptr) {
      hef_engine->InvalidatePlanCache();
    } else {
      voila_engine->InvalidatePlanCache();
    }
  };

  if (flags.GetBool("verify")) {
    for (const QueryId id : mix) {
      HEF_CHECK_MSG(run(id) == RunReferenceQuery(db, id), "%s mismatch",
                    QueryName(id));
    }
    if (cold_plans) invalidate();
  }
  for (int w = 0; w < warmup; ++w) {
    for (const QueryId id : mix) {
      if (cold_plans) invalidate();
      run(id);
    }
  }

  auto& registry = telemetry::MetricsRegistry::Get();
  const std::uint64_t morsels0 =
      registry.counter("exec.morsels_dispatched").value();
  const std::uint64_t steals0 = registry.counter("exec.steals").value();

  // The replay loop: round-robin over the mix until the clock runs out,
  // one latency sample per successful query execution. Each attempt runs
  // under its own deadline context; transient failures retry with
  // backoff, terminal outcomes are counted and the loop moves on — a
  // serving process does not die because one request did.
  std::vector<std::vector<double>> per_query_ms(mix.size());
  std::vector<std::uint64_t> per_query_timeouts(mix.size(), 0);
  std::vector<double> all_ms;
  std::uint64_t n_cancelled = 0, n_deadline = 0, n_failed = 0,
                n_retries = 0;
  Rng backoff_rng(0x5eedf00dULL);
  const std::uint64_t t_begin = MonotonicNanos();
  const auto t_end = t_begin + static_cast<std::uint64_t>(duration * 1e9);
  std::size_t next = 0;
  while (MonotonicNanos() < t_end) {
    const std::size_t qi = next % mix.size();
    const QueryId id = mix[qi];
    if (cold_plans) invalidate();
    const std::uint64_t q0 = MonotonicNanos();
    int attempt = 0;
    while (true) {
      exec::QueryContext ctx;
      if (deadline_ms > 0) {
        ctx = exec::QueryContext::WithDeadline(deadline_ms * 1e-3);
      }
      const Result<QueryResult> result = run_ctx(id, ctx);
      if (result.ok()) {
        const double ms =
            static_cast<double>(MonotonicNanos() - q0) * 1e-6;
        per_query_ms[qi].push_back(ms);
        all_ms.push_back(ms);
        break;
      }
      const StatusCode code = result.status().code();
      if (code == StatusCode::kDeadlineExceeded) {
        ++n_deadline;
        ++per_query_timeouts[qi];
        break;
      }
      if (code == StatusCode::kCancelled) {
        ++n_cancelled;
        break;
      }
      if (!IsRetryable(code) || attempt >= max_retries) {
        ++n_failed;
        if (n_failed <= 5) {
          std::fprintf(stderr, "%s failed: %s\n", QueryName(id),
                       result.status().ToString().c_str());
        }
        break;
      }
      ++attempt;
      ++n_retries;
      BackoffBeforeRetry(attempt, backoff_rng);
    }
    ++next;
  }
  const double elapsed =
      static_cast<double>(MonotonicNanos() - t_begin) * 1e-9;

  const std::uint64_t morsels =
      registry.counter("exec.morsels_dispatched").value() - morsels0;
  const std::uint64_t steals =
      registry.counter("exec.steals").value() - steals0;
  const auto pool_threads =
      static_cast<int>(registry.gauge("exec.pool_threads").value());

  std::sort(all_ms.begin(), all_ms.end());
  const double qps = static_cast<double>(all_ms.size()) / elapsed;
  const double p50 = PercentileMs(all_ms, 50);
  const double p95 = PercentileMs(all_ms, 95);
  const double p99 = PercentileMs(all_ms, 99);

  telemetry::BenchReport report("ssb_throughput");
  report.SetConfig("scale_factor", sf);
  report.SetConfig("duration_s", duration);
  report.SetConfig("flavor", flavor_name);
  report.SetConfig("queries", flags.GetString("queries"));
  report.SetConfig("threads", static_cast<std::int64_t>(threads.value()));
  report.SetConfig("resolved_threads", exec::ResolveThreads(threads.value()));
  report.SetConfig("cold_plans", cold_plans);
  report.SetConfig("deadline_ms", deadline_ms);
  report.SetConfig("max_retries", static_cast<std::int64_t>(max_retries));

  TextTable table;
  table.AddRow(
      {"query", "runs", "timeouts", "mean (ms)", "p50 (ms)", "p99 (ms)"});
  for (std::size_t q = 0; q < mix.size(); ++q) {
    auto& samples = per_query_ms[q];
    if (samples.empty() && per_query_timeouts[q] == 0) continue;
    double sum = 0;
    for (const double v : samples) sum += v;
    const double mean =
        samples.empty() ? 0
                        : sum / static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    const double qp50 = PercentileMs(samples, 50);
    const double qp99 = PercentileMs(samples, 99);
    table.AddRow({QueryName(mix[q]), std::to_string(samples.size()),
                  std::to_string(per_query_timeouts[q]),
                  TextTable::Num(mean, 2), TextTable::Num(qp50, 2),
                  TextTable::Num(qp99, 2)});
    report.AddResult()
        .Set("query", QueryName(mix[q]))
        .Set("runs", static_cast<std::uint64_t>(samples.size()))
        .Set("timeouts", per_query_timeouts[q])
        .Set("mean_ms", mean)
        .Set("p50_ms", qp50)
        .Set("p99_ms", qp99);
  }
  report.AddResult()
      .Set("query", "TOTAL")
      .Set("runs", static_cast<std::uint64_t>(all_ms.size()))
      .Set("qps", qps)
      .Set("p50_ms", p50)
      .Set("p95_ms", p95)
      .Set("p99_ms", p99)
      .Set("elapsed_s", elapsed)
      .Set("cancelled", n_cancelled)
      .Set("deadline_exceeded", n_deadline)
      .Set("failed", n_failed)
      .Set("retries", n_retries)
      .Set("morsels_dispatched", morsels)
      .Set("steals", steals)
      .Set("pool_threads", pool_threads);

  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("total: %zu ok queries in %.2fs -> %.1f queries/sec\n",
              all_ms.size(), elapsed, qps);
  std::printf("outcomes: %llu cancelled, %llu deadline_exceeded, "
              "%llu failed, %llu retries\n",
              static_cast<unsigned long long>(n_cancelled),
              static_cast<unsigned long long>(n_deadline),
              static_cast<unsigned long long>(n_failed),
              static_cast<unsigned long long>(n_retries));
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n", p50, p95,
              p99);
  std::printf("scheduler: %llu morsels dispatched, %llu steals, %d pool "
              "threads\n",
              static_cast<unsigned long long>(morsels),
              static_cast<unsigned long long>(steals), pool_threads);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
