// Serving-throughput harness: replays an SSB query mix round-robin for a
// fixed wall-clock duration and reports queries/sec plus latency
// percentiles — the workload the execution runtime (persistent TaskPool,
// work-stealing morsel scheduler, plan cache) exists for.
//
//   ssb_throughput --sf=1 --duration=10                  # warm plan cache
//   ssb_throughput --sf=1 --duration=10 --cold_plans     # rebuild per run
//   ssb_throughput --flavor=voila --threads=4 --json=out.json
//
// --cold_plans invalidates the plan cache before every query, reproducing
// the pre-runtime behaviour (every Run rebuilds dimension hash tables and
// Bloom filters); the warm/cold qps ratio is the plan cache's payoff.
// Scheduler counters (exec.morsels_dispatched, exec.steals, ...) land in
// the --json report's metrics dump.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "telemetry/bench_report.h"
#include "telemetry/metrics.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

std::vector<QueryId> ParseMix(const std::string& text) {
  if (text == "all") return AllQueries();
  if (text == "figures") return PaperFigureQueries();
  std::vector<QueryId> mix;
  std::string item;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i < text.size() && text[i] != ',') {
      item += text[i];
      continue;
    }
    const auto id = ParseQueryId(item);
    HEF_CHECK_MSG(id.ok(), "bad query '%s' in --queries", item.c_str());
    mix.push_back(id.value());
    item.clear();
  }
  return mix;
}

// Exact percentile over the sorted sample vector (nearest-rank).
double PercentileMs(const std::vector<double>& sorted_ms, double p) {
  if (sorted_ms.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      p / 100.0 * static_cast<double>(sorted_ms.size() - 1) + 0.5);
  return sorted_ms[std::min(rank, sorted_ms.size() - 1)];
}

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddDouble("duration", 10.0, "measurement seconds");
  flags.AddInt64("warmup", 1, "untimed passes over the mix before timing");
  flags.AddString("flavor", "hybrid", "scalar | simd | hybrid | voila");
  flags.AddString("queries", "all",
                  "query mix: all | figures | comma-separated ids");
  flags.AddString("threads", "auto",
                  "worker threads: auto (one per hardware thread) or a "
                  "count");
  flags.AddBool("cold_plans", false,
                "invalidate the plan cache before every query (the "
                "pre-runtime rebuild-per-Run baseline)");
  flags.AddBool("verify", true,
                "cross-check one pass of the mix against the reference");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const double sf = flags.GetDouble("sf");
  const double duration = flags.GetDouble("duration");
  const auto warmup = static_cast<int>(flags.GetInt64("warmup"));
  const bool cold_plans = flags.GetBool("cold_plans");
  const std::string flavor_name = flags.GetString("flavor");
  const std::vector<QueryId> mix = ParseMix(flags.GetString("queries"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }
  HEF_CHECK_MSG(!mix.empty(), "empty query mix");

  std::printf("== SSB serving throughput ==\n");
  std::printf("flavor %s, %zu-query mix, %.1fs, threads=%s, plans %s\n",
              flavor_name.c_str(), mix.size(), duration,
              flags.GetString("threads").c_str(),
              cold_plans ? "cold" : "warm");
  std::printf("scale factor %.2f — generating data...\n", sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);

  // One engine, queried repeatedly — the serving shape. The voila flavor
  // exercises the interpreter comparator on the same runtime.
  std::unique_ptr<SsbEngine> hef_engine;
  std::unique_ptr<VoilaEngine> voila_engine;
  if (flavor_name == "voila") {
    VoilaConfig config;
    config.threads = threads.value();
    voila_engine = std::make_unique<VoilaEngine>(db, config);
  } else {
    const auto flavor = FlavorByName(flavor_name);
    if (!flavor.ok()) {
      std::fprintf(stderr, "%s\n", flavor.status().ToString().c_str());
      return 1;
    }
    EngineConfig config;
    config.flavor = flavor.value();
    config.threads = threads.value();
    hef_engine = std::make_unique<SsbEngine>(db, config);
  }
  auto run = [&](QueryId id) {
    return hef_engine != nullptr ? hef_engine->Run(id)
                                 : voila_engine->Run(id);
  };
  auto invalidate = [&] {
    if (hef_engine != nullptr) {
      hef_engine->InvalidatePlanCache();
    } else {
      voila_engine->InvalidatePlanCache();
    }
  };

  if (flags.GetBool("verify")) {
    for (const QueryId id : mix) {
      HEF_CHECK_MSG(run(id) == RunReferenceQuery(db, id), "%s mismatch",
                    QueryName(id));
    }
    if (cold_plans) invalidate();
  }
  for (int w = 0; w < warmup; ++w) {
    for (const QueryId id : mix) {
      if (cold_plans) invalidate();
      run(id);
    }
  }

  auto& registry = telemetry::MetricsRegistry::Get();
  const std::uint64_t morsels0 =
      registry.counter("exec.morsels_dispatched").value();
  const std::uint64_t steals0 = registry.counter("exec.steals").value();

  // The replay loop: round-robin over the mix until the clock runs out,
  // one latency sample per query execution.
  std::vector<std::vector<double>> per_query_ms(mix.size());
  std::vector<double> all_ms;
  const std::uint64_t t_begin = MonotonicNanos();
  const auto deadline =
      t_begin + static_cast<std::uint64_t>(duration * 1e9);
  std::size_t next = 0;
  while (MonotonicNanos() < deadline) {
    const QueryId id = mix[next % mix.size()];
    if (cold_plans) invalidate();
    const std::uint64_t q0 = MonotonicNanos();
    run(id);
    const double ms = static_cast<double>(MonotonicNanos() - q0) * 1e-6;
    per_query_ms[next % mix.size()].push_back(ms);
    all_ms.push_back(ms);
    ++next;
  }
  const double elapsed =
      static_cast<double>(MonotonicNanos() - t_begin) * 1e-9;

  const std::uint64_t morsels =
      registry.counter("exec.morsels_dispatched").value() - morsels0;
  const std::uint64_t steals =
      registry.counter("exec.steals").value() - steals0;
  const auto pool_threads =
      static_cast<int>(registry.gauge("exec.pool_threads").value());

  std::sort(all_ms.begin(), all_ms.end());
  const double qps = static_cast<double>(all_ms.size()) / elapsed;
  const double p50 = PercentileMs(all_ms, 50);
  const double p95 = PercentileMs(all_ms, 95);
  const double p99 = PercentileMs(all_ms, 99);

  telemetry::BenchReport report("ssb_throughput");
  report.SetConfig("scale_factor", sf);
  report.SetConfig("duration_s", duration);
  report.SetConfig("flavor", flavor_name);
  report.SetConfig("queries", flags.GetString("queries"));
  report.SetConfig("threads", static_cast<std::int64_t>(threads.value()));
  report.SetConfig("resolved_threads", exec::ResolveThreads(threads.value()));
  report.SetConfig("cold_plans", cold_plans);

  TextTable table;
  table.AddRow({"query", "runs", "mean (ms)", "p50 (ms)", "p99 (ms)"});
  for (std::size_t q = 0; q < mix.size(); ++q) {
    auto& samples = per_query_ms[q];
    if (samples.empty()) continue;
    double sum = 0;
    for (const double v : samples) sum += v;
    const double mean = sum / static_cast<double>(samples.size());
    std::sort(samples.begin(), samples.end());
    const double qp50 = PercentileMs(samples, 50);
    const double qp99 = PercentileMs(samples, 99);
    table.AddRow({QueryName(mix[q]),
                  std::to_string(samples.size()),
                  TextTable::Num(mean, 2), TextTable::Num(qp50, 2),
                  TextTable::Num(qp99, 2)});
    report.AddResult()
        .Set("query", QueryName(mix[q]))
        .Set("runs", static_cast<std::uint64_t>(samples.size()))
        .Set("mean_ms", mean)
        .Set("p50_ms", qp50)
        .Set("p99_ms", qp99);
  }
  report.AddResult()
      .Set("query", "TOTAL")
      .Set("runs", static_cast<std::uint64_t>(all_ms.size()))
      .Set("qps", qps)
      .Set("p50_ms", p50)
      .Set("p95_ms", p95)
      .Set("p99_ms", p99)
      .Set("elapsed_s", elapsed)
      .Set("morsels_dispatched", morsels)
      .Set("steals", steals)
      .Set("pool_threads", pool_threads);

  std::printf("\n%s\n", table.ToString().c_str());
  std::printf("total: %zu queries in %.2fs -> %.1f queries/sec\n",
              all_ms.size(), elapsed, qps);
  std::printf("latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n", p50, p95,
              p99);
  std::printf("scheduler: %llu morsels dispatched, %llu steals, %d pool "
              "threads\n",
              static_cast<unsigned long long>(morsels),
              static_cast<unsigned long long>(steals), pool_threads);

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
