// Reproduces the search-cost analysis (§II-C Eq. 1/2, §IV-A/IV-C): the
// size of the full (v, s, p) implementation space versus the nodes the
// pruning optimizer actually generates and tests, for each built-in
// operator, plus the candidate-generator seeds for each processor model.
//
// The paper's claim: the test-based approach with the two-stage initial
// candidate and pruning finds the optimum while testing a small fraction
// of the O(v*s*p) space.

#include <cstdio>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "algo/reduce.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "engine/primitives.h"
#include "table/bloom_filter.h"
#include "table/probe.h"
#include "telemetry/bench_report.h"
#include "tuner/candidate_generator.h"
#include "tuner/kernel_tuners.h"
#include "tuner/search_space.h"
#include "tuner/tune_trace.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("elements", 1 << 15, "elements per tuning measurement");
  flags.AddInt64("repetitions", 5, "repetitions per tuning measurement");
  flags.AddString("json", "",
                  "write a hef-bench-v1 JSON report to this path");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  std::printf("== tuner search-cost harness (paper Eq. 1/2, Alg. 2) ==\n\n");

  // Candidate-generator seeds (the paper's two-stage model) per testbed.
  TextTable seeds;
  seeds.AddRow({"Operator", "silver4110 seed", "gold6240r seed"});
  struct Op {
    const char* name;
    std::vector<OpClass> ops;
  };
  for (const Op& op : {Op{"murmur", MurmurKernel::Ops()},
                       Op{"crc64", Crc64Kernel::Ops()},
                       Op{"probe", ProbeKernel::Ops()},
                       Op{"gather", GatherKernelOps()}}) {
    seeds.AddRow(
        {op.name,
         GenerateInitialCandidate(ProcessorModel::Silver4110(),
                                  {op.ops, Isa::kAvx512})
             .ToString(),
         GenerateInitialCandidate(ProcessorModel::Gold6240R(),
                                  {op.ops, Isa::kAvx512})
             .ToString()});
  }
  std::printf("Candidate-generator initial nodes (two-stage model):\n%s\n",
              seeds.ToString().c_str());

  // Pruning-search cost vs the full space, on the host.
  KernelTuneOptions topt;
  topt.elements = static_cast<std::size_t>(flags.GetInt64("elements"));
  topt.repetitions = static_cast<int>(flags.GetInt64("repetitions"));

  TextTable table;
  table.AddRow({"Operator", "grid size", "Eq.2 space", "nodes tested",
                "tested (%)", "optimum", "best (ms/1M elems)"});
  struct Tuned {
    const char* name;
    TuneResult result;
    std::size_t grid;
    std::uint64_t eq2;
  };
  const std::vector<Tuned> rows = {
      {"murmur", TuneMurmur(topt), MurmurSupportedConfigs().size(),
       SearchSpaceSize(2, 4, 4)},
      {"crc64", TuneCrc64(topt), Crc64SupportedConfigs().size(),
       SearchSpaceSize(8, 3, 3)},
      {"probe", TuneProbe(topt), ProbeSupportedConfigs().size(),
       SearchSpaceSize(2, 4, 3)},
      {"gather", TuneGather(topt), GatherSupportedConfigs().size(),
       SearchSpaceSize(2, 4, 3)},
      {"bloom", TuneBloomProbe(topt), BloomProbeSupportedConfigs().size(),
       SearchSpaceSize(4, 4, 3)},
      {"sum", TuneSumReduce(topt), ReduceSupportedConfigs().size(),
       SearchSpaceSize(2, 4, 4)},
  };
  telemetry::BenchReport report("tuner_search");
  report.SetConfig("elements",
                   static_cast<std::int64_t>(topt.elements));
  report.SetConfig("repetitions", topt.repetitions);
  for (const Tuned& row : rows) {
    const double pct = 100.0 * row.result.nodes_tested /
                       static_cast<double>(row.grid);
    const double ms_per_m =
        row.result.best_time * 1e3 / (static_cast<double>(topt.elements) / 1e6);
    table.AddRow({row.name, std::to_string(row.grid),
                  std::to_string(row.eq2),
                  std::to_string(row.result.nodes_tested),
                  TextTable::Num(pct, 0) + "%",
                  row.result.best.ToString(),
                  TextTable::Num(ms_per_m, 3)});
    report.AddResult()
        .Set("operator", row.name)
        .Set("grid_size", static_cast<std::uint64_t>(row.grid))
        .Set("eq2_space", row.eq2)
        .Set("nodes_tested", static_cast<std::int64_t>(row.result.nodes_tested))
        .Set("nodes_pruned", static_cast<std::int64_t>(row.result.nodes_pruned))
        .Set("tested_pct", pct)
        .Set("optimum", row.result.best.ToString())
        .Set("ms_per_million", ms_per_m);
    // The full winner/loser expansion tree of Algorithm 2, per operator.
    report.AddSection(std::string(row.name) + "_tune_trace",
                      TuneTraceToJson(row.result));
  }
  std::printf("Pruning search vs exhaustive (host measurements):\n%s\n",
              table.ToString().c_str());
  std::printf(
      "Paper shape: nodes tested is a small fraction of the space, and the "
      "optimum is a genuine hybrid/packed point for compute- and "
      "gather-bound operators.\n");

  const std::string json_path = flags.GetString("json");
  if (!json_path.empty()) {
    report.IncludeMetrics();
    const Status ws = report.WriteFile(json_path);
    if (!ws.ok()) {
      std::fprintf(stderr, "%s\n", ws.ToString().c_str());
      return 1;
    }
    std::printf("wrote JSON report to %s\n", json_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
