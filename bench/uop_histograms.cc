// Reproduces Figures 11 / 12 / 13 / 14: the fraction of cycles in which at
// least N micro-operations executed, for the scalar / SIMD / hybrid
// implementations of MurmurHash (Figs. 11/12) and CRC64 (Figs. 13/14) on
// the Silver-4110 and Gold-6240R processor models.
//
// The paper collects these from PMU µop-threshold events; VM hosts rarely
// expose them, so this harness replays the kernels' micro-op streams
// through the issue-port simulator (src/portmodel), which reproduces the
// mechanism the figures illustrate (see DESIGN.md §5).
//
//   uop_histograms --kernel=murmur --model=silver4110   # Fig. 11
//   uop_histograms --kernel=murmur --model=gold6240r    # Fig. 12
//   uop_histograms --kernel=crc64  --model=silver4110   # Fig. 13
//   uop_histograms --kernel=crc64  --model=gold6240r    # Fig. 14

#include <cstdio>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/text_table.h"
#include "perf/uops_counters.h"
#include "portmodel/port_model.h"
#include "tuner/kernel_tuners.h"

namespace hef {
namespace {

int RunOne(const std::string& kernel, const std::string& model_name,
           const std::string& hybrid_text);

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("kernel", "all", "murmur | crc64 | all");
  flags.AddString("model", "all", "silver4110 | gold6240r | host | all");
  flags.AddString("hybrid", "",
                  "hybrid coordinates (defaults: murmur v1s3p2, crc64 "
                  "v8s0p1 — the paper's optima)");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }

  const std::vector<std::string> kernels =
      flags.GetString("kernel") == "all"
          ? std::vector<std::string>{"murmur", "crc64"}
          : std::vector<std::string>{flags.GetString("kernel")};
  const std::vector<std::string> models =
      flags.GetString("model") == "all"
          ? std::vector<std::string>{"silver4110", "gold6240r"}
          : std::vector<std::string>{flags.GetString("model")};
  int rc = 0;
  for (const std::string& k : kernels) {
    for (const std::string& m : models) {
      rc |= RunOne(k, m, flags.GetString("hybrid"));
    }
  }
  return rc;
}

int RunOne(const std::string& kernel, const std::string& model_name,
           const std::string& hybrid_text) {
  std::vector<OpClass> ops;
  HybridConfig hybrid;
  if (kernel == "murmur") {
    ops = MurmurKernel::Ops();
    hybrid = {1, 3, 2};
  } else if (kernel == "crc64") {
    ops = Crc64Kernel::Ops();
    hybrid = {8, 0, 1};
  } else {
    std::fprintf(stderr, "unknown kernel '%s'\n", kernel.c_str());
    return 1;
  }
  if (!hybrid_text.empty()) {
    auto parsed = HybridConfig::Parse(hybrid_text);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    hybrid = parsed.value();
  }

  const auto model_r = ProcessorModel::ByName(model_name);
  if (!model_r.ok()) {
    std::fprintf(stderr, "%s\n", model_r.status().ToString().c_str());
    return 1;
  }
  const ProcessorModel model = model_r.value();
  const PortModel pm(model);

  std::printf("== micro-op parallelism histogram (paper Figs. 11-14) ==\n");
  std::printf("kernel %s on model %s; hybrid point %s\n\n", kernel.c_str(),
              model.name.c_str(), hybrid.ToString().c_str());
  std::printf("port topology:\n%s\n", pm.DescribePorts().c_str());

  TextTable table;
  table.AddRow({"Implementation", "GE1 (%)", "GE2 (%)", "GE3 (%)",
                "GE4 (%)", "uops/cycle", "cycles/elem"});
  struct Row {
    const char* name;
    HybridConfig cfg;
  };
  for (const Row& row : {Row{"Scalar", HybridConfig::PureScalar()},
                         Row{"SIMD", HybridConfig::PureSimd()},
                         Row{"Hybrid", hybrid}}) {
    const auto r =
        pm.Simulate(KernelTrace::Build(ops, row.cfg, Isa::kAvx512), 64);
    table.AddRow({row.name, TextTable::Num(r.FractionGe(1) * 100, 1),
                  TextTable::Num(r.FractionGe(2) * 100, 1),
                  TextTable::Num(r.FractionGe(3) * 100, 1),
                  TextTable::Num(r.FractionGe(4) * 100, 1),
                  TextTable::Num(r.UopsPerCycle(), 2),
                  TextTable::Num(r.CyclesPerElement(), 2)});
  }
  std::printf("%s\n", table.ToString().c_str());

  // When the PMU exposes raw UOPS_EXECUTED threshold events (bare-metal
  // Intel), also print measured histograms for the host.
  UopsCounters counters;
  if (counters.available() && model.name == "host") {
    const std::size_t n = 1 << 20;
    AlignedBuffer<std::uint64_t> in(n, 512), out(n, 512);
    Rng rng(77);
    for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();
    auto run = [&](const HybridConfig& cfg) {
      if (kernel == "murmur") {
        MurmurHashArray(cfg, in.data(), out.data(), n);
      } else {
        Crc64Array(cfg, in.data(), out.data(), n);
      }
    };
    TextTable measured;
    measured.AddRow({"Measured (PMU)", "GE1 (%)", "GE2 (%)", "GE3 (%)",
                     "GE4 (%)"});
    for (const Row& row : {Row{"Scalar", HybridConfig::PureScalar()},
                           Row{"SIMD", HybridConfig::PureSimd()},
                           Row{"Hybrid", hybrid}}) {
      run(row.cfg);  // warm-up
      counters.Start();
      run(row.cfg);
      const UopsReading r = counters.Stop();
      measured.AddRow({row.name, TextTable::Num(r.FractionGe(1) * 100, 1),
                       TextTable::Num(r.FractionGe(2) * 100, 1),
                       TextTable::Num(r.FractionGe(3) * 100, 1),
                       TextTable::Num(r.FractionGe(4) * 100, 1)});
    }
    std::printf("%s\n", measured.ToString().c_str());
  } else if (model.name == "host") {
    std::printf("(raw uops PMU events unavailable: %s)\n\n",
                counters.error().c_str());
  }

  std::printf(
      "Paper shape: the hybrid implementation executes >= 2 and >= 3 uops "
      "per cycle in a larger fraction of cycles than the purely SIMD "
      "implementation.\n");
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
