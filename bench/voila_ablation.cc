// Ablation of the Voila comparator's design knobs: vector size, software
// prefetching, and prefetch-group size (the FSM decoupling). The paper
// attributes Voila's behaviour to exactly these traits — prefetching buys
// the low LLC-miss counts (Tables III-V), and the vectorized interpreter's
// materialization costs the extra instructions at low selectivity — so
// this harness checks those attributions hold in the reproduction.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/flags.h"
#include "common/text_table.h"
#include "exec/runtime.h"
#include "ssb/database.h"
#include "voila/voila_engine.h"

namespace hef {
namespace {

int Main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 1.0, "SSB scale factor");
  flags.AddString("query", "2.1", "SSB query");
  flags.AddInt64("repetitions", 3, "measurement repetitions");
  flags.AddString("threads", "1",
                  "worker threads: auto or a count. Defaults to 1 because "
                  "the LLC-miss columns attribute to the measuring thread "
                  "only");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  if (flags.HelpRequested()) {
    flags.PrintUsage(argv[0]);
    return 0;
  }
  const auto query_r = ParseQueryId(flags.GetString("query"));
  if (!query_r.ok()) {
    std::fprintf(stderr, "%s\n", query_r.status().ToString().c_str());
    return 1;
  }
  const QueryId query = query_r.value();
  const int repetitions = static_cast<int>(flags.GetInt64("repetitions"));
  const auto threads = exec::ParseThreadsFlag(flags.GetString("threads"));
  if (!threads.ok()) {
    std::fprintf(stderr, "%s\n", threads.status().ToString().c_str());
    return 1;
  }

  std::printf("== Voila design-knob ablation ==\n");
  const double sf = flags.GetDouble("sf");
  std::printf("query %s at SF %.2f — generating data...\n\n",
              QueryName(query), sf);
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(sf);

  PerfCounters counters;

  // Vector-size sweep (the paper runs vector(1024)).
  {
    TextTable table;
    table.AddRow({"vector size", "time (ms)", "LLC misses (10^6)"});
    for (int vec : {64, 256, 1024, 4096, 16384}) {
      VoilaConfig config;
      config.vector_size = vec;
      config.threads = threads.value();
      config.plan_cache = false;  // cold end-to-end runs
      VoilaEngine engine(db, config);
      const auto m = bench::MeasureBest([&] { engine.Run(query); },
                                        repetitions, &counters);
      table.AddRow({std::to_string(vec), TextTable::Num(m.ms, 1),
                    bench::CountScaled(m.perf, m.perf.llc_misses, 1e6, 2)});
    }
    std::printf("vector-size sweep:\n%s\n", table.ToString().c_str());
  }

  // Prefetch on/off and group-size sweep.
  {
    TextTable table;
    table.AddRow({"prefetch", "group", "time (ms)", "LLC misses (10^6)"});
    VoilaConfig off;
    off.prefetch = false;
    off.threads = threads.value();
    off.plan_cache = false;
    VoilaEngine engine_off(db, off);
    const auto m_off = bench::MeasureBest([&] { engine_off.Run(query); },
                                          repetitions, &counters);
    table.AddRow({"off", "-", TextTable::Num(m_off.ms, 1),
                  bench::CountScaled(m_off.perf, m_off.perf.llc_misses, 1e6,
                                     2)});
    for (int group : {4, 16, 64}) {
      VoilaConfig config;
      config.prefetch_group = group;
      config.threads = threads.value();
      config.plan_cache = false;
      VoilaEngine engine(db, config);
      const auto m = bench::MeasureBest([&] { engine.Run(query); },
                                        repetitions, &counters);
      table.AddRow({"on", std::to_string(group), TextTable::Num(m.ms, 1),
                    bench::CountScaled(m.perf, m.perf.llc_misses, 1e6, 2)});
    }
    std::printf("prefetch sweep:\n%s\n", table.ToString().c_str());
  }
  std::printf(
      "Expected shape: prefetching pays once dimension tables outgrow the "
      "LLC (raise --sf to see the crossover); tiny vectors lose to "
      "interpretation overhead, huge vectors to cache spill.\n");
  return 0;
}

}  // namespace
}  // namespace hef

int main(int argc, char** argv) { return hef::Main(argc, argv); }
