// Translator showcase: prints the concrete code the HEF translator
// generates for the paper's hash-computation template at several (v, s, p)
// coordinates — the Fig. 6(b)/(c) exhibits — and the statement layout the
// pack transformation produces.
//
//   ./build/examples/codegen_offline [--config=v1s3p2] [--isa=avx512]

#include <cstdio>

#include "codegen/description_table.h"
#include "codegen/operator_template.h"
#include "codegen/translator.h"
#include "common/flags.h"

namespace {

using namespace hef;  // NOLINT: example brevity

void Show(const OperatorTemplate& op, const DescriptionTable& table,
          const HybridConfig& cfg, Isa isa, const char* caption) {
  TranslateOptions options;
  options.config = cfg;
  options.vector_isa = isa;
  const auto source = TranslateOperator(op, table, options);
  if (!source.ok()) {
    std::fprintf(stderr, "%s\n", source.status().ToString().c_str());
    return;
  }
  std::printf("---- %s: %s, %s ----\n%s\n", caption,
              cfg.ToString().c_str(), IsaName(isa), source.value().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddString("config", "", "single (v,s,p) to print, e.g. v1s3p2");
  flags.AddString("isa", "avx512", "vector ISA: avx512 | avx2");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.HelpRequested()) {
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return st.ok() ? 0 : 1;
  }
  const Isa isa = flags.GetString("isa") == "avx2" ? Isa::kAvx2
                                                   : Isa::kAvx512;

  const auto op = OperatorTemplate::Parse(BuiltinMurmurTemplate());
  HEF_CHECK(op.ok());
  const DescriptionTable table = DescriptionTable::Builtin();

  std::printf("operator template (Fig. 6(a)):\n%s\n",
              BuiltinMurmurTemplate().c_str());

  if (!flags.GetString("config").empty()) {
    const auto cfg = HybridConfig::Parse(flags.GetString("config"));
    if (!cfg.ok()) {
      std::fprintf(stderr, "%s\n", cfg.status().ToString().c_str());
      return 1;
    }
    Show(op.value(), table, cfg.value(), isa, "requested implementation");
    return 0;
  }

  Show(op.value(), table, HybridConfig{1, 3, 2}, isa,
       "Fig. 6(b): one SIMD + three scalar statements, pack of two");
  Show(op.value(), table, HybridConfig{2, 3, 2}, isa,
       "Fig. 6(c): two SIMD + three scalar statements, pack of two");
  Show(op.value(), table, HybridConfig::PureScalar(), isa,
       "purely scalar baseline");
  return 0;
}
