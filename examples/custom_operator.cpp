// Custom operator end to end through the paper's offline phase: write an
// operator template in the hybrid intermediate description, translate it
// to concrete hybrid implementations (Algorithm 1), compile each with the
// system compiler, and search the (v, s, p) space with the pruning
// optimizer (Algorithm 2) — exactly the Fig. 4 workflow, for an operator
// HEF has never seen.
//
//   ./build/examples/custom_operator

#include <cstdio>
#include <limits>

#include "codegen/offline_driver.h"
#include "codegen/operator_template.h"
#include "codegen/translator.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "tuner/candidate_generator.h"
#include "tuner/optimizer.h"

namespace {

using namespace hef;  // NOLINT: example brevity

// FNV-1a-style folding of a 64-bit value (a new operator, not part of the
// built-in kernel library): h = ((x ^ C1) * C2) ^ (x >> 31), then one more
// mix round.
constexpr char kTemplateText[] =
    "operator fnvmix\n"
    "const c1 = 0xcbf29ce484222325\n"
    "const c2 = 0x100000001b3\n"
    "var x\n"
    "var h\n"
    "var t\n"
    "body:\n"
    "x = hi_load_epi64(IN)\n"
    "h = hi_xor_epi64(x, c1)\n"
    "h = hi_mullo_epi64(h, c2)\n"
    "t = hi_srli_epi64(x, 31)\n"
    "h = hi_xor_epi64(h, t)\n"
    "h = hi_mullo_epi64(h, c2)\n"
    "t = hi_srli_epi64(h, 29)\n"
    "h = hi_xor_epi64(h, t)\n"
    "hi_store_epi64(OUT, h)\n";

std::uint64_t FnvMixReference(std::uint64_t x) {
  std::uint64_t h = (x ^ 0xcbf29ce484222325ULL) * 0x100000001b3ULL;
  h ^= x >> 31;
  h *= 0x100000001b3ULL;
  h ^= h >> 29;
  return h;
}

}  // namespace

int main() {
  std::printf("HEF custom-operator walkthrough (paper Fig. 4 workflow)\n\n");

  // Preprocess: parse the template, load the description tables.
  const auto op = OperatorTemplate::Parse(kTemplateText);
  if (!op.ok()) {
    std::fprintf(stderr, "%s\n", op.status().ToString().c_str());
    return 1;
  }
  const DescriptionTable table = DescriptionTable::Builtin();

  // Front-end: candidate generator seeds the search.
  const std::vector<OpClass> ops = {
      OpClass::kLoad, OpClass::kXor,        OpClass::kMul,
      OpClass::kXor,  OpClass::kShiftRight, OpClass::kMul,
      OpClass::kXor,  OpClass::kShiftRight, OpClass::kStore};
  HybridConfig seed = GenerateInitialCandidate(
      ProcessorModel::Host(), {ops, CpuFeatures::Get().BestIsa()});
  seed.v = std::min(seed.v, 2);
  seed.s = std::min(seed.s, 4);
  seed.p = std::min(seed.p, 4);
  std::printf("candidate generator seed: %s\n\n", seed.ToString().c_str());

  // Workload for the test-based search.
  const std::size_t n = 1 << 18;
  AlignedBuffer<std::uint64_t> in(n, 256), out(n, 256);
  Rng rng(3);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();

  // Optimizer: translate -> compile -> run -> compare, with pruning.
  OfflineDriver driver("/tmp/hef_custom_operator");
  int compiled = 0;
  auto measure = [&](const HybridConfig& cfg) {
    TranslateOptions options;
    options.config = cfg;
    options.vector_isa = CpuFeatures::Get().BestIsa();
    const auto source = TranslateOperator(op.value(), table, options);
    HEF_CHECK(source.ok());
    auto kernel = driver.Compile(source.value(),
                                 "fnvmix_" + cfg.ToString());
    HEF_CHECK_MSG(kernel.ok(), "%s", kernel.status().ToString().c_str());
    ++compiled;
    kernel.value().Run(in.data(), out.data(), n);  // warm-up
    double best = std::numeric_limits<double>::max();
    for (int r = 0; r < 5; ++r) {
      Stopwatch sw;
      kernel.value().Run(in.data(), out.data(), n);
      best = std::min(best, sw.ElapsedSeconds());
    }
    // Validate this implementation before trusting its time.
    for (std::size_t i = 0; i < n; i += 997) {
      HEF_CHECK_MSG(out[i] == FnvMixReference(in[i]),
                    "generated kernel %s is wrong", cfg.ToString().c_str());
    }
    std::printf("  tested %-8s -> %8.3f ms\n", cfg.ToString().c_str(),
                best * 1e3);
    return best;
  };

  TuneOptions options;
  options.is_supported = [](const HybridConfig& cfg) {
    return cfg.valid() && cfg.v <= 2 && cfg.s <= 4 && cfg.p <= 4;
  };
  const TuneResult tuned = Tune(seed, measure, options);

  std::printf("\noptimum: %s (%.3f ms); %d implementations generated, "
              "compiled and tested\n",
              tuned.best.ToString().c_str(), tuned.best_time * 1e3,
              compiled);
  std::printf("(full space at these bounds: 2*4 mixed * 4 packs + pure "
              "nodes = %zu implementations)\n",
              (2 + 1) * (4 + 1) * 4 - 4UL);
  return 0;
}
