// Partitioned probing with radix partitioning: the cache-conscious join
// strategy of the paper's related work ([2] Balkesen et al., [20] Kim et
// al.), built from HEF operators. When a hash table outgrows the cache, a
// direct probe takes a miss per lookup; radix-partitioning the probe keys
// first makes each partition's slice of the table cache-resident.
//
//   ./build/examples/partitioned_join [--table-keys=2097152] [--bits=6]

#include <cstdio>

#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "table/linear_hash_table.h"
#include "table/probe.h"
#include "table/radix_partition.h"

namespace {

using namespace hef;  // NOLINT: example brevity

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddInt64("table-keys", 1 << 21, "keys in the (DRAM-sized) table");
  flags.AddInt64("probes", 1 << 22, "probe keys");
  flags.AddInt64("bits", 6, "radix bits (2^bits partitions)");
  flags.AddInt64("repetitions", 3, "measurement repetitions");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.HelpRequested()) {
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return st.ok() ? 0 : 1;
  }
  const auto table_keys =
      static_cast<std::size_t>(flags.GetInt64("table-keys"));
  const auto n = static_cast<std::size_t>(flags.GetInt64("probes"));
  const int bits = static_cast<int>(flags.GetInt64("bits"));
  const int reps = static_cast<int>(flags.GetInt64("repetitions"));

  std::printf("building a %zu-key table (%.0f MiB of slabs)...\n",
              table_keys, table_keys / 0.25 * 16.0 / (1 << 20));
  LinearHashTable table(table_keys);
  for (std::uint64_t k = 0; k < table_keys; ++k) table.Insert(k * 2 + 1, k);

  AlignedBuffer<std::uint64_t> keys(n, 256), out(n, 256);
  Rng rng(5);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = rng.Uniform(0, table_keys * 2);
  }

  const HybridConfig probe_cfg{1, 1, 3};
  auto best_of = [&](auto&& fn) {
    fn();
    double best = 1e18;
    for (int r = 0; r < reps; ++r) {
      Stopwatch sw;
      fn();
      best = std::min(best, sw.ElapsedSeconds());
    }
    return best * 1e9 / static_cast<double>(n);
  };

  // Strategy 1: direct probe of the full table.
  const double direct_ns = best_of([&] {
    ProbeArray(probe_cfg, table, keys.data(), out.data(), n);
  });

  // Strategy 2: radix-partition the probe keys, then probe partition by
  // partition. The table itself is shared, but each partition's probes
  // touch only 1/2^bits of its slabs, so the working set per phase fits
  // higher in the hierarchy. (A full partitioned join would also
  // partition the build side; the probe side dominates here.)
  AlignedBuffer<std::uint64_t> part_keys(n, 256), scratch(n, 256),
      part_out(n, 256);
  const double partitioned_ns = best_of([&] {
    const RadixPartitions parts =
        RadixPartition(probe_cfg, keys.data(), nullptr, n, bits,
                       scratch.data(), part_keys.data(), nullptr);
    for (std::size_t p = 0; p < parts.NumPartitions(); ++p) {
      const std::size_t begin = parts.offsets[p];
      ProbeArray(probe_cfg, table, part_keys.data() + begin,
                 part_out.data() + begin, parts.PartitionSize(p));
    }
  });

  TextTable t;
  t.AddRow({"strategy", "ns/probe"});
  t.AddRow({"direct probe", TextTable::Num(direct_ns, 2)});
  t.AddRow({"radix-partitioned (" + std::to_string(1 << bits) + " parts)",
            TextTable::Num(partitioned_ns, 2)});
  std::printf("\n%s\n", t.ToString().c_str());
  std::printf(
      "Note: partitioning pays when the table is much larger than the "
      "LLC; at cache-resident sizes the extra pass is pure overhead. "
      "Sweep --table-keys to find the crossover on your machine.\n");

  // Sanity: both strategies see the same hit count.
  std::size_t hits_direct = 0;
  for (std::size_t i = 0; i < n; ++i) hits_direct += out[i] != kMissValue;
  std::size_t hits_part = 0;
  for (std::size_t i = 0; i < n; ++i) {
    hits_part += part_out[i] != kMissValue;
  }
  std::printf("hits: direct %zu, partitioned %zu (%s)\n", hits_direct,
              hits_part, hits_direct == hits_part ? "match" : "MISMATCH");
  return hits_direct == hits_part ? 0 : 1;
}
