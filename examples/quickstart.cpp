// Quickstart: write one kernel against the hybrid intermediate
// description, run it purely scalar / purely SIMD / hybrid, and let the
// tuner find the best (v, s, p) coordinate on this machine.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "hid/hid.h"
#include "hybrid/hybrid_grid.h"
#include "tuner/candidate_generator.h"
#include "tuner/optimizer.h"

namespace {

using namespace hef;  // NOLINT: example brevity

// A kernel is three stages written once against any backend B: the same
// source lowers to scalar statements, AVX2 or AVX-512 (paper Table I).
// This one computes a 64-bit mix: x = (x ^ (x >> 33)) * constant.
struct MixKernel {
  template <typename B>
  struct State {
    typename B::Reg x;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.x = B::LoadU(in);
  }
  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    auto shifted = B::template Srli<33>(st.x);
    st.x = B::Mul(B::Xor(st.x, shifted), B::Set1(0xff51afd7ed558ccdULL));
  }
  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.x);
  }

  static std::vector<OpClass> Ops() {
    return {OpClass::kLoad, OpClass::kShiftRight, OpClass::kXor,
            OpClass::kMul, OpClass::kStore};
  }
};

// Precompiled (v, s, p) grid: v up to 2 SIMD statements, s up to 4 scalar
// statements, packs up to 4.
using MixGrid = HybridGrid<MixKernel, 2, 4, 4>;

}  // namespace

int main() {
  std::printf("HEF quickstart — hybrid SIMD+scalar execution\n\n");
  std::printf("host ISA: %s\n\n", IsaName(CpuFeatures::Get().BestIsa()));

  const std::size_t n = 1 << 20;
  AlignedBuffer<std::uint64_t> in(n, 256), out(n, 256);
  Rng rng(42);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();

  // Step 1: run the canonical coordinates.
  auto time_config = [&](HybridConfig cfg) {
    MixGrid::Run(cfg, MixKernel{}, in.data(), out.data(), n);  // warm-up
    Stopwatch sw;
    MixGrid::Run(cfg, MixKernel{}, in.data(), out.data(), n);
    return sw.ElapsedMillis();
  };
  std::printf("purely scalar  (v0s1p1): %6.2f ms\n",
              time_config(HybridConfig::PureScalar()));
  std::printf("purely SIMD    (v1s0p1): %6.2f ms\n",
              time_config(HybridConfig::PureSimd()));

  // Step 2: seed the search with the two-stage candidate generator
  // (pipeline counts + instruction latency/throughput tables)...
  const HybridConfig seed = GenerateInitialCandidate(
      ProcessorModel::Host(), {MixKernel::Ops(), CpuFeatures::Get().BestIsa()});
  std::printf("\ncandidate generator seed: %s\n", seed.ToString().c_str());

  // ...and let the pruning optimizer find this machine's optimum.
  TuneOptions options;
  options.is_supported = [](const HybridConfig& cfg) {
    return MixGrid::Lookup(cfg) != nullptr;
  };
  HybridConfig start = seed;
  if (MixGrid::Lookup(start) == nullptr) start = HybridConfig{1, 3, 2};
  const TuneResult tuned = Tune(
      start, [&](const HybridConfig& cfg) { return time_config(cfg); },
      options);
  std::printf("tuned optimum:            %s (%.2f ms, %d nodes tested)\n",
              tuned.best.ToString().c_str(), tuned.best_time,
              tuned.nodes_tested);

  // Step 3: correctness is independent of the coordinate.
  std::uint64_t x = in[12345];
  x = (x ^ (x >> 33)) * 0xff51afd7ed558ccdULL;
  MixGrid::Run(tuned.best, MixKernel{}, in.data(), out.data(), n);
  std::printf("\nspot check: out[12345] %s reference\n",
              out[12345] == x ? "==" : "!=");
  return out[12345] == x ? 0 : 1;
}
