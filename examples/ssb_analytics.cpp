// SSB analytics walkthrough: generate a star-schema database, run a
// business query through every engine (scalar / SIMD / hybrid / Voila),
// and print the decoded result — the end-to-end workload the paper's
// Figures 8-10 measure.
//
//   ./build/examples/ssb_analytics [--sf=0.1] [--query=2.1]

#include <cstdio>

#include "common/flags.h"
#include "common/stopwatch.h"
#include "common/text_table.h"
#include "engine/engine.h"
#include "engine/reference.h"
#include "ssb/database.h"
#include "ssb/schema.h"
#include "voila/voila_engine.h"

namespace {

using namespace hef;  // NOLINT: example brevity

// Renders a group key attribute with its dictionary name where the query
// semantics give it one.
std::string DecodeKey(QueryId id, int slot, std::uint64_t key) {
  switch (id) {
    case QueryId::kQ2_1:
    case QueryId::kQ2_2:
    case QueryId::kQ2_3:
      if (slot == 0) return std::to_string(key);
      return slot == 1 ? ssb::BrandName(key) : "";
    case QueryId::kQ3_1:
      return slot < 2 ? ssb::NationName(key) : std::to_string(key);
    case QueryId::kQ3_2:
    case QueryId::kQ3_3:
    case QueryId::kQ3_4:
      return slot < 2 ? ssb::CityName(key) : std::to_string(key);
    case QueryId::kQ4_1:
      if (slot == 0) return std::to_string(key);
      return slot == 1 ? ssb::NationName(key) : "";
    case QueryId::kQ4_2:
      if (slot == 1) return ssb::NationName(key);
      if (slot == 2) return ssb::CategoryName(key);
      return std::to_string(key);
    case QueryId::kQ4_3:
      if (slot == 1) return ssb::CityName(key);
      if (slot == 2) return ssb::BrandName(key);
      return std::to_string(key);
    default:
      return std::to_string(key);
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddDouble("sf", 0.1, "SSB scale factor");
  flags.AddString("query", "2.1", "SSB query to run");
  flags.AddInt64("rows", 10, "result rows to print");
  const Status st = flags.Parse(argc, argv);
  if (!st.ok() || flags.HelpRequested()) {
    if (!st.ok()) std::fprintf(stderr, "%s\n", st.ToString().c_str());
    flags.PrintUsage(argv[0]);
    return st.ok() ? 0 : 1;
  }

  const auto query_r = ParseQueryId(flags.GetString("query"));
  if (!query_r.ok()) {
    std::fprintf(stderr, "%s\n", query_r.status().ToString().c_str());
    return 1;
  }
  const QueryId query = query_r.value();

  std::printf("generating SSB at SF %.2f...\n", flags.GetDouble("sf"));
  const ssb::SsbDatabase db =
      ssb::SsbDatabase::Generate(flags.GetDouble("sf"));
  std::printf("%zu lineorder rows, %.1f MiB resident\n\n", db.lineorder.n,
              static_cast<double>(db.TotalBytes()) / (1 << 20));

  // Run the query through all four engines and time each.
  QueryResult result;
  {
    TextTable timings;
    timings.AddRow({"Engine", "Time (ms)", "Rows", "Qualifying"});
    auto run = [&](const char* name, auto&& engine) {
      Stopwatch sw;
      result = engine.Run(query);
      timings.AddRow({name, TextTable::Num(sw.ElapsedMillis(), 1),
                      std::to_string(result.rows.size()),
                      std::to_string(result.qualifying_rows)});
    };
    EngineConfig scalar_cfg;
    scalar_cfg.flavor = Flavor::kScalar;
    SsbEngine scalar_engine(db, scalar_cfg);
    run("scalar", scalar_engine);

    EngineConfig simd_cfg;
    simd_cfg.flavor = Flavor::kSimd;
    SsbEngine simd_engine(db, simd_cfg);
    run("simd", simd_engine);

    EngineConfig hybrid_cfg;
    hybrid_cfg.flavor = Flavor::kHybrid;
    SsbEngine hybrid_engine(db, hybrid_cfg);
    run("hybrid", hybrid_engine);

    VoilaEngine voila_engine(db);
    run("voila", voila_engine);

    std::printf("%s (%s)\n%s\n", QueryName(query),
                "all engines must agree", timings.ToString().c_str());
  }

  // Cross-check against the row-at-a-time reference.
  const QueryResult reference = RunReferenceQuery(db, query);
  std::printf("result %s the reference executor\n\n",
              result == reference ? "matches" : "DIFFERS FROM");

  // Decoded result rows.
  TextTable out;
  out.AddRow({"Key 1", "Key 2", "Key 3", "Aggregate"});
  const auto limit =
      std::min<std::size_t>(result.rows.size(),
                            static_cast<std::size_t>(flags.GetInt64("rows")));
  for (std::size_t i = 0; i < limit; ++i) {
    const GroupRow& row = result.rows[i];
    out.AddRow({DecodeKey(query, 0, row.keys[0]),
                DecodeKey(query, 1, row.keys[1]),
                DecodeKey(query, 2, row.keys[2]),
                std::to_string(row.value)});
  }
  std::printf("%s", out.ToString().c_str());
  if (result.rows.size() > limit) {
    std::printf("... %zu more rows\n", result.rows.size() - limit);
  }
  return result == reference ? 0 : 1;
}
