#include "algo/crc64.h"

#include <array>

#include "hybrid/hybrid_grid.h"
#include "telemetry/span.h"

namespace hef {

namespace {

std::array<std::uint64_t, 256> BuildCrc64Table() {
  std::array<std::uint64_t, 256> table{};
  for (std::uint64_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ (kCrc64JonesPolyReflected & (~(crc & 1) + 1));
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

const std::uint64_t* Crc64Table() {
  static const std::array<std::uint64_t, 256>* table =
      new std::array<std::uint64_t, 256>(BuildCrc64Table());
  return table->data();
}

std::uint64_t Crc64Bytes(const void* data, std::size_t len,
                         std::uint64_t crc) {
  const std::uint64_t* table = Crc64Table();
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return crc;
}

std::uint64_t Crc64(std::uint64_t value, std::uint64_t crc) {
  const std::uint64_t* table = Crc64Table();
  for (int step = 0; step < 8; ++step) {
    crc = table[(crc ^ value) & 0xff] ^ (crc >> 8);
    value >>= 8;
  }
  return crc;
}

namespace {

// The tuned optimum the paper reports for CRC64 is v8 s0 (pack hiding the
// gather latency), so the grid extends to MaxV = 8; s and p stay modest to
// bound compile time while covering the search paths the tuner takes.
using Crc64Grid = HybridGrid<Crc64Kernel, /*MaxV=*/8, /*MaxS=*/3,
                             /*MaxP=*/3>;

}  // namespace

void Crc64Array(const HybridConfig& cfg, const std::uint64_t* in,
                std::uint64_t* out, std::size_t n) {
  HEF_TRACE_SPAN("algo.crc64_array");
  Crc64Kernel kernel;
  kernel.table = Crc64Table();
  Crc64Grid::Run(cfg, kernel, in, out, n);
}

const std::vector<HybridConfig>& Crc64SupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(Crc64Grid::Supported());
  return *configs;
}

}  // namespace hef
