// CRC64 (Jones polynomial, as used by Redis) in scalar / SIMD / hybrid
// flavours.
//
// The paper's second synthetic benchmark (§V-C, Tables VIII/IX): the
// table-driven CRC update is a chain of L1-resident table lookups, which on
// AVX-512 become vpgatherqq — latency 26 cycles, reciprocal throughput 5.
// A single dependent chain stalls the core for the full latency; packing
// multiple independent chains (the paper's `pack`) drops the interval to
// the throughput, which is why the hybrid/packed implementation wins by
// more than 2x here.

#ifndef HEF_ALGO_CRC64_H_
#define HEF_ALGO_CRC64_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef {

// CRC-64/JONES: poly 0xad93d23594c935a9, reflected, init 0, xorout 0.
// Check value: Crc64Bytes("123456789", 9) == 0xe9c6d914c4b8d9ca.
inline constexpr std::uint64_t kCrc64JonesPolyReflected =
    0x95ac9329ac4bc9b5ULL;

// The 256-entry reflected lookup table (built once, immutable, 2 KiB —
// L1-resident, which is exactly the paper's point).
const std::uint64_t* Crc64Table();

// Reference bytewise CRC over an arbitrary buffer.
std::uint64_t Crc64Bytes(const void* data, std::size_t len,
                         std::uint64_t crc = 0);

// Reference CRC of a single 64-bit value (little-endian byte order), the
// per-element operation the benchmark sweeps.
std::uint64_t Crc64(std::uint64_t value, std::uint64_t crc = 0);

// The HID operator template: eight dependent table lookups per element.
struct Crc64Kernel {
  const std::uint64_t* table = nullptr;  // Crc64Table()

  template <typename B>
  struct State {
    typename B::Reg crc;
    typename B::Reg data;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.data = B::LoadU(in);
    st.crc = B::Set1(0);
  }

  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    using Reg = typename B::Reg;
    const Reg byte_mask = B::Set1(0xff);
    Reg crc = st.crc;
    Reg data = st.data;
    // Eight byte steps; each step's gather depends on the previous crc —
    // one latency-bound chain per (v, s, p) instance.
    for (int step = 0; step < 8; ++step) {
      const Reg idx = B::And(B::Xor(crc, data), byte_mask);
      crc = B::Xor(B::Gather(table, idx), B::template Srli<8>(crc));
      data = B::template Srli<8>(data);
    }
    st.crc = crc;
  }

  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.crc);
  }

  // Op mix of one Compute body — input to the candidate generator. The
  // dominant entry is the gather (latency/throughput = 26/5 on AVX-512).
  static std::vector<OpClass> Ops() {
    std::vector<OpClass> ops = {OpClass::kLoad, OpClass::kSet1};
    for (int step = 0; step < 8; ++step) {
      ops.push_back(OpClass::kXor);
      ops.push_back(OpClass::kAnd);
      ops.push_back(OpClass::kGather);
      ops.push_back(OpClass::kShiftRight);
      ops.push_back(OpClass::kXor);
      ops.push_back(OpClass::kShiftRight);
    }
    ops.push_back(OpClass::kStore);
    return ops;
  }
};

// CRCs in[0..n) into out[0..n) using the hybrid implementation at `cfg`.
void Crc64Array(const HybridConfig& cfg, const std::uint64_t* in,
                std::uint64_t* out, std::size_t n);

// All (v, s, p) coordinates precompiled for the CRC kernel. The grid
// extends to v = 8 because the paper's tuned optimum on this workload is
// eight SIMD statements with no scalar statements.
const std::vector<HybridConfig>& Crc64SupportedConfigs();

}  // namespace hef

#endif  // HEF_ALGO_CRC64_H_
