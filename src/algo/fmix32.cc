#include "algo/fmix32.h"

#include "hybrid/hybrid_grid.h"

namespace hef {

std::uint32_t Fmix32(std::uint32_t h) {
  h ^= h >> 16;
  h *= 0x85ebca6bU;
  h ^= h >> 13;
  h *= 0xc2b2ae35U;
  h ^= h >> 16;
  return h;
}

namespace {

using Fmix32Grid = HybridGrid<Fmix32Kernel, /*MaxV=*/2, /*MaxS=*/4,
                              /*MaxP=*/4, DefaultVectorBackend32>;

}  // namespace

void Fmix32Array(const HybridConfig& cfg, const std::uint32_t* in,
                 std::uint32_t* out, std::size_t n) {
  Fmix32Grid::Run(cfg, Fmix32Kernel{}, in, out, n);
}

const std::vector<HybridConfig>& Fmix32SupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(Fmix32Grid::Supported());
  return *configs;
}

}  // namespace hef
