// MurmurHash3 32-bit finalizer (fmix32) in scalar / SIMD / hybrid
// flavours over 32-bit lanes — the Table-II `vint32` demonstration kernel.
// 32-bit dictionary codes are the dominant column type in real analytical
// schemas, and a zmm register packs sixteen of them, so the hybrid
// trade-off differs from the 64-bit kernels (twice the lanes per SIMD
// statement, same scalar throughput).

#ifndef HEF_ALGO_FMIX32_H_
#define HEF_ALGO_FMIX32_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hid/backend32.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef {

// Reference scalar fmix32 (Appleby's MurmurHash3 finalizer).
std::uint32_t Fmix32(std::uint32_t h);

// The HID kernel over 32-bit lanes.
struct Fmix32Kernel {
  template <typename B>
  struct State {
    typename B::Reg h;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint32_t* in) const {
    st.h = B::LoadU(in);
  }

  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    using Reg = typename B::Reg;
    Reg h = st.h;
    h = B::Xor(h, B::template Srli<16>(h));
    h = B::Mul(h, B::Set1(0x85ebca6bU));
    h = B::Xor(h, B::template Srli<13>(h));
    h = B::Mul(h, B::Set1(0xc2b2ae35U));
    st.h = B::Xor(h, B::template Srli<16>(h));
  }

  template <typename B>
  HEF_INLINE void Store(std::uint32_t* out, const State<B>& st) const {
    B::StoreU(out, st.h);
  }

  static std::vector<OpClass> Ops() {
    return {OpClass::kLoad, OpClass::kShiftRight, OpClass::kXor,
            OpClass::kMul,  OpClass::kShiftRight, OpClass::kXor,
            OpClass::kMul,  OpClass::kShiftRight, OpClass::kXor,
            OpClass::kStore};
  }
};

// Hashes in[0..n) into out[0..n) under implementation `cfg`.
void Fmix32Array(const HybridConfig& cfg, const std::uint32_t* in,
                 std::uint32_t* out, std::size_t n);

// All (v, s, p) coordinates precompiled for the fmix32 kernel.
const std::vector<HybridConfig>& Fmix32SupportedConfigs();

}  // namespace hef

#endif  // HEF_ALGO_FMIX32_H_
