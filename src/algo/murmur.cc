#include "algo/murmur.h"

#include <cstring>

#include "hybrid/hybrid_grid.h"
#include "telemetry/span.h"

namespace hef {

std::uint64_t Murmur64(std::uint64_t key, std::uint64_t seed) {
  const std::uint64_t m = kMurmurM;
  const int r = kMurmurR;
  std::uint64_t h = seed ^ (8ULL * m);
  std::uint64_t k = key;
  k *= m;
  k ^= k >> r;
  k *= m;
  h ^= k;
  h *= m;
  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

std::uint64_t Murmur64Bytes(const void* data, std::size_t len,
                            std::uint64_t seed) {
  const std::uint64_t m = kMurmurM;
  const int r = kMurmurR;
  std::uint64_t h = seed ^ (len * m);

  const auto* p = static_cast<const unsigned char*>(data);
  const std::size_t blocks = len / 8;
  for (std::size_t i = 0; i < blocks; ++i) {
    std::uint64_t k;
    std::memcpy(&k, p + i * 8, 8);
    k *= m;
    k ^= k >> r;
    k *= m;
    h ^= k;
    h *= m;
  }

  const unsigned char* tail = p + blocks * 8;
  switch (len & 7) {
    case 7: h ^= static_cast<std::uint64_t>(tail[6]) << 48; [[fallthrough]];
    case 6: h ^= static_cast<std::uint64_t>(tail[5]) << 40; [[fallthrough]];
    case 5: h ^= static_cast<std::uint64_t>(tail[4]) << 32; [[fallthrough]];
    case 4: h ^= static_cast<std::uint64_t>(tail[3]) << 24; [[fallthrough]];
    case 3: h ^= static_cast<std::uint64_t>(tail[2]) << 16; [[fallthrough]];
    case 2: h ^= static_cast<std::uint64_t>(tail[1]) << 8; [[fallthrough]];
    case 1:
      h ^= static_cast<std::uint64_t>(tail[0]);
      h *= m;
      break;
    default:
      break;
  }

  h ^= h >> r;
  h *= m;
  h ^= h >> r;
  return h;
}

namespace {

// Grid bounds: the paper's Murmur optimum is v1 s3 p2 on the Silver 4110;
// we compile v up to 2 (two AVX-512 statements cover the Gold's second
// pipe), s up to 4 (all scalar ALUs), p up to 4.
using MurmurGrid = HybridGrid<MurmurKernel, /*MaxV=*/2, /*MaxS=*/4,
                              /*MaxP=*/4>;

}  // namespace

void MurmurHashArray(const HybridConfig& cfg, const std::uint64_t* in,
                     std::uint64_t* out, std::size_t n, std::uint64_t seed) {
  HEF_TRACE_SPAN("algo.murmur_array");
  MurmurKernel kernel;
  kernel.seed = seed;
  MurmurGrid::Run(cfg, kernel, in, out, n);
}

const std::vector<HybridConfig>& MurmurSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(MurmurGrid::Supported());
  return *configs;
}

}  // namespace hef
