// MurmurHash64A in scalar / SIMD / hybrid flavours.
//
// The paper uses MurmurHash both as the hash function of its join hash
// tables and as the compute-bound synthetic benchmark (§V-C, Tables VI/VII):
// its body is a chain of multiply / shift / xor operations whose AVX-512
// form (vpmullq, latency 15) leaves scalar ALUs idle — the ideal showcase
// for hybrid execution. The kernel below is the Fig. 6(a) operator template
// expressed against the hybrid intermediate description.

#ifndef HEF_ALGO_MURMUR_H_
#define HEF_ALGO_MURMUR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef {

inline constexpr std::uint64_t kMurmurM = 0xc6a4a7935bd1e995ULL;
inline constexpr int kMurmurR = 47;
inline constexpr std::uint64_t kMurmurDefaultSeed = 0x8445d61a4e774912ULL;

// Reference scalar MurmurHash64A of one 64-bit key (Appleby's algorithm
// specialized to an 8-byte message).
std::uint64_t Murmur64(std::uint64_t key,
                       std::uint64_t seed = kMurmurDefaultSeed);

// Reference scalar MurmurHash64A over an arbitrary byte buffer (the
// original full algorithm, used by tests to pin the specialization above).
std::uint64_t Murmur64Bytes(const void* data, std::size_t len,
                            std::uint64_t seed = kMurmurDefaultSeed);

// The HID operator template for per-element Murmur hashing (Fig. 6(a)).
struct MurmurKernel {
  std::uint64_t seed = kMurmurDefaultSeed;

  template <typename B>
  struct State {
    typename B::Reg h;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.h = B::LoadU(in);
  }

  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    using Reg = typename B::Reg;
    const Reg m = B::Set1(kMurmurM);
    // Body: k *= m; k ^= k >> r; k *= m;
    Reg k = B::Mul(st.h, m);
    k = B::Xor(k, B::template Srli<kMurmurR>(k));
    k = B::Mul(k, m);
    // h = (seed ^ (8 * m)); h ^= k; h *= m;
    Reg h = B::Set1(seed ^ (8ULL * kMurmurM));
    h = B::Xor(h, k);
    h = B::Mul(h, m);
    // Finalization: h ^= h >> r; h *= m; h ^= h >> r;
    h = B::Xor(h, B::template Srli<kMurmurR>(h));
    h = B::Mul(h, m);
    st.h = B::Xor(h, B::template Srli<kMurmurR>(h));
  }

  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.h);
  }

  // Op mix of one Compute body — input to the candidate generator.
  static std::vector<OpClass> Ops() {
    return {OpClass::kLoad, OpClass::kMul,        OpClass::kShiftRight,
            OpClass::kXor,  OpClass::kMul,        OpClass::kXor,
            OpClass::kMul,  OpClass::kShiftRight, OpClass::kXor,
            OpClass::kMul,  OpClass::kShiftRight, OpClass::kXor,
            OpClass::kStore};
  }
};

// Hashes in[0..n) into out[0..n) using the hybrid implementation at `cfg`.
// Aborts if cfg is outside the compiled grid; query MurmurSupportedConfigs().
void MurmurHashArray(const HybridConfig& cfg, const std::uint64_t* in,
                     std::uint64_t* out, std::size_t n,
                     std::uint64_t seed = kMurmurDefaultSeed);

// All (v, s, p) coordinates precompiled for the Murmur kernel.
const std::vector<HybridConfig>& MurmurSupportedConfigs();

}  // namespace hef

#endif  // HEF_ALGO_MURMUR_H_
