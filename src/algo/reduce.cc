#include "algo/reduce.h"

#include "hybrid/hybrid_reducer.h"

namespace hef {

namespace {

constexpr int kMaxV = 2;
constexpr int kMaxS = 4;
constexpr int kMaxP = 4;

using SumGrid = HybridReduceGrid<SumKernel, kMaxV, kMaxS, kMaxP>;
using MinGrid = HybridReduceGrid<MinKernel, kMaxV, kMaxS, kMaxP>;
using MaxGrid = HybridReduceGrid<MaxKernel, kMaxV, kMaxS, kMaxP>;

}  // namespace

std::uint64_t SumArray(const HybridConfig& cfg, const std::uint64_t* in,
                       std::size_t n) {
  return SumGrid::Run(cfg, SumKernel{}, in, n);
}

std::uint64_t MinArray(const HybridConfig& cfg, const std::uint64_t* in,
                       std::size_t n) {
  return MinGrid::Run(cfg, MinKernel{}, in, n);
}

std::uint64_t MaxArray(const HybridConfig& cfg, const std::uint64_t* in,
                       std::size_t n) {
  return MaxGrid::Run(cfg, MaxKernel{}, in, n);
}

const std::vector<HybridConfig>& ReduceSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(SumGrid::Supported());
  return *configs;
}

}  // namespace hef
