// Hybrid aggregation kernels: sum / min / max over 64-bit columns, plus a
// fused multiply-sum over two columns (SSB Q1's revenue expression).
// Aggregations are one of the operator classes the paper's SIMD related
// work targets; expressed against the HID they get the same (v, s, p)
// treatment — every instance carries its own accumulator, so packing
// shortens the accumulate chain's effective latency exactly as for maps.

#ifndef HEF_ALGO_REDUCE_H_
#define HEF_ALGO_REDUCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef {

// Reduction kernel concept implementations (see hybrid_reducer.h).
struct SumKernel {
  template <typename B>
  struct State {
    typename B::Reg acc;
  };
  template <typename B>
  HEF_INLINE void Init(State<B>& st) const {
    st.acc = B::Set1(0);
  }
  template <typename B>
  HEF_INLINE void Accumulate(State<B>& st, const std::uint64_t* in) const {
    st.acc = B::Add(st.acc, B::LoadU(in));
  }
  template <typename B>
  HEF_INLINE std::uint64_t Reduce(const State<B>& st) const {
    std::uint64_t total = 0;
    for (int i = 0; i < B::kLanes; ++i) total += B::Lane(st.acc, i);
    return total;
  }
  static std::uint64_t Combine(std::uint64_t a, std::uint64_t b) {
    return a + b;
  }
  static std::uint64_t Identity() { return 0; }
  static std::vector<OpClass> Ops() {
    return {OpClass::kLoad, OpClass::kAdd};
  }
};

struct MinKernel {
  template <typename B>
  struct State {
    typename B::Reg acc;
  };
  template <typename B>
  HEF_INLINE void Init(State<B>& st) const {
    st.acc = B::Set1(~0ULL);
  }
  template <typename B>
  HEF_INLINE void Accumulate(State<B>& st, const std::uint64_t* in) const {
    const auto x = B::LoadU(in);
    st.acc = B::Blend(B::CmpGt(st.acc, x), st.acc, x);
  }
  template <typename B>
  HEF_INLINE std::uint64_t Reduce(const State<B>& st) const {
    std::uint64_t best = ~0ULL;
    for (int i = 0; i < B::kLanes; ++i) {
      const std::uint64_t lane = B::Lane(st.acc, i);
      if (lane < best) best = lane;
    }
    return best;
  }
  static std::uint64_t Combine(std::uint64_t a, std::uint64_t b) {
    return a < b ? a : b;
  }
  static std::uint64_t Identity() { return ~0ULL; }
};

struct MaxKernel {
  template <typename B>
  struct State {
    typename B::Reg acc;
  };
  template <typename B>
  HEF_INLINE void Init(State<B>& st) const {
    st.acc = B::Set1(0);
  }
  template <typename B>
  HEF_INLINE void Accumulate(State<B>& st, const std::uint64_t* in) const {
    const auto x = B::LoadU(in);
    st.acc = B::Blend(B::CmpGt(x, st.acc), st.acc, x);
  }
  template <typename B>
  HEF_INLINE std::uint64_t Reduce(const State<B>& st) const {
    std::uint64_t best = 0;
    for (int i = 0; i < B::kLanes; ++i) {
      const std::uint64_t lane = B::Lane(st.acc, i);
      if (lane > best) best = lane;
    }
    return best;
  }
  static std::uint64_t Combine(std::uint64_t a, std::uint64_t b) {
    return a > b ? a : b;
  }
  static std::uint64_t Identity() { return 0; }
};

// sum(in[i]) under implementation `cfg` (wrap-around on overflow, like the
// scalar loop it replaces).
std::uint64_t SumArray(const HybridConfig& cfg, const std::uint64_t* in,
                       std::size_t n);
std::uint64_t MinArray(const HybridConfig& cfg, const std::uint64_t* in,
                       std::size_t n);
std::uint64_t MaxArray(const HybridConfig& cfg, const std::uint64_t* in,
                       std::size_t n);

// All (v, s, p) coordinates precompiled for the reduction kernels.
const std::vector<HybridConfig>& ReduceSupportedConfigs();

}  // namespace hef

#endif  // HEF_ALGO_REDUCE_H_
