#include "analysis/dependence_checker.h"

#include <cctype>
#include <map>
#include <sstream>

#include "telemetry/metrics.h"

namespace hef {
namespace analysis {

namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// True for the translator's instance-variable spelling:
// <name>_{v|s}<lane_group>_p<pack> (constants end in _sc/_vc and are
// loop-invariant, so they carry no dependence).
bool IsInstanceVariable(const std::string& ident) {
  const auto p = ident.rfind("_p");
  if (p == std::string::npos || p + 2 >= ident.size()) return false;
  for (std::size_t i = p + 2; i < ident.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(ident[i]))) return false;
  }
  // Backwards from _p: digits, then 'v' or 's', then '_'.
  std::size_t i = p;
  if (i == 0) return false;
  std::size_t digits = 0;
  while (i > 0 && std::isdigit(static_cast<unsigned char>(ident[i - 1]))) {
    --i;
    ++digits;
  }
  if (digits == 0 || i < 2) return false;
  const char kind = ident[i - 1];
  return (kind == 'v' || kind == 's') && ident[i - 2] == '_';
}

// All identifiers in `text`, in order, with their start offsets.
std::vector<std::pair<std::size_t, std::string>> Identifiers(
    const std::string& text) {
  std::vector<std::pair<std::size_t, std::string>> out;
  std::size_t i = 0;
  while (i < text.size()) {
    if (IsIdentChar(text[i]) &&
        !std::isdigit(static_cast<unsigned char>(text[i]))) {
      const std::size_t start = i;
      while (i < text.size() && IsIdentChar(text[i])) ++i;
      out.emplace_back(start, text.substr(start, i - start));
    } else {
      ++i;
    }
  }
  return out;
}

GeneratedStatement ParseStatement(const std::string& line) {
  GeneratedStatement st;
  st.text = line;
  // A register def is an instance variable at the very start of the
  // statement followed by '=' (not '=='). Store statements
  // ("*(out + ...) = x;", "_mm512_storeu_si512(out + ..., x);") start
  // with '*' or an intrinsic name, so everything they mention is a use.
  const auto eq = line.find('=');
  bool defines = false;
  if (eq != std::string::npos && eq + 1 < line.size() &&
      line[eq + 1] != '=') {
    const std::string lhs = Trim(line.substr(0, eq));
    if (!lhs.empty() && IsInstanceVariable(lhs)) {
      bool pure = true;
      for (char c : lhs) {
        if (!IsIdentChar(c)) pure = false;
      }
      if (pure) {
        st.def = lhs;
        defines = true;
      }
    }
  }
  const std::string rhs = defines ? line.substr(eq + 1) : line;
  for (const auto& [offset, ident] : Identifiers(rhs)) {
    (void)offset;
    if (IsInstanceVariable(ident)) st.uses.push_back(ident);
  }
  return st;
}

}  // namespace

Result<std::vector<GeneratedStatement>> ParseChunkLoop(
    const std::string& generated_source) {
  std::istringstream stream(generated_source);
  std::string line;
  bool in_chunk = false;
  std::vector<GeneratedStatement> statements;
  while (std::getline(stream, line)) {
    if (!in_chunk) {
      // The translator's chunk loop header:
      //   for (; ofs + <chunk> <= n; ofs += <chunk>) {
      if (line.find("for (; ofs + ") != std::string::npos &&
          line.find("<= n; ofs += ") != std::string::npos) {
        in_chunk = true;
      }
      continue;
    }
    const std::string body = Trim(line);
    if (body == "}") break;  // end of the chunk loop
    if (body.empty()) continue;
    statements.push_back(ParseStatement(body));
  }
  if (!in_chunk) {
    return Status::InvalidArgument(
        "generated source has no chunk loop to analyze");
  }
  return statements;
}

Result<DependenceReport> CheckDependences(
    const std::string& generated_source, const HybridConfig& config) {
  if (!config.valid()) {
    return Status::InvalidArgument("invalid hybrid config " +
                                   config.ToString());
  }
  Result<std::vector<GeneratedStatement>> parsed =
      ParseChunkLoop(generated_source);
  HEF_RETURN_NOT_OK(parsed.status());
  const std::vector<GeneratedStatement>& statements = parsed.value();

  DependenceReport report;
  report.statements = static_cast<int>(statements.size());
  report.pack_width = config.v + config.s;
  report.instances_per_line = config.p * (config.v + config.s);

  // Reaching definitions: only the latest write to an instance variable
  // can feed a later read (each statement writes at most one register).
  std::map<std::string, int> last_def;
  for (int i = 0; i < report.statements; ++i) {
    const GeneratedStatement& st = statements[static_cast<std::size_t>(i)];
    for (const std::string& use : st.uses) {
      auto it = last_def.find(use);
      if (it == last_def.end()) continue;  // defined before the loop: none
      const int distance = i - it->second;
      if (!report.has_dependence || distance < report.min_distance) {
        report.min_distance = distance;
      }
      report.has_dependence = true;
      if (distance < report.pack_width) {
        report.violations.emplace_back(it->second, i);
      }
    }
    if (!st.def.empty()) last_def[st.def] = i;
  }

  auto& registry = telemetry::MetricsRegistry::Get();
  registry.counter("analysis.dependence_checks").Increment();
  if (!report.violations.empty()) {
    registry.counter("analysis.dependence_violations")
        .Increment(static_cast<std::uint64_t>(report.violations.size()));
  }
  return report;
}

}  // namespace analysis
}  // namespace hef
