// Dependence checker — statically proves the paper's pack claim (§IV-B)
// on the translator's actual output instead of trusting the comment in
// translator.h. It re-parses the emitted C++ string into generated
// statements (defs and uses of the Fig. 6 instance variables
// `name_{v|s}<lane_group>_p<pack>`), then checks that every
// read-after-write pair inside the main chunk loop is at least a pack
// width apart: with line-major expansion, all p*(v+s) instances of
// template line k are emitted before any instance of line k+1, so the
// processor always has a full pack of independent statements in flight
// and the inter-instruction interval drops from latency to throughput.
//
// Only the chunk loop is analyzed — the scalar tail processes one element
// at a time and is sequential by design — and only register dependences
// are tracked: in/out/aux never alias by the kernel contract
// (hef_generated_kernel reads in, writes out, gathers through aux).

#ifndef HEF_ANALYSIS_DEPENDENCE_CHECKER_H_
#define HEF_ANALYSIS_DEPENDENCE_CHECKER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hybrid/hybrid_config.h"

namespace hef {
namespace analysis {

// One emitted statement of the chunk loop, reduced to its dataflow.
struct GeneratedStatement {
  std::string text;               // the emitted line, trimmed
  std::string def;                // instance variable written ("" if none)
  std::vector<std::string> uses;  // instance variables read
};

struct DependenceReport {
  int statements = 0;         // statements in the unrolled chunk body
  int pack_width = 0;         // v + s: statements per pack
  int instances_per_line = 0;  // p * (v + s): the translator's spacing
  // Minimum distance over all read-after-write pairs (0 when the body has
  // no register dependence at all, e.g. a single-statement template).
  int min_distance = 0;
  bool has_dependence = false;
  // (def statement, use statement) index pairs closer than pack_width.
  std::vector<std::pair<int, int>> violations;

  // The pack claim: every dependent pair is at least a pack apart.
  bool ProvesPackClaim() const {
    return !has_dependence || (violations.empty() &&
                               min_distance >= pack_width);
  }
};

// Extracts the chunk-loop statements from a TranslateOperator() result.
// Fails if the source has no recognizable chunk loop.
Result<std::vector<GeneratedStatement>> ParseChunkLoop(
    const std::string& generated_source);

// Parses and checks `generated_source` (the string TranslateOperator
// emitted for `config`).
Result<DependenceReport> CheckDependences(
    const std::string& generated_source, const HybridConfig& config);

}  // namespace analysis
}  // namespace hef

#endif  // HEF_ANALYSIS_DEPENDENCE_CHECKER_H_
