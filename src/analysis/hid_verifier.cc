#include "analysis/hid_verifier.h"

#include <set>

#include "telemetry/metrics.h"

namespace hef {
namespace analysis {

namespace {

// Template operand count per op (the table's `arity` counts variable
// inputs of the lowering; the template-level count folds in the stream /
// pointer operand the translator synthesizes the address for).
int ExpectedTemplateArgs(const std::string& op, const OpPattern& pattern) {
  if (op == "hi_load_epi64") return 1;   // (IN)
  if (op == "hi_store_epi64") return 2;  // (OUT, src)
  if (op == "hi_gather_epi64") return 2;  // (ptr, idx)
  return pattern.arity;
}

class Verifier {
 public:
  Verifier(const OperatorTemplate& op, const DescriptionTable& table,
           const VerifyOptions& options)
      : op_(op), table_(table), options_(options) {}

  std::vector<Diagnostic> Run() {
    CheckTablePatterns();
    CheckHostIsa();
    std::set<std::string> assigned;
    bool loaded = false;
    bool stored = false;
    for (const TemplateStatement& st : op_.body) {
      const bool is_load = st.op == "hi_load_epi64";
      const bool is_store = st.op == "hi_store_epi64";
      const bool is_gather = st.op == "hi_gather_epi64";

      // HID007: the op must exist and have a lowering for the requested
      // vector ISA and for scalar (the tail loop always runs scalar).
      Result<OpPattern> pattern = table_.Lookup(st.op);
      if (!pattern.ok()) {
        Error(st.line, "HID007",
              "op '" + st.op + "' is not in the description table");
        continue;  // every other rule needs the pattern
      }
      if (pattern.value().ForIsa(options_.vector_isa).empty()) {
        Error(st.line, "HID007",
              "op '" + st.op + "' has no pattern for vector ISA " +
                  IsaName(options_.vector_isa));
      }
      if (pattern.value().scalar.empty()) {
        Error(st.line, "HID007",
              "op '" + st.op +
                  "' has no scalar pattern (the tail loop requires one)");
      }

      // HID002: exactly the stores define nothing; everything else must
      // define a declared hybrid variable.
      if (is_store) {
        if (!st.dst.empty()) {
          Error(st.line, "HID002",
                "store must not assign a destination ('" + st.dst + "')");
        }
      } else if (st.dst.empty()) {
        Error(st.line, "HID002", "op '" + st.op + "' needs a destination");
      } else if (!op_.IsVariable(st.dst)) {
        Error(st.line, "HID002",
              "destination '" + st.dst + "' is not a declared var");
      }

      // HID003: every operand name must be declared (or be a stream
      // marker). Declarations precede the body by grammar; a name that
      // reaches here undeclared was never declared at all.
      for (const std::string& arg : st.args) {
        if (arg == "IN" || arg == "OUT") continue;
        if (!op_.IsVariable(arg) && !op_.IsConstant(arg) &&
            !op_.IsPointer(arg)) {
          Error(st.line, "HID003",
                "name '" + arg + "' is used but never declared");
        }
      }

      // HID004: stream discipline. IN may only be loaded, OUT only
      // stored, and the stream ops may touch nothing else.
      for (std::size_t i = 0; i < st.args.size(); ++i) {
        const std::string& arg = st.args[i];
        if (arg == "IN" && !(is_load && i == 0)) {
          Error(st.line, "HID004", "IN may only appear as the load source");
        }
        if (arg == "OUT" && !(is_store && i == 0)) {
          Error(st.line, "HID004",
                "OUT may only appear as the store target");
        }
      }
      if (is_load && (st.args.empty() || st.args[0] != "IN")) {
        Error(st.line, "HID004", "load must read the IN stream");
      }
      if (is_store && (st.args.empty() || st.args[0] != "OUT")) {
        Error(st.line, "HID004", "store must write the OUT stream");
      }

      // HID005: gathers go through the declared ptr, and the ptr goes
      // nowhere else.
      if (is_gather) {
        if (st.args.empty() || !op_.IsPointer(st.args[0])) {
          Error(st.line, "HID005",
                "gather base must be the declared ptr parameter");
        }
        if (st.args.size() > 1 && !op_.IsVariable(st.args[1])) {
          Error(st.line, "HID005",
                "gather index must be a hybrid var");
        }
      }
      for (std::size_t i = 0; i < st.args.size(); ++i) {
        if (op_.IsPointer(st.args[i]) && !(is_gather && i == 0)) {
          Error(st.line, "HID005",
                "ptr '" + st.args[i] +
                    "' may only appear as a gather base");
        }
      }

      // HID006: operand count and immediate use must agree with the
      // description table.
      const int expected = ExpectedTemplateArgs(st.op, pattern.value());
      if (static_cast<int>(st.args.size()) != expected) {
        Error(st.line, "HID006",
              "op '" + st.op + "' takes " + std::to_string(expected) +
                  " operand(s), got " + std::to_string(st.args.size()));
      }
      if (pattern.value().has_immediate && !st.has_immediate) {
        Error(st.line, "HID006",
              "op '" + st.op + "' requires an immediate");
      }
      if (!pattern.value().has_immediate && st.has_immediate) {
        Error(st.line, "HID006",
              "op '" + st.op + "' does not take an immediate");
      }

      // HID009: shift counts must stay inside the 64-bit lane.
      if (pattern.value().has_immediate && st.has_immediate &&
          st.immediate >= 64) {
        Error(st.line, "HID009",
              "immediate " + std::to_string(st.immediate) +
                  " is out of range for 64-bit lanes");
      }

      // HID001: definition before use. The store source is read like any
      // other operand.
      for (const std::string& arg : st.args) {
        if (op_.IsVariable(arg) && assigned.count(arg) == 0) {
          Error(st.line, "HID001",
                "var '" + arg + "' is read before any assignment");
        }
      }
      if (!st.dst.empty() && op_.IsVariable(st.dst)) {
        assigned.insert(st.dst);
      }
      if (is_load) loaded = true;
      if (is_store) stored = true;
    }

    // HID010: the kernel must be a stream map — at least one IN load and
    // one OUT store, or the generated loop reads/writes nothing.
    if (!loaded) {
      Error(0, "HID010", "body never loads the IN stream");
    }
    if (!stored) {
      Error(0, "HID010", "body never stores the OUT stream");
    }

    // HID008: declared vars that are never read are wasted registers per
    // instance (warning; a write-only var also trips this).
    for (const std::string& var : op_.variables) {
      bool read = false;
      for (const TemplateStatement& st : op_.body) {
        for (const std::string& arg : st.args) {
          if (arg == var) read = true;
        }
      }
      if (!read) {
        Warn(DeclLine(var), "HID008",
             "var '" + var + "' is never read");
      }
    }
    return std::move(diags_);
  }

 private:
  int DeclLine(const std::string& name) const {
    auto it = op_.decl_lines.find(name);
    return it == op_.decl_lines.end() ? 0 : it->second;
  }

  // HID012: the description table itself must be self-consistent for
  // every op the template uses (placeholders vs arity/immediate — the
  // table-load contract).
  void CheckTablePatterns() {
    std::set<std::string> checked;
    for (const TemplateStatement& st : op_.body) {
      if (!checked.insert(st.op).second) continue;
      Result<OpPattern> pattern = table_.Lookup(st.op);
      if (!pattern.ok()) continue;  // HID007 reports the missing op
      const Status valid =
          DescriptionTable::ValidatePattern(st.op, pattern.value());
      if (!valid.ok()) {
        Error(st.line, "HID012", valid.message());
      }
    }
  }

  // HID011 (opt-in): the requested vector ISA must run on this host.
  void CheckHostIsa() {
    if (!options_.check_host_isa) return;
    if (options_.vector_isa == Isa::kScalar) return;
    const Isa best = CpuFeatures::Get().BestIsa();
    const bool ok =
        options_.vector_isa == Isa::kAvx2
            ? best != Isa::kScalar
            : best == Isa::kAvx512;
    if (!ok) {
      Warn(0, "HID011",
           std::string("vector ISA ") + IsaName(options_.vector_isa) +
               " is not supported on this host (best: " + IsaName(best) +
               ")");
    }
  }

  void Error(int line, const char* rule, const std::string& msg) {
    diags_.push_back(Diagnostic{rule, Severity::kError, line, msg});
  }
  void Warn(int line, const char* rule, const std::string& msg) {
    diags_.push_back(Diagnostic{rule, Severity::kWarning, line, msg});
  }

  const OperatorTemplate& op_;
  const DescriptionTable& table_;
  const VerifyOptions& options_;
  std::vector<Diagnostic> diags_;
};

}  // namespace

const char* SeverityName(Severity severity) {
  return severity == Severity::kError ? "error" : "warning";
}

std::string Diagnostic::ToString() const {
  std::string out = "line " + std::to_string(line) + ": ";
  out += SeverityName(severity);
  out += " [" + rule_id + "] " + message;
  return out;
}

std::vector<Diagnostic> VerifyTemplate(const OperatorTemplate& op,
                                       const DescriptionTable& table,
                                       const VerifyOptions& options) {
  std::vector<Diagnostic> diags = Verifier(op, table, options).Run();
  auto& registry = telemetry::MetricsRegistry::Get();
  registry.counter("analysis.templates_verified").Increment();
  for (const Diagnostic& d : diags) {
    registry
        .counter(d.severity == Severity::kError
                     ? "analysis.diagnostics_errors"
                     : "analysis.diagnostics_warnings")
        .Increment();
  }
  return diags;
}

std::vector<Diagnostic> LintTemplateText(const std::string& text,
                                         const DescriptionTable& table,
                                         const VerifyOptions& options,
                                         OperatorTemplate* parsed) {
  Result<OperatorTemplate> op = OperatorTemplate::ParseSyntaxOnly(text);
  if (!op.ok()) {
    telemetry::MetricsRegistry::Get()
        .counter("analysis.diagnostics_errors")
        .Increment();
    return {Diagnostic{"HID000", Severity::kError, 0,
                       op.status().message()}};
  }
  if (parsed != nullptr) *parsed = op.value();
  return VerifyTemplate(op.value(), table, options);
}

bool HasErrors(const std::vector<Diagnostic>& diagnostics) {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

Status DiagnosticsToStatus(const std::string& operator_name,
                           const std::vector<Diagnostic>& diagnostics) {
  int errors = 0;
  const Diagnostic* first = nullptr;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity != Severity::kError) continue;
    if (first == nullptr) first = &d;
    ++errors;
  }
  if (first == nullptr) return Status::OK();
  return Status::InvalidArgument(
      "template '" + operator_name + "' failed verification (" +
      std::to_string(errors) + " error(s)); first: " + first->ToString());
}

}  // namespace analysis
}  // namespace hef
