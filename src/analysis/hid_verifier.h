// HID static verifier — the semantic pass over an OperatorTemplate +
// DescriptionTable that proves a template legal *before* the translator
// (Algorithm 1) expands it. Every rule has a stable ID (HID001…,
// catalogued in docs/analysis.md) so diagnostics are machine-checkable:
// `hef lint` emits them as JSON, golden tests pin each rule to a minimal
// bad template, and the translator refuses templates with errors when
// TranslateOptions::verify is on.
//
// The verifier deliberately re-checks properties the strict template
// parser also enforces (def-before-use, stream discipline, gather
// shapes): Parse() stops at the first violation, while lint wants every
// diagnostic with a line and a rule ID. ParseSyntaxOnly() feeds it
// templates that are grammatically well formed but semantically unproven.

#ifndef HEF_ANALYSIS_HID_VERIFIER_H_
#define HEF_ANALYSIS_HID_VERIFIER_H_

#include <string>
#include <vector>

#include "codegen/description_table.h"
#include "codegen/operator_template.h"
#include "common/status.h"
#include "procinfo/cpu_features.h"

namespace hef {
namespace analysis {

enum class Severity { kError, kWarning };

// "error" / "warning".
const char* SeverityName(Severity severity);

struct Diagnostic {
  std::string rule_id;  // "HID001", ... ("HID000" for grammar errors)
  Severity severity = Severity::kError;
  int line = 0;  // 1-based template line; 0 for template-wide findings
  std::string message;

  // "line 4: error [HID001] ..." (lint's text output form).
  std::string ToString() const;
};

struct VerifyOptions {
  // ISA whose description-table column the vector statements will use;
  // HID007 requires a non-empty pattern for it (and for scalar, which the
  // tail loop always needs).
  Isa vector_isa = Isa::kAvx512;
  // When set, additionally warn (HID011) if the requested vector ISA is
  // not supported by the host CPU (cpu_features gate). Off by default so
  // lint output is host-independent.
  bool check_host_isa = false;
};

// Runs every rule over the template; returns all diagnostics in source
// order. An empty vector means the template is legal.
std::vector<Diagnostic> VerifyTemplate(const OperatorTemplate& op,
                                       const DescriptionTable& table,
                                       const VerifyOptions& options);

// Lenient-parses `text` and verifies it. A grammar failure surfaces as a
// single HID000 diagnostic carrying the parser's message. When `parsed`
// is non-null and parsing succeeded, the template is copied out (for
// follow-on translation / dependence checks).
std::vector<Diagnostic> LintTemplateText(const std::string& text,
                                         const DescriptionTable& table,
                                         const VerifyOptions& options,
                                         OperatorTemplate* parsed = nullptr);

// True if any diagnostic is an error (warnings alone keep a template
// usable).
bool HasErrors(const std::vector<Diagnostic>& diagnostics);

// OK when no errors; otherwise InvalidArgument summarizing the first
// error (count included), for callers that propagate Status.
Status DiagnosticsToStatus(const std::string& operator_name,
                           const std::vector<Diagnostic>& diagnostics);

}  // namespace analysis
}  // namespace hef

#endif  // HEF_ANALYSIS_HID_VERIFIER_H_
