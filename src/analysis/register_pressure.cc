#include "analysis/register_pressure.h"

#include <algorithm>
#include <set>

namespace hef {
namespace analysis {

std::string RegisterPressure::ToString() const {
  return "scalar " + std::to_string(scalar_live) + "/" +
         std::to_string(scalar_limit) + ", vector " +
         std::to_string(vector_live) + "/" + std::to_string(vector_limit);
}

int MaxLiveTemplateVars(const OperatorTemplate& op) {
  std::set<std::string> live;
  std::size_t max_live = 0;
  for (auto it = op.body.rbegin(); it != op.body.rend(); ++it) {
    if (!it->dst.empty()) live.erase(it->dst);
    for (const std::string& arg : it->args) {
      if (op.IsVariable(arg)) live.insert(arg);
    }
    max_live = std::max(max_live, live.size());
  }
  return static_cast<int>(max_live);
}

RegisterPressure EstimatePressure(int max_live_vars, int num_constants,
                                  const HybridConfig& config,
                                  Isa vector_isa) {
  RegisterPressure pressure;
  pressure.scalar_limit = kScalarRegisterLimit;
  pressure.vector_limit =
      vector_isa == Isa::kAvx2 ? kYmmRegisterLimit : kZmmRegisterLimit;
  // Each pack instance carries its own copy of every live variable;
  // constants are shared (one scalar + one broadcast copy, the
  // translator's constant rule).
  pressure.scalar_live =
      config.p * config.s * max_live_vars + num_constants;
  pressure.vector_live =
      config.v > 0 ? config.p * config.v * max_live_vars + num_constants
                   : 0;
  return pressure;
}

RegisterPressure EstimatePressure(const OperatorTemplate& op,
                                  const HybridConfig& config,
                                  Isa vector_isa) {
  return EstimatePressure(MaxLiveTemplateVars(op),
                          static_cast<int>(op.constants.size()), config,
                          vector_isa);
}

std::function<Status(const HybridConfig&)> MakePressureCheck(
    int max_live_vars, int num_constants, Isa vector_isa) {
  return [max_live_vars, num_constants,
          vector_isa](const HybridConfig& config) -> Status {
    const RegisterPressure pressure =
        EstimatePressure(max_live_vars, num_constants, config, vector_isa);
    if (pressure.fits()) return Status::OK();
    return Status::InvalidArgument("config " + config.ToString() +
                                   " exceeds the register file (" +
                                   pressure.ToString() + ")");
  };
}

std::function<Status(const HybridConfig&)> MakePressureCheck(
    const OperatorTemplate& op, Isa vector_isa) {
  return MakePressureCheck(MaxLiveTemplateVars(op),
                           static_cast<int>(op.constants.size()),
                           vector_isa);
}

}  // namespace analysis
}  // namespace hef
