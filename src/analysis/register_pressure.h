// Register-pressure estimate — the static model behind the tuner's
// over-pressure pruning. A (v, s, p) implementation keeps
// p * s * max_live scalar values and p * v * max_live vector values in
// flight (max_live = maximum simultaneously-live template variables,
// from a backward liveness walk), plus one scalar and one vector copy of
// each template constant. Configurations that exceed the register file —
// 16 GPRs, 16 ymm (AVX2), 32 zmm (AVX-512) — spill, and a spilling
// implementation can never be the paper's optimum (§IV-C's "overruns the
// register budget" side of the runtime curve), so the tuner rejects such
// nodes before ever benchmarking them (tuner.candidates_rejected_static).

#ifndef HEF_ANALYSIS_REGISTER_PRESSURE_H_
#define HEF_ANALYSIS_REGISTER_PRESSURE_H_

#include <functional>
#include <string>

#include "codegen/operator_template.h"
#include "common/status.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/cpu_features.h"

namespace hef {
namespace analysis {

// x86-64 integer register file (minus nothing: the loop counter /
// pointers share it, which the estimate folds into the live count's
// conservatism rather than the limit).
inline constexpr int kScalarRegisterLimit = 16;
inline constexpr int kYmmRegisterLimit = 16;
inline constexpr int kZmmRegisterLimit = 32;

struct RegisterPressure {
  int scalar_live = 0;  // max simultaneously-live scalar values
  int vector_live = 0;  // max simultaneously-live vector values
  int scalar_limit = kScalarRegisterLimit;
  int vector_limit = kZmmRegisterLimit;

  bool fits() const {
    return scalar_live <= scalar_limit && vector_live <= vector_limit;
  }
  // "scalar 14/16, vector 6/32".
  std::string ToString() const;
};

// Maximum simultaneously-live template variables across the body
// (backward liveness; a dead def still keeps its operands live).
int MaxLiveTemplateVars(const OperatorTemplate& op);

// Pressure of `config` given the template's live count and constant
// count. `vector_isa` selects the vector register file (ymm vs zmm).
RegisterPressure EstimatePressure(int max_live_vars, int num_constants,
                                  const HybridConfig& config,
                                  Isa vector_isa);

// As above, with max_live_vars / num_constants read off the template.
RegisterPressure EstimatePressure(const OperatorTemplate& op,
                                  const HybridConfig& config,
                                  Isa vector_isa);

// Admission filter for TuneOptions::static_check: OK when the estimate
// fits the register file, InvalidArgument naming the overrun otherwise.
std::function<Status(const HybridConfig&)> MakePressureCheck(
    int max_live_vars, int num_constants, Isa vector_isa);

// Template-based variant of MakePressureCheck.
std::function<Status(const HybridConfig&)> MakePressureCheck(
    const OperatorTemplate& op, Isa vector_isa);

}  // namespace analysis
}  // namespace hef

#endif  // HEF_ANALYSIS_REGISTER_PRESSURE_H_
