#include "codegen/description_table.h"

namespace hef {

DescriptionTable DescriptionTable::Builtin() {
  DescriptionTable t;
  t.AddOp("hi_add_epi64",
          {2, false, "{dst} = {a} + {b};",
           "{dst} = _mm256_add_epi64({a}, {b});",
           "{dst} = _mm512_add_epi64({a}, {b});"});
  t.AddOp("hi_sub_epi64",
          {2, false, "{dst} = {a} - {b};",
           "{dst} = _mm256_sub_epi64({a}, {b});",
           "{dst} = _mm512_sub_epi64({a}, {b});"});
  t.AddOp("hi_mullo_epi64",
          {2, false, "{dst} = {a} * {b};",
           // AVX2 lacks vpmullq; the table lowers to the helper emitted in
           // the generated prelude (see translator).
           "{dst} = hef_mullo_epi64_avx2({a}, {b});",
           "{dst} = _mm512_mullo_epi64({a}, {b});"});
  t.AddOp("hi_and_epi64",
          {2, false, "{dst} = {a} & {b};",
           "{dst} = _mm256_and_si256({a}, {b});",
           "{dst} = _mm512_and_si512({a}, {b});"});
  t.AddOp("hi_or_epi64",
          {2, false, "{dst} = {a} | {b};",
           "{dst} = _mm256_or_si256({a}, {b});",
           "{dst} = _mm512_or_si512({a}, {b});"});
  t.AddOp("hi_xor_epi64",
          {2, false, "{dst} = {a} ^ {b};",
           "{dst} = _mm256_xor_si256({a}, {b});",
           "{dst} = _mm512_xor_si512({a}, {b});"});
  t.AddOp("hi_srli_epi64",
          {1, true, "{dst} = {a} >> {imm};",
           "{dst} = _mm256_srli_epi64({a}, {imm});",
           "{dst} = _mm512_srli_epi64({a}, {imm});"});
  t.AddOp("hi_slli_epi64",
          {1, true, "{dst} = {a} << {imm};",
           "{dst} = _mm256_slli_epi64({a}, {imm});",
           "{dst} = _mm512_slli_epi64({a}, {imm});"});
  t.AddOp("hi_load_epi64",
          {1, false, "{dst} = *({a});",
           "{dst} = _mm256_loadu_si256((const __m256i*)({a}));",
           "{dst} = _mm512_loadu_si512({a});"});
  t.AddOp("hi_store_epi64",
          {2, false, "*({a}) = {b};",
           "_mm256_storeu_si256((__m256i*)({a}), {b});",
           "_mm512_storeu_si512({a}, {b});"});
  t.AddOp("hi_gather_epi64",
          {2, false, "{dst} = ({a})[{b}];",
           "{dst} = _mm256_i64gather_epi64((const long long*)({a}), {b}, "
           "8);",
           "{dst} = _mm512_i64gather_epi64({b}, {a}, 8);"});
  return t;
}

void DescriptionTable::AddOp(const std::string& name, OpPattern pattern) {
  ops_[name] = std::move(pattern);
}

bool DescriptionTable::Contains(const std::string& name) const {
  return ops_.count(name) != 0;
}

Result<OpPattern> DescriptionTable::Lookup(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("no description table entry for '" + name + "'");
  }
  return it->second;
}

const char* DescriptionTable::RegType(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "uint64_t";
    case Isa::kAvx2:
      return "__m256i";
    case Isa::kAvx512:
      return "__m512i";
  }
  return "uint64_t";
}

int DescriptionTable::Lanes(Isa isa) { return IsaLanes64(isa); }

}  // namespace hef
