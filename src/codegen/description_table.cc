#include "codegen/description_table.h"

#include <set>
#include <utility>

#include "common/macros.h"

namespace hef {

namespace {

// Placeholder names referenced by one pattern string ("{dst}" -> "dst").
// Malformed braces ("{x" with no close) are reported as-is so the error
// message shows what the table actually contains.
Result<std::set<std::string>> Placeholders(const std::string& pattern) {
  std::set<std::string> found;
  std::size_t at = 0;
  while ((at = pattern.find('{', at)) != std::string::npos) {
    const std::size_t close = pattern.find('}', at + 1);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unterminated placeholder");
    }
    found.insert(pattern.substr(at + 1, close - at - 1));
    at = close + 1;
  }
  return found;
}

}  // namespace

DescriptionTable DescriptionTable::Builtin() {
  DescriptionTable t;
  t.AddOp("hi_add_epi64",
          {2, false, "{dst} = {a} + {b};",
           "{dst} = _mm256_add_epi64({a}, {b});",
           "{dst} = _mm512_add_epi64({a}, {b});"});
  t.AddOp("hi_sub_epi64",
          {2, false, "{dst} = {a} - {b};",
           "{dst} = _mm256_sub_epi64({a}, {b});",
           "{dst} = _mm512_sub_epi64({a}, {b});"});
  t.AddOp("hi_mullo_epi64",
          {2, false, "{dst} = {a} * {b};",
           // AVX2 lacks vpmullq; the table lowers to the helper emitted in
           // the generated prelude (see translator).
           "{dst} = hef_mullo_epi64_avx2({a}, {b});",
           "{dst} = _mm512_mullo_epi64({a}, {b});"});
  t.AddOp("hi_and_epi64",
          {2, false, "{dst} = {a} & {b};",
           "{dst} = _mm256_and_si256({a}, {b});",
           "{dst} = _mm512_and_si512({a}, {b});"});
  t.AddOp("hi_or_epi64",
          {2, false, "{dst} = {a} | {b};",
           "{dst} = _mm256_or_si256({a}, {b});",
           "{dst} = _mm512_or_si512({a}, {b});"});
  t.AddOp("hi_xor_epi64",
          {2, false, "{dst} = {a} ^ {b};",
           "{dst} = _mm256_xor_si256({a}, {b});",
           "{dst} = _mm512_xor_si512({a}, {b});"});
  t.AddOp("hi_srli_epi64",
          {1, true, "{dst} = {a} >> {imm};",
           "{dst} = _mm256_srli_epi64({a}, {imm});",
           "{dst} = _mm512_srli_epi64({a}, {imm});"});
  t.AddOp("hi_slli_epi64",
          {1, true, "{dst} = {a} << {imm};",
           "{dst} = _mm256_slli_epi64({a}, {imm});",
           "{dst} = _mm512_slli_epi64({a}, {imm});"});
  t.AddOp("hi_srlv_epi64",
          {2, false, "{dst} = {a} >> {b};",
           "{dst} = _mm256_srlv_epi64({a}, {b});",
           "{dst} = _mm512_srlv_epi64({a}, {b});"});
  t.AddOp("hi_sllv_epi64",
          {2, false, "{dst} = {a} << {b};",
           "{dst} = _mm256_sllv_epi64({a}, {b});",
           "{dst} = _mm512_sllv_epi64({a}, {b});"});
  t.AddOp("hi_load_epi64",
          {1, false, "{dst} = *({a});",
           "{dst} = _mm256_loadu_si256((const __m256i*)({a}));",
           "{dst} = _mm512_loadu_si512({a});"});
  t.AddOp("hi_store_epi64",
          {2, false, "*({a}) = {b};",
           "_mm256_storeu_si256((__m256i*)({a}), {b});",
           "_mm512_storeu_si512({a}, {b});"});
  t.AddOp("hi_gather_epi64",
          {2, false, "{dst} = ({a})[{b}];",
           "{dst} = _mm256_i64gather_epi64((const long long*)({a}), {b}, "
           "8);",
           "{dst} = _mm512_i64gather_epi64({b}, {a}, 8);"});
  // The shipped table must satisfy its own load-time contract.
  HEF_CHECK_MSG(t.Validate().ok(), "builtin description table invalid");
  return t;
}

void DescriptionTable::AddOp(const std::string& name, OpPattern pattern) {
  ops_[name] = std::move(pattern);
}

Status DescriptionTable::AddOpChecked(const std::string& name,
                                      OpPattern pattern) {
  HEF_RETURN_NOT_OK(ValidatePattern(name, pattern));
  ops_[name] = std::move(pattern);
  return Status::OK();
}

Status DescriptionTable::ValidatePattern(const std::string& name,
                                         const OpPattern& pattern) {
  auto fail = [&name](const std::string& isa, const std::string& msg) {
    return Status::InvalidArgument("description table op '" + name + "' " +
                                   isa + " pattern " + msg);
  };
  if (pattern.arity != 1 && pattern.arity != 2) {
    return Status::InvalidArgument("description table op '" + name +
                                   "' has arity " +
                                   std::to_string(pattern.arity) +
                                   "; only 1 or 2 are supported");
  }
  // -1: not yet seen a non-empty pattern; afterwards 0/1 and every other
  // non-empty ISA pattern must agree on whether the op produces {dst}.
  int produces_dst = -1;
  const std::pair<const char*, const std::string*> columns[] = {
      {"scalar", &pattern.scalar},
      {"avx2", &pattern.avx2},
      {"avx512", &pattern.avx512},
  };
  for (const auto& [isa, text] : columns) {
    if (text->empty()) continue;
    Result<std::set<std::string>> ph = Placeholders(*text);
    if (!ph.ok()) return fail(isa, "has an unterminated '{' placeholder");
    for (const std::string& p : ph.value()) {
      if (p != "dst" && p != "a" && p != "b" && p != "imm") {
        return fail(isa, "references unknown placeholder '{" + p + "}'");
      }
    }
    if (ph.value().count("a") == 0) {
      return fail(isa, "never references {a}");
    }
    const bool has_b = ph.value().count("b") != 0;
    if (pattern.arity == 2 && !has_b) {
      return fail(isa, "never references {b} despite arity 2");
    }
    if (pattern.arity == 1 && has_b) {
      return fail(isa, "references {b} despite arity 1");
    }
    const bool has_imm = ph.value().count("imm") != 0;
    if (pattern.has_immediate && !has_imm) {
      return fail(isa, "never references {imm} despite has_immediate");
    }
    if (!pattern.has_immediate && has_imm) {
      return fail(isa, "references {imm} without has_immediate");
    }
    const int dst = ph.value().count("dst") != 0 ? 1 : 0;
    if (produces_dst == -1) {
      produces_dst = dst;
    } else if (produces_dst != dst) {
      return fail(isa, "disagrees with the other ISA patterns on {dst}");
    }
  }
  if (produces_dst == -1) {
    return Status::InvalidArgument("description table op '" + name +
                                   "' has no pattern for any ISA");
  }
  return Status::OK();
}

Status DescriptionTable::Validate() const {
  for (const auto& [name, pattern] : ops_) {
    HEF_RETURN_NOT_OK(ValidatePattern(name, pattern));
  }
  return Status::OK();
}

bool DescriptionTable::Contains(const std::string& name) const {
  return ops_.count(name) != 0;
}

Result<OpPattern> DescriptionTable::Lookup(const std::string& name) const {
  auto it = ops_.find(name);
  if (it == ops_.end()) {
    return Status::NotFound("no description table entry for '" + name + "'");
  }
  return it->second;
}

const char* DescriptionTable::RegType(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "uint64_t";
    case Isa::kAvx2:
      return "__m256i";
    case Isa::kAvx512:
      return "__m512i";
  }
  return "uint64_t";
}

int DescriptionTable::Lanes(Isa isa) { return IsaLanes64(isa); }

}  // namespace hef
