// Description tables: the mapping from hybrid intermediate description ops
// to concrete scalar / AVX2 / AVX-512 statements (paper Table I and the
// "description table" inputs of Fig. 4/5). The translator instantiates
// these patterns when expanding an operator template.
//
// Pattern placeholders: {dst} {a} {b} destination/source variables,
// {imm} immediate operand (shifts).

#ifndef HEF_CODEGEN_DESCRIPTION_TABLE_H_
#define HEF_CODEGEN_DESCRIPTION_TABLE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "procinfo/cpu_features.h"

namespace hef {

struct OpPattern {
  // Number of variable arguments the op consumes (1 or 2). Shifts consume
  // one variable plus {imm}.
  int arity = 2;
  bool has_immediate = false;
  std::string scalar;
  std::string avx2;
  std::string avx512;

  const std::string& ForIsa(Isa isa) const {
    switch (isa) {
      case Isa::kScalar:
        return scalar;
      case Isa::kAvx2:
        return avx2;
      case Isa::kAvx512:
        return avx512;
    }
    return scalar;
  }
};

class DescriptionTable {
 public:
  // The built-in table covering every Table-I op the templates use.
  static DescriptionTable Builtin();

  // Registers or replaces an op (users extend the table for customized
  // operators, §VII).
  void AddOp(const std::string& name, OpPattern pattern);

  // As AddOp, but rejects patterns whose placeholders disagree with the
  // declared arity/has_immediate (e.g. an arity-2 op whose avx2 pattern
  // never references {b}). The returned Status names the offending op.
  Status AddOpChecked(const std::string& name, OpPattern pattern);

  // Placeholder/arity self-check for one op. Each non-empty ISA pattern
  // must reference {a}, reference {b} iff arity == 2, reference {imm} iff
  // has_immediate, use no unknown placeholders, and agree with the other
  // ISA patterns on whether {dst} is produced.
  static Status ValidatePattern(const std::string& name,
                                const OpPattern& pattern);

  // Validates every registered op (table-load check).
  Status Validate() const;

  bool Contains(const std::string& name) const;
  Result<OpPattern> Lookup(const std::string& name) const;

  // Register type / variable declaration spellings per ISA.
  static const char* RegType(Isa isa);
  // 64-bit lanes per register.
  static int Lanes(Isa isa);

 private:
  std::map<std::string, OpPattern> ops_;
};

}  // namespace hef

#endif  // HEF_CODEGEN_DESCRIPTION_TABLE_H_
