#include "codegen/offline_driver.h"

#include <dlfcn.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "codegen/translator.h"
#include "common/macros.h"

namespace hef {

CompiledKernel::~CompiledKernel() {
  if (handle_ != nullptr) {
    dlclose(handle_);
  }
}

OfflineDriver::OfflineDriver(std::string work_dir)
    : work_dir_(std::move(work_dir)) {
  ::mkdir(work_dir_.c_str(), 0755);  // EEXIST is fine
}

Result<CompiledKernel> OfflineDriver::Compile(const std::string& source,
                                              const std::string& tag) {
  const std::string base = work_dir_ + "/" + tag;
  const std::string cpp = base + ".cpp";
  const std::string so = base + ".so";
  const std::string log = base + ".log";

  {
    std::ofstream file(cpp);
    if (!file) {
      return Status::IoError("cannot write " + cpp);
    }
    file << source;
  }

  // The paper's synthetic-benchmark flags plus what shared objects need.
  const std::string cmd = "g++ -std=c++20 -O3 -march=native -mavx512f "
                          "-mavx512dq -fno-tree-vectorize -shared -fPIC -o " +
                          so + " " + cpp + " > " + log + " 2>&1";
  ++compile_count_;
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    return Status::IoError("compiler failed for " + tag +
                           " (see " + log + ")");
  }

  void* handle = dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (handle == nullptr) {
    return Status::IoError(std::string("dlopen failed: ") + dlerror());
  }
  auto fn = reinterpret_cast<CompiledKernel::Fn>(
      dlsym(handle, kGeneratedEntryPoint));
  if (fn == nullptr) {
    dlclose(handle);
    return Status::IoError("generated kernel entry point missing in " + so);
  }
  return CompiledKernel(handle, fn);
}

Result<CompiledKernel> OfflineDriver::CompileOperator(
    const OperatorTemplate& op, const DescriptionTable& table,
    const TranslateOptions& options, const std::string& tag) {
  TranslateOptions verified = options;
  verified.verify = true;  // unverified kernels never reach the compiler
  Result<std::string> source = TranslateOperator(op, table, verified);
  HEF_RETURN_NOT_OK(source.status());
  return Compile(source.value(), tag);
}

}  // namespace hef
