// OfflineDriver — the compile-and-test half of the paper's offline phase
// (Fig. 4 "Optimizer" box, Algorithm 2 line 4: exe <- compile(impl(node))):
// writes translated source to a scratch directory, invokes the system C++
// compiler with the paper's flags, loads the shared object, and returns a
// callable kernel.

#ifndef HEF_CODEGEN_OFFLINE_DRIVER_H_
#define HEF_CODEGEN_OFFLINE_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>

#include "codegen/translator.h"
#include "common/status.h"

namespace hef {

// A dlopen'ed generated kernel; unloads on destruction.
class CompiledKernel {
 public:
  using Fn = void (*)(const std::uint64_t* in, std::uint64_t* out,
                      std::size_t n, const std::uint64_t* aux);

  CompiledKernel(void* handle, Fn fn) : handle_(handle), fn_(fn) {}
  ~CompiledKernel();
  CompiledKernel(CompiledKernel&& other) noexcept
      : handle_(other.handle_), fn_(other.fn_) {
    other.handle_ = nullptr;
    other.fn_ = nullptr;
  }
  CompiledKernel& operator=(CompiledKernel&&) = delete;
  CompiledKernel(const CompiledKernel&) = delete;
  CompiledKernel& operator=(const CompiledKernel&) = delete;

  void Run(const std::uint64_t* in, std::uint64_t* out, std::size_t n,
           const std::uint64_t* aux = nullptr) const {
    fn_(in, out, n, aux);
  }

 private:
  void* handle_;
  Fn fn_;
};

class OfflineDriver {
 public:
  // `work_dir` holds generated sources and shared objects; created if
  // missing. The compiler command defaults to the paper's synthetic-bench
  // flag set (g++ -O3 -march=native -mavx512f -mavx512dq
  // -fno-tree-vectorize).
  explicit OfflineDriver(std::string work_dir = "/tmp/hef_codegen");

  // Compiles `source` (tagged for file naming) and loads the generated
  // entry point. Returns IoError with the compiler output path on failure.
  Result<CompiledKernel> Compile(const std::string& source,
                                 const std::string& tag);

  // Translates `op` and compiles the result. Verification is forced on —
  // the driver refuses to emit a kernel that has not passed the HID
  // verifier and the dependence checker, regardless of what the caller
  // set in `options.verify`.
  Result<CompiledKernel> CompileOperator(const OperatorTemplate& op,
                                         const DescriptionTable& table,
                                         const TranslateOptions& options,
                                         const std::string& tag);

  const std::string& work_dir() const { return work_dir_; }

  // Compiler invocations performed so far (for the search-cost bench).
  int compile_count() const { return compile_count_; }

 private:
  std::string work_dir_;
  int compile_count_ = 0;
};

}  // namespace hef

#endif  // HEF_CODEGEN_OFFLINE_DRIVER_H_
