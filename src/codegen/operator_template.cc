#include "codegen/operator_template.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "algo/murmur.h"

namespace hef {

namespace {

std::string Trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return "";
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

// Strips a '#' comment and trims.
std::string CleanLine(const std::string& line) {
  const auto hash = line.find('#');
  return Trim(hash == std::string::npos ? line : line.substr(0, hash));
}

bool IsIdentifier(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
      return false;
    }
  }
  return !std::isdigit(static_cast<unsigned char>(s[0]));
}

bool ParseUint(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoull(s.c_str(), &end, 0);  // 0: handles 0x... and decimal
  return end != nullptr && *end == '\0';
}

// Splits "hi_op(a, b)" -> op name + raw args.
bool SplitCall(const std::string& expr, std::string* op,
               std::vector<std::string>* args) {
  const auto open = expr.find('(');
  if (open == std::string::npos || expr.back() != ')') return false;
  *op = Trim(expr.substr(0, open));
  const std::string inner = expr.substr(open + 1, expr.size() - open - 2);
  args->clear();
  std::string current;
  for (char c : inner) {
    if (c == ',') {
      args->push_back(Trim(current));
      current.clear();
    } else {
      current += c;
    }
  }
  const std::string last = Trim(current);
  if (!last.empty()) args->push_back(last);
  return !op->empty();
}

}  // namespace

bool OperatorTemplate::IsVariable(const std::string& n) const {
  return std::find(variables.begin(), variables.end(), n) != variables.end();
}
bool OperatorTemplate::IsConstant(const std::string& n) const {
  return constants.count(n) != 0;
}
bool OperatorTemplate::IsPointer(const std::string& n) const {
  return std::find(pointer_params.begin(), pointer_params.end(), n) !=
         pointer_params.end();
}

namespace {

// Shared parser. `strict` adds the semantic layer Parse() has always
// enforced (declared names only, definition-before-use, load/store/gather
// shapes, required stream traffic); ParseSyntaxOnly() turns it off so the
// HID verifier can collect every semantic diagnostic itself.
Result<OperatorTemplate> ParseTemplate(const std::string& text,
                                       bool strict) {
  OperatorTemplate t;
  bool in_body = false;
  bool loaded = false;
  bool stored = false;
  // Variables assigned so far — reading an unassigned hybrid variable
  // would generate C++ reading indeterminate registers.
  std::set<std::string> assigned;

  std::istringstream stream(text);
  std::string raw;
  int line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    const std::string line = CleanLine(raw);
    if (line.empty()) continue;
    auto fail = [&](const std::string& msg) {
      return Status::InvalidArgument("template line " +
                                     std::to_string(line_no) + ": " + msg +
                                     " ('" + line + "')");
    };

    if (!in_body) {
      if (line.rfind("operator ", 0) == 0) {
        t.name = Trim(line.substr(9));
        if (!IsIdentifier(t.name)) return fail("bad operator name");
        continue;
      }
      if (line.rfind("ptr ", 0) == 0) {
        const std::string name = Trim(line.substr(4));
        if (!IsIdentifier(name)) return fail("bad ptr name");
        t.pointer_params.push_back(name);
        t.decl_lines.emplace(name, line_no);
        if (t.pointer_params.size() > 1) {
          return fail("at most one ptr parameter is supported");
        }
        continue;
      }
      if (line.rfind("const ", 0) == 0) {
        const auto eq = line.find('=');
        if (eq == std::string::npos) return fail("const needs '='");
        const std::string name = Trim(line.substr(6, eq - 6));
        std::uint64_t value = 0;
        if (!IsIdentifier(name) || !ParseUint(Trim(line.substr(eq + 1)),
                                              &value)) {
          return fail("bad const");
        }
        t.constants[name] = value;
        t.decl_lines.emplace(name, line_no);
        continue;
      }
      if (line.rfind("var ", 0) == 0) {
        const std::string name = Trim(line.substr(4));
        if (!IsIdentifier(name)) return fail("bad var name");
        t.variables.push_back(name);
        t.decl_lines.emplace(name, line_no);
        continue;
      }
      if (line == "body:") {
        in_body = true;
        continue;
      }
      return fail("unknown declaration");
    }

    // Body statement: "dst = hi_op(...)" or "hi_store_epi64(OUT, src)".
    TemplateStatement st;
    st.line = line_no;
    std::string expr = line;
    const auto eq = line.find('=');
    // '=' inside the call parens never happens in this grammar, so a
    // top-level '=' before '(' separates dst from the call.
    const auto paren = line.find('(');
    if (eq != std::string::npos && eq < paren) {
      st.dst = Trim(line.substr(0, eq));
      if (strict && !t.IsVariable(st.dst)) {
        return fail("assignment to undeclared variable '" + st.dst + "'");
      }
      if (!strict && !IsIdentifier(st.dst)) {
        return fail("bad destination name");
      }
      expr = Trim(line.substr(eq + 1));
    }
    std::vector<std::string> raw_args;
    if (!SplitCall(expr, &st.op, &raw_args)) return fail("malformed call");
    if (st.op.rfind("hi_", 0) != 0) return fail("ops must be hi_*");

    for (const std::string& arg : raw_args) {
      std::uint64_t imm = 0;
      if (arg == "IN" || arg == "OUT" || t.IsVariable(arg) ||
          t.IsConstant(arg) || t.IsPointer(arg)) {
        st.args.push_back(arg);
      } else if (ParseUint(arg, &imm)) {
        if (st.has_immediate) return fail("multiple immediates");
        st.immediate = imm;
        st.has_immediate = true;
      } else if (!strict && IsIdentifier(arg)) {
        // Undeclared name: kept for the verifier to flag (HID003).
        st.args.push_back(arg);
      } else {
        return fail("unknown argument '" + arg + "'");
      }
    }

    if (strict) {
      // Definition-before-use: every variable operand (beyond the store
      // source, checked below like any other) must have been assigned by
      // an earlier statement.
      for (const std::string& arg : st.args) {
        if (t.IsVariable(arg) && assigned.count(arg) == 0) {
          return fail("variable '" + arg + "' read before assignment");
        }
      }
    }
    if (!st.dst.empty()) assigned.insert(st.dst);

    // Structural checks.
    if (st.op == "hi_load_epi64") {
      if (strict &&
          (st.args.size() != 1 || st.args[0] != "IN" || st.dst.empty())) {
        return fail("load must be '<var> = hi_load_epi64(IN)'");
      }
      loaded = true;
    } else if (st.op == "hi_store_epi64") {
      if (strict &&
          (st.args.size() != 2 || st.args[0] != "OUT" || !st.dst.empty())) {
        return fail("store must be 'hi_store_epi64(OUT, <var>)'");
      }
      stored = true;
    } else if (st.op == "hi_gather_epi64") {
      if (strict && (st.args.size() != 2 || !t.IsPointer(st.args[0]) ||
                     st.dst.empty())) {
        return fail("gather must be '<var> = hi_gather_epi64(<ptr>, <var>)'");
      }
    } else if (strict) {
      if (st.dst.empty()) return fail("computational op needs a dst");
      for (const std::string& arg : st.args) {
        if (arg == "IN" || arg == "OUT" || t.IsPointer(arg)) {
          return fail("bad operand '" + arg + "'");
        }
      }
    }
    t.body.push_back(std::move(st));
  }

  if (t.name.empty()) return Status::InvalidArgument("missing operator name");
  if (!in_body || (strict && t.body.empty())) {
    return Status::InvalidArgument("missing body");
  }
  if (strict && (!loaded || !stored)) {
    return Status::InvalidArgument(
        "body must load from IN and store to OUT");
  }
  return t;
}

}  // namespace

Result<OperatorTemplate> OperatorTemplate::Parse(const std::string& text) {
  return ParseTemplate(text, /*strict=*/true);
}

Result<OperatorTemplate> OperatorTemplate::ParseSyntaxOnly(
    const std::string& text) {
  return ParseTemplate(text, /*strict=*/false);
}

Result<OperatorTemplate> OperatorTemplate::ParseFile(
    const std::string& path) {
  std::ifstream file(path);
  if (!file) {
    return Status::IoError("cannot read template file '" + path + "'");
  }
  std::ostringstream text;
  text << file.rdbuf();
  return Parse(text.str());
}

std::string BuiltinMurmurTemplate() {
  char buf[1400];
  const std::uint64_t h0 = kMurmurDefaultSeed ^ (8ULL * kMurmurM);
  std::snprintf(buf, sizeof(buf),
                "operator murmur\n"
                "const m = 0x%llx\n"
                "const h0 = 0x%llx\n"
                "var data\n"
                "var k\n"
                "var h\n"
                "body:\n"
                "data = hi_load_epi64(IN)\n"
                "k = hi_mullo_epi64(data, m)\n"
                "data = hi_srli_epi64(k, 47)\n"
                "k = hi_xor_epi64(data, k)\n"
                "k = hi_mullo_epi64(k, m)\n"
                "h = hi_xor_epi64(h0, k)\n"
                "h = hi_mullo_epi64(h, m)\n"
                "data = hi_srli_epi64(h, 47)\n"
                "h = hi_xor_epi64(h, data)\n"
                "h = hi_mullo_epi64(h, m)\n"
                "data = hi_srli_epi64(h, 47)\n"
                "h = hi_xor_epi64(h, data)\n"
                "hi_store_epi64(OUT, h)\n",
                static_cast<unsigned long long>(kMurmurM),
                static_cast<unsigned long long>(h0));
  return buf;
}

std::string BuiltinCrc64Template() {
  std::string t =
      "operator crc64\n"
      "ptr table\n"
      "const bytemask = 0xff\n"
      "var data\n"
      "var crc\n"
      "var idx\n"
      "body:\n"
      "data = hi_load_epi64(IN)\n"
      "crc = hi_xor_epi64(data, data)\n";  // crc = 0
  for (int round = 0; round < 8; ++round) {
    t +=
        "idx = hi_xor_epi64(crc, data)\n"
        "idx = hi_and_epi64(idx, bytemask)\n"
        "idx = hi_gather_epi64(table, idx)\n"
        "crc = hi_srli_epi64(crc, 8)\n"
        "crc = hi_xor_epi64(idx, crc)\n"
        "data = hi_srli_epi64(data, 8)\n";
  }
  t += "hi_store_epi64(OUT, crc)\n";
  return t;
}

}  // namespace hef
