// Operator templates: the paper's representation of an operator written
// once in the hybrid intermediate description (Fig. 6(a)), parsed from a
// small line-oriented language that the translator (Algorithm 1) expands
// into concrete hybrid code.
//
// Template grammar (one statement per line, '#' comments):
//
//   operator <name>
//   ptr <name>                      # optional pointer parameter (gathers)
//   const <name> = <integer>        # constant: one scalar + one SIMD copy
//   var <name>                      # hybrid variable: unrolled per instance
//   body:
//   <dst> = hi_load_epi64(IN)       # stream load (offset per instance)
//   <dst> = hi_<op>(<a>[, <b>])     # computational statement
//   <dst> = hi_srli_epi64(<a>, <imm>)
//   <dst> = hi_gather_epi64(<ptr>, <idx>)
//   hi_store_epi64(OUT, <src>)      # stream store
//
// Declarations must precede the body (the translator's rule, §IV-B), and
// nested calls are not allowed — exactly one HID op per line.

#ifndef HEF_CODEGEN_OPERATOR_TEMPLATE_H_
#define HEF_CODEGEN_OPERATOR_TEMPLATE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace hef {

struct TemplateStatement {
  std::string op;                  // "hi_mullo_epi64", ...
  std::string dst;                 // empty for stores
  std::vector<std::string> args;   // variable / constant / ptr names, or
                                   // "IN" / "OUT" stream markers
  std::uint64_t immediate = 0;     // shift counts
  bool has_immediate = false;
  int line = 0;                    // 1-based source line (diagnostics)
};

struct OperatorTemplate {
  std::string name;
  std::vector<std::string> pointer_params;           // at most one
  std::map<std::string, std::uint64_t> constants;    // name -> value
  std::vector<std::string> variables;
  std::vector<TemplateStatement> body;
  // Source line of each declaration (ptr/const/var), for diagnostics.
  std::map<std::string, int> decl_lines;

  // Parses and validates a template. Errors carry the offending line.
  static Result<OperatorTemplate> Parse(const std::string& text);

  // Grammar-only parse: accepts templates that are syntactically well
  // formed but semantically wrong (undeclared names, reads before
  // assignment, malformed load/store/gather shapes, missing stream
  // traffic). The HID verifier (src/analysis) consumes this form so it
  // can report *all* semantic diagnostics with rule IDs instead of
  // stopping at the first, the way Parse() does.
  static Result<OperatorTemplate> ParseSyntaxOnly(const std::string& text);

  // Reads and parses a template file (IoError if unreadable).
  static Result<OperatorTemplate> ParseFile(const std::string& path);

  bool IsVariable(const std::string& n) const;
  bool IsConstant(const std::string& n) const;
  bool IsPointer(const std::string& n) const;
};

// Templates for the paper's two synthetic operators.
std::string BuiltinMurmurTemplate();
std::string BuiltinCrc64Template();

}  // namespace hef

#endif  // HEF_CODEGEN_OPERATOR_TEMPLATE_H_
