// Translator — the literal implementation of paper Algorithm 1: expands an
// operator template (hybrid intermediate description) into a concrete C++
// source file with `v` SIMD statements and `s` scalar statements per pack,
// replicated `p` times, using the description tables to lower each HID op
// per ISA. Variable instances follow the Fig. 6 naming scheme
// (`data_v0_p0`, `data_s2_p1`, ...); constants unroll to one scalar and
// one SIMD copy; statements expand line-major, so all instances of
// template line k precede any instance of line k+1 — adjacent generated
// statements are data-independent, which is the whole point of pack.

#ifndef HEF_CODEGEN_TRANSLATOR_H_
#define HEF_CODEGEN_TRANSLATOR_H_

#include <string>

#include "codegen/description_table.h"
#include "codegen/operator_template.h"
#include "hybrid/hybrid_config.h"

namespace hef {

struct TranslateOptions {
  HybridConfig config{1, 0, 1};
  // ISA of the vector statements; scalar statements always use the scalar
  // column of the description table.
  Isa vector_isa = Isa::kAvx512;
  // Run the HID verifier over the template before expansion and the
  // dependence checker over the emitted source after (src/analysis).
  // Verification failures return InvalidArgument; a dependence-distance
  // violation in the output returns Internal (it would mean Algorithm 1's
  // line-major expansion is broken). Callers re-translating an
  // already-verified template in a hot loop may turn this off.
  bool verify = true;
};

// Every generated kernel exports this fixed entry point so the offline
// driver can dlsym it regardless of configuration:
//   extern "C" void hef_generated_kernel(const uint64_t* in, uint64_t* out,
//                                        size_t n, const uint64_t* aux);
// `aux` carries the template's single ptr parameter (nullptr if none).
inline constexpr char kGeneratedEntryPoint[] = "hef_generated_kernel";

// Translates the template to a complete, self-contained C++ source string.
// Fails if an op is missing from the description table or the config is
// invalid.
Result<std::string> TranslateOperator(const OperatorTemplate& op,
                                      const DescriptionTable& table,
                                      const TranslateOptions& options);

}  // namespace hef

#endif  // HEF_CODEGEN_TRANSLATOR_H_
