// 64-byte-aligned typed buffers for SIMD kernels.
//
// AVX-512 loads/stores are fastest (and _mm512_load_* is only legal) on
// 64-byte-aligned addresses; every column and hash-table slab in HEF is
// allocated through AlignedBuffer so kernels can use aligned accesses and
// never split cache lines.

#ifndef HEF_COMMON_ALIGNED_BUFFER_H_
#define HEF_COMMON_ALIGNED_BUFFER_H_

#include <cstddef>
#include <cstdlib>
#include <cstring>
#include <type_traits>
#include <utility>

#include "common/macros.h"

namespace hef {

inline constexpr std::size_t kCacheLineBytes = 64;

// A move-only, 64-byte aligned array of trivially copyable T. Unlike
// std::vector it guarantees alignment, never reallocates behind the caller's
// back, and rounds the allocation up to a whole number of cache lines so
// SIMD kernels may safely over-read up to the line boundary of the tail.
template <typename T>
class AlignedBuffer {
  static_assert(std::is_trivially_copyable_v<T>,
                "AlignedBuffer only holds trivially copyable element types");

 public:
  AlignedBuffer() = default;

  // Allocates `size` elements. `padding_elems` extra elements are allocated
  // (but not counted in size()) so vector kernels may over-read/over-write
  // past the logical end; they are zero-initialized.
  explicit AlignedBuffer(std::size_t size, std::size_t padding_elems = 0) {
    Allocate(size, padding_elems);
  }

  AlignedBuffer(AlignedBuffer&& other) noexcept
      : data_(std::exchange(other.data_, nullptr)),
        size_(std::exchange(other.size_, 0)),
        capacity_(std::exchange(other.capacity_, 0)) {}

  AlignedBuffer& operator=(AlignedBuffer&& other) noexcept {
    if (this != &other) {
      Free();
      data_ = std::exchange(other.data_, nullptr);
      size_ = std::exchange(other.size_, 0);
      capacity_ = std::exchange(other.capacity_, 0);
    }
    return *this;
  }

  HEF_DISALLOW_COPY_AND_ASSIGN(AlignedBuffer);

  ~AlignedBuffer() { Free(); }

  // Discards current contents and allocates a fresh zeroed region.
  void Allocate(std::size_t size, std::size_t padding_elems = 0) {
    Free();
    size_ = size;
    std::size_t bytes = (size + padding_elems) * sizeof(T);
    // Round up to whole cache lines; keep a minimum of one line so data()
    // is never null for zero-size buffers used as sentinels.
    bytes = ((bytes + kCacheLineBytes - 1) / kCacheLineBytes) *
            kCacheLineBytes;
    if (bytes == 0) {
      bytes = kCacheLineBytes;
    }
    capacity_ = bytes / sizeof(T);
    data_ = static_cast<T*>(std::aligned_alloc(kCacheLineBytes, bytes));
    HEF_CHECK_MSG(data_ != nullptr, "aligned_alloc of %zu bytes failed",
                  bytes);
    std::memset(data_, 0, bytes);
  }

  T* data() { return data_; }
  const T* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  // Elements actually allocated (size + padding, rounded to cache lines).
  std::size_t capacity() const { return capacity_; }

  T& operator[](std::size_t i) {
    HEF_DCHECK(i < capacity_);
    return data_[i];
  }
  const T& operator[](std::size_t i) const {
    HEF_DCHECK(i < capacity_);
    return data_[i];
  }

  T* begin() { return data_; }
  T* end() { return data_ + size_; }
  const T* begin() const { return data_; }
  const T* end() const { return data_ + size_; }

  void Fill(T value) {
    for (std::size_t i = 0; i < size_; ++i) {
      data_[i] = value;
    }
  }

 private:
  void Free() {
    std::free(data_);
    data_ = nullptr;
    size_ = 0;
    capacity_ = 0;
  }

  T* data_ = nullptr;
  std::size_t size_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace hef

#endif  // HEF_COMMON_ALIGNED_BUFFER_H_
