#include "common/flags.h"

#include <cstdio>
#include <cstdlib>

namespace hef {

namespace {

bool ParseInt64(const std::string& text, std::int64_t* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  *out = static_cast<std::int64_t>(v);
  return true;
}

bool ParseDouble(const std::string& text, double* out) {
  if (text.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(text.c_str(), &end);
  if (end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

bool ParseBool(const std::string& text, bool* out) {
  if (text == "true" || text == "1" || text.empty()) {
    *out = true;
    return true;
  }
  if (text == "false" || text == "0") {
    *out = false;
    return true;
  }
  return false;
}

}  // namespace

void FlagParser::AddInt64(const std::string& name, std::int64_t default_value,
                          const std::string& help) {
  flags_[name] = Flag{Type::kInt64, std::to_string(default_value), help};
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kDouble, std::to_string(default_value), help};
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  flags_[name] = Flag{Type::kString, default_value, help};
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  flags_[name] = Flag{Type::kBool, default_value ? "true" : "false", help};
}

Status FlagParser::SetValue(const std::string& name,
                            const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag --" + name);
  }
  // Validate the textual value against the declared type.
  switch (it->second.type) {
    case Type::kInt64: {
      std::int64_t v;
      if (!ParseInt64(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects an integer, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kDouble: {
      double v;
      if (!ParseDouble(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects a number, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kBool: {
      bool v;
      if (!ParseBool(value, &v)) {
        return Status::InvalidArgument("flag --" + name +
                                       " expects true/false, got '" + value +
                                       "'");
      }
      break;
    }
    case Type::kString:
      break;
  }
  it->second.value = value;
  return Status::OK();
}

Status FlagParser::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      help_requested_ = true;
      return Status::OK();
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    std::string name;
    std::string value;
    if (eq != std::string::npos) {
      name = arg.substr(0, eq);
      value = arg.substr(eq + 1);
    } else {
      name = arg;
      auto it = flags_.find(name);
      if (it != flags_.end() && it->second.type == Type::kBool) {
        value = "true";  // bare boolean switch
      } else if (i + 1 < argc) {
        value = argv[++i];
      } else {
        return Status::InvalidArgument("flag --" + name + " missing value");
      }
    }
    HEF_RETURN_NOT_OK(SetValue(name, value));
  }
  return Status::OK();
}

std::int64_t FlagParser::GetInt64(const std::string& name) const {
  auto it = flags_.find(name);
  HEF_CHECK_MSG(it != flags_.end(), "undeclared flag %s", name.c_str());
  std::int64_t v = 0;
  HEF_CHECK(ParseInt64(it->second.value, &v));
  return v;
}

double FlagParser::GetDouble(const std::string& name) const {
  auto it = flags_.find(name);
  HEF_CHECK_MSG(it != flags_.end(), "undeclared flag %s", name.c_str());
  double v = 0;
  HEF_CHECK(ParseDouble(it->second.value, &v));
  return v;
}

std::string FlagParser::GetString(const std::string& name) const {
  auto it = flags_.find(name);
  HEF_CHECK_MSG(it != flags_.end(), "undeclared flag %s", name.c_str());
  return it->second.value;
}

bool FlagParser::GetBool(const std::string& name) const {
  auto it = flags_.find(name);
  HEF_CHECK_MSG(it != flags_.end(), "undeclared flag %s", name.c_str());
  bool v = false;
  HEF_CHECK(ParseBool(it->second.value, &v));
  return v;
}

void FlagParser::PrintUsage(const char* program) const {
  std::fprintf(stderr, "usage: %s [flags]\n", program);
  for (const auto& [name, flag] : flags_) {
    std::fprintf(stderr, "  --%-20s %s (default: %s)\n", name.c_str(),
                 flag.help.c_str(), flag.value.c_str());
  }
}

}  // namespace hef
