// Minimal command-line flag parsing for the benchmark harnesses and
// examples. Supports --name=value and --name value forms plus boolean
// switches (--verbose). Not a general-purpose library: unknown flags are an
// error so harness typos fail loudly instead of silently benchmarking the
// wrong configuration.

#ifndef HEF_COMMON_FLAGS_H_
#define HEF_COMMON_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace hef {

class FlagParser {
 public:
  // Registers flags before Parse(). `help` is printed by PrintUsage().
  void AddInt64(const std::string& name, std::int64_t default_value,
                const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  // Parses argv. Returns InvalidArgument on unknown flags or malformed
  // values. "--help" sets HelpRequested() and returns OK.
  Status Parse(int argc, char** argv);

  std::int64_t GetInt64(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  std::string GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  bool HelpRequested() const { return help_requested_; }
  void PrintUsage(const char* program) const;

  // Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  enum class Type { kInt64, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string value;  // textual representation
    std::string help;
  };

  Status SetValue(const std::string& name, const std::string& value);

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace hef

#endif  // HEF_COMMON_FLAGS_H_
