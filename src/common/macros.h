// Core macros shared by every HEF module.
//
// HEF library code does not use exceptions (recoverable errors are
// represented with hef::Status / hef::Result). Invariant violations and
// programming errors abort through HEF_CHECK, which prints the failing
// condition and location before calling std::abort().

#ifndef HEF_COMMON_MACROS_H_
#define HEF_COMMON_MACROS_H_

#include <cstdio>
#include <cstdlib>

// Force-inline marker for hot kernel statements. The hybrid runner relies on
// the compiler flattening kernel stages so each (v, s, p) instance becomes a
// straight-line statement group, as in the paper's generated code (Fig. 6).
#define HEF_INLINE inline __attribute__((always_inline))

// Never-inline marker, used to pin measurement boundaries in benchmarks.
#define HEF_NOINLINE __attribute__((noinline))

#define HEF_LIKELY(x) (__builtin_expect(!!(x), 1))
#define HEF_UNLIKELY(x) (__builtin_expect(!!(x), 0))

// Restrict-qualified pointer helper for kernel signatures.
#define HEF_RESTRICT __restrict__

// Aborts with a message when `condition` is false. Active in all build
// types: kernel correctness bugs must never be silently optimized away in
// Release benchmarking builds.
#define HEF_CHECK(condition)                                              \
  do {                                                                    \
    if (HEF_UNLIKELY(!(condition))) {                                     \
      std::fprintf(stderr, "HEF_CHECK failed: %s at %s:%d\n", #condition, \
                   __FILE__, __LINE__);                                   \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

// HEF_CHECK with a printf-style explanation appended.
#define HEF_CHECK_MSG(condition, ...)                                     \
  do {                                                                    \
    if (HEF_UNLIKELY(!(condition))) {                                     \
      std::fprintf(stderr, "HEF_CHECK failed: %s at %s:%d: ", #condition, \
                   __FILE__, __LINE__);                                   \
      std::fprintf(stderr, __VA_ARGS__);                                  \
      std::fprintf(stderr, "\n");                                         \
      std::abort();                                                       \
    }                                                                     \
  } while (0)

// Debug-only check; compiled out of Release kernels where the cost would
// perturb measurements.
#ifdef NDEBUG
#define HEF_DCHECK(condition) \
  do {                        \
  } while (0)
#else
#define HEF_DCHECK(condition) HEF_CHECK(condition)
#endif

#define HEF_DISALLOW_COPY_AND_ASSIGN(TypeName) \
  TypeName(const TypeName&) = delete;          \
  TypeName& operator=(const TypeName&) = delete

#endif  // HEF_COMMON_MACROS_H_
