// Deterministic pseudo-random number generation for data generators and
// property tests. All HEF data generation is seeded so every benchmark and
// test run sees identical datasets.

#ifndef HEF_COMMON_RNG_H_
#define HEF_COMMON_RNG_H_

#include <cstdint>

#include "common/macros.h"

namespace hef {

// xoshiro256** by Blackman & Vigna — fast, high-quality, and fully
// deterministic across platforms (unlike std::mt19937 + distributions,
// whose mapping to ranges is implementation-defined).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the 256-bit state, as
    // recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [lo, hi] inclusive. Uses Lemire's multiply-shift
  // bounded generation (no modulo bias worth caring about at these ranges).
  std::uint64_t Uniform(std::uint64_t lo, std::uint64_t hi) {
    HEF_DCHECK(lo <= hi);
    const std::uint64_t range = hi - lo + 1;
    if (range == 0) {  // full 64-bit range
      return Next();
    }
    const unsigned __int128 wide =
        static_cast<unsigned __int128>(Next()) * range;
    return lo + static_cast<std::uint64_t>(wide >> 64);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Bernoulli draw with probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace hef

#endif  // HEF_COMMON_RNG_H_
