// Error handling without exceptions: hef::Status for operations that can
// fail, hef::Result<T> for fallible value producers. Modeled on the
// Arrow/Abseil convention the coding guides in this repository follow.

#ifndef HEF_COMMON_STATUS_H_
#define HEF_COMMON_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "common/macros.h"

namespace hef {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kUnsupported,
  kIoError,
  kInternal,
  kCancelled,
  kDeadlineExceeded,
};

// Returns a short human-readable name ("InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// A cheap, copyable success-or-error value. The OK status carries no
// allocation; error statuses carry a code and a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Renders "OK" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-Status union. `value()` aborts if the result holds an error;
// call `ok()` (or `status()`) first on fallible paths.
template <typename T>
class Result {
 public:
  // Intentionally implicit so `return value;` and `return status;` both work
  // at call sites, matching the Arrow/Abseil Result idiom.
  Result(T value) : value_(std::move(value)) {}   // NOLINT(runtime/explicit)
  Result(Status status) : value_(std::move(status)) {  // NOLINT
    HEF_CHECK_MSG(!std::get<Status>(value_).ok(),
                  "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(value_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(value_);
  }

  const T& value() const& {
    HEF_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(value_).ToString().c_str());
    return std::get<T>(value_);
  }
  T& value() & {
    HEF_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(value_).ToString().c_str());
    return std::get<T>(value_);
  }
  T&& value() && {
    HEF_CHECK_MSG(ok(), "Result::value() on error: %s",
                  std::get<Status>(value_).ToString().c_str());
    return std::get<T>(std::move(value_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> value_;
};

// Propagates a non-OK Status out of the enclosing function.
#define HEF_RETURN_NOT_OK(expr)          \
  do {                                   \
    ::hef::Status _st = (expr);          \
    if (HEF_UNLIKELY(!_st.ok())) {       \
      return _st;                        \
    }                                    \
  } while (0)

}  // namespace hef

#endif  // HEF_COMMON_STATUS_H_
