// Wall-clock measurement helpers for the benchmark harnesses.
//
// All timing in the repository reads CLOCK_MONOTONIC_RAW: unlike
// CLOCK_MONOTONIC (what std::chrono::steady_clock uses on Linux) it is
// not subject to NTP slewing, so microsecond-scale kernel measurements
// are never stretched or compressed by clock discipline while a bench
// runs. Telemetry spans use the same clock so spans and stopwatch
// readings land on one timeline.

#ifndef HEF_COMMON_STOPWATCH_H_
#define HEF_COMMON_STOPWATCH_H_

#include <ctime>

#include <cstdint>

namespace hef {

// Nanoseconds on the CLOCK_MONOTONIC_RAW timeline.
inline std::uint64_t MonotonicNanos() {
  timespec ts;
#ifdef CLOCK_MONOTONIC_RAW
  clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
#else
  clock_gettime(CLOCK_MONOTONIC, &ts);
#endif
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Monotonic nanosecond stopwatch. Start() resets, Elapsed*() reads without
// stopping, so a single Stopwatch can bracket multiple phases.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = MonotonicNanos(); }

  std::uint64_t ElapsedNanos() const { return MonotonicNanos() - start_; }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  std::uint64_t start_ = 0;
};

// Prevents the compiler from optimizing away a computed value. Used to pin
// benchmark kernels whose results are otherwise dead.
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace hef

#endif  // HEF_COMMON_STOPWATCH_H_
