// Wall-clock measurement helpers for the benchmark harnesses.

#ifndef HEF_COMMON_STOPWATCH_H_
#define HEF_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace hef {

// Monotonic nanosecond stopwatch. Start() resets, Elapsed*() reads without
// stopping, so a single Stopwatch can bracket multiple phases.
class Stopwatch {
 public:
  Stopwatch() { Start(); }

  void Start() { start_ = Clock::now(); }

  std::uint64_t ElapsedNanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) * 1e-6;
  }

  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// Prevents the compiler from optimizing away a computed value. Used to pin
// benchmark kernels whose results are otherwise dead.
template <typename T>
inline void DoNotOptimize(const T& value) {
  asm volatile("" : : "r,m"(value) : "memory");
}

}  // namespace hef

#endif  // HEF_COMMON_STOPWATCH_H_
