#include "common/text_table.h"

#include <cctype>
#include <cstdio>

namespace hef {

namespace {

bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  bool digit_seen = false;
  for (char c : cell) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit_seen = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'x' &&
               c != '%') {
      return false;
    }
  }
  return digit_seen;
}

}  // namespace

std::string TextTable::Num(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string TextTable::ToString() const {
  if (rows_.empty()) return "";
  std::size_t cols = 0;
  for (const auto& row : rows_) cols = std::max(cols, row.size());
  std::vector<std::size_t> width(cols, 0);
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::string out;
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    const auto& row = rows_[r];
    for (std::size_t c = 0; c < cols; ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      const bool right = LooksNumeric(cell);
      const std::size_t pad = width[c] - cell.size();
      if (right) out.append(pad, ' ');
      out += cell;
      if (!right) out.append(pad, ' ');
      if (c + 1 < cols) out += "  ";
    }
    out += '\n';
    if (r == 0 && has_header_) {
      for (std::size_t c = 0; c < cols; ++c) {
        out.append(width[c], '-');
        if (c + 1 < cols) out += "  ";
      }
      out += '\n';
    }
  }
  return out;
}

std::string TextTable::ToCsv() const {
  std::string out;
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      out += row[c];
    }
    out += '\n';
  }
  return out;
}

}  // namespace hef
