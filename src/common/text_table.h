// Aligned text-table rendering for benchmark harness output. The paper
// exhibits (Tables III-IX, Figures 8-14) are printed as plain-text tables so
// bench output is directly comparable to the paper's rows/series.

#ifndef HEF_COMMON_TEXT_TABLE_H_
#define HEF_COMMON_TEXT_TABLE_H_

#include <string>
#include <vector>

namespace hef {

// Collects rows of cells and renders them with per-column alignment.
// First AddRow() call after construction is treated as the header when
// `has_header` is true.
class TextTable {
 public:
  explicit TextTable(bool has_header = true) : has_header_(has_header) {}

  void AddRow(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  // Convenience: formats a double with `digits` decimals.
  static std::string Num(double value, int digits = 2);

  // Renders the table with two-space column gaps and a dashed rule under the
  // header. Numeric-looking cells are right-aligned.
  std::string ToString() const;

  // Renders rows as comma-separated values (for downstream plotting).
  std::string ToCsv() const;

 private:
  bool has_header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hef

#endif  // HEF_COMMON_TEXT_TABLE_H_
