// Clang thread-safety annotations (-Wthread-safety), compiled out on
// other compilers. Annotating a member with HEF_GUARDED_BY(mu_) makes
// clang prove, at compile time, that every access holds the mutex — the
// concurrency invariants of TaskPool, PlanCache, and FaultRegistry become
// machine-checked instead of comment-only. The CI clang job builds with
// -Wthread-safety -Werror; g++ builds see empty macros.
//
// Only the subset this codebase uses is defined; see clang's
// "Thread Safety Analysis" documentation for the full attribute family.

#ifndef HEF_COMMON_THREAD_ANNOTATIONS_H_
#define HEF_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(guarded_by)
#define HEF_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef HEF_THREAD_ANNOTATION
#define HEF_THREAD_ANNOTATION(x)
#endif

// On a data member: may only be read or written while holding `mu`.
#define HEF_GUARDED_BY(mu) HEF_THREAD_ANNOTATION(guarded_by(mu))

// On a pointer member: the *pointee* is protected by `mu` (the pointer
// itself is not).
#define HEF_PT_GUARDED_BY(mu) HEF_THREAD_ANNOTATION(pt_guarded_by(mu))

// On a function: callers must hold `mu` / must NOT hold `mu`.
#define HEF_REQUIRES(...) \
  HEF_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define HEF_EXCLUDES(...) \
  HEF_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// On a function: acquires / releases `mu` as a side effect.
#define HEF_ACQUIRE(...) \
  HEF_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define HEF_RELEASE(...) \
  HEF_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

// On a class: it is a lockable capability (mutex wrappers).
#define HEF_CAPABILITY(x) HEF_THREAD_ANNOTATION(capability(x))
#define HEF_SCOPED_CAPABILITY HEF_THREAD_ANNOTATION(scoped_lockable)

// On a function: opt out of the analysis. Used where the locking pattern
// is correct but outside what the checker can follow (e.g. a worker loop
// that unlocks around the task body, or a destructor that joins threads
// after releasing the lock).
#define HEF_NO_THREAD_SAFETY_ANALYSIS \
  HEF_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // HEF_COMMON_THREAD_ANNOTATIONS_H_
