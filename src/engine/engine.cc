#include "engine/engine.h"

#include <algorithm>
#include <atomic>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "engine/explain.h"
#include "engine/primitives.h"
#include "engine/scan.h"
#include "engine/star_plan.h"
#include "exec/fault_injection.h"
#include "exec/plan_cache.h"
#include "exec/runtime.h"
#include "exec/task_pool.h"
#include "perf/perf_counters.h"
#include "ssb/chunked_fact.h"
#include "storage/decode.h"
#include "table/bloom_filter.h"
#include "table/group_agg.h"
#include "table/probe.h"
#include "telemetry/diagnostics.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace hef {

namespace {

std::uint64_t SaturatingDelta(std::uint64_t after, std::uint64_t before) {
  return after > before ? after - before : 0;
}

}  // namespace

struct SsbEngine::Impl {
  const ssb::SsbDatabase& db;
  EngineConfig config;

  // One worker's pipeline scratch buffers (each thread owns a set).
  struct Buffers {
    AlignedBuffer<std::uint64_t> rows, keys, vals_a, vals_b, pos, scratch,
        bloom_out, bitmap_a, bitmap_b;
    std::array<AlignedBuffer<std::uint64_t>, 4> payloads;
    // Chunked scan: one decoded-block buffer per distinct plan column
    // (at most 4 joins + 2 values, or 3 filters + 2 values) plus the
    // decode kernels' iota/staging scratch. Allocated lazily on the
    // first chunked ExecuteRange, so flat-scan engines pay nothing.
    std::array<AlignedBuffer<std::uint64_t>, 8> decoded;
    storage::DecodeScratch decode_scratch;

    explicit Buffers(std::size_t block) {
      rows.Allocate(block, 64);
      keys.Allocate(block, 64);
      vals_a.Allocate(block, 64);
      vals_b.Allocate(block, 64);
      pos.Allocate(block, 64);
      scratch.Allocate(block, 64);
      bloom_out.Allocate(block, 64);
      bitmap_a.Allocate(BitmapWords(block), 8);
      bitmap_b.Allocate(BitmapWords(block), 8);
      for (auto& p : payloads) p.Allocate(block, 64);
    }
  };

  // Buffers for the single-threaded path, built once per engine.
  Buffers main_buffers;

  // One operator's accumulated statistics within a worker (merged across
  // workers into QueryResult::operator_stats). Plain integers: each worker
  // owns its own vector, so the hot-loop bumps need no atomics.
  struct OpAcc {
    std::uint64_t nanos = 0;
    std::uint64_t calls = 0;
    std::uint64_t rows_in = 0;
    std::uint64_t rows_out = 0;
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t llc_misses = 0;
    bool pmu_valid = false;
    bool pmu_scaled = false;

    void Merge(const OpAcc& o) {
      nanos += o.nanos;
      calls += o.calls;
      rows_in += o.rows_in;
      rows_out += o.rows_out;
      instructions += o.instructions;
      cycles += o.cycles;
      llc_misses += o.llc_misses;
      pmu_valid = pmu_valid || o.pmu_valid;
      pmu_scaled = pmu_scaled || o.pmu_scaled;
    }
  };

  // One fully-built query: the bound plan plus its Bloom filters (which
  // share the plan's lifetime so cache hits skip BuildBlooms too).
  struct PlanEntry {
    BoundPlan bound;
    std::vector<std::unique_ptr<BloomFilter>> blooms;
    std::uint64_t bloom_nanos = 0;
    // Chunk-pruning verdicts (empty unless chunked_scan && scan_pruning).
    // Shares the plan's lifetime: chunk statistics and predicate ranges
    // are both fixed per query, so cache hits skip the pass too.
    ChunkPruning pruning;
  };

  // Built plans keyed by query, reused across Run() calls while
  // config.plan_cache is on.
  exec::PlanCache<QueryId, PlanEntry> plan_cache{"engine.plan_cache"};

  Impl(const ssb::SsbDatabase& database, EngineConfig cfg)
      : db(database),
        config(cfg),
        main_buffers(static_cast<std::size_t>(cfg.block_size)) {
    HEF_CHECK_MSG(config.block_size >= 64, "block size %d too small",
                  config.block_size);
    HEF_CHECK_MSG(config.threads >= 0 && config.threads <= 256,
                  "thread count %d out of range", config.threads);
    if (config.chunked_scan && db.chunked != nullptr) {
      auto& registry = telemetry::MetricsRegistry::Get();
      registry.gauge("storage.encoded_bytes")
          .Set(static_cast<double>(db.chunked->EncodedBytes()));
      registry.gauge("storage.plain_bytes")
          .Set(static_cast<double>(db.chunked->PlainBytes()));
      registry.gauge("storage.chunks")
          .Set(static_cast<double>(db.chunked->num_chunks()));
    }
  }

  // Builds one query's plan + blooms. With multiple workers configured,
  // the dimension hash tables build through the partitioned InsertBatch
  // path on the persistent pool; layout and plan are identical either way.
  PlanEntry BuildEntry(QueryId id) {
    PlanEntry entry;
    {
      HEF_TRACE_SPAN("engine.build");
      PlanBuildOptions options;
      const int workers = exec::ResolveThreads(config.threads);
      if (workers > 1) {
        options.parallel_for = [workers](
                                   int parts,
                                   const std::function<void(int)>& fn) {
          const int w = workers < parts ? workers : parts;
          std::atomic<int> next{0};
          exec::TaskPool::Get().Run(w, [&](int) {
            int p;
            while ((p = next.fetch_add(1)) < parts) fn(p);
          });
        };
      }
      entry.bound = BuildQueryPlan(db, id, options);
    }
    {
      HEF_TRACE_SPAN("engine.bloom_build");
      const std::uint64_t t0 = MonotonicNanos();
      entry.blooms = BuildBlooms(entry.bound.plan);
      if (!entry.blooms.empty()) entry.bloom_nanos = MonotonicNanos() - t0;
    }
    if (config.chunked_scan && config.scan_pruning &&
        db.chunked != nullptr) {
      HEF_TRACE_SPAN("engine.prune");
      entry.pruning = ComputeChunkPruning(db, entry.bound.plan,
                                          QueryName(id));
    }
    return entry;
  }

  // The fallible build used by the serving path: rejects an already-
  // stopped context before doing any work, exposes the "engine.build"
  // fault site, and converts build-time exceptions (including injected
  // ones surfacing from pool workers) to Status::Internal.
  Result<PlanEntry> TryBuildEntry(QueryId id,
                                  const exec::QueryContext& ctx) {
    HEF_RETURN_NOT_OK(ctx.Check());
    HEF_FAULT_POINT_STATUS("engine.build");
    try {
      return BuildEntry(id);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("plan build failed for ") +
                              QueryName(id) + ": " + e.what());
    }
  }

  // Builds one Bloom filter per join stage from the dimension tables'
  // key slabs (only when bloom_prefilter is enabled).
  std::vector<std::unique_ptr<BloomFilter>> BuildBlooms(
      const StarPlan& plan) const {
    std::vector<std::unique_ptr<BloomFilter>> blooms;
    if (!config.bloom_prefilter) return blooms;
    for (const JoinStage& j : plan.joins) {
      auto bloom = std::make_unique<BloomFilter>(j.table->size());
      for (std::size_t slot = 0; slot < j.table->capacity(); ++slot) {
        const std::uint64_t key = j.table->keys()[slot];
        if (key != kEmptyKey) bloom->Insert(key);
      }
      blooms.push_back(std::move(bloom));
    }
    return blooms;
  }

  // Runs the pipeline over fact rows [row_begin, row_end), accumulating
  // into the caller's agg/cnt arrays (sized plan.gid_domain).
  //
  // When `accs` is non-null, per-operator wall time / row counts are
  // accumulated into it (layout: filters, then probes, then group-by); a
  // non-null `pmu` additionally brackets every operator with group reads
  // so counter deltas attribute to operators. Both null on the default
  // path, which then pays nothing beyond a branch per operator per block.
  void ExecuteRange(const StarPlan& plan,
                    const std::vector<std::unique_ptr<BloomFilter>>& blooms,
                    Buffers& buf, std::size_t row_begin,
                    std::size_t row_end, std::vector<std::uint64_t>& agg,
                    std::vector<std::uint64_t>& cnt,
                    std::uint64_t* qualifying_out,
                    std::vector<OpAcc>* accs = nullptr,
                    const PerfCounters* pmu = nullptr,
                    telemetry::Histogram* block_rows_hist = nullptr,
                    const exec::QueryContext* ctx = nullptr,
                    const std::vector<std::uint8_t>* chunk_alive = nullptr) {
    const HybridConfig probe_cfg = config.ProbeConfig();
    const HybridConfig gather_cfg = config.GatherConfig();
    const HybridConfig decode_cfg = config.DecodeConfig();
    const Flavor flavor = config.flavor;
    const auto block = static_cast<std::size_t>(config.block_size);

    // Chunked scan: resolve each distinct plan column to its chunked
    // shadow once, and pair it with a decoded-block buffer. Inside the
    // block loop `column_base` decodes a column's block on first touch —
    // columns a filter chain already killed the block for never decode.
    const ssb::ChunkedFact* chunked =
        config.chunked_scan ? db.chunked.get() : nullptr;
    struct DecodedCol {
      const ssb::Column* flat = nullptr;
      const storage::ChunkedColumn* col = nullptr;
      std::uint64_t* data = nullptr;
      bool ready = false;
    };
    std::array<DecodedCol, 8> dcols;
    std::size_t n_dcols = 0;
    const std::size_t chunk_rows =
        chunked != nullptr ? chunked->chunk_rows() : 0;
    if (chunked != nullptr) {
      auto add = [&](const ssb::Column* flat) {
        if (flat == nullptr) return;
        for (std::size_t i = 0; i < n_dcols; ++i) {
          if (dcols[i].flat == flat) return;
        }
        const storage::ChunkedColumn* col = chunked->Find(flat);
        HEF_CHECK_MSG(col != nullptr,
                      "chunked scan: plan column is not a fact column");
        HEF_CHECK_MSG(n_dcols < dcols.size(),
                      "chunked scan: too many distinct plan columns");
        if (buf.decoded[n_dcols].capacity() < block) {
          buf.decoded[n_dcols].Allocate(block, 64);
        }
        dcols[n_dcols] = {flat, col, buf.decoded[n_dcols].data(), false};
        ++n_dcols;
      };
      for (const RangeFilter& f : plan.filters) add(f.col);
      for (const JoinStage& j : plan.joins) add(j.fact_key);
      add(plan.value_a);
      add(plan.value_b);
      buf.decode_scratch.EnsureCapacity(block);
    }

    auto& rows = buf.rows;
    auto& keys = buf.keys;
    auto& vals_a = buf.vals_a;
    auto& vals_b = buf.vals_b;
    auto& pos = buf.pos;
    auto& scratch = buf.scratch;
    auto& bloom_out = buf.bloom_out;
    auto& bitmap_a = buf.bitmap_a;
    auto& bitmap_b = buf.bitmap_b;
    auto& payloads = buf.payloads;

    std::uint64_t qualifying = 0;

    // Operator-window bracketing. op_begin/op_end cost nothing (one
    // predictable branch) when stats are off; with stats they read the
    // monotonic clock, and with a PMU attached also snapshot the counter
    // group, so deltas land on the operator that spent them.
    const bool stats = accs != nullptr;
    std::uint64_t op_t0 = 0;
    PerfReading op_p0;
    auto op_begin = [&] {
      if (!stats) return;
      if (pmu != nullptr) op_p0 = pmu->ReadNow();
      op_t0 = MonotonicNanos();
    };
    // `count_call == false` folds the window's time into the operator
    // without counting an activation or rows (used for shared tail work
    // like the fused filters' bitmap-to-positions conversion).
    auto op_end = [&](std::size_t idx, std::uint64_t in_rows,
                      std::uint64_t out_rows, bool count_call = true) {
      if (!stats) return;
      OpAcc& a = (*accs)[idx];
      a.nanos += MonotonicNanos() - op_t0;
      if (count_call) {
        ++a.calls;
        a.rows_in += in_rows;
        a.rows_out += out_rows;
      }
      if (pmu != nullptr) {
        const PerfReading p1 = pmu->ReadNow();
        if (p1.valid && op_p0.valid) {
          a.instructions +=
              SaturatingDelta(p1.instructions, op_p0.instructions);
          a.cycles += SaturatingDelta(p1.cycles, op_p0.cycles);
          a.llc_misses += SaturatingDelta(p1.llc_misses, op_p0.llc_misses);
          a.pmu_valid = true;
          a.pmu_scaled = a.pmu_scaled || p1.scaled;
        }
      }
    };
    const std::size_t probe_acc_base = plan.filters.size();
    const std::size_t groupby_acc = probe_acc_base + plan.joins.size();

    // Payload slots probed so far in the current block (schema-order slot
    // ids; probe order may differ after the selectivity sort).
    std::array<int, 4> probed_slots{};
    int probed_count = 0;

    for (std::size_t b0 = row_begin; b0 < row_end; b0 += block) {
      // Block boundary = cancellation granularity (and the fault site the
      // robustness tests use to stop, stall, or blow up mid-query).
      if (ctx != nullptr && HEF_UNLIKELY(ctx->ShouldStop())) break;
      HEF_FAULT_POINT("engine.morsel");
      // Zone-map verdict: a dead chunk's blocks never decode, scan, or
      // probe anything. chunk_rows % block == 0 (validated in TryRun),
      // so a block maps to exactly one chunk.
      if (chunk_alive != nullptr && !(*chunk_alive)[b0 / chunk_rows]) {
        continue;
      }
      const std::size_t bn = std::min(block, row_end - b0);
      std::size_t n = bn;
      bool identity = true;  // rows == [0, n), block-local
      probed_count = 0;
      for (std::size_t i = 0; i < n_dcols; ++i) dcols[i].ready = false;

      // Base pointer of a fact column for this block: flat data at b0,
      // or the block decoded from the chunked shadow on first touch.
      // Row ids are block-local, so every downstream gather works off
      // this base regardless of the storage layout.
      auto column_base = [&](const ssb::Column& col)
          -> const std::uint64_t* {
        if (chunked == nullptr) return col.data() + b0;
        for (std::size_t i = 0; i < n_dcols; ++i) {
          DecodedCol& d = dcols[i];
          if (d.flat != &col) continue;
          if (!d.ready) {
            d.col->DecodeRange(decode_cfg, b0, bn, buf.decode_scratch,
                               d.data);
            d.ready = true;
          }
          return d.data;
        }
        HEF_CHECK_MSG(false, "column not registered for chunked scan");
        __builtin_unreachable();
      };

      // Applies the survivor positions in pos[0..m) to the row-id vector
      // and all live payload vectors.
      auto apply_selection = [&](std::size_t m) {
        if (identity) {
          for (std::size_t i = 0; i < m; ++i) rows[i] = pos[i];
          identity = false;
        } else {
          GatherArray(gather_cfg, rows.data(), pos.data(), scratch.data(),
                      m);
          std::swap(rows, scratch);
        }
        for (int k = 0; k < probed_count; ++k) {
          auto& payload = payloads[probed_slots[k]];
          GatherArray(gather_cfg, payload.data(), pos.data(),
                      scratch.data(), m);
          std::swap(payload, scratch);
        }
        n = m;
      };

      // Fetches a fact column for the current selection.
      auto fetch = [&](const ssb::Column& col,
                       AlignedBuffer<std::uint64_t>& out)
          -> const std::uint64_t* {
        const std::uint64_t* base = column_base(col);
        if (identity) return base;
        GatherArray(gather_cfg, base, rows.data(), out.data(), n);
        return out.data();
      };

      // Range filters: either compact after every predicate (the
      // vectorized-pipeline default) or evaluate all predicates as
      // bitmaps and conjoin once (fused selection scans).
      if (config.fused_filters && plan.filters.size() >= 2) {
        // Filters precede joins in every plan, so the selection is still
        // the identity here and columns can be scanned in place.
        std::size_t live = 0;
        std::size_t last_fi = 0;
        for (std::size_t fi = 0; fi < plan.filters.size(); ++fi) {
          const RangeFilter& f = plan.filters[fi];
          op_begin();
          std::uint64_t* target =
              fi == 0 ? bitmap_a.data() : bitmap_b.data();
          live = ScanRangeBitmap(flavor, column_base(*f.col), n, f.lo,
                                 f.hi, target);
          if (fi > 0) {
            live = BitmapAnd(bitmap_a.data(), bitmap_b.data(), n);
          }
          op_end(fi, n, live);
          last_fi = fi;
          if (live == 0) break;
        }
        op_begin();
        const std::size_t m =
            live == 0 ? 0
                      : BitmapToPositions(bitmap_a.data(), n, pos.data());
        apply_selection(m);
        op_end(last_fi, 0, 0, /*count_call=*/false);
      } else {
        for (std::size_t fi = 0; fi < plan.filters.size(); ++fi) {
          const RangeFilter& f = plan.filters[fi];
          if (n == 0) break;
          op_begin();
          const std::uint64_t* v = fetch(*f.col, vals_a);
          const std::size_t m =
              CompactInRange(flavor, v, n, f.lo, f.hi, pos.data());
          const std::size_t in_rows = n;
          apply_selection(m);
          op_end(fi, in_rows, n);
        }
      }

      // Join probes. The Bloom pre-filter is part of its join's operator
      // window — the stats row reports the stage's end-to-end cost.
      for (std::size_t ji = 0; ji < plan.joins.size(); ++ji) {
        const JoinStage& j = plan.joins[ji];
        if (n == 0) break;
        op_begin();
        const std::size_t in_rows = n;
        const std::uint64_t* k = fetch(*j.fact_key, keys);
        if (!blooms.empty()) {
          // Bloom pre-filter: discard definite misses before the (more
          // expensive, cache-hungry) hash-table probe.
          BloomProbeArray(probe_cfg, *blooms[ji], k, bloom_out.data(), n);
          const std::size_t bm = CompactInRange(flavor, bloom_out.data(),
                                                n, 1, 1, pos.data());
          if (bm != n) {
            apply_selection(bm);
            if (n == 0) {
              op_end(probe_acc_base + ji, in_rows, 0);
              break;
            }
            k = fetch(*j.fact_key, keys);
          }
        }
        const int slot = j.payload_slot;
        HEF_DCHECK(slot >= 0 && slot < 4);
        ProbeArray(probe_cfg, *j.table, k, payloads[slot].data(), n);
        const std::size_t m =
            CompactHits(flavor, payloads[slot].data(), n, pos.data());
        probed_slots[probed_count++] = slot;  // compacts with the rest
        if (m != n) {
          apply_selection(m);
        }
        op_end(probe_acc_base + ji, in_rows, n);
      }
      if (stats && block_rows_hist != nullptr) block_rows_hist->Observe(n);
      if (n == 0) continue;
      qualifying += n;

      // Measure columns.
      op_begin();
      const std::uint64_t* va = fetch(*plan.value_a, vals_a);
      const std::uint64_t* vb = nullptr;
      if (plan.value_b != nullptr) {
        vb = fetch(*plan.value_b, vals_b);
      }

      // Group-by aggregation. Group ids come from the plan's (scalar)
      // mapping; the accumulate step is either the shared scalar loop or
      // the conflict-detected gather-add-scatter path.
      if (config.vectorized_agg && flavor != Flavor::kScalar) {
        std::array<std::uint64_t, 4> p{};
        for (std::size_t i = 0; i < n; ++i) {
          for (int k = 0; k < probed_count; ++k) {
            const int slot = probed_slots[k];
            p[slot] = payloads[slot][i];
          }
          std::uint64_t value = va[i];
          switch (plan.value_op) {
            case ValueOp::kSum:
              break;
            case ValueOp::kSumProduct:
              value *= vb[i];
              break;
            case ValueOp::kSumDiff:
              value -= vb[i];
              break;
          }
          pos[i] = plan.gid(p);  // materialized group ids
          HEF_DCHECK(pos[i] < plan.gid_domain);
          scratch[i] = value;    // materialized measures
        }
        GroupSumAdd(/*use_simd=*/true, pos.data(), scratch.data(), n,
                    agg.data(), cnt.data());
      } else {
        std::array<std::uint64_t, 4> p{};
        for (std::size_t i = 0; i < n; ++i) {
          for (int k = 0; k < probed_count; ++k) {
            const int slot = probed_slots[k];
            p[slot] = payloads[slot][i];
          }
          std::uint64_t value = va[i];
          switch (plan.value_op) {
            case ValueOp::kSum:
              break;
            case ValueOp::kSumProduct:
              value *= vb[i];
              break;
            case ValueOp::kSumDiff:
              value -= vb[i];
              break;
          }
          const std::uint64_t g = plan.gid(p);
          HEF_DCHECK(g < plan.gid_domain);
          agg[g] += value;
          cnt[g] += 1;
        }
      }
      op_end(groupby_acc, n, n);
    }
    *qualifying_out = qualifying;
  }

  // Converts merged accumulators into named OperatorStats rows and feeds
  // the process-wide metrics registry (query counters, per-join
  // selectivity gauges, hash-table displacement histogram).
  void FillOperatorStats(const StarPlan& plan,
                         const std::vector<OpAcc>& accs,
                         std::uint64_t bloom_nanos, std::uint64_t total,
                         std::uint64_t qualifying,
                         const ChunkPruning* pruning,
                         QueryResult* result) const {
    const ssb::LineorderFact& lo = db.lineorder;
    auto to_stats = [](const std::string& name, const OpAcc& a) {
      OperatorStats s;
      s.name = name;
      s.wall_nanos = a.nanos;
      s.invocations = a.calls;
      s.rows_in = a.rows_in;
      s.rows_out = a.rows_out;
      s.perf.valid = a.pmu_valid;
      s.perf.instructions = a.instructions;
      s.perf.cycles = a.cycles;
      s.perf.llc_misses = a.llc_misses;
      s.perf.scaled = a.pmu_scaled;
      s.perf.elapsed_seconds = static_cast<double>(a.nanos) * 1e-9;
      return s;
    };

    auto& ops = result->operator_stats;
    ops.reserve(accs.size() + 1);
    if (bloom_nanos > 0) {
      OperatorStats s;
      s.name = "build.bloom";
      s.wall_nanos = bloom_nanos;
      s.invocations = 1;
      ops.push_back(std::move(s));
    }
    // Pruning stages align with the filter-then-join operator order, so
    // `idx` doubles as the ChunkPruning stage index.
    auto attach_chunks = [&](OperatorStats& s, std::size_t stage) {
      if (pruning == nullptr || stage >= pruning->reached.size()) return;
      s.chunks_pruned = pruning->pruned_by[stage];
      s.chunks_scanned = pruning->reached[stage] - s.chunks_pruned;
    };
    std::size_t idx = 0;
    for (const RangeFilter& f : plan.filters) {
      ops.push_back(to_stats(
          std::string("filter.") + FactColumnName(lo, f.col), accs[idx]));
      attach_chunks(ops.back(), idx);
      ++idx;
    }
    auto& registry = telemetry::MetricsRegistry::Get();
    for (const JoinStage& j : plan.joins) {
      const std::string name =
          std::string("probe.") + FactColumnName(lo, j.fact_key);
      ops.push_back(to_stats(name, accs[idx]));
      attach_chunks(ops.back(), idx);
      registry.gauge("engine.selectivity." + name)
          .Set(ops.back().Selectivity());
      ++idx;
    }
    ops.push_back(to_stats("groupby", accs[idx]));

    registry.counter("engine.queries").Increment();
    registry.counter("engine.rows_scanned").Increment(total);
    registry.counter("engine.rows_qualifying").Increment(qualifying);

    // Linear-probe displacement of every occupied dimension slot — the
    // probe-chain length distribution vector probes traverse.
    telemetry::Histogram& probe_hist =
        registry.histogram("table.probe_length");
    for (const JoinStage& j : plan.joins) {
      const LinearHashTable& t = *j.table;
      for (std::uint64_t slot = 0; slot <= t.mask(); ++slot) {
        const std::uint64_t key = t.keys()[slot];
        if (key == kEmptyKey) continue;
        probe_hist.Observe((slot - t.HomeSlot(key)) & t.mask());
      }
    }
  }

  QueryResult ExecutePlan(
      const StarPlan& plan,
      const std::vector<std::unique_ptr<BloomFilter>>& blooms,
      std::uint64_t bloom_nanos, const ChunkPruning* pruning = nullptr,
      const exec::QueryContext* ctx = nullptr) {
    const bool stats = config.collect_stats;
    const std::size_t total = config.chunked_scan && db.chunked != nullptr
                                  ? db.chunked->rows()
                                  : db.lineorder.n;
    const auto block = static_cast<std::size_t>(config.block_size);
    const std::vector<std::uint8_t>* alive =
        pruning != nullptr && !pruning->alive.empty() ? &pruning->alive
                                                      : nullptr;

    std::vector<std::uint64_t> agg(plan.gid_domain, 0);
    std::vector<std::uint64_t> cnt(plan.gid_domain, 0);
    std::uint64_t qualifying = 0;

    const std::size_t n_ops = plan.filters.size() + plan.joins.size() + 1;
    std::vector<OpAcc> accs;
    telemetry::Histogram* block_hist = nullptr;
    if (stats) {
      accs.resize(n_ops);
      block_hist = &telemetry::MetricsRegistry::Get().histogram(
          "engine.block_qualifying_rows");
    }

    const std::size_t blocks_total = (total + block - 1) / block;
    std::uint64_t morsels = blocks_total;  // serial path: one per block
    const int threads =
        std::min<int>(exec::ResolveThreads(config.threads),
                      static_cast<int>(blocks_total == 0 ? 1 : blocks_total));
    if (threads <= 1) {
      HEF_TRACE_SPAN("engine.pipeline");
      // perf fds count the opening thread, so the single-threaded path
      // opens its group here and workers open their own below.
      std::unique_ptr<PerfCounters> pmu;
      if (stats && config.collect_pmu) {
        pmu = std::make_unique<PerfCounters>();
        if (pmu->available()) {
          pmu->Start();
        } else {
          pmu.reset();
        }
      }
      ExecuteRange(plan, blooms, main_buffers, 0, total, agg, cnt,
                   &qualifying, stats ? &accs : nullptr, pmu.get(),
                   block_hist, ctx, alive);
    } else {
      // Morsel parallelism over the persistent pool: workers claim
      // block-aligned morsels dynamically from the scheduler (stealing
      // from loaded shards when their own drains, so a skewed or
      // preempted worker no longer serializes the tail). Accumulators
      // stay private and merge in worker order at the end — group sums
      // commute, so results are bit-identical to single-threaded.
      std::vector<std::vector<std::uint64_t>> worker_agg(
          threads, std::vector<std::uint64_t>(plan.gid_domain, 0));
      std::vector<std::vector<std::uint64_t>> worker_cnt(
          threads, std::vector<std::uint64_t>(plan.gid_domain, 0));
      std::vector<std::uint64_t> worker_qualifying(threads, 0);
      std::vector<std::vector<OpAcc>> worker_accs(
          threads, std::vector<OpAcc>(stats ? n_ops : 0));
      const exec::MorselRunInfo info = exec::RunMorsels(
          blocks_total, threads,
          [&](int t, exec::MorselScheduler& sched) {
            HEF_TRACE_SPAN("engine.worker");
            Buffers buffers(block);
            // Each worker opens its own counter group: perf fds opened
            // with pid=0 follow the opening thread only.
            std::unique_ptr<PerfCounters> pmu;
            if (stats && config.collect_pmu) {
              pmu = std::make_unique<PerfCounters>();
              if (pmu->available()) {
                pmu->Start();
              } else {
                pmu.reset();
              }
            }
            std::size_t blk_begin = 0;
            std::size_t blk_end = 0;
            while (sched.Next(t, &blk_begin, &blk_end)) {
              std::uint64_t q = 0;
              ExecuteRange(plan, blooms, buffers, blk_begin * block,
                           std::min(total, blk_end * block), worker_agg[t],
                           worker_cnt[t], &q,
                           stats ? &worker_accs[t] : nullptr, pmu.get(),
                           block_hist, ctx, alive);
              worker_qualifying[t] += q;
            }
          },
          ctx);
      morsels = info.dispatched;
      for (int t = 0; t < threads; ++t) {
        qualifying += worker_qualifying[t];
        for (std::size_t g = 0; g < plan.gid_domain; ++g) {
          agg[g] += worker_agg[t][g];
          cnt[g] += worker_cnt[t][g];
        }
        if (stats) {
          for (std::size_t i = 0; i < n_ops; ++i) {
            accs[i].Merge(worker_accs[t][i]);
          }
        }
      }
    }

    QueryResult result;
    result.qualifying_rows = qualifying;
    result.morsels = morsels;
    if (config.chunked_scan && db.chunked != nullptr) {
      result.chunks_total = db.chunked->num_chunks();
      result.chunks_scanned = pruning != nullptr
                                  ? pruning->chunks_scanned
                                  : result.chunks_total;
      result.chunks_pruned = result.chunks_total - result.chunks_scanned;
      auto& registry = telemetry::MetricsRegistry::Get();
      registry.counter("storage.chunks_scanned")
          .Increment(result.chunks_scanned);
      registry.counter("storage.chunks_pruned")
          .Increment(result.chunks_pruned);
    }
    if (stats) {
      FillOperatorStats(plan, accs, bloom_nanos, total, qualifying,
                        pruning, &result);
    }
    for (std::size_t g = 0; g < plan.gid_domain; ++g) {
      if (cnt[g] == 0) continue;
      GroupRow row;
      row.keys = plan.decode(g);
      row.value = agg[g];
      result.rows.push_back(row);
    }
    std::sort(result.rows.begin(), result.rows.end());
    return result;
  }

  // The serving path behind Run(id, ctx): status in, status out — no
  // aborts for anything a client request can cause. Exceptions escaping
  // the pipeline (a worker threw; the TaskPool rethrew the first one at
  // the join) become Status::Internal here.
  Result<QueryResult> TryRun(QueryId id, const exec::QueryContext& ctx) {
    HEF_TRACE_SPAN("engine.query");
    HEF_RETURN_NOT_OK(CheckFlavorSupported(config.flavor));
    if (config.chunked_scan) {
      if (db.chunked == nullptr) {
        return Status::InvalidArgument(
            "chunked_scan requires ssb::EnsureChunked(db) before queries "
            "run");
      }
      const std::size_t chunk_rows = db.chunked->chunk_rows();
      if (chunk_rows % static_cast<std::size_t>(config.block_size) != 0) {
        return Status::InvalidArgument(
            "chunked_scan needs chunk_rows (" +
            std::to_string(chunk_rows) +
            ") to be a multiple of block_size (" +
            std::to_string(config.block_size) + ")");
      }
    }
    HEF_RETURN_NOT_OK(ctx.Check());
    const bool stats = config.collect_stats;

    OperatorStats build;
    std::unique_ptr<PerfCounters> pmu;
    std::uint64_t t0 = 0;
    if (stats) {
      build.name = "build";
      if (config.collect_pmu) {
        pmu = std::make_unique<PerfCounters>();
        if (pmu->available()) {
          pmu->Start();
        } else {
          pmu.reset();
        }
      }
      t0 = MonotonicNanos();
    }

    // Resolve the plan: a cache hit reuses the dimension hash tables and
    // Bloom filters built by an earlier Run; the "build" stats row then
    // reports the (tiny) lookup cost, which is the build work this Run
    // actually did. With the cache off, every Run builds fresh. A failed
    // build inserts nothing — the cache never holds a half-built plan.
    bool cache_hit = false;
    const PlanEntry* entry = nullptr;
    PlanEntry fresh;
    if (config.plan_cache) {
      Result<const PlanEntry*> cached = plan_cache.TryGetOrBuild(
          id,
          [&]() -> Result<PlanEntry> { return TryBuildEntry(id, ctx); },
          &cache_hit);
      HEF_RETURN_NOT_OK(cached.status());
      entry = cached.value();
    } else {
      Result<PlanEntry> built = TryBuildEntry(id, ctx);
      HEF_RETURN_NOT_OK(built.status());
      fresh = std::move(built).value();
      entry = &fresh;
    }

    if (stats) {
      build.wall_nanos = MonotonicNanos() - t0;
      build.invocations = 1;
      for (const auto& table : entry->bound.tables) {
        build.rows_in += table->size();
        build.rows_out += table->size();
      }
      if (pmu != nullptr) {
        build.perf = pmu->Stop();
        build.perf.elapsed_seconds =
            static_cast<double>(build.wall_nanos) * 1e-9;
      }
    }

    // On a cache hit no Bloom filters were built this Run, so suppress
    // the build.bloom stats row (its nanos belong to the Run that
    // missed).
    QueryResult result;
    try {
      result = ExecutePlan(entry->bound.plan, entry->blooms,
                           cache_hit ? 0 : entry->bloom_nanos,
                           entry->pruning.alive.empty() ? nullptr
                                                        : &entry->pruning,
                           &ctx);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("query execution failed for ") +
                              QueryName(id) + ": " + e.what());
    } catch (...) {
      return Status::Internal(
          std::string("query execution failed for ") + QueryName(id) +
          ": unknown exception");
    }
    // A stop mid-scan exits the loops without an error; the partial
    // accumulators were merged into a partial result that must not look
    // like a complete one. Report why the scan ended instead.
    HEF_RETURN_NOT_OK(ctx.Check());
    result.plan_cache_hit = cache_hit;
    if (stats) {
      result.operator_stats.insert(result.operator_stats.begin(),
                                   std::move(build));
    }
    return result;
  }
};

SsbEngine::SsbEngine(const ssb::SsbDatabase& db, EngineConfig config)
    : impl_(std::make_unique<Impl>(db, config)) {}

SsbEngine::~SsbEngine() = default;

const EngineConfig& SsbEngine::config() const { return impl_->config; }

void SsbEngine::InvalidatePlanCache() { impl_->plan_cache.Invalidate(); }

QueryResult SsbEngine::Run(QueryId id) {
  // The abort-on-error convenience form runs through the same serving
  // path with an unconstrained context: no token, no deadline, so only a
  // genuine failure (or an armed fault) can make it non-OK — and tests
  // and benches treat that as fatal, exactly as the pre-Status engine
  // did.
  Result<QueryResult> result = Run(id, exec::QueryContext());
  HEF_CHECK_MSG(result.ok(), "SsbEngine::Run(%s) failed: %s", QueryName(id),
                result.status().ToString().c_str());
  return std::move(result).value();
}

Result<QueryResult> SsbEngine::Run(QueryId id,
                                   const exec::QueryContext& ctx) {
  // Every serving Run is traced: adopt the caller's id or mint one, so
  // logs, flight events, /statusz and error messages all correlate.
  exec::QueryContext traced = ctx;
  if (traced.trace_id() == 0) traced.set_trace_id(exec::MintTraceId());
  const std::string query = QueryName(id);
  const std::string engine_label = FlavorName(impl_->config.flavor);

  const std::uint64_t t0 = MonotonicNanos();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    telemetry::ActiveQueryGuard guard(traced.trace_id(), query,
                                      engine_label,
                                      traced.deadline_nanos());
    return impl_->TryRun(id, traced);
  }();
  const std::uint64_t wall = MonotonicNanos() - t0;
  exec::RecordQueryOutcome(result.status());

  telemetry::QueryCompletion completion;
  completion.trace_id = traced.trace_id();
  completion.query = query;
  completion.engine = engine_label;
  completion.wall_nanos = wall;
  if (result.ok()) {
    QueryResult& r = result.value();
    r.trace_id = traced.trace_id();
    r.wall_nanos = wall;
    completion.cache_hit = r.plan_cache_hit;
    completion.morsels = r.morsels;
    if (!r.operator_stats.empty()) {
      completion.explain_json = ExplainToJson(
          MakeExplainMeta(query, engine_label, impl_->config), r);
    }
    telemetry::Diagnostics::Get().RecordCompletion(completion);
    return result;
  }
  completion.status_code =
      static_cast<std::uint16_t>(result.status().code());
  completion.status_message = result.status().message();
  telemetry::Diagnostics::Get().RecordCompletion(completion);
  // Errors carry the trace id so a client-side log line alone is enough
  // to find the query in /tracez or a flight dump.
  return Status(result.status().code(),
                result.status().message() + " [trace=" +
                    telemetry::FormatTraceId(traced.trace_id()) + "]");
}

}  // namespace hef
