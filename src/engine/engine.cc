#include "engine/engine.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/macros.h"
#include "engine/primitives.h"
#include "engine/scan.h"
#include "engine/star_plan.h"
#include "table/bloom_filter.h"
#include "table/group_agg.h"
#include "table/probe.h"

namespace hef {

struct SsbEngine::Impl {
  const ssb::SsbDatabase& db;
  EngineConfig config;

  // One worker's pipeline scratch buffers (each thread owns a set).
  struct Buffers {
    AlignedBuffer<std::uint64_t> rows, keys, vals_a, vals_b, pos, scratch,
        bloom_out, bitmap_a, bitmap_b;
    std::array<AlignedBuffer<std::uint64_t>, 4> payloads;

    explicit Buffers(std::size_t block) {
      rows.Allocate(block, 64);
      keys.Allocate(block, 64);
      vals_a.Allocate(block, 64);
      vals_b.Allocate(block, 64);
      pos.Allocate(block, 64);
      scratch.Allocate(block, 64);
      bloom_out.Allocate(block, 64);
      bitmap_a.Allocate(BitmapWords(block), 8);
      bitmap_b.Allocate(BitmapWords(block), 8);
      for (auto& p : payloads) p.Allocate(block, 64);
    }
  };

  // Buffers for the single-threaded path, built once per engine.
  Buffers main_buffers;

  Impl(const ssb::SsbDatabase& database, EngineConfig cfg)
      : db(database),
        config(cfg),
        main_buffers(static_cast<std::size_t>(cfg.block_size)) {
    HEF_CHECK_MSG(config.block_size >= 64, "block size %d too small",
                  config.block_size);
    HEF_CHECK_MSG(config.threads >= 1 && config.threads <= 256,
                  "thread count %d out of range", config.threads);
  }

  // Builds one Bloom filter per join stage from the dimension tables'
  // key slabs (only when bloom_prefilter is enabled).
  std::vector<std::unique_ptr<BloomFilter>> BuildBlooms(
      const StarPlan& plan) const {
    std::vector<std::unique_ptr<BloomFilter>> blooms;
    if (!config.bloom_prefilter) return blooms;
    for (const JoinStage& j : plan.joins) {
      auto bloom = std::make_unique<BloomFilter>(j.table->size());
      for (std::size_t slot = 0; slot < j.table->capacity(); ++slot) {
        const std::uint64_t key = j.table->keys()[slot];
        if (key != kEmptyKey) bloom->Insert(key);
      }
      blooms.push_back(std::move(bloom));
    }
    return blooms;
  }

  // Runs the pipeline over fact rows [row_begin, row_end), accumulating
  // into the caller's agg/cnt arrays (sized plan.gid_domain).
  void ExecuteRange(const StarPlan& plan,
                    const std::vector<std::unique_ptr<BloomFilter>>& blooms,
                    Buffers& buf, std::size_t row_begin,
                    std::size_t row_end, std::vector<std::uint64_t>& agg,
                    std::vector<std::uint64_t>& cnt,
                    std::uint64_t* qualifying_out) {
    const HybridConfig probe_cfg = config.ProbeConfig();
    const HybridConfig gather_cfg = config.GatherConfig();
    const Flavor flavor = config.flavor;
    const auto block = static_cast<std::size_t>(config.block_size);

    auto& rows = buf.rows;
    auto& keys = buf.keys;
    auto& vals_a = buf.vals_a;
    auto& vals_b = buf.vals_b;
    auto& pos = buf.pos;
    auto& scratch = buf.scratch;
    auto& bloom_out = buf.bloom_out;
    auto& bitmap_a = buf.bitmap_a;
    auto& bitmap_b = buf.bitmap_b;
    auto& payloads = buf.payloads;

    std::uint64_t qualifying = 0;

    // Payload slots probed so far in the current block (schema-order slot
    // ids; probe order may differ after the selectivity sort).
    std::array<int, 4> probed_slots{};
    int probed_count = 0;

    for (std::size_t b0 = row_begin; b0 < row_end; b0 += block) {
      const std::size_t bn = std::min(block, row_end - b0);
      std::size_t n = bn;
      bool identity = true;  // rows == [b0, b0 + n)
      probed_count = 0;

      // Applies the survivor positions in pos[0..m) to the row-id vector
      // and all live payload vectors.
      auto apply_selection = [&](std::size_t m) {
        if (identity) {
          for (std::size_t i = 0; i < m; ++i) rows[i] = b0 + pos[i];
          identity = false;
        } else {
          GatherArray(gather_cfg, rows.data(), pos.data(), scratch.data(),
                      m);
          std::swap(rows, scratch);
        }
        for (int k = 0; k < probed_count; ++k) {
          auto& payload = payloads[probed_slots[k]];
          GatherArray(gather_cfg, payload.data(), pos.data(),
                      scratch.data(), m);
          std::swap(payload, scratch);
        }
        n = m;
      };

      // Fetches a fact column for the current selection.
      auto fetch = [&](const ssb::Column& col,
                       AlignedBuffer<std::uint64_t>& out)
          -> const std::uint64_t* {
        if (identity) return col.data() + b0;
        GatherArray(gather_cfg, col.data(), rows.data(), out.data(), n);
        return out.data();
      };

      // Range filters: either compact after every predicate (the
      // vectorized-pipeline default) or evaluate all predicates as
      // bitmaps and conjoin once (fused selection scans).
      if (config.fused_filters && plan.filters.size() >= 2) {
        // Filters precede joins in every plan, so the selection is still
        // the identity here and columns can be scanned in place.
        std::size_t live = 0;
        for (std::size_t fi = 0; fi < plan.filters.size(); ++fi) {
          const RangeFilter& f = plan.filters[fi];
          std::uint64_t* target =
              fi == 0 ? bitmap_a.data() : bitmap_b.data();
          live = ScanRangeBitmap(flavor, f.col->data() + b0, n, f.lo, f.hi,
                                 target);
          if (fi > 0) {
            live = BitmapAnd(bitmap_a.data(), bitmap_b.data(), n);
          }
          if (live == 0) break;
        }
        const std::size_t m =
            live == 0 ? 0
                      : BitmapToPositions(bitmap_a.data(), n, pos.data());
        apply_selection(m);
      } else {
        for (const RangeFilter& f : plan.filters) {
          if (n == 0) break;
          const std::uint64_t* v = fetch(*f.col, vals_a);
          const std::size_t m =
              CompactInRange(flavor, v, n, f.lo, f.hi, pos.data());
          apply_selection(m);
        }
      }

      // Join probes.
      for (std::size_t ji = 0; ji < plan.joins.size(); ++ji) {
        const JoinStage& j = plan.joins[ji];
        if (n == 0) break;
        const std::uint64_t* k = fetch(*j.fact_key, keys);
        if (!blooms.empty()) {
          // Bloom pre-filter: discard definite misses before the (more
          // expensive, cache-hungry) hash-table probe.
          BloomProbeArray(probe_cfg, *blooms[ji], k, bloom_out.data(), n);
          const std::size_t bm = CompactInRange(flavor, bloom_out.data(),
                                                n, 1, 1, pos.data());
          if (bm != n) {
            apply_selection(bm);
            if (n == 0) break;
            k = fetch(*j.fact_key, keys);
          }
        }
        const int slot = j.payload_slot;
        HEF_DCHECK(slot >= 0 && slot < 4);
        ProbeArray(probe_cfg, *j.table, k, payloads[slot].data(), n);
        const std::size_t m =
            CompactHits(flavor, payloads[slot].data(), n, pos.data());
        probed_slots[probed_count++] = slot;  // compacts with the rest
        if (m != n) {
          apply_selection(m);
        }
      }
      if (n == 0) continue;
      qualifying += n;

      // Measure columns.
      const std::uint64_t* va = fetch(*plan.value_a, vals_a);
      const std::uint64_t* vb = nullptr;
      if (plan.value_b != nullptr) {
        vb = fetch(*plan.value_b, vals_b);
      }

      // Group-by aggregation. Group ids come from the plan's (scalar)
      // mapping; the accumulate step is either the shared scalar loop or
      // the conflict-detected gather-add-scatter path.
      if (config.vectorized_agg && flavor != Flavor::kScalar) {
        std::array<std::uint64_t, 4> p{};
        for (std::size_t i = 0; i < n; ++i) {
          for (int k = 0; k < probed_count; ++k) {
            const int slot = probed_slots[k];
            p[slot] = payloads[slot][i];
          }
          std::uint64_t value = va[i];
          switch (plan.value_op) {
            case ValueOp::kSum:
              break;
            case ValueOp::kSumProduct:
              value *= vb[i];
              break;
            case ValueOp::kSumDiff:
              value -= vb[i];
              break;
          }
          pos[i] = plan.gid(p);  // materialized group ids
          HEF_DCHECK(pos[i] < plan.gid_domain);
          scratch[i] = value;    // materialized measures
        }
        GroupSumAdd(/*use_simd=*/true, pos.data(), scratch.data(), n,
                    agg.data(), cnt.data());
      } else {
        std::array<std::uint64_t, 4> p{};
        for (std::size_t i = 0; i < n; ++i) {
          for (int k = 0; k < probed_count; ++k) {
            const int slot = probed_slots[k];
            p[slot] = payloads[slot][i];
          }
          std::uint64_t value = va[i];
          switch (plan.value_op) {
            case ValueOp::kSum:
              break;
            case ValueOp::kSumProduct:
              value *= vb[i];
              break;
            case ValueOp::kSumDiff:
              value -= vb[i];
              break;
          }
          const std::uint64_t g = plan.gid(p);
          HEF_DCHECK(g < plan.gid_domain);
          agg[g] += value;
          cnt[g] += 1;
        }
      }
    }
    *qualifying_out = qualifying;
  }

  QueryResult ExecutePlan(const StarPlan& plan) {
    const std::vector<std::unique_ptr<BloomFilter>> blooms =
        BuildBlooms(plan);
    const std::size_t total = db.lineorder.n;
    const auto block = static_cast<std::size_t>(config.block_size);

    std::vector<std::uint64_t> agg(plan.gid_domain, 0);
    std::vector<std::uint64_t> cnt(plan.gid_domain, 0);
    std::uint64_t qualifying = 0;

    const int threads = std::min<int>(
        config.threads,
        static_cast<int>((total + block - 1) / block));
    if (threads <= 1) {
      ExecuteRange(plan, blooms, main_buffers, 0, total, agg, cnt,
                   &qualifying);
    } else {
      // Morsel parallelism: contiguous block-aligned row ranges, one
      // worker each, private accumulators merged at the end (group sums
      // commute, so results are bit-identical to single-threaded).
      const std::size_t blocks_total = (total + block - 1) / block;
      const std::size_t blocks_per_worker =
          (blocks_total + threads - 1) / threads;
      std::vector<std::vector<std::uint64_t>> worker_agg(
          threads, std::vector<std::uint64_t>(plan.gid_domain, 0));
      std::vector<std::vector<std::uint64_t>> worker_cnt(
          threads, std::vector<std::uint64_t>(plan.gid_domain, 0));
      std::vector<std::uint64_t> worker_qualifying(threads, 0);
      std::vector<std::thread> workers;
      workers.reserve(threads);
      for (int t = 0; t < threads; ++t) {
        const std::size_t begin =
            std::min(total, t * blocks_per_worker * block);
        const std::size_t end =
            std::min(total, (t + 1) * blocks_per_worker * block);
        workers.emplace_back([&, t, begin, end] {
          Buffers buffers(block);
          ExecuteRange(plan, blooms, buffers, begin, end, worker_agg[t],
                       worker_cnt[t], &worker_qualifying[t]);
        });
      }
      for (std::thread& w : workers) w.join();
      for (int t = 0; t < threads; ++t) {
        qualifying += worker_qualifying[t];
        for (std::size_t g = 0; g < plan.gid_domain; ++g) {
          agg[g] += worker_agg[t][g];
          cnt[g] += worker_cnt[t][g];
        }
      }
    }

    QueryResult result;
    result.qualifying_rows = qualifying;
    for (std::size_t g = 0; g < plan.gid_domain; ++g) {
      if (cnt[g] == 0) continue;
      GroupRow row;
      row.keys = plan.decode(g);
      row.value = agg[g];
      result.rows.push_back(row);
    }
    std::sort(result.rows.begin(), result.rows.end());
    return result;
  }
};

SsbEngine::SsbEngine(const ssb::SsbDatabase& db, EngineConfig config)
    : impl_(std::make_unique<Impl>(db, config)) {}

SsbEngine::~SsbEngine() = default;

const EngineConfig& SsbEngine::config() const { return impl_->config; }

QueryResult SsbEngine::Run(QueryId id) {
  const BoundPlan bound = BuildQueryPlan(impl_->db, id);
  return impl_->ExecutePlan(bound.plan);
}

}  // namespace hef
