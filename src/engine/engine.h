// SsbEngine — the VIP-style vectorized pipeline engine executing the 13
// SSB queries in scalar / SIMD / hybrid flavours.
//
// Every query is a star plan: range filters on fact columns, a chain of
// hash-join probes against filtered dimension tables (most selective
// first), and a direct-array group-by aggregation. The pipeline processes
// the fact table in blocks, materializing compacted row-id and payload
// vectors between operators (the VIP materialization strategy the paper
// adopts, §V-B). The three flavours share this structure and differ only
// in the (v, s, p) coordinates of the gather and probe kernels — purely
// scalar (v0 s1 p1), purely SIMD (v1 s0 p1) or the tuned hybrid point.

#ifndef HEF_ENGINE_ENGINE_H_
#define HEF_ENGINE_ENGINE_H_

#include <memory>

#include "common/status.h"
#include "engine/flavor.h"
#include "engine/query_id.h"
#include "engine/result.h"
#include "exec/query_context.h"
#include "ssb/database.h"

namespace hef {

class SsbEngine {
 public:
  // The database must outlive the engine.
  SsbEngine(const ssb::SsbDatabase& db, EngineConfig config);
  ~SsbEngine();

  SsbEngine(const SsbEngine&) = delete;
  SsbEngine& operator=(const SsbEngine&) = delete;

  // Executes one SSB query end to end (dimension hash-table build + fact
  // pipeline) and returns its result rows sorted by group keys. With
  // config.plan_cache (the default) the build phase — filtered dimension
  // hash tables plus Bloom filters — runs once per QueryId and is reused
  // by every later Run of the same query.
  //
  // This form aborts on any failure (tests and paper-exhibit benches use
  // it; nothing there is expected to fail). Serving callers use the
  // fallible overload below.
  QueryResult Run(QueryId id);

  // The serving-path form. Honours `ctx` cooperatively: cancellation and
  // deadline are checked before the build, at every morsel claim, and at
  // every pipeline block, so the call returns Cancelled /
  // DeadlineExceeded within roughly one block of work after the stop
  // condition arises (partial accumulators are discarded, the plan cache
  // stays consistent). Admission-checks config.flavor on the host
  // (Unsupported when the flavour cannot run here), and converts
  // execution-time exceptions — including injected faults — to
  // Status::Internal instead of terminating; the TaskPool threads survive
  // and later Runs proceed. Every outcome is counted via
  // exec::RecordQueryOutcome.
  Result<QueryResult> Run(QueryId id, const exec::QueryContext& ctx);

  // Drops all cached plans; the next Run of each query rebuilds from the
  // database. Call after mutating the database the engine was bound to.
  void InvalidatePlanCache();

  const EngineConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hef

#endif  // HEF_ENGINE_ENGINE_H_
