#include "engine/explain.h"

#include <cstdio>
#include <string>
#include <vector>

#include "telemetry/diagnostics.h"
#include "telemetry/json_writer.h"

namespace hef {

namespace {

// Operator kind, classified from the stats-row naming convention the
// engines share ("build", "build.bloom", "filter.<col>", "probe.<col>",
// "groupby").
const char* OperatorKind(const std::string& name) {
  if (name == "groupby") return "aggregate";
  if (name.rfind("build", 0) == 0) return "build";
  if (name.rfind("filter.", 0) == 0) return "filter";
  if (name.rfind("probe.", 0) == 0) return "probe";
  return "op";
}

// The tuned hybrid point an operator's kernels run at, or nullptr when
// the flavor does not use per-operator coordinates. Probes use the probe
// point; filters and the group-by gather through the gather point.
const HybridConfig* TunedPoint(const std::string& kind,
                               const ExplainMeta& meta) {
  if (!meta.tuned) return nullptr;
  if (kind == "probe") return &meta.probe_cfg;
  if (kind == "filter" || kind == "aggregate") return &meta.gather_cfg;
  return nullptr;
}

std::string FormatMs(std::uint64_t nanos) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(nanos) / 1e6);
  return buf;
}

std::string FormatRows(std::uint64_t rows) {
  char buf[32];
  if (rows >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fM",
                  static_cast<double>(rows) / 1e6);
  } else if (rows >= 10'000) {
    std::snprintf(buf, sizeof(buf), "%.1fk",
                  static_cast<double>(rows) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(rows));
  }
  return buf;
}

}  // namespace

ExplainMeta MakeExplainMeta(const std::string& query,
                            const std::string& engine,
                            const EngineConfig& config) {
  ExplainMeta meta;
  meta.query = query;
  meta.engine = engine;
  meta.flavor = FlavorName(config.flavor);
  if (config.flavor == Flavor::kHybrid) {
    meta.tuned = true;
    meta.probe_cfg = config.probe_cfg;
    meta.gather_cfg = config.gather_cfg;
  }
  return meta;
}

std::string ExplainToText(const ExplainMeta& meta,
                          const QueryResult& result) {
  std::string out;
  out += meta.query;
  out += " [";
  out += meta.engine;
  if (meta.flavor != meta.engine) {
    out += "/";
    out += meta.flavor;
  }
  out += "]";
  if (result.trace_id != 0) {
    out += " trace=";
    out += telemetry::FormatTraceId(result.trace_id);
  }
  out += " wall=" + FormatMs(result.wall_nanos) + "ms";
  if (result.morsels != 0) {
    out += " morsels=" + std::to_string(result.morsels);
  }
  out += result.plan_cache_hit ? " plan=cached" : " plan=built";
  if (result.chunks_total != 0) {
    out += " chunks=" + std::to_string(result.chunks_scanned) + "/" +
           std::to_string(result.chunks_total);
    if (result.chunks_pruned != 0) {
      out += " pruned=" + std::to_string(result.chunks_pruned);
    }
  }
  out += "\n";
  if (result.operator_stats.empty()) {
    out += "  (no operator stats; run with --stats / collect_stats)\n";
    return out;
  }

  // Sink at the root, build at the leaf: walk the execution order
  // backwards, indenting one level per operator.
  const auto& ops = result.operator_stats;
  for (std::size_t i = ops.size(); i-- > 0;) {
    const OperatorStats& op = ops[i];
    const std::size_t depth = ops.size() - 1 - i;
    for (std::size_t d = 0; d < depth; ++d) out += "  ";
    out += depth == 0 ? "" : "`- ";
    out += op.name;
    const std::string kind = OperatorKind(op.name);
    if (const HybridConfig* t = TunedPoint(kind, meta)) {
      out += " (v" + std::to_string(t->v) + " s" + std::to_string(t->s) +
             " p" + std::to_string(t->p) + ")";
    }
    out += "  self=" + FormatMs(op.wall_nanos) + "ms";
    if (op.rows_in != 0 || op.rows_out != 0) {
      out += "  rows " + FormatRows(op.rows_in) + " -> " +
             FormatRows(op.rows_out);
      if (op.rows_in != 0 && kind != "build" && kind != "aggregate") {
        char sel[24];
        std::snprintf(sel, sizeof(sel), "  sel=%.2f%%",
                      op.Selectivity() * 100.0);
        out += sel;
      }
    }
    if (op.chunks_scanned != 0 || op.chunks_pruned != 0) {
      // scanned / reached for this stage (first pruning cause wins).
      out += "  chunks=" + std::to_string(op.chunks_scanned) + "/" +
             std::to_string(op.chunks_scanned + op.chunks_pruned);
    }
    if (op.invocations > 1) {
      out += "  calls=" + std::to_string(op.invocations);
    }
    if (op.perf.valid && op.perf.cycles > 0) {
      char ipc[24];
      std::snprintf(ipc, sizeof(ipc), "  ipc=%.2f",
                    static_cast<double>(op.perf.instructions) /
                        static_cast<double>(op.perf.cycles));
      out += ipc;
    }
    out += "\n";
  }
  return out;
}

std::string ExplainToJson(const ExplainMeta& meta,
                          const QueryResult& result) {
  telemetry::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("hef-explain-v1");
  w.Key("query").String(meta.query);
  w.Key("engine").String(meta.engine);
  w.Key("flavor").String(meta.flavor);
  if (result.trace_id != 0) {
    w.Key("trace").String(telemetry::FormatTraceId(result.trace_id));
  }
  w.Key("wall_ms").Double(static_cast<double>(result.wall_nanos) / 1e6);
  w.Key("morsels").UInt(result.morsels);
  w.Key("plan_cache_hit").Bool(result.plan_cache_hit);
  w.Key("qualifying_rows").UInt(result.qualifying_rows);
  if (result.chunks_total != 0) {
    w.Key("chunks_total").UInt(result.chunks_total);
    w.Key("chunks_scanned").UInt(result.chunks_scanned);
    w.Key("chunks_pruned").UInt(result.chunks_pruned);
  }
  w.Key("output_rows")
      .UInt(static_cast<std::uint64_t>(result.rows.size()));
  if (meta.tuned) {
    w.Key("tuned").BeginObject();
    w.Key("probe").BeginObject();
    w.Key("v").Int(meta.probe_cfg.v);
    w.Key("s").Int(meta.probe_cfg.s);
    w.Key("p").Int(meta.probe_cfg.p);
    w.EndObject();
    w.Key("gather").BeginObject();
    w.Key("v").Int(meta.gather_cfg.v);
    w.Key("s").Int(meta.gather_cfg.s);
    w.Key("p").Int(meta.gather_cfg.p);
    w.EndObject();
    w.EndObject();
  }
  w.Key("operators").BeginArray();
  for (const OperatorStats& op : result.operator_stats) {
    const std::string kind = OperatorKind(op.name);
    w.BeginObject();
    w.Key("name").String(op.name);
    w.Key("kind").String(kind);
    w.Key("self_ms").Double(static_cast<double>(op.wall_nanos) / 1e6);
    w.Key("invocations").UInt(op.invocations);
    w.Key("rows_in").UInt(op.rows_in);
    w.Key("rows_out").UInt(op.rows_out);
    w.Key("selectivity").Double(op.Selectivity());
    if (op.chunks_scanned != 0 || op.chunks_pruned != 0) {
      w.Key("chunks_scanned").UInt(op.chunks_scanned);
      w.Key("chunks_pruned").UInt(op.chunks_pruned);
    }
    if (const HybridConfig* t = TunedPoint(kind, meta)) {
      w.Key("tuned").BeginObject();
      w.Key("v").Int(t->v);
      w.Key("s").Int(t->s);
      w.Key("p").Int(t->p);
      w.EndObject();
    }
    if (op.perf.valid) {
      w.Key("instructions").UInt(op.perf.instructions);
      w.Key("cycles").UInt(op.perf.cycles);
      w.Key("llc_misses").UInt(op.perf.llc_misses);
      if (op.perf.scaled) w.Key("pmu_scaled").Bool(true);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace hef
