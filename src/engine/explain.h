// EXPLAIN ANALYZE for hef queries: renders the per-operator statistics a
// stats-collecting Run accumulated (QueryResult::operator_stats plus the
// diagnostics envelope) as a plan tree — which operator, which kernel
// flavor, which tuned (v,s,p) point, how many rows survived, how long it
// took, whether the plan came from cache.
//
// Two renderings share one traversal: a human text tree (`hef query
// --explain`) and the machine-readable `hef-explain-v1` JSON document
// (`--explain_json`, the /tracez exemplar payload, CI schema checks).
// The SSB star plans are linear pipelines, so the "tree" is a chain:
// the sink (group-by) at the root, the build at the leaf, rendered
// bottom-up the way the rows flow.

#ifndef HEF_ENGINE_EXPLAIN_H_
#define HEF_ENGINE_EXPLAIN_H_

#include <string>

#include "engine/flavor.h"
#include "engine/result.h"
#include "hybrid/hybrid_config.h"

namespace hef {

// Context the stats rows alone cannot carry. `tuned` marks the hybrid
// coordinates as meaningful (the hybrid flavor); Voila and the pure
// flavors leave it false and the renderings omit (v,s,p) annotations.
struct ExplainMeta {
  std::string query;   // e.g. "Q2.1"
  std::string engine;  // e.g. "hybrid", "voila"
  std::string flavor;  // kernel flavor name; may equal engine
  bool tuned = false;
  HybridConfig probe_cfg{1, 0, 1};
  HybridConfig gather_cfg{1, 0, 1};
};

// Meta for an SsbEngine run: flavor and — for the hybrid flavor — the
// tuned kernel coordinates come from the engine config.
ExplainMeta MakeExplainMeta(const std::string& query,
                            const std::string& engine,
                            const EngineConfig& config);

// Human-readable plan tree. Requires a Run with collect_stats; renders a
// one-line note when the result carries no operator stats.
std::string ExplainToText(const ExplainMeta& meta,
                          const QueryResult& result);

// {"schema":"hef-explain-v1",...} with the same information.
std::string ExplainToJson(const ExplainMeta& meta,
                          const QueryResult& result);

}  // namespace hef

#endif  // HEF_ENGINE_EXPLAIN_H_
