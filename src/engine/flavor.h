// Execution flavours of the SSB pipelines.
//
// The paper compares four implementations of every query: purely scalar,
// purely SIMD (the VIP-style vectorized pipeline), HEF hybrid, and Voila.
// The first three share one pipeline structure ("we adopt the same
// [operator, pipeline, materialization] configuration for queries
// implemented with HEF") and differ only in the kernels' (v, s, p)
// coordinates; Voila is a separate engine (src/voila).

#ifndef HEF_ENGINE_FLAVOR_H_
#define HEF_ENGINE_FLAVOR_H_

#include <string>

#include "common/status.h"
#include "hybrid/hybrid_config.h"

namespace hef {

enum class Flavor {
  kScalar,  // every kernel at v0 s1 p1
  kSimd,    // every kernel at v1 s0 p1
  kHybrid,  // kernels at the tuned (v, s, p) coordinates
};

const char* FlavorName(Flavor flavor);
Result<Flavor> FlavorByName(const std::string& name);

// Serving-path admission: OK when this host can actually run `flavor`,
// Unsupported when it cannot (simd/hybrid need an AVX2-or-better
// lowering; scalar always admits). The kernels would otherwise degrade
// to their scalar paths silently — acceptable for exploratory CLI use,
// wrong for a server that advertised a SIMD flavour.
Status CheckFlavorSupported(Flavor flavor);

// Parses a --flavor flag for serving binaries: "auto" resolves to the
// best flavour the host admits (hybrid with any vector ISA, scalar
// otherwise); a named flavour must pass CheckFlavorSupported. Errors are
// InvalidArgument (unknown name) or Unsupported (host cannot run it).
Result<Flavor> ResolveFlavorFlag(const std::string& name);

// Per-engine configuration. The hybrid kernel coordinates default to the
// paper's SSB optimum (one SIMD + one scalar statement, pack of three,
// §V-B); the tuner can override them per host.
struct EngineConfig {
  Flavor flavor = Flavor::kSimd;
  // Coordinates used when flavor == kHybrid.
  HybridConfig probe_cfg{1, 1, 3};
  HybridConfig gather_cfg{1, 1, 3};
  // Rows per pipeline block (the vectorized engine's vector size).
  int block_size = 4096;
  // Build a Bloom filter per dimension table and pre-filter probe keys
  // before each hash join (the star-join optimization of the SIMD Bloom
  // filter literature the paper cites). Results are unchanged — Bloom
  // misses are definite misses, false positives fall out of the join.
  bool bloom_prefilter = false;
  // Evaluate multi-predicate WHERE clauses as bitmap scans + conjunction
  // (Zhou & Ross selection scans) instead of compacting after every
  // predicate. Pays when individual predicates are unselective but their
  // conjunction is (the Q1.x pattern).
  bool fused_filters = false;
  // Run the group-by accumulate as gather-add-scatter with AVX-512CD
  // conflict detection instead of the scalar loop (related work [18]/[31]
  // style). Scalar-flavour engines ignore this.
  bool vectorized_agg = false;
  // Collect per-operator statistics (wall time, row counts, selectivity)
  // into QueryResult::operator_stats. Adds two clock reads per operator
  // per block, so it is off by default and benchmark timings should keep
  // it off.
  bool collect_stats = false;
  // Additionally attribute PMU deltas (instructions / cycles / LLC
  // misses) to each operator via one group read(2) per operator boundary.
  // Only meaningful with collect_stats; silently degrades to wall-clock
  // stats when the PMU is unavailable.
  bool collect_pmu = false;
  // Worker threads for the fact scan (morsel parallelism over blocks,
  // dispatched dynamically from the persistent exec::TaskPool with work
  // stealing). 0 means "auto": one worker per hardware thread. Results
  // are bit-identical for any thread count (group sums are commutative).
  // The paper measures per-core behaviour, so the paper-exhibit
  // benchmarks pin this to 1.
  int threads = 0;
  // Reuse built plans (filtered dimension hash tables + Bloom filters)
  // across repeated Run() calls on the same engine, keyed by QueryId.
  // Serving workloads want this on; paper-exhibit benchmarks that report
  // end-to-end per-query time (build included) turn it off.
  bool plan_cache = true;
  // Scan the fact table through the chunked, per-chunk-encoded shadow
  // (ssb::EnsureChunked) instead of the flat columns, decoding each
  // pipeline block on first touch. Requires db.chunked to be built with
  // chunk_rows a multiple of block_size; Run() rejects the query
  // otherwise.
  bool chunked_scan = false;
  // With chunked_scan: evaluate every chunk's zone map + histogram
  // against the plan's range filters and join key ranges at plan build,
  // and skip chunks proven empty before morsel dispatch. Results are
  // bit-identical with pruning on or off.
  bool scan_pruning = false;
  // Coordinates of the chunk-decode kernels (bit-unpack, FoR-add,
  // dictionary gather) when flavor == kHybrid.
  HybridConfig decode_cfg{1, 1, 3};

  // The kernel coordinate this engine flavour runs at.
  HybridConfig ProbeConfig() const {
    switch (flavor) {
      case Flavor::kScalar:
        return HybridConfig::PureScalar();
      case Flavor::kSimd:
        return HybridConfig::PureSimd();
      case Flavor::kHybrid:
        return probe_cfg;
    }
    return HybridConfig::PureSimd();
  }
  HybridConfig GatherConfig() const {
    switch (flavor) {
      case Flavor::kScalar:
        return HybridConfig::PureScalar();
      case Flavor::kSimd:
        return HybridConfig::PureSimd();
      case Flavor::kHybrid:
        return gather_cfg;
    }
    return HybridConfig::PureSimd();
  }
  HybridConfig DecodeConfig() const {
    switch (flavor) {
      case Flavor::kScalar:
        return HybridConfig::PureScalar();
      case Flavor::kSimd:
        return HybridConfig::PureSimd();
      case Flavor::kHybrid:
        return decode_cfg;
    }
    return HybridConfig::PureSimd();
  }
};

}  // namespace hef

#endif  // HEF_ENGINE_FLAVOR_H_
