#include "engine/primitives.h"

#include "common/macros.h"
#include "hybrid/hybrid_grid.h"
#include "procinfo/cpu_features.h"
#include "table/linear_hash_table.h"

namespace hef {

namespace {

// Map kernel: out[i] = base[in[i]].
struct GatherKernel {
  const std::uint64_t* base = nullptr;

  template <typename B>
  struct State {
    typename B::Reg idx;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.idx = B::LoadU(in);
  }
  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    st.idx = B::Gather(base, st.idx);
  }
  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.idx);
  }
};

using GatherGrid = HybridGrid<GatherKernel, /*MaxV=*/2, /*MaxS=*/4,
                              /*MaxP=*/3>;

}  // namespace

void GatherArray(const HybridConfig& cfg, const std::uint64_t* base,
                 const std::uint64_t* idx, std::uint64_t* out,
                 std::size_t n) {
  GatherKernel kernel;
  kernel.base = base;
  GatherGrid::Run(cfg, kernel, idx, out, n);
}

const std::vector<HybridConfig>& GatherSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(GatherGrid::Supported());
  return *configs;
}

std::vector<OpClass> GatherKernelOps() {
  return {OpClass::kLoad, OpClass::kGather, OpClass::kStore};
}

namespace {

std::size_t CompactInRangeScalar(const std::uint64_t* values, std::size_t n,
                                 std::uint64_t lo, std::uint64_t hi,
                                 std::uint64_t* positions_out) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    positions_out[count] = i;
    count += (values[i] >= lo) & (values[i] <= hi);
  }
  return count;
}

#if HEF_HAVE_AVX512
std::size_t CompactInRangeSimd(const std::uint64_t* values, std::size_t n,
                               std::uint64_t lo, std::uint64_t hi,
                               std::uint64_t* positions_out) {
  using B = Avx512Backend;
  const auto vlo = B::Set1(lo);
  const auto vhi = B::Set1(hi);
  alignas(64) static constexpr std::uint64_t kIota[8] = {0, 1, 2, 3,
                                                         4, 5, 6, 7};
  auto iota = B::LoadU(kIota);
  const auto step = B::Set1(8);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const auto v = B::LoadU(values + i);
    // lo <= v && v <= hi  ==  !(lo > v) && !(v > hi)
    const auto ge_lo = B::MaskNot(B::CmpGt(vlo, v));
    const auto le_hi = B::MaskNot(B::CmpGt(v, vhi));
    const auto m = B::MaskAnd(ge_lo, le_hi);
    count += static_cast<std::size_t>(
        B::CompressStoreU(positions_out + count, m, iota));
    iota = B::Add(iota, step);
  }
  for (; i < n; ++i) {
    positions_out[count] = i;
    count += (values[i] >= lo) & (values[i] <= hi);
  }
  return count;
}
#endif

}  // namespace

std::size_t CompactInRange(Flavor flavor, const std::uint64_t* values,
                           std::size_t n, std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t* positions_out) {
#if HEF_HAVE_AVX512
  if (flavor != Flavor::kScalar) {
    return CompactInRangeSimd(values, n, lo, hi, positions_out);
  }
#endif
  return CompactInRangeScalar(values, n, lo, hi, positions_out);
}

std::size_t CompactHits(Flavor flavor, const std::uint64_t* values,
                        std::size_t n, std::uint64_t* positions_out) {
  return CompactInRange(flavor, values, n, 0, kMissValue - 1, positions_out);
}

const char* FlavorName(Flavor flavor) {
  switch (flavor) {
    case Flavor::kScalar:
      return "scalar";
    case Flavor::kSimd:
      return "simd";
    case Flavor::kHybrid:
      return "hybrid";
  }
  return "unknown";
}

Result<Flavor> FlavorByName(const std::string& name) {
  if (name == "scalar") return Flavor::kScalar;
  if (name == "simd") return Flavor::kSimd;
  if (name == "hybrid") return Flavor::kHybrid;
  return Status::InvalidArgument("unknown flavor '" + name +
                                 "' (expected scalar|simd|hybrid)");
}

Status CheckFlavorSupported(Flavor flavor) {
  if (flavor == Flavor::kScalar) return Status::OK();
  const CpuFeatures& cpu = CpuFeatures::Get();
  if (cpu.BestIsa() == Isa::kScalar) {
    return Status::Unsupported(
        std::string("flavor '") + FlavorName(flavor) +
        "' needs a vector ISA but this host has none usable (cpu: " +
        (cpu.brand.empty() ? "unknown" : cpu.brand) + ")");
  }
  return Status::OK();
}

Result<Flavor> ResolveFlavorFlag(const std::string& name) {
  if (name == "auto" || name.empty()) {
    return CpuFeatures::Get().BestIsa() == Isa::kScalar ? Flavor::kScalar
                                                        : Flavor::kHybrid;
  }
  Result<Flavor> parsed = FlavorByName(name);
  HEF_RETURN_NOT_OK(parsed.status());
  HEF_RETURN_NOT_OK(CheckFlavorSupported(parsed.value()));
  return parsed;
}

}  // namespace hef
