// Flavoured block-level primitives of the vectorized pipeline: gather,
// range-filter compaction, and hit compaction. Together with the hash
// probe (src/table/probe.h) these are the operator vocabulary every SSB
// pipeline is assembled from.

#ifndef HEF_ENGINE_PRIMITIVES_H_
#define HEF_ENGINE_PRIMITIVES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "engine/flavor.h"
#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef {

// out[i] = base[idx[i]] — row gather, the pipeline's materialization step.
// Runs as a HID map kernel at coordinate `cfg`.
void GatherArray(const HybridConfig& cfg, const std::uint64_t* base,
                 const std::uint64_t* idx, std::uint64_t* out,
                 std::size_t n);

// All (v, s, p) coordinates precompiled for the gather kernel.
const std::vector<HybridConfig>& GatherSupportedConfigs();

// Writes the positions i (0-based) with lo <= values[i] <= hi into
// positions_out, in order; returns the count. `flavor` selects the scalar
// branch-free loop or the SIMD compare+compress implementation (compaction
// is a single-cursor operation, so it has exactly these two forms — the
// hybrid engine uses the SIMD form, as the paper's generated operators do).
std::size_t CompactInRange(Flavor flavor, const std::uint64_t* values,
                           std::size_t n, std::uint64_t lo, std::uint64_t hi,
                           std::uint64_t* positions_out);

// Positions of probe hits: values[i] != kMissValue.
std::size_t CompactHits(Flavor flavor, const std::uint64_t* values,
                        std::size_t n, std::uint64_t* positions_out);

// The gather kernel's op mix, for the candidate generator / port model.
std::vector<OpClass> GatherKernelOps();

}  // namespace hef

#endif  // HEF_ENGINE_PRIMITIVES_H_
