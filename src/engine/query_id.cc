#include "engine/query_id.h"

namespace hef {

namespace {

struct Entry {
  QueryId id;
  const char* name;   // "Q2.1"
  const char* brief;  // "2.1"
};

constexpr Entry kEntries[] = {
    {QueryId::kQ1_1, "Q1.1", "1.1"}, {QueryId::kQ1_2, "Q1.2", "1.2"},
    {QueryId::kQ1_3, "Q1.3", "1.3"}, {QueryId::kQ2_1, "Q2.1", "2.1"},
    {QueryId::kQ2_2, "Q2.2", "2.2"}, {QueryId::kQ2_3, "Q2.3", "2.3"},
    {QueryId::kQ3_1, "Q3.1", "3.1"}, {QueryId::kQ3_2, "Q3.2", "3.2"},
    {QueryId::kQ3_3, "Q3.3", "3.3"}, {QueryId::kQ3_4, "Q3.4", "3.4"},
    {QueryId::kQ4_1, "Q4.1", "4.1"}, {QueryId::kQ4_2, "Q4.2", "4.2"},
    {QueryId::kQ4_3, "Q4.3", "4.3"},
};

}  // namespace

Result<QueryId> ParseQueryId(const std::string& text) {
  for (const Entry& e : kEntries) {
    if (text == e.name || text == e.brief) return e.id;
  }
  return Status::InvalidArgument("unknown SSB query '" + text +
                                 "' (expected e.g. '2.1' or 'Q2.1')");
}

const char* QueryName(QueryId id) {
  for (const Entry& e : kEntries) {
    if (e.id == id) return e.name;
  }
  return "Q?";
}

const char* QuerySql(QueryId id) {
  switch (id) {
    case QueryId::kQ1_1:
      return "SELECT SUM(lo_extendedprice * lo_discount) AS revenue\n"
             "FROM lineorder, date\n"
             "WHERE lo_orderdate = d_datekey AND d_year = 1993\n"
             "  AND lo_discount BETWEEN 1 AND 3 AND lo_quantity < 25;";
    case QueryId::kQ1_2:
      return "SELECT SUM(lo_extendedprice * lo_discount) AS revenue\n"
             "FROM lineorder, date\n"
             "WHERE lo_orderdate = d_datekey AND d_yearmonthnum = 199401\n"
             "  AND lo_discount BETWEEN 4 AND 6\n"
             "  AND lo_quantity BETWEEN 26 AND 35;";
    case QueryId::kQ1_3:
      return "SELECT SUM(lo_extendedprice * lo_discount) AS revenue\n"
             "FROM lineorder, date\n"
             "WHERE lo_orderdate = d_datekey AND d_weeknuminyear = 6\n"
             "  AND d_year = 1994 AND lo_discount BETWEEN 5 AND 7\n"
             "  AND lo_quantity BETWEEN 26 AND 35;";
    case QueryId::kQ2_1:
      return "SELECT SUM(lo_revenue), d_year, p_brand1\n"
             "FROM lineorder, date, part, supplier\n"
             "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey\n"
             "  AND lo_suppkey = s_suppkey AND p_category = 'MFGR#12'\n"
             "  AND s_region = 'AMERICA'\n"
             "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;";
    case QueryId::kQ2_2:
      return "SELECT SUM(lo_revenue), d_year, p_brand1\n"
             "FROM lineorder, date, part, supplier\n"
             "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey\n"
             "  AND lo_suppkey = s_suppkey\n"
             "  AND p_brand1 BETWEEN 'MFGR#2221' AND 'MFGR#2228'\n"
             "  AND s_region = 'ASIA'\n"
             "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;";
    case QueryId::kQ2_3:
      return "SELECT SUM(lo_revenue), d_year, p_brand1\n"
             "FROM lineorder, date, part, supplier\n"
             "WHERE lo_orderdate = d_datekey AND lo_partkey = p_partkey\n"
             "  AND lo_suppkey = s_suppkey AND p_brand1 = 'MFGR#2221'\n"
             "  AND s_region = 'EUROPE'\n"
             "GROUP BY d_year, p_brand1 ORDER BY d_year, p_brand1;";
    case QueryId::kQ3_1:
      return "SELECT c_nation, s_nation, d_year, SUM(lo_revenue)\n"
             "FROM customer, lineorder, supplier, date\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_orderdate = d_datekey AND c_region = 'ASIA'\n"
             "  AND s_region = 'ASIA' AND d_year >= 1992 AND d_year <= 1997\n"
             "GROUP BY c_nation, s_nation, d_year;";
    case QueryId::kQ3_2:
      return "SELECT c_city, s_city, d_year, SUM(lo_revenue)\n"
             "FROM customer, lineorder, supplier, date\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_orderdate = d_datekey\n"
             "  AND c_nation = 'UNITED STATES'\n"
             "  AND s_nation = 'UNITED STATES'\n"
             "  AND d_year >= 1992 AND d_year <= 1997\n"
             "GROUP BY c_city, s_city, d_year;";
    case QueryId::kQ3_3:
      return "SELECT c_city, s_city, d_year, SUM(lo_revenue)\n"
             "FROM customer, lineorder, supplier, date\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_orderdate = d_datekey\n"
             "  AND c_city IN ('UNITED KI1', 'UNITED KI5')\n"
             "  AND s_city IN ('UNITED KI1', 'UNITED KI5')\n"
             "  AND d_year >= 1992 AND d_year <= 1997\n"
             "GROUP BY c_city, s_city, d_year;";
    case QueryId::kQ3_4:
      return "SELECT c_city, s_city, d_year, SUM(lo_revenue)\n"
             "FROM customer, lineorder, supplier, date\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_orderdate = d_datekey\n"
             "  AND c_city IN ('UNITED KI1', 'UNITED KI5')\n"
             "  AND s_city IN ('UNITED KI1', 'UNITED KI5')\n"
             "  AND d_yearmonth = 'Dec1997'\n"
             "GROUP BY c_city, s_city, d_year;";
    case QueryId::kQ4_1:
      return "SELECT d_year, c_nation,\n"
             "       SUM(lo_revenue - lo_supplycost) AS profit\n"
             "FROM date, customer, supplier, part, lineorder\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey\n"
             "  AND c_region = 'AMERICA' AND s_region = 'AMERICA'\n"
             "  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')\n"
             "GROUP BY d_year, c_nation;";
    case QueryId::kQ4_2:
      return "SELECT d_year, s_nation, p_category,\n"
             "       SUM(lo_revenue - lo_supplycost) AS profit\n"
             "FROM date, customer, supplier, part, lineorder\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey\n"
             "  AND c_region = 'AMERICA' AND s_region = 'AMERICA'\n"
             "  AND (d_year = 1997 OR d_year = 1998)\n"
             "  AND (p_mfgr = 'MFGR#1' OR p_mfgr = 'MFGR#2')\n"
             "GROUP BY d_year, s_nation, p_category;";
    case QueryId::kQ4_3:
      return "SELECT d_year, s_city, p_brand1,\n"
             "       SUM(lo_revenue - lo_supplycost) AS profit\n"
             "FROM date, customer, supplier, part, lineorder\n"
             "WHERE lo_custkey = c_custkey AND lo_suppkey = s_suppkey\n"
             "  AND lo_partkey = p_partkey AND lo_orderdate = d_datekey\n"
             "  AND c_region = 'AMERICA'\n"
             "  AND s_nation = 'UNITED STATES'\n"
             "  AND (d_year = 1997 OR d_year = 1998)\n"
             "  AND p_category = 'MFGR#14'\n"
             "GROUP BY d_year, s_city, p_brand1;";
  }
  return "";
}

const std::vector<QueryId>& AllQueries() {
  static const std::vector<QueryId>* all = new std::vector<QueryId>{
      QueryId::kQ1_1, QueryId::kQ1_2, QueryId::kQ1_3, QueryId::kQ2_1,
      QueryId::kQ2_2, QueryId::kQ2_3, QueryId::kQ3_1, QueryId::kQ3_2,
      QueryId::kQ3_3, QueryId::kQ3_4, QueryId::kQ4_1, QueryId::kQ4_2,
      QueryId::kQ4_3};
  return *all;
}

const std::vector<QueryId>& PaperFigureQueries() {
  static const std::vector<QueryId>* queries = new std::vector<QueryId>{
      QueryId::kQ2_1, QueryId::kQ2_2, QueryId::kQ2_3, QueryId::kQ3_1,
      QueryId::kQ3_2, QueryId::kQ3_3, QueryId::kQ3_4, QueryId::kQ4_1,
      QueryId::kQ4_2, QueryId::kQ4_3};
  return *queries;
}

}  // namespace hef
