// SSB query identifiers.

#ifndef HEF_ENGINE_QUERY_ID_H_
#define HEF_ENGINE_QUERY_ID_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace hef {

enum class QueryId {
  kQ1_1,
  kQ1_2,
  kQ1_3,
  kQ2_1,
  kQ2_2,
  kQ2_3,
  kQ3_1,
  kQ3_2,
  kQ3_3,
  kQ3_4,
  kQ4_1,
  kQ4_2,
  kQ4_3,
};

// "Q2.1" / "2.1" -> kQ2_1.
Result<QueryId> ParseQueryId(const std::string& text);
const char* QueryName(QueryId id);

// The query's SQL text (SSB specification form), for documentation and
// harness output.
const char* QuerySql(QueryId id);

// All 13 SSB queries in benchmark order.
const std::vector<QueryId>& AllQueries();

// The ten queries the paper's figures report (Q2.1-Q4.3; Q1.x are
// memory-bandwidth-bound and excluded, §V).
const std::vector<QueryId>& PaperFigureQueries();

}  // namespace hef

#endif  // HEF_ENGINE_QUERY_ID_H_
