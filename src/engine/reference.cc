#include "engine/reference.h"

#include <array>
#include <functional>
#include <map>

#include "common/macros.h"
#include "ssb/schema.h"

namespace hef {

namespace {

using ssb::SsbDatabase;

// Row-at-a-time evaluation with dimension lookups by direct array index
// (surrogate keys are dense) and a datekey -> date-row map.
QueryResult Execute(
    const SsbDatabase& db,
    const std::function<bool(std::size_t lo_row, std::size_t d_row)>& pred,
    const std::function<std::array<std::uint64_t, 3>(std::size_t lo_row,
                                                     std::size_t d_row)>& key,
    const std::function<std::uint64_t(std::size_t lo_row)>& value) {
  // datekey -> date row.
  std::map<std::uint64_t, std::size_t> date_index;
  for (std::size_t i = 0; i < db.date.n; ++i) {
    date_index[db.date.datekey[i]] = i;
  }

  std::map<std::array<std::uint64_t, 3>, std::uint64_t> groups;
  std::uint64_t qualifying = 0;
  for (std::size_t r = 0; r < db.lineorder.n; ++r) {
    const auto it = date_index.find(db.lineorder.orderdate[r]);
    HEF_CHECK(it != date_index.end());
    const std::size_t d = it->second;
    if (!pred(r, d)) continue;
    ++qualifying;
    groups[key(r, d)] += value(r);
  }

  QueryResult result;
  result.qualifying_rows = qualifying;
  for (const auto& [k, v] : groups) {
    GroupRow row;
    row.keys = k;
    row.value = v;
    result.rows.push_back(row);
  }
  return result;  // std::map iteration is already key-sorted
}

}  // namespace

QueryResult RunReferenceQuery(const SsbDatabase& db, QueryId id) {
  const auto& lo = db.lineorder;
  const auto& c = db.customer;
  const auto& s = db.supplier;
  const auto& p = db.part;
  const auto& d = db.date;

  auto cust = [&](std::size_t r) { return lo.custkey[r] - 1; };
  auto supp = [&](std::size_t r) { return lo.suppkey[r] - 1; };
  auto part = [&](std::size_t r) { return lo.partkey[r] - 1; };

  auto revenue = [&](std::size_t r) { return lo.revenue[r]; };
  auto profit = [&](std::size_t r) {
    return lo.revenue[r] - lo.supplycost[r];
  };
  auto discounted = [&](std::size_t r) {
    return lo.extendedprice[r] * lo.discount[r];
  };
  auto no_key = [](std::size_t, std::size_t) {
    return std::array<std::uint64_t, 3>{};
  };

  switch (id) {
    case QueryId::kQ1_1:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return d.year[dr] == 1993 && lo.discount[r] >= 1 &&
                   lo.discount[r] <= 3 && lo.quantity[r] < 25;
          },
          no_key, discounted);
    case QueryId::kQ1_2:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return d.yearmonthnum[dr] == 199401 && lo.discount[r] >= 4 &&
                   lo.discount[r] <= 6 && lo.quantity[r] >= 26 &&
                   lo.quantity[r] <= 35;
          },
          no_key, discounted);
    case QueryId::kQ1_3:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return d.weeknuminyear[dr] == 6 && d.year[dr] == 1994 &&
                   lo.discount[r] >= 5 && lo.discount[r] <= 7 &&
                   lo.quantity[r] >= 26 && lo.quantity[r] <= 35;
          },
          no_key, discounted);

    case QueryId::kQ2_1:
      return Execute(
          db,
          [&](std::size_t r, std::size_t) {
            return p.category[part(r)] == 12 &&
                   s.region[supp(r)] == ssb::kAmerica;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{d.year[dr],
                                                p.brand1[part(r)], 0};
          },
          revenue);
    case QueryId::kQ2_2:
      return Execute(
          db,
          [&](std::size_t r, std::size_t) {
            return p.brand1[part(r)] >= 2221 && p.brand1[part(r)] <= 2228 &&
                   s.region[supp(r)] == ssb::kAsia;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{d.year[dr],
                                                p.brand1[part(r)], 0};
          },
          revenue);
    case QueryId::kQ2_3:
      return Execute(
          db,
          [&](std::size_t r, std::size_t) {
            return p.brand1[part(r)] == 2221 &&
                   s.region[supp(r)] == ssb::kEurope;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{d.year[dr],
                                                p.brand1[part(r)], 0};
          },
          revenue);

    case QueryId::kQ3_1:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return c.region[cust(r)] == ssb::kAsia &&
                   s.region[supp(r)] == ssb::kAsia && d.year[dr] >= 1992 &&
                   d.year[dr] <= 1997;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{c.nation[cust(r)],
                                                s.nation[supp(r)],
                                                d.year[dr]};
          },
          revenue);
    case QueryId::kQ3_2:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return c.nation[cust(r)] == ssb::kNationUnitedStates &&
                   s.nation[supp(r)] == ssb::kNationUnitedStates &&
                   d.year[dr] >= 1992 && d.year[dr] <= 1997;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{c.city[cust(r)],
                                                s.city[supp(r)], d.year[dr]};
          },
          revenue);
    case QueryId::kQ3_3:
    case QueryId::kQ3_4: {
      auto is_ki = [](std::uint64_t city) {
        return city == ssb::kCityUnitedKi1 || city == ssb::kCityUnitedKi5;
      };
      return Execute(
          db,
          [&, is_ki](std::size_t r, std::size_t dr) {
            const bool date_ok =
                id == QueryId::kQ3_4
                    ? d.yearmonthnum[dr] == 199712
                    : (d.year[dr] >= 1992 && d.year[dr] <= 1997);
            return is_ki(c.city[cust(r)]) && is_ki(s.city[supp(r)]) &&
                   date_ok;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{c.city[cust(r)],
                                                s.city[supp(r)], d.year[dr]};
          },
          revenue);
    }

    case QueryId::kQ4_1:
      return Execute(
          db,
          [&](std::size_t r, std::size_t) {
            return c.region[cust(r)] == ssb::kAmerica &&
                   s.region[supp(r)] == ssb::kAmerica &&
                   p.mfgr[part(r)] <= 2;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{d.year[dr],
                                                c.nation[cust(r)], 0};
          },
          profit);
    case QueryId::kQ4_2:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return c.region[cust(r)] == ssb::kAmerica &&
                   s.region[supp(r)] == ssb::kAmerica &&
                   p.mfgr[part(r)] <= 2 && d.year[dr] >= 1997;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{
                d.year[dr], s.nation[supp(r)], p.category[part(r)]};
          },
          profit);
    case QueryId::kQ4_3:
      return Execute(
          db,
          [&](std::size_t r, std::size_t dr) {
            return s.nation[supp(r)] == ssb::kNationUnitedStates &&
                   c.region[cust(r)] == ssb::kAmerica &&
                   p.category[part(r)] == 14 && d.year[dr] >= 1997;
          },
          [&](std::size_t r, std::size_t dr) {
            return std::array<std::uint64_t, 3>{
                d.year[dr], s.city[supp(r)], p.brand1[part(r)]};
          },
          profit);
  }
  HEF_CHECK_MSG(false, "unknown query id");
  __builtin_unreachable();
}

}  // namespace hef
