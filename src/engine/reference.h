// ReferenceRunner — a deliberately simple row-at-a-time executor for the 13
// SSB queries, written independently of the vectorized engine (no shared
// plan code, std::map grouping). It is the correctness oracle: every
// engine flavour and Voila must produce bit-identical QueryResults.

#ifndef HEF_ENGINE_REFERENCE_H_
#define HEF_ENGINE_REFERENCE_H_

#include "engine/query_id.h"
#include "engine/result.h"
#include "ssb/database.h"

namespace hef {

QueryResult RunReferenceQuery(const ssb::SsbDatabase& db, QueryId id);

}  // namespace hef

#endif  // HEF_ENGINE_REFERENCE_H_
