#include "engine/result.h"

#include <cstdio>

namespace hef {

std::string QueryResult::ToString() const {
  std::string out;
  char buf[128];
  for (const GroupRow& r : rows) {
    std::snprintf(buf, sizeof(buf), "%llu %llu %llu -> %llu\n",
                  static_cast<unsigned long long>(r.keys[0]),
                  static_cast<unsigned long long>(r.keys[1]),
                  static_cast<unsigned long long>(r.keys[2]),
                  static_cast<unsigned long long>(r.value));
    out += buf;
  }
  return out;
}

}  // namespace hef
