#include "engine/result.h"

#include <cstdio>

#include "telemetry/json_writer.h"

namespace hef {

std::string QueryResult::ToString() const {
  std::string out;
  char buf[128];
  for (const GroupRow& r : rows) {
    std::snprintf(buf, sizeof(buf), "%llu %llu %llu -> %llu\n",
                  static_cast<unsigned long long>(r.keys[0]),
                  static_cast<unsigned long long>(r.keys[1]),
                  static_cast<unsigned long long>(r.keys[2]),
                  static_cast<unsigned long long>(r.value));
    out += buf;
  }
  return out;
}

std::string QueryResult::StatsToString() const {
  if (operator_stats.empty()) return std::string();
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%-20s %10s %8s %12s %12s %6s %12s %6s %s\n",
                "operator", "ms", "calls", "rows_in", "rows_out", "sel%",
                "instr", "ipc", "llc_miss");
  out += buf;
  for (const OperatorStats& s : operator_stats) {
    std::snprintf(buf, sizeof(buf), "%-20s %10.3f %8llu %12llu %12llu %6.1f",
                  s.name.c_str(), static_cast<double>(s.wall_nanos) * 1e-6,
                  static_cast<unsigned long long>(s.invocations),
                  static_cast<unsigned long long>(s.rows_in),
                  static_cast<unsigned long long>(s.rows_out),
                  s.Selectivity() * 100.0);
    out += buf;
    if (s.perf.valid) {
      std::snprintf(buf, sizeof(buf), " %12llu %6.2f %llu%s\n",
                    static_cast<unsigned long long>(s.perf.instructions),
                    s.perf.Ipc(),
                    static_cast<unsigned long long>(s.perf.llc_misses),
                    s.perf.scaled ? " (scaled)" : "");
    } else {
      std::snprintf(buf, sizeof(buf), " %12s %6s %s\n", "n/a", "n/a", "n/a");
    }
    out += buf;
  }
  return out;
}

std::string OperatorStatsToJson(const std::vector<OperatorStats>& stats) {
  telemetry::JsonWriter w;
  w.BeginArray();
  for (const OperatorStats& s : stats) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("ms").Double(static_cast<double>(s.wall_nanos) * 1e-6);
    w.Key("invocations").UInt(s.invocations);
    w.Key("rows_in").UInt(s.rows_in);
    w.Key("rows_out").UInt(s.rows_out);
    w.Key("selectivity").Double(s.Selectivity());
    if (s.perf.valid) {
      w.Key("instructions").UInt(s.perf.instructions);
      w.Key("cycles").UInt(s.perf.cycles);
      w.Key("ipc").Double(s.perf.Ipc());
      w.Key("llc_misses").UInt(s.perf.llc_misses);
      w.Key("pmu_scaled").Bool(s.perf.scaled);
    }
    w.EndObject();
  }
  w.EndArray();
  return w.Take();
}

}  // namespace hef
