// Query result representation shared by all engines (scalar / SIMD /
// hybrid / Voila / reference), so results can be compared bit-exactly in
// tests.

#ifndef HEF_ENGINE_RESULT_H_
#define HEF_ENGINE_RESULT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "perf/perf_counters.h"

namespace hef {

// Per-operator execution statistics, collected when
// EngineConfig::collect_stats is set. One entry per pipeline stage in
// execution order: the dimension build, each range filter, each join
// probe (bloom pre-filter included), and the group-by accumulate.
struct OperatorStats {
  std::string name;               // e.g. "filter.discount", "probe.partkey"
  std::uint64_t wall_nanos = 0;   // summed across blocks and workers
  std::uint64_t invocations = 0;  // block-level activations
  std::uint64_t rows_in = 0;
  std::uint64_t rows_out = 0;
  // PMU deltas attributed to this operator (collect_pmu); valid == false
  // when the PMU is unavailable.
  PerfReading perf;
  // Chunked-scan pruning verdicts attributed to this operator (filters
  // and probes only; both zero when pruning is off): chunks whose zone
  // map / histogram survived this operator's predicate, and chunks this
  // operator pruned (first pruning cause wins, so the counts of
  // successive operators nest).
  std::uint64_t chunks_scanned = 0;
  std::uint64_t chunks_pruned = 0;

  // Fraction of input rows surviving this operator; 1 when no rows seen.
  double Selectivity() const {
    return rows_in == 0 ? 1.0
                        : static_cast<double>(rows_out) /
                              static_cast<double>(rows_in);
  }
};

// One output group: up to three group-by key attributes (unused slots are
// zero) and the aggregated value. Q1.x produce a single row with no keys.
struct GroupRow {
  std::array<std::uint64_t, 3> keys{};
  std::uint64_t value = 0;

  bool operator==(const GroupRow& o) const {
    return keys == o.keys && value == o.value;
  }
  bool operator<(const GroupRow& o) const { return keys < o.keys; }
};

struct QueryResult {
  // Rows sorted by keys (deterministic across engines).
  std::vector<GroupRow> rows;
  // Fact rows that survived all predicates/joins (for selectivity checks).
  std::uint64_t qualifying_rows = 0;
  // Per-operator breakdown; empty unless EngineConfig::collect_stats.
  std::vector<OperatorStats> operator_stats;

  // --- Diagnostics envelope (does not participate in operator==, which
  // compares rows only, so bit-exactness tests stay engine-agnostic) ---
  std::uint64_t trace_id = 0;     // minted in QueryContext; 0 = untraced
  std::uint64_t wall_nanos = 0;   // end-to-end run wall time
  std::uint64_t morsels = 0;      // morsels dispatched (blocks when serial)
  bool plan_cache_hit = false;    // plan came from the engine's plan cache
  // Chunked-scan envelope (all zero when the engine scans flat columns):
  // fact chunks per column, chunks dispatched to the pipeline, and chunks
  // skipped by the zone-map pruning pass.
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_scanned = 0;
  std::uint64_t chunks_pruned = 0;

  std::uint64_t TotalValue() const {
    std::uint64_t total = 0;
    for (const GroupRow& r : rows) total += r.value;
    return total;
  }

  bool operator==(const QueryResult& o) const { return rows == o.rows; }

  // Debug rendering: one "k1 k2 k3 -> value" line per row.
  std::string ToString() const;

  // Aligned per-operator table (wall time, rows, selectivity, PMU columns
  // when valid); empty string when no stats were collected.
  std::string StatsToString() const;
};

// JSON array of operator rows: [{"name":..,"ms":..,"invocations":..,
// "rows_in":..,"rows_out":..,"selectivity":..}, ...] with
// instructions/ipc/llc_misses/pmu_scaled added when the PMU reading is
// valid. Shared by `tools/hef query --json` and the bench reports.
std::string OperatorStatsToJson(const std::vector<OperatorStats>& stats);

}  // namespace hef

#endif  // HEF_ENGINE_RESULT_H_
