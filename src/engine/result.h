// Query result representation shared by all engines (scalar / SIMD /
// hybrid / Voila / reference), so results can be compared bit-exactly in
// tests.

#ifndef HEF_ENGINE_RESULT_H_
#define HEF_ENGINE_RESULT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace hef {

// One output group: up to three group-by key attributes (unused slots are
// zero) and the aggregated value. Q1.x produce a single row with no keys.
struct GroupRow {
  std::array<std::uint64_t, 3> keys{};
  std::uint64_t value = 0;

  bool operator==(const GroupRow& o) const {
    return keys == o.keys && value == o.value;
  }
  bool operator<(const GroupRow& o) const { return keys < o.keys; }
};

struct QueryResult {
  // Rows sorted by keys (deterministic across engines).
  std::vector<GroupRow> rows;
  // Fact rows that survived all predicates/joins (for selectivity checks).
  std::uint64_t qualifying_rows = 0;

  std::uint64_t TotalValue() const {
    std::uint64_t total = 0;
    for (const GroupRow& r : rows) total += r.value;
    return total;
  }

  bool operator==(const QueryResult& o) const { return rows == o.rows; }

  // Debug rendering: one "k1 k2 k3 -> value" line per row.
  std::string ToString() const;
};

}  // namespace hef

#endif  // HEF_ENGINE_RESULT_H_
