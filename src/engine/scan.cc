#include "engine/scan.h"

#include <cstring>

#include "common/macros.h"
#include "hid/hid.h"

namespace hef {

namespace {

std::size_t ScanRangeBitmapScalar(const std::uint64_t* col, std::size_t n,
                                  std::uint64_t lo, std::uint64_t hi,
                                  std::uint64_t* bitmap) {
  std::memset(bitmap, 0, BitmapWords(n) * sizeof(std::uint64_t));
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pass = (col[i] >= lo) & (col[i] <= hi);
    bitmap[i >> 6] |= pass << (i & 63);
    count += pass;
  }
  return count;
}

#if HEF_HAVE_AVX512
std::size_t ScanRangeBitmapSimd(const std::uint64_t* col, std::size_t n,
                                std::uint64_t lo, std::uint64_t hi,
                                std::uint64_t* bitmap) {
  using B = Avx512Backend;
  std::memset(bitmap, 0, BitmapWords(n) * sizeof(std::uint64_t));
  auto* bytes = reinterpret_cast<std::uint8_t*>(bitmap);
  const auto vlo = B::Set1(lo);
  const auto vhi = B::Set1(hi);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const auto v = B::LoadU(col + i);
    const auto m = B::MaskAnd(B::MaskNot(B::CmpGt(vlo, v)),
                              B::MaskNot(B::CmpGt(v, vhi)));
    bytes[i >> 3] = static_cast<std::uint8_t>(B::MaskBits(m));
    count += static_cast<std::size_t>(B::MaskCount(m));
  }
  for (; i < n; ++i) {
    const std::uint64_t pass = (col[i] >= lo) & (col[i] <= hi);
    bitmap[i >> 6] |= pass << (i & 63);
    count += pass;
  }
  return count;
}
#endif

}  // namespace

std::size_t ScanRangeBitmap(Flavor flavor, const std::uint64_t* col,
                            std::size_t n, std::uint64_t lo,
                            std::uint64_t hi, std::uint64_t* bitmap) {
#if HEF_HAVE_AVX512
  if (flavor != Flavor::kScalar) {
    return ScanRangeBitmapSimd(col, n, lo, hi, bitmap);
  }
#endif
  return ScanRangeBitmapScalar(col, n, lo, hi, bitmap);
}

std::size_t BitmapAnd(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  const std::size_t words = BitmapWords(n);
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    dst[w] &= src[w];
    count += static_cast<std::size_t>(__builtin_popcountll(dst[w]));
  }
  // Bits past n are zero by construction (both operands were built with
  // cleared tails), so the popcount is exact.
  return count;
}

std::size_t BitmapToPositions(const std::uint64_t* bitmap, std::size_t n,
                              std::uint64_t* positions_out) {
  const std::size_t words = BitmapWords(n);
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = bitmap[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      positions_out[count++] = (w << 6) + static_cast<std::uint64_t>(bit);
    }
  }
  return count;
}

}  // namespace hef
