#include "engine/scan.h"

#include <cstring>
#include <vector>

#include "common/macros.h"
#include "engine/star_plan.h"
#include "hid/hid.h"
#include "ssb/chunked_fact.h"
#include "telemetry/flight_recorder.h"

namespace hef {

namespace {

std::size_t ScanRangeBitmapScalar(const std::uint64_t* col, std::size_t n,
                                  std::uint64_t lo, std::uint64_t hi,
                                  std::uint64_t* bitmap) {
  std::memset(bitmap, 0, BitmapWords(n) * sizeof(std::uint64_t));
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t pass = (col[i] >= lo) & (col[i] <= hi);
    bitmap[i >> 6] |= pass << (i & 63);
    count += pass;
  }
  return count;
}

#if HEF_HAVE_AVX512
std::size_t ScanRangeBitmapSimd(const std::uint64_t* col, std::size_t n,
                                std::uint64_t lo, std::uint64_t hi,
                                std::uint64_t* bitmap) {
  using B = Avx512Backend;
  std::memset(bitmap, 0, BitmapWords(n) * sizeof(std::uint64_t));
  auto* bytes = reinterpret_cast<std::uint8_t*>(bitmap);
  const auto vlo = B::Set1(lo);
  const auto vhi = B::Set1(hi);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const auto v = B::LoadU(col + i);
    const auto m = B::MaskAnd(B::MaskNot(B::CmpGt(vlo, v)),
                              B::MaskNot(B::CmpGt(v, vhi)));
    bytes[i >> 3] = static_cast<std::uint8_t>(B::MaskBits(m));
    count += static_cast<std::size_t>(B::MaskCount(m));
  }
  for (; i < n; ++i) {
    const std::uint64_t pass = (col[i] >= lo) & (col[i] <= hi);
    bitmap[i >> 6] |= pass << (i & 63);
    count += pass;
  }
  return count;
}
#endif

}  // namespace

std::size_t ScanRangeBitmap(Flavor flavor, const std::uint64_t* col,
                            std::size_t n, std::uint64_t lo,
                            std::uint64_t hi, std::uint64_t* bitmap) {
#if HEF_HAVE_AVX512
  if (flavor != Flavor::kScalar) {
    return ScanRangeBitmapSimd(col, n, lo, hi, bitmap);
  }
#endif
  return ScanRangeBitmapScalar(col, n, lo, hi, bitmap);
}

std::size_t BitmapAnd(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n) {
  const std::size_t words = BitmapWords(n);
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    dst[w] &= src[w];
    count += static_cast<std::size_t>(__builtin_popcountll(dst[w]));
  }
  // Bits past n are zero by construction (both operands were built with
  // cleared tails), so the popcount is exact.
  return count;
}

std::size_t BitmapToPositions(const std::uint64_t* bitmap, std::size_t n,
                              std::uint64_t* positions_out) {
  const std::size_t words = BitmapWords(n);
  std::size_t count = 0;
  for (std::size_t w = 0; w < words; ++w) {
    std::uint64_t bits = bitmap[w];
    while (bits != 0) {
      const int bit = __builtin_ctzll(bits);
      bits &= bits - 1;
      positions_out[count++] = (w << 6) + static_cast<std::uint64_t>(bit);
    }
  }
  return count;
}

ChunkPruning ComputeChunkPruning(const ssb::SsbDatabase& db,
                                 const StarPlan& plan,
                                 const std::string& label) {
  HEF_CHECK_MSG(db.chunked != nullptr,
                "ComputeChunkPruning requires a built chunked fact");
  const ssb::ChunkedFact& fact = *db.chunked;

  // One pruning stage per filter then per join: the stage's chunked
  // column and its necessary [lo, hi] range. A stage whose column is not
  // part of the chunked fact (defensive; all plan columns are) never
  // votes.
  struct Stage {
    const storage::ChunkedColumn* col;
    std::uint64_t lo, hi;
    std::string cause;
  };
  std::vector<Stage> stages;
  stages.reserve(plan.filters.size() + plan.joins.size());
  for (const RangeFilter& f : plan.filters) {
    stages.push_back({fact.Find(f.col), f.lo, f.hi,
                      std::string("filter.") +
                          FactColumnName(db.lineorder, f.col)});
  }
  for (const JoinStage& j : plan.joins) {
    stages.push_back({fact.Find(j.fact_key), j.key_lo, j.key_hi,
                      std::string("probe.") +
                          FactColumnName(db.lineorder, j.fact_key)});
  }

  ChunkPruning pruning;
  const std::size_t chunks = fact.num_chunks();
  pruning.chunks_total = chunks;
  pruning.alive.assign(chunks, 1);
  pruning.reached.assign(stages.size(), 0);
  pruning.pruned_by.assign(stages.size(), 0);

  auto& recorder = telemetry::FlightRecorder::Get();
  for (std::size_t c = 0; c < chunks; ++c) {
    for (std::size_t s = 0; s < stages.size(); ++s) {
      const Stage& stage = stages[s];
      if (stage.col == nullptr) continue;
      ++pruning.reached[s];
      // lo > hi is the empty range (an empty dimension table): nothing
      // can match, prune unconditionally.
      if (stage.lo <= stage.hi &&
          stage.col->chunk(c).MayContainRange(stage.lo, stage.hi)) {
        continue;
      }
      ++pruning.pruned_by[s];
      pruning.alive[c] = 0;
      recorder.Record(telemetry::FlightEventKind::kScanPrune,
                      stage.cause.c_str(), /*trace_id=*/0, /*arg0=*/c);
      break;
    }
    pruning.chunks_scanned += pruning.alive[c];
  }
  recorder.Record(telemetry::FlightEventKind::kScanPrune, label.c_str(),
                  /*trace_id=*/0, /*arg0=*/pruning.chunks_scanned,
                  /*arg1=*/pruning.chunks_total);
  return pruning;
}

}  // namespace hef
