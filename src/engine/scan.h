// Bitmap selection scans (Zhou & Ross [46], the earliest SIMD database
// operator the paper builds on): predicate evaluation over a column
// producing one bit per row, bitmap conjunction for multi-predicate
// WHERE clauses, and bitmap-to-positions extraction.
//
// Compared to the compaction pipeline (primitives.h), bitmap scans
// evaluate *all* predicates over *all* rows without reshuffling data —
// profitable when individual predicates are unselective but their
// conjunction is (the SSB Q1 pattern), because compaction after a 50%
// filter moves half the block. EngineConfig::fused_filters switches the
// engine's filter stage to this strategy.

#ifndef HEF_ENGINE_SCAN_H_
#define HEF_ENGINE_SCAN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "engine/flavor.h"

namespace hef {

namespace ssb {
struct SsbDatabase;
}  // namespace ssb

struct StarPlan;

// Words needed for an n-row bitmap.
inline std::size_t BitmapWords(std::size_t n) { return (n + 63) / 64; }

// bitmap[i] = (lo <= col[i] <= hi); returns the number of set bits.
// The SIMD flavour evaluates eight rows per compare pair and writes the
// k-mask byte directly into the bitmap.
std::size_t ScanRangeBitmap(Flavor flavor, const std::uint64_t* col,
                            std::size_t n, std::uint64_t lo,
                            std::uint64_t hi, std::uint64_t* bitmap);

// dst &= src over `words` words; returns the surviving popcount over the
// first n bits.
std::size_t BitmapAnd(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n);

// Extracts the positions of set bits (ascending); returns the count.
std::size_t BitmapToPositions(const std::uint64_t* bitmap, std::size_t n,
                              std::uint64_t* positions_out);

// Verdicts of the statistics-driven scan-pruning pass: one alive bit per
// fact chunk, plus per-stage attribution. Computed once at plan build
// (the chunk statistics and the plan's predicate ranges are both fixed),
// consulted by every block of every Run.
struct ChunkPruning {
  std::vector<std::uint8_t> alive;  // per chunk: 1 = scan, 0 = skip
  std::uint64_t chunks_total = 0;
  std::uint64_t chunks_scanned = 0;  // popcount of alive
  // Per pruning stage (plan filters in order, then joins in probe
  // order): chunks that reached the stage un-pruned, and chunks the
  // stage pruned. First cause wins, so sum(pruned_by) + chunks_scanned
  // == chunks_total.
  std::vector<std::uint64_t> reached;
  std::vector<std::uint64_t> pruned_by;
};

// Evaluates every chunk of db.chunked against the plan's range filters
// (zone map + histogram on the filtered column) and join key ranges
// (zone map + histogram on the fact foreign key against [key_lo,
// key_hi]). Pruning is conservative: a pruned chunk is *proven* to
// contribute no qualifying row, so results are bit-identical with the
// pass on or off. Emits one kScanPrune flight event per pruned chunk
// plus a per-query summary; `label` names the query in those events.
// Requires db.chunked != nullptr.
ChunkPruning ComputeChunkPruning(const ssb::SsbDatabase& db,
                                 const StarPlan& plan,
                                 const std::string& label);

}  // namespace hef

#endif  // HEF_ENGINE_SCAN_H_
