// Bitmap selection scans (Zhou & Ross [46], the earliest SIMD database
// operator the paper builds on): predicate evaluation over a column
// producing one bit per row, bitmap conjunction for multi-predicate
// WHERE clauses, and bitmap-to-positions extraction.
//
// Compared to the compaction pipeline (primitives.h), bitmap scans
// evaluate *all* predicates over *all* rows without reshuffling data —
// profitable when individual predicates are unselective but their
// conjunction is (the SSB Q1 pattern), because compaction after a 50%
// filter moves half the block. EngineConfig::fused_filters switches the
// engine's filter stage to this strategy.

#ifndef HEF_ENGINE_SCAN_H_
#define HEF_ENGINE_SCAN_H_

#include <cstddef>
#include <cstdint>

#include "engine/flavor.h"

namespace hef {

// Words needed for an n-row bitmap.
inline std::size_t BitmapWords(std::size_t n) { return (n + 63) / 64; }

// bitmap[i] = (lo <= col[i] <= hi); returns the number of set bits.
// The SIMD flavour evaluates eight rows per compare pair and writes the
// k-mask byte directly into the bitmap.
std::size_t ScanRangeBitmap(Flavor flavor, const std::uint64_t* col,
                            std::size_t n, std::uint64_t lo,
                            std::uint64_t hi, std::uint64_t* bitmap);

// dst &= src over `words` words; returns the surviving popcount over the
// first n bits.
std::size_t BitmapAnd(std::uint64_t* dst, const std::uint64_t* src,
                      std::size_t n);

// Extracts the positions of set bits (ascending); returns the count.
std::size_t BitmapToPositions(const std::uint64_t* bitmap, std::size_t n,
                              std::uint64_t* positions_out);

}  // namespace hef

#endif  // HEF_ENGINE_SCAN_H_
