#include "engine/star_plan.h"

#include <algorithm>
#include <vector>

#include "common/macros.h"
#include "ssb/schema.h"

namespace hef {

namespace {

using ssb::SsbDatabase;

// The parallel runner of the BuildQueryPlan call currently executing on
// this thread (null -> serial builds). Thread-local so the recursive
// builder helpers need no signature plumbing and concurrent
// BuildQueryPlan calls on different threads stay independent.
thread_local const LinearHashTable::ParallelFor* g_parallel_for = nullptr;

// Builds a dimension hash table over rows passing `pred`, keyed by
// `key_of(row)` with payload `payload_of(row)`. The qualifying pairs are
// materialized once and bulk-inserted, so large builds can use the
// partitioned parallel path of LinearHashTable::InsertBatch.
std::unique_ptr<LinearHashTable> BuildDimTable(
    std::size_t n, const std::function<bool(std::size_t)>& pred,
    const std::function<std::uint64_t(std::size_t)>& key_of,
    const std::function<std::uint64_t(std::size_t)>& payload_of) {
  std::vector<std::uint64_t> keys, payloads;
  for (std::size_t i = 0; i < n; ++i) {
    if (pred(i)) {
      keys.push_back(key_of(i));
      payloads.push_back(payload_of(i));
    }
  }
  auto table =
      std::make_unique<LinearHashTable>(keys.empty() ? 1 : keys.size());
  table->InsertBatch(
      keys.data(), payloads.data(), keys.size(),
      g_parallel_for == nullptr ? nullptr : *g_parallel_for);
  return table;
}

std::unique_ptr<LinearHashTable> DateTable(
    const SsbDatabase& db, const std::function<bool(std::size_t)>& pred,
    const std::function<std::uint64_t(std::size_t)>& payload) {
  return BuildDimTable(
      db.date.n, pred, [&db](std::size_t i) { return db.date.datekey[i]; },
      payload);
}

std::unique_ptr<LinearHashTable> CustomerTable(
    const SsbDatabase& db, const std::function<bool(std::size_t)>& pred,
    const std::function<std::uint64_t(std::size_t)>& payload) {
  return BuildDimTable(
      db.customer.n, pred, [](std::size_t i) { return i + 1; }, payload);
}

std::unique_ptr<LinearHashTable> SupplierTable(
    const SsbDatabase& db, const std::function<bool(std::size_t)>& pred,
    const std::function<std::uint64_t(std::size_t)>& payload) {
  return BuildDimTable(
      db.supplier.n, pred, [](std::size_t i) { return i + 1; }, payload);
}

std::unique_ptr<LinearHashTable> PartTable(
    const SsbDatabase& db, const std::function<bool(std::size_t)>& pred,
    const std::function<std::uint64_t(std::size_t)>& payload) {
  return BuildDimTable(
      db.part.n, pred, [](std::size_t i) { return i + 1; }, payload);
}

BoundPlan BuildQ1(const SsbDatabase& db, QueryId id) {
  const auto& lo = db.lineorder;
  BoundPlan bound;
  StarPlan& plan = bound.plan;
  plan.value_a = &lo.extendedprice;
  plan.value_b = &lo.discount;
  plan.value_op = ValueOp::kSumProduct;
  plan.gid_domain = 1;
  plan.gid = [](const std::array<std::uint64_t, 4>&) { return 0; };
  plan.decode = [](std::uint64_t) { return std::array<std::uint64_t, 3>{}; };

  switch (id) {
    case QueryId::kQ1_1:
      plan.filters = {{&lo.orderdate, 19930101, 19931231},
                      {&lo.discount, 1, 3},
                      {&lo.quantity, 0, 24}};
      break;
    case QueryId::kQ1_2:
      plan.filters = {{&lo.orderdate, 19940101, 19940131},
                      {&lo.discount, 4, 6},
                      {&lo.quantity, 26, 35}};
      break;
    case QueryId::kQ1_3: {
      // The week predicate needs the date dimension: join instead of a
      // datekey range.
      plan.filters = {{&lo.discount, 5, 7}, {&lo.quantity, 26, 35}};
      bound.tables.push_back(DateTable(
          db,
          [&db](std::size_t i) {
            return db.date.weeknuminyear[i] == 6 && db.date.year[i] == 1994;
          },
          [](std::size_t) { return 1; }));
      plan.joins = {{&lo.orderdate, bound.tables.back().get()}};
      break;
    }
    default:
      HEF_CHECK_MSG(false, "not a Q1 query");
  }
  return bound;
}

BoundPlan BuildQ2(const SsbDatabase& db, QueryId id) {
  const auto& lo = db.lineorder;
  std::uint64_t brand_lo = 0, brand_hi = 0;
  std::uint64_t supp_region = 0;
  std::function<bool(std::size_t)> part_pred;
  switch (id) {
    case QueryId::kQ2_1:
      // p_category = 'MFGR#12', s_region = 'AMERICA'.
      part_pred = [&db](std::size_t i) { return db.part.category[i] == 12; };
      brand_lo = 1201;
      brand_hi = 1240;
      supp_region = ssb::kAmerica;
      break;
    case QueryId::kQ2_2:
      // p_brand1 between 'MFGR#2221' and 'MFGR#2228', s_region = 'ASIA'.
      part_pred = [&db](std::size_t i) {
        return db.part.brand1[i] >= 2221 && db.part.brand1[i] <= 2228;
      };
      brand_lo = 2221;
      brand_hi = 2228;
      supp_region = ssb::kAsia;
      break;
    case QueryId::kQ2_3:
      // p_brand1 = 'MFGR#2221', s_region = 'EUROPE'.
      part_pred = [&db](std::size_t i) { return db.part.brand1[i] == 2221; };
      brand_lo = 2221;
      brand_hi = 2221;
      supp_region = ssb::kEurope;
      break;
    default:
      HEF_CHECK_MSG(false, "not a Q2 query");
  }

  BoundPlan bound;
  bound.tables.push_back(PartTable(
      db, part_pred, [&db](std::size_t i) { return db.part.brand1[i]; }));
  bound.tables.push_back(SupplierTable(
      db,
      [&db, supp_region](std::size_t i) {
        return db.supplier.region[i] == supp_region;
      },
      [](std::size_t) { return 1; }));
  bound.tables.push_back(
      DateTable(db, [](std::size_t) { return true; },
                [&db](std::size_t i) { return db.date.year[i]; }));

  const std::uint64_t brands = brand_hi - brand_lo + 1;
  StarPlan& plan = bound.plan;
  plan.joins = {{&lo.partkey, bound.tables[0].get()},
                {&lo.suppkey, bound.tables[1].get()},
                {&lo.orderdate, bound.tables[2].get()}};
  plan.value_a = &lo.revenue;
  plan.value_op = ValueOp::kSum;
  plan.gid_domain = 7 * brands;
  // Payload slots: 0 = brand, 1 = supplier marker, 2 = year.
  plan.gid = [brand_lo, brands](const std::array<std::uint64_t, 4>& p) {
    return (p[2] - ssb::kFirstYear) * brands + (p[0] - brand_lo);
  };
  plan.decode = [brand_lo, brands](std::uint64_t g) {
    return std::array<std::uint64_t, 3>{ssb::kFirstYear + g / brands,
                                        brand_lo + g % brands, 0};
  };
  return bound;
}

BoundPlan BuildQ3(const SsbDatabase& db, QueryId id) {
  const auto& lo = db.lineorder;
  std::function<bool(std::size_t)> cust_pred, supp_pred, date_pred;
  std::function<std::uint64_t(std::size_t)> cust_payload, supp_payload;
  std::uint64_t geo_domain = 0;

  switch (id) {
    case QueryId::kQ3_1:
      // c_region = s_region = 'ASIA', d_year 1992..1997; group by
      // c_nation, s_nation, d_year.
      cust_pred = [&db](std::size_t i) {
        return db.customer.region[i] == ssb::kAsia;
      };
      supp_pred = [&db](std::size_t i) {
        return db.supplier.region[i] == ssb::kAsia;
      };
      cust_payload = [&db](std::size_t i) { return db.customer.nation[i]; };
      supp_payload = [&db](std::size_t i) { return db.supplier.nation[i]; };
      date_pred = [&db](std::size_t i) { return db.date.year[i] <= 1997; };
      geo_domain = ssb::kNumNations;
      break;
    case QueryId::kQ3_2:
      // c_nation = s_nation = 'UNITED STATES'; group by cities.
      cust_pred = [&db](std::size_t i) {
        return db.customer.nation[i] == ssb::kNationUnitedStates;
      };
      supp_pred = [&db](std::size_t i) {
        return db.supplier.nation[i] == ssb::kNationUnitedStates;
      };
      cust_payload = [&db](std::size_t i) { return db.customer.city[i]; };
      supp_payload = [&db](std::size_t i) { return db.supplier.city[i]; };
      date_pred = [&db](std::size_t i) { return db.date.year[i] <= 1997; };
      geo_domain = ssb::kNumCities;
      break;
    case QueryId::kQ3_3:
    case QueryId::kQ3_4: {
      // Cities 'UNITED KI1' / 'UNITED KI5' on both sides.
      auto city_pred = [](std::uint64_t city) {
        return city == ssb::kCityUnitedKi1 || city == ssb::kCityUnitedKi5;
      };
      cust_pred = [&db, city_pred](std::size_t i) {
        return city_pred(db.customer.city[i]);
      };
      supp_pred = [&db, city_pred](std::size_t i) {
        return city_pred(db.supplier.city[i]);
      };
      cust_payload = [&db](std::size_t i) { return db.customer.city[i]; };
      supp_payload = [&db](std::size_t i) { return db.supplier.city[i]; };
      if (id == QueryId::kQ3_4) {
        // d_yearmonth = 'Dec1997'.
        date_pred = [&db](std::size_t i) {
          return db.date.yearmonthnum[i] == 199712;
        };
      } else {
        date_pred = [&db](std::size_t i) { return db.date.year[i] <= 1997; };
      }
      geo_domain = ssb::kNumCities;
      break;
    }
    default:
      HEF_CHECK_MSG(false, "not a Q3 query");
  }

  BoundPlan bound;
  bound.tables.push_back(CustomerTable(db, cust_pred, cust_payload));
  bound.tables.push_back(SupplierTable(db, supp_pred, supp_payload));
  bound.tables.push_back(DateTable(
      db, date_pred, [&db](std::size_t i) { return db.date.year[i]; }));

  StarPlan& plan = bound.plan;
  plan.joins = {{&lo.custkey, bound.tables[0].get()},
                {&lo.suppkey, bound.tables[1].get()},
                {&lo.orderdate, bound.tables[2].get()}};
  plan.value_a = &lo.revenue;
  plan.value_op = ValueOp::kSum;
  const std::uint64_t years = 7;
  plan.gid_domain = geo_domain * geo_domain * years;
  // Payload slots: 0 = customer geo, 1 = supplier geo, 2 = year.
  plan.gid = [geo_domain, years](const std::array<std::uint64_t, 4>& p) {
    return (p[0] * geo_domain + p[1]) * years + (p[2] - ssb::kFirstYear);
  };
  plan.decode = [geo_domain, years](std::uint64_t g) {
    return std::array<std::uint64_t, 3>{g / (geo_domain * years),
                                        (g / years) % geo_domain,
                                        ssb::kFirstYear + g % years};
  };
  return bound;
}

BoundPlan BuildQ4(const SsbDatabase& db, QueryId id) {
  const auto& lo = db.lineorder;
  BoundPlan bound;
  StarPlan& plan = bound.plan;
  plan.value_a = &lo.revenue;
  plan.value_b = &lo.supplycost;
  plan.value_op = ValueOp::kSumDiff;

  switch (id) {
    case QueryId::kQ4_1: {
      // c_region = s_region = 'AMERICA', p_mfgr in {1, 2};
      // group by d_year, c_nation.
      bound.tables.push_back(CustomerTable(
          db,
          [&db](std::size_t i) {
            return db.customer.region[i] == ssb::kAmerica;
          },
          [&db](std::size_t i) { return db.customer.nation[i]; }));
      bound.tables.push_back(SupplierTable(
          db,
          [&db](std::size_t i) {
            return db.supplier.region[i] == ssb::kAmerica;
          },
          [](std::size_t) { return 1; }));
      bound.tables.push_back(
          PartTable(db, [&db](std::size_t i) { return db.part.mfgr[i] <= 2; },
                    [](std::size_t) { return 1; }));
      bound.tables.push_back(
          DateTable(db, [](std::size_t) { return true; },
                    [&db](std::size_t i) { return db.date.year[i]; }));
      plan.joins = {{&lo.custkey, bound.tables[0].get()},
                    {&lo.suppkey, bound.tables[1].get()},
                    {&lo.partkey, bound.tables[2].get()},
                    {&lo.orderdate, bound.tables[3].get()}};
      // Payload slots: 0 = c_nation, 1/2 markers, 3 = year.
      plan.gid_domain = 7 * ssb::kNumNations;
      plan.gid = [](const std::array<std::uint64_t, 4>& p) {
        return (p[3] - ssb::kFirstYear) * ssb::kNumNations + p[0];
      };
      plan.decode = [](std::uint64_t g) {
        return std::array<std::uint64_t, 3>{
            ssb::kFirstYear + g / ssb::kNumNations, g % ssb::kNumNations, 0};
      };
      break;
    }
    case QueryId::kQ4_2: {
      // + d_year in {1997, 1998}; group by d_year, s_nation, p_category.
      bound.tables.push_back(CustomerTable(
          db,
          [&db](std::size_t i) {
            return db.customer.region[i] == ssb::kAmerica;
          },
          [](std::size_t) { return 1; }));
      bound.tables.push_back(SupplierTable(
          db,
          [&db](std::size_t i) {
            return db.supplier.region[i] == ssb::kAmerica;
          },
          [&db](std::size_t i) { return db.supplier.nation[i]; }));
      bound.tables.push_back(PartTable(
          db, [&db](std::size_t i) { return db.part.mfgr[i] <= 2; },
          [&db](std::size_t i) { return db.part.category[i]; }));
      bound.tables.push_back(DateTable(
          db, [&db](std::size_t i) { return db.date.year[i] >= 1997; },
          [&db](std::size_t i) { return db.date.year[i]; }));
      plan.joins = {{&lo.custkey, bound.tables[0].get()},
                    {&lo.suppkey, bound.tables[1].get()},
                    {&lo.partkey, bound.tables[2].get()},
                    {&lo.orderdate, bound.tables[3].get()}};
      // Payload slots: 0 marker, 1 = s_nation, 2 = category, 3 = year.
      constexpr std::uint64_t kCatDomain = 56;
      plan.gid_domain = 2 * ssb::kNumNations * kCatDomain;
      plan.gid = [](const std::array<std::uint64_t, 4>& p) {
        return ((p[3] - 1997) * ssb::kNumNations + p[1]) * kCatDomain + p[2];
      };
      plan.decode = [](std::uint64_t g) {
        return std::array<std::uint64_t, 3>{
            1997 + g / (ssb::kNumNations * kCatDomain),
            (g / kCatDomain) % ssb::kNumNations, g % kCatDomain};
      };
      break;
    }
    case QueryId::kQ4_3: {
      // s_nation = 'UNITED STATES', p_category = 'MFGR#14',
      // c_region = 'AMERICA', d_year in {1997, 1998};
      // group by d_year, s_city, p_brand1.
      bound.tables.push_back(SupplierTable(
          db,
          [&db](std::size_t i) {
            return db.supplier.nation[i] == ssb::kNationUnitedStates;
          },
          [&db](std::size_t i) { return db.supplier.city[i]; }));
      bound.tables.push_back(PartTable(
          db, [&db](std::size_t i) { return db.part.category[i] == 14; },
          [&db](std::size_t i) { return db.part.brand1[i]; }));
      bound.tables.push_back(CustomerTable(
          db,
          [&db](std::size_t i) {
            return db.customer.region[i] == ssb::kAmerica;
          },
          [](std::size_t) { return 1; }));
      bound.tables.push_back(DateTable(
          db, [&db](std::size_t i) { return db.date.year[i] >= 1997; },
          [&db](std::size_t i) { return db.date.year[i]; }));
      plan.joins = {{&lo.suppkey, bound.tables[0].get()},
                    {&lo.partkey, bound.tables[1].get()},
                    {&lo.custkey, bound.tables[2].get()},
                    {&lo.orderdate, bound.tables[3].get()}};
      // Payload slots: 0 = s_city, 1 = brand (1401..1440), 2 marker,
      // 3 = year.
      constexpr std::uint64_t kBrands = 40;
      plan.gid_domain = 2 * ssb::kNumCities * kBrands;
      plan.gid = [](const std::array<std::uint64_t, 4>& p) {
        return ((p[3] - 1997) * ssb::kNumCities + p[0]) * kBrands +
               (p[1] - 1401);
      };
      plan.decode = [](std::uint64_t g) {
        return std::array<std::uint64_t, 3>{
            1997 + g / (ssb::kNumCities * kBrands),
            (g / kBrands) % ssb::kNumCities, 1401 + g % kBrands};
      };
      break;
    }
    default:
      HEF_CHECK_MSG(false, "not a Q4 query");
  }
  return bound;
}

}  // namespace

namespace {

BoundPlan BuildQueryPlanUnordered(const SsbDatabase& db, QueryId id) {
  switch (id) {
    case QueryId::kQ1_1:
    case QueryId::kQ1_2:
    case QueryId::kQ1_3:
      return BuildQ1(db, id);
    case QueryId::kQ2_1:
    case QueryId::kQ2_2:
    case QueryId::kQ2_3:
      return BuildQ2(db, id);
    case QueryId::kQ3_1:
    case QueryId::kQ3_2:
    case QueryId::kQ3_3:
    case QueryId::kQ3_4:
      return BuildQ3(db, id);
    case QueryId::kQ4_1:
    case QueryId::kQ4_2:
    case QueryId::kQ4_3:
      return BuildQ4(db, id);
  }
  HEF_CHECK_MSG(false, "unknown query id");
  __builtin_unreachable();
}

// Foreign-key domain of a join: the referenced dimension's cardinality.
std::size_t FkDomain(const SsbDatabase& db, const JoinStage& join) {
  if (join.fact_key == &db.lineorder.custkey) return db.customer.n;
  if (join.fact_key == &db.lineorder.suppkey) return db.supplier.n;
  if (join.fact_key == &db.lineorder.partkey) return db.part.n;
  if (join.fact_key == &db.lineorder.orderdate) return db.date.n;
  HEF_CHECK_MSG(false, "unknown fact foreign key");
  __builtin_unreachable();
}

}  // namespace

const char* FactColumnName(const ssb::LineorderFact& lo,
                           const ssb::Column* col) {
  if (col == &lo.orderdate) return "orderdate";
  if (col == &lo.custkey) return "custkey";
  if (col == &lo.suppkey) return "suppkey";
  if (col == &lo.partkey) return "partkey";
  if (col == &lo.quantity) return "quantity";
  if (col == &lo.discount) return "discount";
  if (col == &lo.extendedprice) return "extendedprice";
  if (col == &lo.revenue) return "revenue";
  if (col == &lo.supplycost) return "supplycost";
  return "column";
}

BoundPlan BuildQueryPlan(const SsbDatabase& db, QueryId id) {
  return BuildQueryPlan(db, id, PlanBuildOptions{});
}

BoundPlan BuildQueryPlan(const SsbDatabase& db, QueryId id,
                         const PlanBuildOptions& options) {
  g_parallel_for =
      options.parallel_for == nullptr ? nullptr : &options.parallel_for;
  BoundPlan bound = BuildQueryPlanUnordered(db, id);
  g_parallel_for = nullptr;
  // Fix payload slots to schema order before any reordering: the plan's
  // gid/decode functions address payloads by these slots.
  for (std::size_t j = 0; j < bound.plan.joins.size(); ++j) {
    bound.plan.joins[j].payload_slot = static_cast<int>(j);
  }
  // Selectivity-based probe ordering: most selective join first minimizes
  // the rows every later probe touches.
  for (JoinStage& join : bound.plan.joins) {
    join.selectivity = static_cast<double>(join.table->size()) /
                       static_cast<double>(FkDomain(db, join));
  }
  std::stable_sort(bound.plan.joins.begin(), bound.plan.joins.end(),
                   [](const JoinStage& a, const JoinStage& b) {
                     return a.selectivity < b.selectivity;
                   });
  // Key ranges for zone-map join pruning: scan each table's key slab
  // once. Dimension filters are usually range-shaped in key space (a
  // week of datekeys, a brand interval), so [key_lo, key_hi] is a tight
  // necessary condition on matching fact chunks.
  for (JoinStage& join : bound.plan.joins) {
    for (std::size_t slot = 0; slot < join.table->capacity(); ++slot) {
      const std::uint64_t key = join.table->keys()[slot];
      if (key == kEmptyKey) continue;
      join.key_lo = std::min(join.key_lo, key);
      join.key_hi = std::max(join.key_hi, key);
    }
  }
  return bound;
}

}  // namespace hef
