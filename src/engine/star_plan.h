// Star-plan representation of the 13 SSB queries, shared by the vectorized
// engine (src/engine/engine.cc) and the Voila comparator (src/voila). A
// BoundPlan owns the filtered dimension hash tables and binds fact columns,
// join order, measure expression and group-by mapping for one query.

#ifndef HEF_ENGINE_STAR_PLAN_H_
#define HEF_ENGINE_STAR_PLAN_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "engine/query_id.h"
#include "ssb/database.h"
#include "table/linear_hash_table.h"

namespace hef {

// How the two value columns combine into the aggregated measure.
enum class ValueOp {
  kSum,         // sum(a)
  kSumProduct,  // sum(a * b)   (Q1.x: extendedprice * discount)
  kSumDiff,     // sum(a - b)   (Q4.x: revenue - supplycost)
};

struct RangeFilter {
  const ssb::Column* col;
  std::uint64_t lo;
  std::uint64_t hi;
};

struct JoinStage {
  const ssb::Column* fact_key;
  const LinearHashTable* table;
  // Estimated fraction of fact rows surviving this join: dimension rows
  // passing the filter / dimension cardinality (fact foreign keys are
  // uniform over the dimension, so this is exact in expectation).
  double selectivity = 1.0;
  // Payload slot this join's probe results occupy in the gid mapping's
  // argument array. Assigned in schema order at plan build, BEFORE the
  // selectivity sort, so `gid`/`decode` are independent of probe order.
  int payload_slot = -1;
  // Smallest and largest key present in `table` (after the dimension
  // filter), for zone-map join pruning: a fact chunk whose key range
  // misses [key_lo, key_hi] cannot produce a hit in this join. An empty
  // table keeps the initial key_lo > key_hi state (prunes everything).
  std::uint64_t key_lo = ~0ULL;
  std::uint64_t key_hi = 0;
};

// A fully-bound star query plan. `gid` maps the join payloads of one
// surviving row to a dense group id; `decode` maps a group id back to the
// output key attributes (the payload slot convention is per query and
// documented at the build site).
struct StarPlan {
  std::vector<RangeFilter> filters;
  std::vector<JoinStage> joins;  // probe order: most selective first
  const ssb::Column* value_a = nullptr;
  const ssb::Column* value_b = nullptr;
  ValueOp value_op = ValueOp::kSum;
  std::size_t gid_domain = 1;
  std::function<std::uint64_t(const std::array<std::uint64_t, 4>&)> gid;
  std::function<std::array<std::uint64_t, 3>(std::uint64_t)> decode;
};

// A StarPlan plus ownership of its dimension hash tables.
struct BoundPlan {
  std::vector<std::unique_ptr<LinearHashTable>> tables;
  StarPlan plan;
};

// Stats/trace label for a lineorder column ("discount", "partkey", ...);
// "column" for pointers outside the fact table. Used to name operator
// rows like "filter.discount" and "probe.partkey".
const char* FactColumnName(const ssb::LineorderFact& lo,
                           const ssb::Column* col);

// Options for the join build phase. `parallel_for` (when non-null) runs
// fn(p) for p in [0, parts), possibly concurrently — the execution runtime
// passes one backed by its worker pool so large dimension hash tables
// build with partitioned parallel inserts (LinearHashTable::InsertBatch).
// The produced plan is identical either way.
struct PlanBuildOptions {
  LinearHashTable::ParallelFor parallel_for;
};

// Builds the plan (including filtered dimension hash tables — the join
// build phase) for one SSB query. Join stages are ordered most selective
// first using the estimated selectivities (stable sort, so equal-estimate
// stages keep schema order). Deterministic; build cost is part of query
// execution time, as in the paper's measurements (engines amortize it
// across repeated runs through the exec::PlanCache).
BoundPlan BuildQueryPlan(const ssb::SsbDatabase& db, QueryId id);
BoundPlan BuildQueryPlan(const ssb::SsbDatabase& db, QueryId id,
                         const PlanBuildOptions& options);

}  // namespace hef

#endif  // HEF_ENGINE_STAR_PLAN_H_
