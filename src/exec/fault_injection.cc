#include "exec/fault_injection.h"

#include <chrono>
#include <thread>

#include "telemetry/flight_recorder.h"

namespace hef::exec {

std::atomic<int> FaultRegistry::armed_count_{0};

FaultRegistry& FaultRegistry::Get() {
  static FaultRegistry* registry = new FaultRegistry();
  return *registry;
}

void FaultRegistry::Arm(const std::string& point, FaultSpec spec) {
  HEF_CHECK_MSG(spec.trigger_hit >= 1, "trigger_hit must be >= 1");
  HEF_CHECK_MSG(spec.action != FaultAction::kError || !spec.status.ok(),
                "kError fault armed with an OK status");
  HEF_CHECK_MSG(spec.action != FaultAction::kCancel || spec.token != nullptr,
                "kCancel fault armed without a token");
  telemetry::FlightRecorder::Get().Record(
      telemetry::FlightEventKind::kFaultArmed, point.c_str(),
      /*trace_id=*/0, static_cast<std::uint64_t>(spec.trigger_hit));
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.find(point) == points_.end()) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
  points_[point] = State{std::move(spec), 0};
}

void FaultRegistry::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  if (points_.erase(point) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FaultRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(points_.size()),
                         std::memory_order_relaxed);
  points_.clear();
}

std::uint64_t FaultRegistry::hits(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = points_.find(point);
  return it == points_.end() ? 0 : it->second.hits;
}

Status FaultRegistry::OnPoint(const char* point) {
  // Snapshot the decision under the lock, act after releasing it: a stall
  // must not serialize unrelated points, and Cancel/throw must not run
  // with the registry locked.
  FaultAction action;
  int stall_ms = 0;
  Status status;
  CancellationToken* token = nullptr;
  std::uint64_t hit_number = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = points_.find(point);
    if (it == points_.end()) return Status::OK();
    State& state = it->second;
    ++state.hits;
    const bool fire =
        state.spec.repeat
            ? state.hits >= static_cast<std::uint64_t>(state.spec.trigger_hit)
            : state.hits == static_cast<std::uint64_t>(state.spec.trigger_hit);
    if (!fire) return Status::OK();
    action = state.spec.action;
    stall_ms = state.spec.stall_ms;
    status = state.spec.status;
    token = state.spec.token;
    hit_number = state.hits;
  }
  telemetry::FlightRecorder::Get().Record(
      telemetry::FlightEventKind::kFaultFired, point, /*trace_id=*/0,
      hit_number);
  switch (action) {
    case FaultAction::kThrow:
      throw FaultInjectedError(point);
    case FaultAction::kStall:
      std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
      return Status::OK();
    case FaultAction::kError:
      return status;
    case FaultAction::kCancel:
      token->Cancel();
      return Status::OK();
  }
  return Status::OK();
}

}  // namespace hef::exec
