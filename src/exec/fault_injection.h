// Deterministic fault injection for robustness tests.
//
// Production code marks interesting failure sites with
// HEF_FAULT_POINT("subsystem.site"); tests arm a site through the
// process-wide FaultRegistry to throw, stall, return an error Status, or
// cancel a token on the Nth time execution passes it. Nothing is armed in
// normal operation, and the unarmed fast path is a single relaxed atomic
// load feeding a predictable branch — cheap enough for per-block
// placement in the engine pipelines.
//
// Two macro forms:
//   HEF_FAULT_POINT(name)         for void contexts — fires throw / stall
//                                 / cancel actions; an armed kError action
//                                 here is a test bug (the Status would be
//                                 dropped) and aborts.
//   HEF_FAULT_POINT_STATUS(name)  inside Status/Result functions — like
//                                 the above, but a kError action returns
//                                 the armed Status from the enclosing
//                                 function via HEF_RETURN_NOT_OK.
//
// Sites fire deterministically: arming specifies the 1-based hit number
// that triggers, and optionally that every later hit triggers too. Hit
// counters are kept per site while armed, so tests can also assert a
// site was actually reached.

#ifndef HEF_EXEC_FAULT_INJECTION_H_
#define HEF_EXEC_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/query_context.h"

namespace hef::exec {

// The exception kThrow injects; catch sites convert it (like any other
// task exception) to Status::Internal.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& point)
      : std::runtime_error("injected fault at " + point) {}
};

enum class FaultAction {
  kThrow,   // throw FaultInjectedError from the point
  kStall,   // sleep stall_ms, then continue
  kError,   // return `status` (HEF_FAULT_POINT_STATUS sites only)
  kCancel,  // cancel `token`, then continue
};

struct FaultSpec {
  FaultAction action = FaultAction::kThrow;
  // Fires when the site's hit counter reaches this value (1-based)...
  int trigger_hit = 1;
  // ...and, when set, on every hit after it as well.
  bool repeat = false;
  int stall_ms = 0;                             // kStall
  Status status = Status::Internal("injected fault");  // kError
  CancellationToken* token = nullptr;           // kCancel
};

class FaultRegistry {
 public:
  static FaultRegistry& Get();

  // Arms `point` (replacing any previous spec) and resets its hit count.
  void Arm(const std::string& point, FaultSpec spec);
  void Disarm(const std::string& point);
  void DisarmAll();

  // Hits observed since the point was armed; 0 for unarmed points.
  std::uint64_t hits(const std::string& point) const;

  // The macro body. Counts a hit on an armed `point` and performs its
  // action; returns non-OK only for kError.
  Status OnPoint(const char* point);

  // The unarmed fast-path gate: true while any point is armed anywhere.
  static bool AnyArmed() {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

 private:
  struct State {
    FaultSpec spec;
    std::uint64_t hits = 0;
  };

  FaultRegistry() = default;

  static std::atomic<int> armed_count_;
  mutable std::mutex mu_;
  std::map<std::string, State> points_ HEF_GUARDED_BY(mu_);
};

}  // namespace hef::exec

#define HEF_FAULT_POINT(name)                                            \
  do {                                                                   \
    if (HEF_UNLIKELY(::hef::exec::FaultRegistry::AnyArmed())) {          \
      const ::hef::Status _fault_st =                                    \
          ::hef::exec::FaultRegistry::Get().OnPoint(name);               \
      HEF_CHECK_MSG(_fault_st.ok(),                                      \
                    "kError fault armed at void point %s", name);        \
    }                                                                    \
  } while (0)

#define HEF_FAULT_POINT_STATUS(name)                                     \
  do {                                                                   \
    if (HEF_UNLIKELY(::hef::exec::FaultRegistry::AnyArmed())) {          \
      HEF_RETURN_NOT_OK(::hef::exec::FaultRegistry::Get().OnPoint(name)); \
    }                                                                    \
  } while (0)

#endif  // HEF_EXEC_FAULT_INJECTION_H_
