#include "exec/morsel.h"

#include <limits>

#include "common/macros.h"

namespace hef::exec {

MorselScheduler::MorselScheduler(std::size_t total_blocks, int workers)
    : workers_(workers) {
  HEF_CHECK_MSG(workers >= 1, "worker count %d out of range", workers);
  HEF_CHECK_MSG(
      total_blocks < std::numeric_limits<std::uint32_t>::max(),
      "block count %zu exceeds the packed cursor width", total_blocks);
  shards_ = std::make_unique<Shard[]>(static_cast<std::size_t>(workers));
  const std::size_t per =
      (total_blocks + static_cast<std::size_t>(workers) - 1) /
      static_cast<std::size_t>(workers);
  for (int w = 0; w < workers; ++w) {
    const std::size_t begin =
        std::min(total_blocks, static_cast<std::size_t>(w) * per);
    const std::size_t end =
        std::min(total_blocks, (static_cast<std::size_t>(w) + 1) * per);
    shards_[w].range.store(Pack(static_cast<std::uint32_t>(begin),
                                static_cast<std::uint32_t>(end)),
                           std::memory_order_relaxed);
  }
}

bool MorselScheduler::ClaimFront(Shard& shard, std::size_t* begin,
                                 std::size_t* end) {
  std::uint64_t cur = shard.range.load(std::memory_order_relaxed);
  while (true) {
    const auto b = static_cast<std::uint32_t>(cur >> 32);
    const auto e = static_cast<std::uint32_t>(cur);
    if (b >= e) return false;
    if (shard.range.compare_exchange_weak(cur, Pack(b + 1, e),
                                          std::memory_order_acq_rel,
                                          std::memory_order_relaxed)) {
      *begin = b;
      *end = b + 1;
      return true;
    }
  }
}

bool MorselScheduler::StealBack(Shard& victim, std::uint32_t* begin,
                                std::uint32_t* end) {
  std::uint64_t cur = victim.range.load(std::memory_order_relaxed);
  while (true) {
    const auto b = static_cast<std::uint32_t>(cur >> 32);
    const auto e = static_cast<std::uint32_t>(cur);
    const std::uint32_t remaining = e > b ? e - b : 0;
    if (remaining == 0) return false;
    // Take the back half (at least one block — even a single remaining
    // block may be stuck behind a slow owner).
    const std::uint32_t take = (remaining + 1) / 2;
    if (victim.range.compare_exchange_weak(cur, Pack(b, e - take),
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      *begin = e - take;
      *end = e;
      return true;
    }
  }
}

bool MorselScheduler::Next(int worker, std::size_t* begin,
                           std::size_t* end) {
  HEF_DCHECK(worker >= 0 && worker < workers_);
  // Morsel-boundary stop check: one relaxed load when nothing is
  // attached; with a context, cancellation and deadline are honoured
  // before handing out more work — on every worker at once, since the
  // first observer trips the shared stop flag.
  if (HEF_UNLIKELY(stopped_.load(std::memory_order_relaxed))) return false;
  if (ctx_ != nullptr && HEF_UNLIKELY(ctx_->ShouldStop())) {
    Stop();
    return false;
  }
  while (true) {
    if (ClaimFront(shards_[worker], begin, end)) {
      dispatched_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
    // Own shard exhausted: pick the fullest other shard and steal its back
    // half. The snapshot may race with concurrent claims — StealBack
    // revalidates under CAS, and an empty victim just restarts the scan.
    int victim = -1;
    std::uint32_t victim_remaining = 0;
    for (int w = 0; w < workers_; ++w) {
      if (w == worker) continue;
      const std::uint64_t cur =
          shards_[w].range.load(std::memory_order_relaxed);
      const auto b = static_cast<std::uint32_t>(cur >> 32);
      const auto e = static_cast<std::uint32_t>(cur);
      const std::uint32_t remaining = e > b ? e - b : 0;
      if (remaining > victim_remaining) {
        victim_remaining = remaining;
        victim = w;
      }
    }
    if (victim < 0) return false;  // everything claimed everywhere
    std::uint32_t sb = 0, se = 0;
    if (StealBack(shards_[victim], &sb, &se)) {
      steals_.fetch_add(1, std::memory_order_relaxed);
      // Adopt the stolen range as the new own shard (it is empty, and only
      // the owner installs ranges — thieves skip empty shards), then claim
      // from it on the next loop iteration so it remains stealable.
      shards_[worker].range.store(Pack(sb, se), std::memory_order_release);
    }
  }
}

}  // namespace hef::exec
