// MorselScheduler — dynamic block dispatch with work stealing.
//
// Pre-PR engines carved the fact table into one static contiguous range
// per worker. A bloom- or filter-skewed range then pins the whole query on
// its slowest worker while the others idle — the static-split utilization
// gap the Xeon Phi MapReduce study (PAPERS.md) measures. Here the unit of
// dispatch is one pipeline block (EngineConfig::block_size rows), claimed
// dynamically:
//
//   * the block space is split into one contiguous shard per worker, each
//     held in a single packed 64-bit atomic {begin, end} cursor;
//   * a worker claims blocks one at a time off the *front* of its own
//     shard (one uncontended CAS per block_size rows — the shared morsel
//     cursor, sharded for locality);
//   * a worker whose shard is empty *steals the back half* of the fullest
//     remaining shard and adopts it as its new shard — the work-stealing
//     deque protocol applied to index ranges instead of task objects.
//
// Every block is claimed exactly once (the CAS either advances a cursor or
// fails and retries), workers scan mostly-contiguous rows, and skew is
// absorbed: a worker stuck on an expensive block loses the rest of its
// shard to thieves instead of serializing the query. Results are unchanged
// by construction — claimants only pick *which* private accumulator a
// block lands in, and group sums commute.

#ifndef HEF_EXEC_MORSEL_H_
#define HEF_EXEC_MORSEL_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

#include "exec/query_context.h"

namespace hef::exec {

class MorselScheduler {
 public:
  // Schedules `total_blocks` blocks across `workers` shards.
  MorselScheduler(std::size_t total_blocks, int workers);

  // Claims the next block for `worker`. Returns false when every shard is
  // exhausted (all blocks claimed), after Stop(), or once an attached
  // QueryContext reports cancellation or an expired deadline. [*begin,
  // *end) is a block-index range (currently always one block wide).
  bool Next(int worker, std::size_t* begin, std::size_t* end);

  // Makes every subsequent Next() return false on every worker — the
  // cooperative bail-out for cancellation, deadlines, and failed workers.
  // Already-claimed morsels finish; no new ones are handed out.
  void Stop() { stopped_.store(true, std::memory_order_relaxed); }
  bool stopped() const {
    return stopped_.load(std::memory_order_relaxed);
  }

  // Attaches the query's context; Next() then performs the per-morsel
  // stop check (the morsel boundary is the cancellation granularity).
  // The context must outlive the run.
  void set_context(const QueryContext* ctx) { ctx_ = ctx; }

  std::uint64_t dispatched() const {
    return dispatched_.load(std::memory_order_relaxed);
  }
  std::uint64_t steals() const {
    return steals_.load(std::memory_order_relaxed);
  }
  int workers() const { return workers_; }

 private:
  // Lock-free by design: every shared member below is a std::atomic and
  // there is no mutex to hang a HEF_GUARDED_BY off (see
  // common/thread_annotations.h) — the non-atomic ctx_ must be set before
  // the run starts and is read-only during it.
  //
  // {begin, end} packed as (begin << 32) | end so claims and steals are
  // single-word CAS transitions. Padded to a cache line: each shard is
  // written mostly by its owner.
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> range{0};
  };

  static std::uint64_t Pack(std::uint32_t begin, std::uint32_t end) {
    return (static_cast<std::uint64_t>(begin) << 32) | end;
  }

  bool ClaimFront(Shard& shard, std::size_t* begin, std::size_t* end);
  bool StealBack(Shard& victim, std::uint32_t* begin, std::uint32_t* end);

  int workers_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<std::uint64_t> dispatched_{0};
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<bool> stopped_{false};
  const QueryContext* ctx_ = nullptr;
};

}  // namespace hef::exec

#endif  // HEF_EXEC_MORSEL_H_
