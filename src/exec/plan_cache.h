// PlanCache — keyed cache of bound query state for repeated execution.
//
// Pre-PR, every SsbEngine::Run(id) rebuilt the query's filtered dimension
// hash tables and Bloom filters from scratch, so a process replaying the
// same query mix paid the whole join build phase on every request. The
// cache keeps one entry per key (the engines key by QueryId) for the
// engine's lifetime; entries are heap-allocated so returned references
// stay stable across later insertions. Invalidate() drops everything —
// tests and benches use it to force cold-plan behaviour.
//
// Hit/miss counts feed the metrics registry under
// "<metric_prefix>.hit" / "<metric_prefix>.miss" (the engines pass
// "engine.plan_cache"). The template lives in exec so both SsbEngine and
// VoilaEngine share one implementation without exec depending on the
// engine's plan types.

#ifndef HEF_EXEC_PLAN_CACHE_H_
#define HEF_EXEC_PLAN_CACHE_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace hef::exec {

template <typename Key, typename Entry>
class PlanCache {
 public:
  explicit PlanCache(const std::string& metric_prefix)
      : prefix_(metric_prefix),
        hits_(telemetry::MetricsRegistry::Get().counter(metric_prefix +
                                                        ".hit")),
        misses_(telemetry::MetricsRegistry::Get().counter(metric_prefix +
                                                          ".miss")) {}

  PlanCache(const PlanCache&) = delete;
  PlanCache& operator=(const PlanCache&) = delete;

  // Returns the cached entry for `key`, invoking `build` on a miss. The
  // returned reference stays valid until Invalidate(). The build runs
  // under the cache lock: concurrent misses for the same key build once.
  const Entry& GetOrBuild(const Key& key,
                          const std::function<Entry()>& build,
                          bool* hit = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.Increment();
      if (hit != nullptr) *hit = true;
      return *it->second;
    }
    misses_.Increment();
    if (hit != nullptr) *hit = false;
    auto entry = std::make_unique<Entry>(build());
    const Entry& ref = *entry;
    entries_.emplace(key, std::move(entry));
    telemetry::FlightRecorder::Get().Record(
        telemetry::FlightEventKind::kPlanCacheMiss, prefix_.c_str(),
        /*trace_id=*/0, entries_.size());
    return ref;
  }

  // The fallible form the serving path uses: `build` may fail (bad input,
  // cancellation during the build, an injected fault converted to Status)
  // and the failure propagates to the caller while the cache stays
  // consistent — a failed build inserts nothing, counts no hit, and the
  // next request for the same key simply builds again. A build that
  // throws leaves the cache equally untouched (the insert happens only
  // after `build` returns).
  Result<const Entry*> TryGetOrBuild(
      const Key& key, const std::function<Result<Entry>()>& build,
      bool* hit = nullptr) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      hits_.Increment();
      if (hit != nullptr) *hit = true;
      return static_cast<const Entry*>(it->second.get());
    }
    if (hit != nullptr) *hit = false;
    Result<Entry> built = build();
    if (!built.ok()) return built.status();
    misses_.Increment();
    auto entry = std::make_unique<Entry>(std::move(built).value());
    const Entry* ref = entry.get();
    entries_.emplace(key, std::move(entry));
    telemetry::FlightRecorder::Get().Record(
        telemetry::FlightEventKind::kPlanCacheMiss, prefix_.c_str(),
        /*trace_id=*/0, entries_.size());
    return ref;
  }

  // Drops every entry (references returned earlier become dangling).
  void Invalidate() {
    std::lock_guard<std::mutex> lock(mu_);
    telemetry::FlightRecorder::Get().Record(
        telemetry::FlightEventKind::kPlanCacheInvalidate, prefix_.c_str(),
        /*trace_id=*/0, entries_.size());
    entries_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.size();
  }

 private:
  mutable std::mutex mu_;
  const std::string prefix_;
  std::map<Key, std::unique_ptr<Entry>> entries_ HEF_GUARDED_BY(mu_);
  telemetry::Counter& hits_;
  telemetry::Counter& misses_;
};

}  // namespace hef::exec

#endif  // HEF_EXEC_PLAN_CACHE_H_
