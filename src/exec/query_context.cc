#include "exec/query_context.h"

#include <unistd.h>

#include <atomic>
#include <string>

namespace hef::exec {

std::uint64_t MintTraceId() {
  // Salt derived once from pid and startup time; the low counter bits keep
  // ids unique within the process, the salt keeps two processes started in
  // the same second distinguishable.
  static const std::uint64_t salt = [] {
    std::uint64_t s = MonotonicNanos() ^
                      (static_cast<std::uint64_t>(getpid()) << 32);
    // SplitMix64 finalizer: spread the salt across all bits.
    s += 0x9e3779b97f4a7c15ULL;
    s = (s ^ (s >> 30)) * 0xbf58476d1ce4e5b9ULL;
    s = (s ^ (s >> 27)) * 0x94d049bb133111ebULL;
    return s ^ (s >> 31);
  }();
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t id =
      salt ^ (counter.fetch_add(1, std::memory_order_relaxed) + 1);
  return id == 0 ? 1 : id;  // 0 is reserved for "untraced"
}

Status QueryContext::Check() const {
  if (token_ != nullptr && token_->cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline_nanos_ != 0) {
    const std::uint64_t now = MonotonicNanos();
    if (now >= deadline_nanos_) {
      return Status::DeadlineExceeded(
          "query deadline exceeded by " +
          std::to_string((now - deadline_nanos_) / 1000000) + " ms");
    }
  }
  return Status::OK();
}

}  // namespace hef::exec
