#include "exec/query_context.h"

#include <string>

namespace hef::exec {

Status QueryContext::Check() const {
  if (token_ != nullptr && token_->cancelled()) {
    return Status::Cancelled("query cancelled");
  }
  if (deadline_nanos_ != 0) {
    const std::uint64_t now = MonotonicNanos();
    if (now >= deadline_nanos_) {
      return Status::DeadlineExceeded(
          "query deadline exceeded by " +
          std::to_string((now - deadline_nanos_) / 1000000) + " ms");
    }
  }
  return Status::OK();
}

}  // namespace hef::exec
