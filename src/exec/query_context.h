// QueryContext — per-query cancellation and deadline plumbing.
//
// The serving path ("heavy traffic from millions of users", ROADMAP) needs
// queries that can be abandoned: a client disconnects, a latency budget
// expires, an operator drains a host. Both engines accept a QueryContext
// on their fallible Run overload and check it cooperatively at morsel
// boundaries — one block of work (EngineConfig::block_size rows) is the
// cancellation granularity, so a stop request is honoured within a single
// block's execution time and partial accumulators are simply discarded.
//
// The check is designed for the hot loop: no token and no deadline cost
// one predictable branch each; an armed deadline adds one clock read per
// block (~4k rows), which is noise next to the block's kernel work.

#ifndef HEF_EXEC_QUERY_CONTEXT_H_
#define HEF_EXEC_QUERY_CONTEXT_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "common/stopwatch.h"

namespace hef::exec {

// A cooperative cancel flag, shareable between the thread driving a query
// and any thread that wants to abandon it. Cancellation is level-
// triggered and sticky until Reset(): every QueryContext observing the
// token reports Cancelled from the moment Cancel() is called.
class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }
  // Re-arms the token for the next query (serving loops reuse tokens).
  void Reset() { cancelled_.store(false, std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

class QueryContext {
 public:
  QueryContext() = default;

  // A context whose deadline is `seconds` from now on the monotonic
  // timeline (<= 0 produces an already-expired deadline).
  static QueryContext WithDeadline(double seconds) {
    QueryContext ctx;
    ctx.set_deadline_nanos(
        seconds <= 0
            ? MonotonicNanos()
            : MonotonicNanos() + static_cast<std::uint64_t>(seconds * 1e9));
    return ctx;
  }

  // The token must outlive every Run using this context.
  void set_token(CancellationToken* token) { token_ = token; }
  CancellationToken* token() const { return token_; }

  // Absolute CLOCK_MONOTONIC_RAW deadline; 0 means "none".
  void set_deadline_nanos(std::uint64_t nanos) { deadline_nanos_ = nanos; }
  std::uint64_t deadline_nanos() const { return deadline_nanos_; }
  bool has_deadline() const { return deadline_nanos_ != 0; }

  // The hot-loop form: true once the query should stop (cancelled or past
  // deadline). Branch-only when neither a token nor a deadline is set.
  bool ShouldStop() const {
    if (token_ != nullptr && token_->cancelled()) return true;
    return deadline_nanos_ != 0 && MonotonicNanos() >= deadline_nanos_;
  }

  // OK, Cancelled, or DeadlineExceeded. Cancellation wins when both hold
  // (the caller asked first; the deadline merely passed meanwhile).
  Status Check() const;

  // Per-request trace id, carried into spans, the flight recorder, debug
  // endpoints and error Status messages. 0 means "not yet minted" — the
  // engines mint one (MintTraceId) on entry when the caller did not.
  void set_trace_id(std::uint64_t id) { trace_id_ = id; }
  std::uint64_t trace_id() const { return trace_id_; }

 private:
  CancellationToken* token_ = nullptr;
  std::uint64_t deadline_nanos_ = 0;
  std::uint64_t trace_id_ = 0;
};

// Mints a process-unique, non-zero trace id: a counter mixed with a
// per-process salt so ids from concurrent processes (bench + serve on one
// host) do not collide in shared logs.
std::uint64_t MintTraceId();

}  // namespace hef::exec

#endif  // HEF_EXEC_QUERY_CONTEXT_H_
