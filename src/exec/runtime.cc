#include "exec/runtime.h"

#include <cstdlib>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "telemetry/metrics.h"

namespace hef::exec {

int ResolveThreads(int configured) {
  HEF_CHECK_MSG(configured >= 0 && configured <= kMaxPoolThreads,
                "thread count %d out of range", configured);
  return configured == 0 ? TaskPool::HardwareThreads() : configured;
}

Result<int> ParseThreadsFlag(const std::string& text) {
  if (text == "auto" || text.empty()) return 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == nullptr || *end != '\0' || value < 0 ||
      value > kMaxPoolThreads) {
    return Status::InvalidArgument("--threads must be auto or 0.." +
                                   std::to_string(kMaxPoolThreads) +
                                   ", got '" + text + "'");
  }
  return static_cast<int>(value);
}

MorselRunInfo RunMorsels(
    std::size_t total_blocks, int workers,
    const std::function<void(int, MorselScheduler&)>& worker_fn,
    const QueryContext* ctx) {
  HEF_CHECK_MSG(workers >= 1, "worker count %d out of range", workers);
  MorselScheduler scheduler(total_blocks, workers);
  scheduler.set_context(ctx);
  std::vector<std::uint64_t> busy_nanos(
      static_cast<std::size_t>(workers), 0);
  const std::uint64_t wall_t0 = MonotonicNanos();
  TaskPool::Get().Run(workers, [&](int w) {
    const std::uint64_t t0 = MonotonicNanos();
    // A throwing worker stops the scheduler before propagating into the
    // pool's capture slot, so surviving workers stop claiming morsels and
    // the join (and the error) reaches the caller quickly.
    try {
      worker_fn(w, scheduler);
    } catch (...) {
      scheduler.Stop();
      busy_nanos[static_cast<std::size_t>(w)] = MonotonicNanos() - t0;
      throw;
    }
    busy_nanos[static_cast<std::size_t>(w)] = MonotonicNanos() - t0;
  });
  const std::uint64_t wall = MonotonicNanos() - wall_t0;

  MorselRunInfo info;
  info.workers = workers;
  info.dispatched = scheduler.dispatched();
  info.steals = scheduler.steals();
  std::uint64_t busy_total = 0;
  for (const std::uint64_t b : busy_nanos) busy_total += b;
  info.busy_fraction =
      wall == 0 ? 1.0
                : static_cast<double>(busy_total) /
                      (static_cast<double>(wall) * workers);

  auto& registry = telemetry::MetricsRegistry::Get();
  registry.counter("exec.morsels_dispatched").Increment(info.dispatched);
  registry.counter("exec.steals").Increment(info.steals);
  registry.gauge("exec.pool_threads")
      .Set(static_cast<double>(TaskPool::Get().spawned_threads()));
  registry.gauge("exec.worker_busy_fraction").Set(info.busy_fraction);
  return info;
}

void RecordQueryOutcome(const Status& status) {
  if (status.ok()) return;
  auto& registry = telemetry::MetricsRegistry::Get();
  switch (status.code()) {
    case StatusCode::kCancelled:
      registry.counter("exec.queries_cancelled").Increment();
      break;
    case StatusCode::kDeadlineExceeded:
      registry.counter("exec.queries_deadline_exceeded").Increment();
      break;
    default:
      registry.counter("exec.queries_failed").Increment();
      break;
  }
}

}  // namespace hef::exec
