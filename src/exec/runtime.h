// Execution-runtime glue: thread-count resolution, the pooled morsel run
// loop, and its scheduler telemetry.
//
// Engines call RunMorsels() instead of spawning threads: it carves the
// block space into a MorselScheduler, runs one worker loop per logical
// worker on the persistent TaskPool (caller participating as worker 0),
// and publishes scheduler counters to the process-wide MetricsRegistry:
//
//   exec.morsels_dispatched   counter — blocks claimed (all runs)
//   exec.steals               counter — shard-half steals (all runs)
//   exec.pool_threads         gauge   — pool threads currently spawned
//   exec.worker_busy_fraction gauge   — sum(worker loop time) /
//                                       (workers * run wall time), last run

#ifndef HEF_EXEC_RUNTIME_H_
#define HEF_EXEC_RUNTIME_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "exec/morsel.h"
#include "exec/query_context.h"
#include "exec/task_pool.h"

namespace hef::exec {

// Resolves an EngineConfig-style thread count: 0 ("auto") becomes the
// hardware concurrency, anything else passes through.
int ResolveThreads(int configured);

// Parses a --threads=auto|N flag value ("auto" -> 0). InvalidArgument on
// anything else that is not an integer in [0, kMaxPoolThreads].
Result<int> ParseThreadsFlag(const std::string& text);

// What a RunMorsels call did, for callers that report scheduler behaviour
// (the same numbers are also accumulated into the metrics registry).
struct MorselRunInfo {
  int workers = 1;
  std::uint64_t dispatched = 0;
  std::uint64_t steals = 0;
  double busy_fraction = 1.0;
};

// Runs worker_fn(worker_index, scheduler) for every worker in
// [0, workers) over the TaskPool. Each worker_fn owns its private state
// (scratch buffers, accumulators, PMU group) and loops
// `while (scheduler.Next(worker, &b, &e)) ...` until the block space is
// drained. Blocks until all workers return.
//
// With a non-null `ctx`, the scheduler checks cancellation/deadline at
// every morsel claim and stops dispatch across all workers once the
// context reports a stop; the caller reads ctx->Check() after the join
// to learn why the scan ended early. A worker_fn that throws follows the
// TaskPool contract: the remaining workers drain (the scheduler is
// stopped so they drain fast) and the first exception rethrows here on
// the calling thread.
MorselRunInfo RunMorsels(
    std::size_t total_blocks, int workers,
    const std::function<void(int, MorselScheduler&)>& worker_fn,
    const QueryContext* ctx = nullptr);

// Serving-outcome accounting for a finished fallible Run. OK counts
// nothing; non-OK statuses bump exactly one of
//
//   exec.queries_cancelled          counter — Cancelled
//   exec.queries_deadline_exceeded  counter — DeadlineExceeded
//   exec.queries_failed             counter — every other error
//
// Both engines call this from their Result-returning Run overloads, so
// callers (benches, servers) get outcome counts without instrumenting
// each call site.
void RecordQueryOutcome(const Status& status);

}  // namespace hef::exec

#endif  // HEF_EXEC_RUNTIME_H_
