#include "exec/task_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/macros.h"
#include "telemetry/metrics.h"
#include "telemetry/profiler.h"

namespace hef::exec {

namespace {

telemetry::Counter& TaskExceptionCounter() {
  static telemetry::Counter& counter =
      telemetry::MetricsRegistry::Get().counter("exec.task_exceptions");
  return counter;
}

}  // namespace

TaskPool& TaskPool::Get() {
  // Function-local static: destroyed (and threads joined) at process exit,
  // so leak checkers stay quiet and TSan sees a clean shutdown.
  static TaskPool pool;
  return pool;
}

int TaskPool::HardwareThreads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(std::min<unsigned>(
                           hc, static_cast<unsigned>(kMaxPoolThreads)));
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

int TaskPool::spawned_threads() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(threads_.size());
}

void TaskPool::EnsureThreads(int wanted) {
  std::lock_guard<std::mutex> lock(mu_);
  wanted = std::min(wanted, kMaxPoolThreads);
  while (static_cast<int>(threads_.size()) < wanted) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

void TaskPool::WorkerLoop() {
  // Pool workers run the engine's pipelines; register with the sampling
  // profiler up front so a later Start() arms a timer for this thread.
  telemetry::Profiler::RegisterCurrentThread();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) return;  // shutdown with nothing left to drain
    std::function<void()> fn = std::move(queue_.front());
    queue_.pop_front();
    lock.unlock();
    // Last-resort containment: closures queued by Run capture their own
    // exceptions, so nothing should reach this handler — but an uncaught
    // exception on a pool thread would std::terminate the process, so the
    // loop never trusts fn(). A task swallowed here still ran its
    // completion protocol iff the closure's own capture path did; a raw
    // throw is counted and dropped.
    try {
      fn();
    } catch (...) {
      TaskExceptionCounter().Increment();
    }
    lock.lock();
  }
}

void TaskPool::Run(int workers, const std::function<void(int)>& body) {
  HEF_CHECK_MSG(workers >= 1 && workers <= kMaxPoolThreads,
                "worker count %d out of range", workers);
  if (workers == 1) {
    // Inline run: an exception propagates directly to the caller, which
    // is already the rethrow-at-join contract.
    body(0);
    return;
  }
  EnsureThreads(workers - 1);

  // Per-run completion latch: the last helper to finish wakes the caller.
  // The latch lives on the caller's stack, so the helper must notify while
  // holding done_mu — once it releases the lock it may not touch the
  // condvar again, because the caller is then free to return and destroy
  // it. The first exception any worker throws is captured under the same
  // lock; later exceptions are only counted (the first is the one a
  // fallible caller reports).
  int remaining = workers - 1;
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr first_exception;
  auto capture = [&] {
    TaskExceptionCounter().Increment();
    std::lock_guard<std::mutex> done_lock(done_mu);
    if (first_exception == nullptr) {
      first_exception = std::current_exception();
    }
  };
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int w = 1; w < workers; ++w) {
      queue_.push_back([&, w] {
        try {
          body(w);
        } catch (...) {
          capture();
        }
        std::lock_guard<std::mutex> done_lock(done_mu);
        if (--remaining == 0) done_cv.notify_one();
      });
    }
  }
  cv_.notify_all();
  try {
    body(0);
  } catch (...) {
    capture();
  }
  {
    std::unique_lock<std::mutex> done_lock(done_mu);
    done_cv.wait(done_lock, [&] { return remaining == 0; });
  }
  // All workers have finished and released the latch; safe to unwind.
  if (first_exception != nullptr) std::rethrow_exception(first_exception);
}

}  // namespace hef::exec
