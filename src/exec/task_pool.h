// TaskPool — the process-wide persistent worker pool the execution runtime
// schedules on.
//
// Pre-PR engines spawned fresh std::threads for every query, which is fine
// for one-shot paper exhibits but dominates latency once the same process
// serves thousands of repeated queries. The pool is created lazily on the
// first parallel run, keeps its threads parked on a condition variable
// between queries, and grows monotonically to the largest worker count any
// run has asked for (capped at kMaxPoolThreads). Thread spawn cost is paid
// once per process instead of once per query.
//
// The pool itself hands out whole per-worker run loops; fine-grained load
// balancing happens one level down, in MorselScheduler (see morsel.h),
// where idle workers steal block ranges from loaded ones.
//
// Exception safety: a serving pool must outlive any single bad query. A
// task body that throws (std::bad_alloc, an injected fault, a bug in an
// engine worker loop) is caught where it runs; the first exception of a
// Run is captured, the remaining workers of that Run complete normally,
// and the exception is rethrown on the *calling* thread at the join
// point — never on a pool thread, so the pool's threads survive every
// Run. Callers on fallible paths convert the rethrown exception to
// hef::Status. Each capture counts into the exec.task_exceptions metric.

#ifndef HEF_EXEC_TASK_POOL_H_
#define HEF_EXEC_TASK_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace hef::exec {

// Upper bound on pool threads (matches EngineConfig's thread-count range).
inline constexpr int kMaxPoolThreads = 256;

class TaskPool {
 public:
  // The process-wide pool. Constructed on first use; joined at exit.
  static TaskPool& Get();

  // std::thread::hardware_concurrency() with a floor of 1 (the value an
  // EngineConfig::threads of 0, "auto", resolves to).
  static int HardwareThreads();

  // Runs body(0) .. body(workers - 1) and returns when all have finished.
  // The calling thread participates as worker 0, so `workers == 1` runs
  // entirely inline and a run can never deadlock waiting for pool
  // capacity. Nested Run calls from inside a body are not supported (the
  // engine run loops never nest).
  //
  // If any body throws, every other body still runs to completion and the
  // first captured exception is rethrown here, on the calling thread,
  // after the join. The pool itself is unaffected and immediately
  // serviceable for the next Run.
  void Run(int workers, const std::function<void(int)>& body);

  // Pool threads spawned so far (excludes callers). For the
  // exec.pool_threads gauge and tests.
  int spawned_threads() const HEF_EXCLUDES(mu_);

  // Joins the pool threads. Reads threads_ after releasing mu_ — safe
  // because nothing may race a destructor, but outside the checker's
  // model.
  ~TaskPool() HEF_NO_THREAD_SAFETY_ANALYSIS;

 private:
  TaskPool() = default;

  void EnsureThreads(int wanted) HEF_EXCLUDES(mu_);
  // Relocks around each task body (unique_lock unlock/lock), a pattern
  // the analysis cannot follow.
  void WorkerLoop() HEF_NO_THREAD_SAFETY_ANALYSIS;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_ HEF_GUARDED_BY(mu_);
  std::vector<std::thread> threads_ HEF_GUARDED_BY(mu_);
  bool shutdown_ HEF_GUARDED_BY(mu_) = false;
};

}  // namespace hef::exec

#endif  // HEF_EXEC_TASK_POOL_H_
