// AVX2 lowering of the hybrid intermediate description (paper Table I,
// "AVX2" column): one Reg is a ymm register holding four 64-bit lanes.
//
// AVX2 lacks three things the Table-I vocabulary needs, so this backend
// emulates them exactly the way the paper prescribes for ISAs missing an
// instruction ("we use multiple scalar instructions or a combination of
// other SIMD instructions to achieve interface consistency"):
//   * 64-bit low multiply (vpmullq is AVX-512DQ): three vpmuludq partial
//     products recombined with shifts/adds;
//   * unsigned 64-bit compare: signed vpcmpgtq after flipping sign bits;
//   * compress-store (vpcompressq is AVX-512F): a 16-entry permutation
//     table driving vpermd.

#ifndef HEF_HID_AVX2_BACKEND_H_
#define HEF_HID_AVX2_BACKEND_H_

#include <cstdint>

#if defined(__AVX2__)
#define HEF_HAVE_AVX2 1

#include <immintrin.h>

#include "common/macros.h"
#include "hid/scalar_backend.h"
#include "procinfo/cpu_features.h"

namespace hef {

struct Avx2Backend {
  using Elem = std::uint64_t;
  using Reg = __m256i;
  using Mask = __m256i;  // per-lane all-ones / all-zeros
  using ScalarCompanion = ScalarBackend;

  static constexpr int kLanes = 4;
  static constexpr Isa kIsa = Isa::kAvx2;

  static HEF_INLINE Reg LoadU(const std::uint64_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static HEF_INLINE void StoreU(std::uint64_t* p, Reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static HEF_INLINE Reg Set1(std::uint64_t x) {
    return _mm256_set1_epi64x(static_cast<long long>(x));
  }

  static HEF_INLINE Reg Gather(const std::uint64_t* base, Reg idx) {
    return _mm256_i64gather_epi64(reinterpret_cast<const long long*>(base),
                                  idx, 8);
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return _mm256_add_epi64(a, b); }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return _mm256_sub_epi64(a, b); }

  static HEF_INLINE Reg Mul(Reg a, Reg b) {
    // 64x64 -> low 64: ll + ((lh + hl) << 32), all lanewise.
    const Reg a_hi = _mm256_srli_epi64(a, 32);
    const Reg b_hi = _mm256_srli_epi64(b, 32);
    const Reg ll = _mm256_mul_epu32(a, b);
    const Reg lh = _mm256_mul_epu32(a, b_hi);
    const Reg hl = _mm256_mul_epu32(a_hi, b);
    const Reg cross = _mm256_add_epi64(lh, hl);
    return _mm256_add_epi64(ll, _mm256_slli_epi64(cross, 32));
  }

  static HEF_INLINE Reg And(Reg a, Reg b) { return _mm256_and_si256(a, b); }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return _mm256_or_si256(a, b); }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return _mm256_xor_si256(a, b); }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    return _mm256_srli_epi64(a, kShift);
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    return _mm256_slli_epi64(a, kShift);
  }

  static HEF_INLINE Reg SrlVar(Reg a, Reg counts) {
    return _mm256_srlv_epi64(a, counts);
  }
  static HEF_INLINE Reg SllVar(Reg a, Reg counts) {
    return _mm256_sllv_epi64(a, counts);
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) {
    return _mm256_cmpeq_epi64(a, b);
  }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) {
    // Unsigned compare via sign-bit flip + signed vpcmpgtq.
    const Reg bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                              _mm256_xor_si256(b, bias));
  }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) {
    return _mm256_and_si256(a, b);
  }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) {
    return _mm256_or_si256(a, b);
  }
  static HEF_INLINE Mask MaskNot(Mask a) {
    return _mm256_xor_si256(a, _mm256_set1_epi64x(-1));
  }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) {
    return static_cast<std::uint32_t>(
        _mm256_movemask_pd(_mm256_castsi256_pd(m)));
  }
  static HEF_INLINE int MaskCount(Mask m) {
    return __builtin_popcount(MaskBits(m));
  }
  static HEF_INLINE bool MaskNone(Mask m) { return MaskBits(m) == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) {
    return _mm256_blendv_epi8(a, b, m);
  }

  static HEF_INLINE int CompressStoreU(std::uint64_t* dst, Mask m, Reg v) {
    // Permutation table over 32-bit lanes: entry for mask bits `b` moves
    // the selected 64-bit lanes (as 32-bit pairs) to the front.
    alignas(32) static const std::uint32_t kPermute[16][8] = {
        {0, 1, 2, 3, 4, 5, 6, 7},  // 0000
        {0, 1, 2, 3, 4, 5, 6, 7},  // 0001
        {2, 3, 0, 1, 4, 5, 6, 7},  // 0010
        {0, 1, 2, 3, 4, 5, 6, 7},  // 0011
        {4, 5, 0, 1, 2, 3, 6, 7},  // 0100
        {0, 1, 4, 5, 2, 3, 6, 7},  // 0101
        {2, 3, 4, 5, 0, 1, 6, 7},  // 0110
        {0, 1, 2, 3, 4, 5, 6, 7},  // 0111
        {6, 7, 0, 1, 2, 3, 4, 5},  // 1000
        {0, 1, 6, 7, 2, 3, 4, 5},  // 1001
        {2, 3, 6, 7, 0, 1, 4, 5},  // 1010
        {0, 1, 2, 3, 6, 7, 4, 5},  // 1011
        {4, 5, 6, 7, 0, 1, 2, 3},  // 1100
        {0, 1, 4, 5, 6, 7, 2, 3},  // 1101
        {2, 3, 4, 5, 6, 7, 0, 1},  // 1110
        {0, 1, 2, 3, 4, 5, 6, 7},  // 1111
    };
    const std::uint32_t bits = MaskBits(m);
    const __m256i idx = _mm256_load_si256(
        reinterpret_cast<const __m256i*>(kPermute[bits]));
    const Reg packed = _mm256_permutevar8x32_epi32(v, idx);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst), packed);
    return __builtin_popcount(bits);
  }

  static HEF_INLINE std::uint64_t Lane(Reg v, int i) {
    alignas(32) std::uint64_t tmp[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    HEF_DCHECK(i >= 0 && i < kLanes);
    return tmp[i];
  }
};

}  // namespace hef

#else
#define HEF_HAVE_AVX2 0
#endif  // __AVX2__

#endif  // HEF_HID_AVX2_BACKEND_H_
