// AVX-512 lowering of the hybrid intermediate description (paper Table I,
// "AVX-512" column): one Reg is a zmm register holding eight 64-bit lanes,
// predicates are the k-mask registers. Requires AVX-512F + DQ (vpmullq).

#ifndef HEF_HID_AVX512_BACKEND_H_
#define HEF_HID_AVX512_BACKEND_H_

#include <cstdint>

#if defined(__AVX512F__) && defined(__AVX512DQ__)
#define HEF_HAVE_AVX512 1

#include <immintrin.h>

#include "common/macros.h"
#include "hid/scalar_backend.h"
#include "procinfo/cpu_features.h"

namespace hef {

struct Avx512Backend {
  using Elem = std::uint64_t;
  using Reg = __m512i;
  using Mask = __mmask8;
  using ScalarCompanion = ScalarBackend;

  static constexpr int kLanes = 8;
  static constexpr Isa kIsa = Isa::kAvx512;

  static HEF_INLINE Reg LoadU(const std::uint64_t* p) {
    return _mm512_loadu_si512(p);
  }
  static HEF_INLINE void StoreU(std::uint64_t* p, Reg v) {
    _mm512_storeu_si512(p, v);
  }
  static HEF_INLINE Reg Set1(std::uint64_t x) {
    return _mm512_set1_epi64(static_cast<long long>(x));
  }

  static HEF_INLINE Reg Gather(const std::uint64_t* base, Reg idx) {
    return _mm512_i64gather_epi64(idx, base, 8);
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return _mm512_add_epi64(a, b); }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return _mm512_sub_epi64(a, b); }
  static HEF_INLINE Reg Mul(Reg a, Reg b) { return _mm512_mullo_epi64(a, b); }
  static HEF_INLINE Reg And(Reg a, Reg b) { return _mm512_and_si512(a, b); }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return _mm512_or_si512(a, b); }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return _mm512_xor_si512(a, b); }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    return _mm512_srli_epi64(a, kShift);
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    return _mm512_slli_epi64(a, kShift);
  }

  static HEF_INLINE Reg SrlVar(Reg a, Reg counts) {
    return _mm512_srlv_epi64(a, counts);
  }
  static HEF_INLINE Reg SllVar(Reg a, Reg counts) {
    return _mm512_sllv_epi64(a, counts);
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) {
    return _mm512_cmpeq_epi64_mask(a, b);
  }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) {
    return _mm512_cmpgt_epu64_mask(a, b);
  }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) { return a | b; }
  static HEF_INLINE Mask MaskNot(Mask a) {
    return static_cast<Mask>(~a);
  }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) { return m; }
  static HEF_INLINE int MaskCount(Mask m) {
    return __builtin_popcount(static_cast<unsigned>(m));
  }
  static HEF_INLINE bool MaskNone(Mask m) { return m == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) {
    return _mm512_mask_blend_epi64(m, a, b);
  }

  static HEF_INLINE int CompressStoreU(std::uint64_t* dst, Mask m, Reg v) {
    _mm512_mask_compressstoreu_epi64(dst, m, v);
    return MaskCount(m);
  }

  static HEF_INLINE std::uint64_t Lane(Reg v, int i) {
    alignas(64) std::uint64_t tmp[kLanes];
    _mm512_store_si512(tmp, v);
    HEF_DCHECK(i >= 0 && i < kLanes);
    return tmp[i];
  }
};

}  // namespace hef

#else
#define HEF_HAVE_AVX512 0
#endif  // __AVX512F__ && __AVX512DQ__

#endif  // HEF_HID_AVX512_BACKEND_H_
