// 16-bit-lane lowerings of the hybrid intermediate description (Table II
// `vint16`/`uint16` types): a zmm register holds 32 lanes, a ymm 16.
//
// Two ops have no 16-bit hardware instruction on any x86 ISA and are
// emulated per the paper's interface-consistency rule ("we use multiple
// scalar instructions or a combination of other SIMD instructions"):
//   * Gather — no vpgatherw exists; lowered to per-lane scalar loads;
//   * CompressStore — vpcompressw needs AVX512-VBMI2 (absent on
//     Skylake-SP); lowered to mask-directed scalar stores.

#ifndef HEF_HID_BACKEND16_H_
#define HEF_HID_BACKEND16_H_

#include <cstdint>

#include "common/macros.h"
#include "hid/avx2_backend.h"
#include "hid/avx512_backend.h"
#include "procinfo/cpu_features.h"

namespace hef {

struct ScalarBackend16 {
  using Elem = std::uint16_t;
  using Reg = std::uint16_t;
  using Mask = std::uint8_t;  // 0 or 1
  using ScalarCompanion = ScalarBackend16;

  static constexpr int kLanes = 1;
  static constexpr Isa kIsa = Isa::kScalar;

  static HEF_INLINE Reg LoadU(const std::uint16_t* p) { return *p; }
  static HEF_INLINE void StoreU(std::uint16_t* p, Reg v) { *p = v; }
  static HEF_INLINE Reg Set1(std::uint16_t x) { return x; }
  static HEF_INLINE Reg Gather(const std::uint16_t* base, Reg idx) {
    return base[idx];
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) {
    return static_cast<Reg>(a + b);
  }
  static HEF_INLINE Reg Sub(Reg a, Reg b) {
    return static_cast<Reg>(a - b);
  }
  static HEF_INLINE Reg Mul(Reg a, Reg b) {
    return static_cast<Reg>(a * b);
  }
  static HEF_INLINE Reg And(Reg a, Reg b) {
    return static_cast<Reg>(a & b);
  }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return static_cast<Reg>(a | b); }
  static HEF_INLINE Reg Xor(Reg a, Reg b) {
    return static_cast<Reg>(a ^ b);
  }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    static_assert(kShift >= 0 && kShift < 16);
    return static_cast<Reg>(a >> kShift);
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    static_assert(kShift >= 0 && kShift < 16);
    return static_cast<Reg>(a << kShift);
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) { return a == b ? 1 : 0; }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) { return a > b ? 1 : 0; }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) { return a | b; }
  static HEF_INLINE Mask MaskNot(Mask a) { return a ^ 1; }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) { return m; }
  static HEF_INLINE int MaskCount(Mask m) { return m; }
  static HEF_INLINE bool MaskNone(Mask m) { return m == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) { return m ? b : a; }

  static HEF_INLINE int CompressStoreU(std::uint16_t* dst, Mask m, Reg v) {
    *dst = v;
    return m;
  }

  static HEF_INLINE std::uint16_t Lane(Reg v, int i) {
    HEF_DCHECK(i == 0);
    (void)i;
    return v;
  }
};

#if HEF_HAVE_AVX512 && defined(__AVX512BW__)
#define HEF_HAVE_AVX512_16 1

struct Avx512Backend16 {
  using Elem = std::uint16_t;
  using Reg = __m512i;
  using Mask = __mmask32;
  using ScalarCompanion = ScalarBackend16;

  static constexpr int kLanes = 32;
  static constexpr Isa kIsa = Isa::kAvx512;

  static HEF_INLINE Reg LoadU(const std::uint16_t* p) {
    return _mm512_loadu_si512(p);
  }
  static HEF_INLINE void StoreU(std::uint16_t* p, Reg v) {
    _mm512_storeu_si512(p, v);
  }
  static HEF_INLINE Reg Set1(std::uint16_t x) {
    return _mm512_set1_epi16(static_cast<short>(x));
  }

  // No 16-bit gather instruction exists: scalar emulation (the paper's
  // interface-consistency rule).
  static HEF_INLINE Reg Gather(const std::uint16_t* base, Reg idx) {
    alignas(64) std::uint16_t idx_arr[kLanes];
    alignas(64) std::uint16_t out[kLanes];
    _mm512_store_si512(idx_arr, idx);
    for (int i = 0; i < kLanes; ++i) {
      out[i] = base[idx_arr[i]];
    }
    return _mm512_load_si512(out);
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return _mm512_add_epi16(a, b); }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return _mm512_sub_epi16(a, b); }
  static HEF_INLINE Reg Mul(Reg a, Reg b) {
    return _mm512_mullo_epi16(a, b);
  }
  static HEF_INLINE Reg And(Reg a, Reg b) { return _mm512_and_si512(a, b); }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return _mm512_or_si512(a, b); }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return _mm512_xor_si512(a, b); }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    return _mm512_srli_epi16(a, kShift);
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    return _mm512_slli_epi16(a, kShift);
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) {
    return _mm512_cmpeq_epi16_mask(a, b);
  }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) {
    return _mm512_cmpgt_epu16_mask(a, b);
  }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) { return a | b; }
  static HEF_INLINE Mask MaskNot(Mask a) { return ~a; }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) { return m; }
  static HEF_INLINE int MaskCount(Mask m) { return __builtin_popcount(m); }
  static HEF_INLINE bool MaskNone(Mask m) { return m == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) {
    return _mm512_mask_blend_epi16(m, a, b);
  }

  // vpcompressw needs AVX512-VBMI2 (Ice Lake+): scalar emulation.
  static HEF_INLINE int CompressStoreU(std::uint16_t* dst, Mask m, Reg v) {
    alignas(64) std::uint16_t tmp[kLanes];
    _mm512_store_si512(tmp, v);
    std::uint32_t bits = m;
    int count = 0;
    while (bits != 0) {
      const int lane = __builtin_ctz(bits);
      bits &= bits - 1;
      dst[count++] = tmp[lane];
    }
    return count;
  }

  static HEF_INLINE std::uint16_t Lane(Reg v, int i) {
    alignas(64) std::uint16_t tmp[kLanes];
    _mm512_store_si512(tmp, v);
    HEF_DCHECK(i >= 0 && i < kLanes);
    return tmp[i];
  }
};

#else
#define HEF_HAVE_AVX512_16 0
#endif  // HEF_HAVE_AVX512 && __AVX512BW__

// The widest 16-bit-lane vector backend compiled into this binary.
#if HEF_HAVE_AVX512_16
using DefaultVectorBackend16 = Avx512Backend16;
#else
using DefaultVectorBackend16 = ScalarBackend16;
#endif

}  // namespace hef

#endif  // HEF_HID_BACKEND16_H_
