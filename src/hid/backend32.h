// 32-bit-lane lowerings of the hybrid intermediate description.
//
// Paper Table II lists 16/32/64-bit integer variable types; analytics
// columns are frequently 32-bit dictionary codes, and VIP-style engines
// (which the paper builds on) are 32-bit oriented. These backends expose
// the identical static interface as the 64-bit ones with Elem = uint32_t:
// a zmm register holds sixteen lanes, a ymm eight. They compose with the
// same HybridRunner/HybridGrid machinery through the Elem/ScalarCompanion
// traits.

#ifndef HEF_HID_BACKEND32_H_
#define HEF_HID_BACKEND32_H_

#include <cstdint>

#include "common/macros.h"
#include "hid/avx2_backend.h"
#include "hid/avx512_backend.h"
#include "hid/scalar_backend.h"
#include "procinfo/cpu_features.h"

namespace hef {

struct ScalarBackend32 {
  using Elem = std::uint32_t;
  using Reg = std::uint32_t;
  using Mask = std::uint8_t;  // 0 or 1
  using ScalarCompanion = ScalarBackend32;

  static constexpr int kLanes = 1;
  static constexpr Isa kIsa = Isa::kScalar;

  static HEF_INLINE Reg LoadU(const std::uint32_t* p) { return *p; }
  static HEF_INLINE void StoreU(std::uint32_t* p, Reg v) { *p = v; }
  static HEF_INLINE Reg Set1(std::uint32_t x) { return x; }
  static HEF_INLINE Reg Gather(const std::uint32_t* base, Reg idx) {
    return base[idx];
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return a + b; }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return a - b; }
  static HEF_INLINE Reg Mul(Reg a, Reg b) { return a * b; }
  static HEF_INLINE Reg And(Reg a, Reg b) { return a & b; }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return a | b; }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return a ^ b; }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    static_assert(kShift >= 0 && kShift < 32);
    return a >> kShift;
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    static_assert(kShift >= 0 && kShift < 32);
    return a << kShift;
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) { return a == b ? 1 : 0; }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) { return a > b ? 1 : 0; }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) { return a | b; }
  static HEF_INLINE Mask MaskNot(Mask a) { return a ^ 1; }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) { return m; }
  static HEF_INLINE int MaskCount(Mask m) { return m; }
  static HEF_INLINE bool MaskNone(Mask m) { return m == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) { return m ? b : a; }

  static HEF_INLINE int CompressStoreU(std::uint32_t* dst, Mask m, Reg v) {
    *dst = v;
    return m;
  }

  static HEF_INLINE std::uint32_t Lane(Reg v, int i) {
    HEF_DCHECK(i == 0);
    (void)i;
    return v;
  }
};

#if HEF_HAVE_AVX512

struct Avx512Backend32 {
  using Elem = std::uint32_t;
  using Reg = __m512i;
  using Mask = __mmask16;
  using ScalarCompanion = ScalarBackend32;

  static constexpr int kLanes = 16;
  static constexpr Isa kIsa = Isa::kAvx512;

  static HEF_INLINE Reg LoadU(const std::uint32_t* p) {
    return _mm512_loadu_si512(p);
  }
  static HEF_INLINE void StoreU(std::uint32_t* p, Reg v) {
    _mm512_storeu_si512(p, v);
  }
  static HEF_INLINE Reg Set1(std::uint32_t x) {
    return _mm512_set1_epi32(static_cast<int>(x));
  }
  static HEF_INLINE Reg Gather(const std::uint32_t* base, Reg idx) {
    return _mm512_i32gather_epi32(idx, base, 4);
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return _mm512_add_epi32(a, b); }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return _mm512_sub_epi32(a, b); }
  static HEF_INLINE Reg Mul(Reg a, Reg b) {
    return _mm512_mullo_epi32(a, b);
  }
  static HEF_INLINE Reg And(Reg a, Reg b) { return _mm512_and_si512(a, b); }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return _mm512_or_si512(a, b); }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return _mm512_xor_si512(a, b); }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    return _mm512_srli_epi32(a, kShift);
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    return _mm512_slli_epi32(a, kShift);
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) {
    return _mm512_cmpeq_epi32_mask(a, b);
  }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) {
    return _mm512_cmpgt_epu32_mask(a, b);
  }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) { return a | b; }
  static HEF_INLINE Mask MaskNot(Mask a) { return static_cast<Mask>(~a); }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) { return m; }
  static HEF_INLINE int MaskCount(Mask m) {
    return __builtin_popcount(static_cast<unsigned>(m));
  }
  static HEF_INLINE bool MaskNone(Mask m) { return m == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) {
    return _mm512_mask_blend_epi32(m, a, b);
  }

  static HEF_INLINE int CompressStoreU(std::uint32_t* dst, Mask m, Reg v) {
    _mm512_mask_compressstoreu_epi32(dst, m, v);
    return MaskCount(m);
  }

  static HEF_INLINE std::uint32_t Lane(Reg v, int i) {
    alignas(64) std::uint32_t tmp[kLanes];
    _mm512_store_si512(tmp, v);
    HEF_DCHECK(i >= 0 && i < kLanes);
    return tmp[i];
  }
};

#endif  // HEF_HAVE_AVX512

#if HEF_HAVE_AVX2

struct Avx2Backend32 {
  using Elem = std::uint32_t;
  using Reg = __m256i;
  using Mask = __m256i;
  using ScalarCompanion = ScalarBackend32;

  static constexpr int kLanes = 8;
  static constexpr Isa kIsa = Isa::kAvx2;

  static HEF_INLINE Reg LoadU(const std::uint32_t* p) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(p));
  }
  static HEF_INLINE void StoreU(std::uint32_t* p, Reg v) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(p), v);
  }
  static HEF_INLINE Reg Set1(std::uint32_t x) {
    return _mm256_set1_epi32(static_cast<int>(x));
  }
  static HEF_INLINE Reg Gather(const std::uint32_t* base, Reg idx) {
    return _mm256_i32gather_epi32(reinterpret_cast<const int*>(base), idx,
                                  4);
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return _mm256_add_epi32(a, b); }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return _mm256_sub_epi32(a, b); }
  static HEF_INLINE Reg Mul(Reg a, Reg b) {
    return _mm256_mullo_epi32(a, b);
  }
  static HEF_INLINE Reg And(Reg a, Reg b) { return _mm256_and_si256(a, b); }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return _mm256_or_si256(a, b); }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return _mm256_xor_si256(a, b); }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    return _mm256_srli_epi32(a, kShift);
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    return _mm256_slli_epi32(a, kShift);
  }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) {
    return _mm256_cmpeq_epi32(a, b);
  }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) {
    const Reg bias = _mm256_set1_epi32(
        static_cast<int>(0x80000000U));
    return _mm256_cmpgt_epi32(_mm256_xor_si256(a, bias),
                              _mm256_xor_si256(b, bias));
  }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) {
    return _mm256_and_si256(a, b);
  }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) {
    return _mm256_or_si256(a, b);
  }
  static HEF_INLINE Mask MaskNot(Mask a) {
    return _mm256_xor_si256(a, _mm256_set1_epi32(-1));
  }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) {
    return static_cast<std::uint32_t>(
        _mm256_movemask_ps(_mm256_castsi256_ps(m)));
  }
  static HEF_INLINE int MaskCount(Mask m) {
    return __builtin_popcount(MaskBits(m));
  }
  static HEF_INLINE bool MaskNone(Mask m) { return MaskBits(m) == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) {
    return _mm256_blendv_epi8(a, b, m);
  }

  static HEF_INLINE int CompressStoreU(std::uint32_t* dst, Mask m, Reg v) {
    // No vpcompressd below AVX-512: scalar extraction of selected lanes.
    alignas(32) std::uint32_t tmp[kLanes];
    StoreU(tmp, v);
    std::uint32_t bits = MaskBits(m);
    int count = 0;
    while (bits != 0) {
      const int lane = __builtin_ctz(bits);
      bits &= bits - 1;
      dst[count++] = tmp[lane];
    }
    return count;
  }

  static HEF_INLINE std::uint32_t Lane(Reg v, int i) {
    alignas(32) std::uint32_t tmp[kLanes];
    _mm256_store_si256(reinterpret_cast<__m256i*>(tmp), v);
    HEF_DCHECK(i >= 0 && i < kLanes);
    return tmp[i];
  }
};

#endif  // HEF_HAVE_AVX2

// The widest 32-bit-lane vector backend compiled into this binary.
#if HEF_HAVE_AVX512
using DefaultVectorBackend32 = Avx512Backend32;
#elif HEF_HAVE_AVX2
using DefaultVectorBackend32 = Avx2Backend32;
#else
using DefaultVectorBackend32 = ScalarBackend32;
#endif

}  // namespace hef

#endif  // HEF_HID_BACKEND32_H_
