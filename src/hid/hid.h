// Umbrella header for the hybrid intermediate description (HID).
//
// The HID is the paper's central abstraction: a set of intrinsic-like
// operations (`hi_add_epi64`, `hi_gather_epi64`, ...) that lower to scalar
// statements, AVX2 or AVX-512 depending on the backend type parameter
// (paper Table I / Table II). Kernels written against the HID run on any
// backend; the hybrid runner (src/hybrid) instantiates them with a mix of
// vector and scalar backends to co-utilize both pipeline families.
//
// Two equivalent spellings are provided:
//   * backend-member style, used by the kernels:   B::Add(a, b)
//   * paper style free functions:                  hi_add_epi64<B>(a, b)

#ifndef HEF_HID_HID_H_
#define HEF_HID_HID_H_

#include <cstdint>

#include "hid/avx2_backend.h"
#include "hid/avx512_backend.h"
#include "hid/scalar_backend.h"
#include "procinfo/cpu_features.h"

namespace hef {

// The widest vector backend this translation unit was compiled for.
#if HEF_HAVE_AVX512
using DefaultVectorBackend = Avx512Backend;
#elif HEF_HAVE_AVX2
using DefaultVectorBackend = Avx2Backend;
#else
using DefaultVectorBackend = ScalarBackend;
#endif

// `hi_uint64<B>` is the paper's `vuint64` variable type (Table II): the
// register type of backend B.
template <typename B>
using hi_uint64 = typename B::Reg;

template <typename B>
using hi_mask = typename B::Mask;

// ---- Paper-style free-function veneer (Table I naming) ----

template <typename B>
HEF_INLINE hi_uint64<B> hi_load_epi64(const std::uint64_t* p) {
  return B::LoadU(p);
}

template <typename B>
HEF_INLINE void hi_store_epi64(std::uint64_t* p, hi_uint64<B> v) {
  B::StoreU(p, v);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_set1_epi64(std::uint64_t x) {
  return B::Set1(x);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_gather_epi64(const std::uint64_t* base,
                                        hi_uint64<B> idx) {
  return B::Gather(base, idx);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_add_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::Add(a, b);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_sub_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::Sub(a, b);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_mullo_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::Mul(a, b);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_and_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::And(a, b);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_or_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::Or(a, b);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_xor_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::Xor(a, b);
}

template <typename B, int kShift>
HEF_INLINE hi_uint64<B> hi_srli_epi64(hi_uint64<B> a) {
  return B::template Srli<kShift>(a);
}

template <typename B, int kShift>
HEF_INLINE hi_uint64<B> hi_slli_epi64(hi_uint64<B> a) {
  return B::template Slli<kShift>(a);
}

// Per-lane variable shifts (vpsrlvq/vpsllvq family); used by the chunk
// decode kernels to align bit-packed values within their word.
template <typename B>
HEF_INLINE hi_uint64<B> hi_srlv_epi64(hi_uint64<B> a, hi_uint64<B> counts) {
  return B::SrlVar(a, counts);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_sllv_epi64(hi_uint64<B> a, hi_uint64<B> counts) {
  return B::SllVar(a, counts);
}

template <typename B>
HEF_INLINE hi_mask<B> hi_cmpeq_epi64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::CmpEq(a, b);
}

template <typename B>
HEF_INLINE hi_mask<B> hi_cmpgt_epu64(hi_uint64<B> a, hi_uint64<B> b) {
  return B::CmpGt(a, b);
}

template <typename B>
HEF_INLINE hi_uint64<B> hi_blend_epi64(hi_mask<B> m, hi_uint64<B> a,
                                       hi_uint64<B> b) {
  return B::Blend(m, a, b);
}

template <typename B>
HEF_INLINE int hi_compressstore_epi64(std::uint64_t* dst, hi_mask<B> m,
                                      hi_uint64<B> v) {
  return B::CompressStoreU(dst, m, v);
}

}  // namespace hef

#endif  // HEF_HID_HID_H_
