// Scalar lowering of the hybrid intermediate description (paper Table I,
// "Scalar" column). A register is one 64-bit GPR value; every HID op maps
// to plain integer C++ that GCC compiles to single scalar instructions.
//
// All three backends expose the same static interface:
//
//   using Reg   = ...;           // one SIMD register's worth of lanes
//   using Mask  = ...;           // per-lane predicate
//   static constexpr int kLanes; // 64-bit lanes per Reg
//   static constexpr Isa kIsa;
//   Reg  LoadU(const uint64_t* p);         void StoreU(uint64_t* p, Reg v);
//   Reg  Set1(uint64_t x);                 Reg  Gather(const uint64_t* base, Reg idx);
//   Reg  Add/Sub/Mul/And/Or/Xor(Reg, Reg);
//   Reg  Srli<k>(Reg); Reg Slli<k>(Reg);   (compile-time shift counts)
//   Mask CmpEq/CmpGt(Reg, Reg);            (CmpGt is unsigned)
//   Mask MaskAnd/MaskOr/MaskNot(Mask...);
//   uint32_t MaskBits(Mask);  int MaskCount(Mask);  bool MaskNone(Mask);
//   Reg  Blend(Mask m, Reg a, Reg b);      // lane i = m[i] ? b[i] : a[i]
//   int  CompressStoreU(uint64_t* dst, Mask m, Reg v);
//   uint64_t Lane(Reg, int i);             // extraction for tests/tails

#ifndef HEF_HID_SCALAR_BACKEND_H_
#define HEF_HID_SCALAR_BACKEND_H_

#include <cstdint>

#include "common/macros.h"
#include "procinfo/cpu_features.h"

namespace hef {

struct ScalarBackend {
  using Elem = std::uint64_t;
  using Reg = std::uint64_t;
  using Mask = std::uint8_t;  // 0 or 1
  // The backend hybrid runners pair with this one for scalar statements.
  using ScalarCompanion = ScalarBackend;

  static constexpr int kLanes = 1;
  static constexpr Isa kIsa = Isa::kScalar;

  static HEF_INLINE Reg LoadU(const std::uint64_t* p) { return *p; }
  static HEF_INLINE void StoreU(std::uint64_t* p, Reg v) { *p = v; }
  static HEF_INLINE Reg Set1(std::uint64_t x) { return x; }

  static HEF_INLINE Reg Gather(const std::uint64_t* base, Reg idx) {
    return base[idx];
  }

  static HEF_INLINE Reg Add(Reg a, Reg b) { return a + b; }
  static HEF_INLINE Reg Sub(Reg a, Reg b) { return a - b; }
  static HEF_INLINE Reg Mul(Reg a, Reg b) { return a * b; }
  static HEF_INLINE Reg And(Reg a, Reg b) { return a & b; }
  static HEF_INLINE Reg Or(Reg a, Reg b) { return a | b; }
  static HEF_INLINE Reg Xor(Reg a, Reg b) { return a ^ b; }

  template <int kShift>
  static HEF_INLINE Reg Srli(Reg a) {
    static_assert(kShift >= 0 && kShift < 64);
    return a >> kShift;
  }
  template <int kShift>
  static HEF_INLINE Reg Slli(Reg a) {
    static_assert(kShift >= 0 && kShift < 64);
    return a << kShift;
  }

  // Per-lane variable shift (vpsrlvq family); counts must be < 64.
  static HEF_INLINE Reg SrlVar(Reg a, Reg counts) { return a >> counts; }
  static HEF_INLINE Reg SllVar(Reg a, Reg counts) { return a << counts; }

  static HEF_INLINE Mask CmpEq(Reg a, Reg b) { return a == b ? 1 : 0; }
  static HEF_INLINE Mask CmpGt(Reg a, Reg b) { return a > b ? 1 : 0; }

  static HEF_INLINE Mask MaskAnd(Mask a, Mask b) { return a & b; }
  static HEF_INLINE Mask MaskOr(Mask a, Mask b) { return a | b; }
  static HEF_INLINE Mask MaskNot(Mask a) { return a ^ 1; }
  static HEF_INLINE std::uint32_t MaskBits(Mask m) { return m; }
  static HEF_INLINE int MaskCount(Mask m) { return m; }
  static HEF_INLINE bool MaskNone(Mask m) { return m == 0; }

  static HEF_INLINE Reg Blend(Mask m, Reg a, Reg b) { return m ? b : a; }

  // Branch-free conditional append: always writes, advances by the mask.
  static HEF_INLINE int CompressStoreU(std::uint64_t* dst, Mask m, Reg v) {
    *dst = v;
    return m;
  }

  static HEF_INLINE std::uint64_t Lane(Reg v, int i) {
    HEF_DCHECK(i == 0);
    (void)i;
    return v;
  }
};

}  // namespace hef

#endif  // HEF_HID_SCALAR_BACKEND_H_
