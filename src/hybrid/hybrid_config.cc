#include "hybrid/hybrid_config.h"

#include <cstdio>

namespace hef {

std::string HybridConfig::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "v%ds%dp%d", v, s, p);
  return buf;
}

Result<HybridConfig> HybridConfig::Parse(const std::string& text) {
  HybridConfig cfg;
  int consumed = 0;
  if (std::sscanf(text.c_str(), "v%ds%dp%d%n", &cfg.v, &cfg.s, &cfg.p,
                  &consumed) != 3 ||
      consumed != static_cast<int>(text.size())) {
    return Status::InvalidArgument("malformed hybrid config '" + text +
                                   "' (expected e.g. 'v1s3p2')");
  }
  if (!cfg.valid()) {
    return Status::InvalidArgument("invalid hybrid config '" + text +
                                   "': need v+s >= 1 and p >= 1");
  }
  return cfg;
}

}  // namespace hef
