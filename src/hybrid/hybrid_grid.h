// HybridGrid — runtime (v, s, p) dispatch over a precompiled grid of
// HybridRunner instantiations.
//
// The paper's optimizer explores the (v, s, p) space by generating,
// compiling and timing candidate implementations offline. HybridGrid is the
// in-process equivalent: every coordinate in [0..MaxV] x [0..MaxS] x
// [1..MaxP] is instantiated at compile time, and the tuner walks the grid
// by timing the precompiled entry points. The source-text path (the literal
// reproduction of the paper's workflow) lives in src/codegen.

#ifndef HEF_HYBRID_HYBRID_GRID_H_
#define HEF_HYBRID_HYBRID_GRID_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/macros.h"
#include "hybrid/hybrid_config.h"
#include "hybrid/hybrid_runner.h"

namespace hef {

template <class Kernel, int MaxV, int MaxS, int MaxP,
          class VecB = DefaultVectorBackend>
class HybridGrid {
  static_assert(MaxV >= 0 && MaxS >= 0 && MaxP >= 1);
  static_assert(MaxV + MaxS >= 1);

 public:
  using Elem = typename VecB::Elem;
  using Fn = void (*)(const Kernel&, const Elem*, Elem*, std::size_t);

  static constexpr int kMaxV = MaxV;
  static constexpr int kMaxS = MaxS;
  static constexpr int kMaxP = MaxP;

  // Returns the entry point for `cfg`, or nullptr when cfg lies outside the
  // grid or is invalid (v == 0 && s == 0).
  static Fn Lookup(const HybridConfig& cfg) {
    if (!cfg.valid() || cfg.v > MaxV || cfg.s > MaxS || cfg.p > MaxP) {
      return nullptr;
    }
    return kTable[FlatIndex(cfg.v, cfg.s, cfg.p)];
  }

  // Runs the kernel under `cfg`; aborts if the config is outside the grid
  // (tuners must filter with Lookup()/Supported() first).
  static void Run(const HybridConfig& cfg, const Kernel& kernel,
                  const Elem* in, Elem* out, std::size_t n) {
    Fn fn = Lookup(cfg);
    HEF_CHECK_MSG(fn != nullptr, "config %s outside compiled grid",
                  cfg.ToString().c_str());
    fn(kernel, in, out, n);
  }

  // All valid coordinates in the grid, in lexicographic (v, s, p) order.
  static std::vector<HybridConfig> Supported() {
    std::vector<HybridConfig> out;
    for (int v = 0; v <= MaxV; ++v) {
      for (int s = 0; s <= MaxS; ++s) {
        for (int p = 1; p <= MaxP; ++p) {
          HybridConfig cfg{v, s, p};
          if (cfg.valid()) out.push_back(cfg);
        }
      }
    }
    return out;
  }

 private:
  static constexpr std::size_t kTableSize =
      static_cast<std::size_t>(MaxV + 1) * (MaxS + 1) * MaxP;

  static constexpr std::size_t FlatIndex(int v, int s, int p) {
    return (static_cast<std::size_t>(v) * (MaxS + 1) + s) * MaxP + (p - 1);
  }

  template <std::size_t I>
  static constexpr Fn MakeEntry() {
    constexpr int v = static_cast<int>(I / ((MaxS + 1) * MaxP));
    constexpr int s = static_cast<int>((I / MaxP) % (MaxS + 1));
    constexpr int p = static_cast<int>(I % MaxP) + 1;
    if constexpr (v + s >= 1) {
      return &HybridRunner<Kernel, v, s, p, VecB>::Run;
    } else {
      return nullptr;
    }
  }

  template <std::size_t... Is>
  static constexpr std::array<Fn, kTableSize> MakeTable(
      std::index_sequence<Is...>) {
    return {MakeEntry<Is>()...};
  }

  static constexpr std::array<Fn, kTableSize> kTable =
      MakeTable(std::make_index_sequence<kTableSize>{});
};

}  // namespace hef

#endif  // HEF_HYBRID_HYBRID_GRID_H_
