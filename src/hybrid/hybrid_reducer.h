// HybridReducer — the pack combinator for reductions (aggregation, one of
// the SSB operator classes): every (v, s, p) statement instance keeps its
// own accumulator register across the whole input (so the loop-carried
// dependence is per instance, and independent instances still interleave),
// and the instance accumulators are combined horizontally once at the end.
//
// Kernel concept:
//   struct MyReduceKernel {
//     template <typename B> struct State { ... accumulators ... };
//     template <typename B> void Init(State<B>&) const;
//     template <typename B> void Accumulate(State<B>&, const Elem*) const;
//     // Horizontal fold of one instance's accumulator into a scalar.
//     template <typename B> std::uint64_t Reduce(const State<B>&) const;
//     // Combines two partial scalars (sum -> +, min -> std::min, ...).
//     static std::uint64_t Combine(std::uint64_t, std::uint64_t);
//     static std::uint64_t Identity();
//   };

#ifndef HEF_HYBRID_HYBRID_REDUCER_H_
#define HEF_HYBRID_HYBRID_REDUCER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/macros.h"
#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "hybrid/hybrid_runner.h"

namespace hef {

template <class Kernel, int V, int S, int P, class VecB = DefaultVectorBackend>
class HybridReducer {
  static_assert(P >= 1 && V >= 0 && S >= 0 && V + S >= 1);

 public:
  using Elem = typename VecB::Elem;
  using SclB = typename VecB::ScalarCompanion;

  static constexpr int kLanes = VecB::kLanes;
  static constexpr int kChunk = P * (V * kLanes + S);

  static HEF_NOINLINE std::uint64_t Run(const Kernel& kernel,
                                        const Elem* HEF_RESTRICT in,
                                        std::size_t n) {
    using hybrid_internal::ForEach;
    using VState = typename Kernel::template State<VecB>;
    using SState = typename Kernel::template State<SclB>;

    constexpr int kPackSpan = V * kLanes + S;

    std::array<VState, static_cast<std::size_t>(V) * P == 0
                           ? 1
                           : static_cast<std::size_t>(V) * P>
        vstate;
    std::array<SState, static_cast<std::size_t>(S) * P == 0
                           ? 1
                           : static_cast<std::size_t>(S) * P>
        sstate;

    ForEach<P>([&](auto pk) {
      constexpr int kP = pk.value;
      ForEach<V>([&](auto vi) {
        kernel.template Init<VecB>(vstate[kP * V + vi.value]);
      });
      ForEach<S>([&](auto si) {
        kernel.template Init<SclB>(sstate[kP * S + si.value]);
      });
    });

    std::size_t i = 0;
    for (; i + kChunk <= n; i += kChunk) {
      // Accumulation is one stage: the loop-carried dependence sits inside
      // each instance, so position-major interleaving happens across the
      // V*P + S*P independent accumulator chains.
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          constexpr int kV = vi.value;
          kernel.template Accumulate<VecB>(
              vstate[kP * V + kV], in + i + kP * kPackSpan + kV * kLanes);
        });
        ForEach<S>([&](auto si) {
          constexpr int kS = si.value;
          kernel.template Accumulate<SclB>(
              sstate[kP * S + kS], in + i + kP * kPackSpan + V * kLanes + kS);
        });
      });
    }

    // Horizontal combine of the instance accumulators.
    std::uint64_t total = Kernel::Identity();
    ForEach<P>([&](auto pk) {
      constexpr int kP = pk.value;
      ForEach<V>([&](auto vi) {
        total = Kernel::Combine(
            total, kernel.template Reduce<VecB>(vstate[kP * V + vi.value]));
      });
      ForEach<S>([&](auto si) {
        total = Kernel::Combine(
            total, kernel.template Reduce<SclB>(sstate[kP * S + si.value]));
      });
    });

    // Scalar tail.
    for (; i < n; ++i) {
      SState st;
      kernel.template Init<SclB>(st);
      kernel.template Accumulate<SclB>(st, in + i);
      total = Kernel::Combine(total, kernel.template Reduce<SclB>(st));
    }
    return total;
  }
};

// Runtime (v, s, p) dispatch over precompiled HybridReducer
// instantiations, mirroring HybridGrid for map kernels.
template <class Kernel, int MaxV, int MaxS, int MaxP,
          class VecB = DefaultVectorBackend>
class HybridReduceGrid {
  static_assert(MaxV >= 0 && MaxS >= 0 && MaxP >= 1 && MaxV + MaxS >= 1);

 public:
  using Elem = typename VecB::Elem;
  using Fn = std::uint64_t (*)(const Kernel&, const Elem*, std::size_t);

  static Fn Lookup(const HybridConfig& cfg) {
    if (!cfg.valid() || cfg.v > MaxV || cfg.s > MaxS || cfg.p > MaxP) {
      return nullptr;
    }
    return kTable[FlatIndex(cfg.v, cfg.s, cfg.p)];
  }

  static std::uint64_t Run(const HybridConfig& cfg, const Kernel& kernel,
                           const Elem* in, std::size_t n) {
    Fn fn = Lookup(cfg);
    HEF_CHECK_MSG(fn != nullptr, "config %s outside compiled reduce grid",
                  cfg.ToString().c_str());
    return fn(kernel, in, n);
  }

  static std::vector<HybridConfig> Supported() {
    std::vector<HybridConfig> out;
    for (int v = 0; v <= MaxV; ++v) {
      for (int s = 0; s <= MaxS; ++s) {
        for (int p = 1; p <= MaxP; ++p) {
          const HybridConfig cfg{v, s, p};
          if (cfg.valid()) out.push_back(cfg);
        }
      }
    }
    return out;
  }

 private:
  static constexpr std::size_t kTableSize =
      static_cast<std::size_t>(MaxV + 1) * (MaxS + 1) * MaxP;

  static constexpr std::size_t FlatIndex(int v, int s, int p) {
    return (static_cast<std::size_t>(v) * (MaxS + 1) + s) * MaxP + (p - 1);
  }

  template <std::size_t I>
  static constexpr Fn MakeEntry() {
    constexpr int v = static_cast<int>(I / ((MaxS + 1) * MaxP));
    constexpr int s = static_cast<int>((I / MaxP) % (MaxS + 1));
    constexpr int p = static_cast<int>(I % MaxP) + 1;
    if constexpr (v + s >= 1) {
      return &HybridReducer<Kernel, v, s, p, VecB>::Run;
    } else {
      return nullptr;
    }
  }

  template <std::size_t... Is>
  static constexpr std::array<Fn, kTableSize> MakeTable(
      std::index_sequence<Is...>) {
    return {MakeEntry<Is>()...};
  }

  static constexpr std::array<Fn, kTableSize> kTable =
      MakeTable(std::make_index_sequence<kTableSize>{});
};

}  // namespace hef

#endif  // HEF_HYBRID_HYBRID_REDUCER_H_
