// HybridRunner — the compile-time pack combinator.
//
// The paper's translator turns an operator template written in the hybrid
// intermediate description into code with `v` SIMD statements and `s` scalar
// statements per pack, replicated `p` times, each statement group operating
// on its own registers (Fig. 6: variables `data_v0_p0`, `data_s2_p1`, ...).
// HybridRunner produces exactly that statement layout through template
// instantiation instead of source-text generation: every (v, s, p) instance
// has its own kernel state struct (its registers), and the runner emits all
// Load statements, then all Compute statements, then all Store statements,
// stage-major across instances, so no two adjacent statements depend on each
// other — the inter-instruction interval drops from latency to throughput
// (paper §II-C, the vpgatherqq 26 -> 5 cycle example).
//
// A kernel models the MapKernel concept:
//
//   struct MyKernel {
//     template <typename B> struct State { ... registers ... };
//     template <typename B> void Load(State<B>& st, const uint64_t* in) const;
//     template <typename B> void Compute(State<B>& st) const;
//     template <typename B> void Store(uint64_t* out, const State<B>& st) const;
//   };
//
// Data layout per chunk (pack-major, matching Fig. 6(b)/(c)):
//   pack k occupies [k*(v*W + s), (k+1)*(v*W + s)) relative to the chunk
//   base, vector statements first (W = vector lanes), then scalars.

#ifndef HEF_HYBRID_HYBRID_RUNNER_H_
#define HEF_HYBRID_HYBRID_RUNNER_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <utility>

#include "common/macros.h"
#include "hid/hid.h"
#include "hybrid/hybrid_config.h"

namespace hef {

namespace hybrid_internal {

// Compile-time for-each: invokes f(integral_constant<int, 0>) ...
// f(integral_constant<int, N-1>) in order, fully unrolled.
template <class F, std::size_t... Is>
HEF_INLINE void ForEachImpl(F&& f, std::index_sequence<Is...>) {
  (f(std::integral_constant<int, static_cast<int>(Is)>{}), ...);
}

template <int N, class F>
HEF_INLINE void ForEach(F&& f) {
  ForEachImpl(std::forward<F>(f), std::make_index_sequence<N>{});
}

}  // namespace hybrid_internal

// Runs `Kernel` over n elements with V vector + S scalar statements per
// pack and P packs. VecB is the vector backend; scalar statements use the
// backend's ScalarCompanion (the same-width scalar lowering — Table II
// pairs every vector type with a scalar element type). V == 0 yields a
// purely scalar implementation, S == 0 a purely SIMD one.
template <class Kernel, int V, int S, int P, class VecB = DefaultVectorBackend>
class HybridRunner {
  static_assert(P >= 1, "pack size must be at least 1");
  static_assert(V >= 0 && S >= 0 && V + S >= 1,
                "need at least one statement per pack");

 public:
  using Elem = typename VecB::Elem;
  using SclB = typename VecB::ScalarCompanion;
  static_assert(std::is_same_v<Elem, typename SclB::Elem>,
                "vector backend and scalar companion must agree on the "
                "element type");

  static constexpr int kLanes = VecB::kLanes;
  // Elements consumed per fully unrolled chunk.
  static constexpr int kChunk = P * (V * kLanes + S);

  static HybridConfig Config() { return HybridConfig{V, S, P}; }

  // Applies the kernel to in[0..n) writing out[0..n). The bulk runs in
  // hybrid chunks; the tail (n % kChunk) runs on the scalar backend.
  static HEF_NOINLINE void Run(const Kernel& kernel,
                               const Elem* HEF_RESTRICT in,
                               Elem* HEF_RESTRICT out, std::size_t n) {
    using hybrid_internal::ForEach;
    using VState = typename Kernel::template State<VecB>;
    using SState = typename Kernel::template State<SclB>;

    constexpr int kPackSpan = V * kLanes + S;
    std::size_t i = 0;

    // One state struct per (statement, pack) instance: these are the
    // translator's per-instance register sets.
    std::array<VState, static_cast<std::size_t>(V) * P == 0
                           ? 1
                           : static_cast<std::size_t>(V) * P>
        vstate;
    std::array<SState, static_cast<std::size_t>(S) * P == 0
                           ? 1
                           : static_cast<std::size_t>(S) * P>
        sstate;

    for (; i + kChunk <= n; i += kChunk) {
      const Elem* base = in + i;
      Elem* obase = out + i;

      // Stage 1: all loads, stage-major across every instance.
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          constexpr int kV = vi.value;
          kernel.template Load<VecB>(vstate[kP * V + kV],
                                     base + kP * kPackSpan + kV * kLanes);
        });
        ForEach<S>([&](auto si) {
          constexpr int kS = si.value;
          kernel.template Load<SclB>(
              sstate[kP * S + kS], base + kP * kPackSpan + V * kLanes + kS);
        });
      });

      // Stage 2: all computes.
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          constexpr int kV = vi.value;
          kernel.template Compute<VecB>(vstate[kP * V + kV]);
        });
        ForEach<S>([&](auto si) {
          constexpr int kS = si.value;
          kernel.template Compute<SclB>(sstate[kP * S + kS]);
        });
      });

      // Stage 3: all stores.
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          constexpr int kV = vi.value;
          kernel.template Store<VecB>(obase + kP * kPackSpan + kV * kLanes,
                                      vstate[kP * V + kV]);
        });
        ForEach<S>([&](auto si) {
          constexpr int kS = si.value;
          kernel.template Store<SclB>(
              obase + kP * kPackSpan + V * kLanes + kS, sstate[kP * S + kS]);
        });
      });
    }

    // Scalar tail.
    for (; i < n; ++i) {
      SState st;
      kernel.template Load<SclB>(st, in + i);
      kernel.template Compute<SclB>(st);
      kernel.template Store<SclB>(out + i, st);
    }
  }
};

}  // namespace hef

#endif  // HEF_HYBRID_HYBRID_RUNNER_H_
