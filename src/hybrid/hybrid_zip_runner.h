// HybridZipRunner — the pack combinator for binary map kernels:
// out[i] = f(a[i], b[i]). Same statement layout and staging as
// HybridRunner (see hybrid_runner.h); the kernel's Load stage receives
// both input pointers. Used for measure expressions such as SSB Q1's
// extendedprice * discount and Q4's revenue - supplycost.
//
// Kernel concept:
//   struct MyZipKernel {
//     template <typename B> struct State { ... };
//     template <typename B> void Load(State<B>&, const Elem* a,
//                                     const Elem* b) const;
//     template <typename B> void Compute(State<B>&) const;
//     template <typename B> void Store(Elem* out, const State<B>&) const;
//   };

#ifndef HEF_HYBRID_HYBRID_ZIP_RUNNER_H_
#define HEF_HYBRID_HYBRID_ZIP_RUNNER_H_

#include <array>
#include <cstddef>

#include "common/macros.h"
#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "hybrid/hybrid_runner.h"

namespace hef {

template <class Kernel, int V, int S, int P, class VecB = DefaultVectorBackend>
class HybridZipRunner {
  static_assert(P >= 1 && V >= 0 && S >= 0 && V + S >= 1);

 public:
  using Elem = typename VecB::Elem;
  using SclB = typename VecB::ScalarCompanion;

  static constexpr int kLanes = VecB::kLanes;
  static constexpr int kChunk = P * (V * kLanes + S);

  static HEF_NOINLINE void Run(const Kernel& kernel,
                               const Elem* HEF_RESTRICT a,
                               const Elem* HEF_RESTRICT b,
                               Elem* HEF_RESTRICT out, std::size_t n) {
    using hybrid_internal::ForEach;
    using VState = typename Kernel::template State<VecB>;
    using SState = typename Kernel::template State<SclB>;

    constexpr int kPackSpan = V * kLanes + S;
    std::size_t i = 0;

    std::array<VState, static_cast<std::size_t>(V) * P == 0
                           ? 1
                           : static_cast<std::size_t>(V) * P>
        vstate;
    std::array<SState, static_cast<std::size_t>(S) * P == 0
                           ? 1
                           : static_cast<std::size_t>(S) * P>
        sstate;

    for (; i + kChunk <= n; i += kChunk) {
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          constexpr int kV = vi.value;
          const std::size_t at = i + kP * kPackSpan + kV * kLanes;
          kernel.template Load<VecB>(vstate[kP * V + kV], a + at, b + at);
        });
        ForEach<S>([&](auto si) {
          constexpr int kS = si.value;
          const std::size_t at = i + kP * kPackSpan + V * kLanes + kS;
          kernel.template Load<SclB>(sstate[kP * S + kS], a + at, b + at);
        });
      });
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          kernel.template Compute<VecB>(vstate[kP * V + vi.value]);
        });
        ForEach<S>([&](auto si) {
          kernel.template Compute<SclB>(sstate[kP * S + si.value]);
        });
      });
      ForEach<P>([&](auto pk) {
        constexpr int kP = pk.value;
        ForEach<V>([&](auto vi) {
          constexpr int kV = vi.value;
          kernel.template Store<VecB>(out + i + kP * kPackSpan + kV * kLanes,
                                      vstate[kP * V + kV]);
        });
        ForEach<S>([&](auto si) {
          constexpr int kS = si.value;
          kernel.template Store<SclB>(
              out + i + kP * kPackSpan + V * kLanes + kS,
              sstate[kP * S + kS]);
        });
      });
    }

    for (; i < n; ++i) {
      SState st;
      kernel.template Load<SclB>(st, a + i, b + i);
      kernel.template Compute<SclB>(st);
      kernel.template Store<SclB>(out + i, st);
    }
  }
};

}  // namespace hef

#endif  // HEF_HYBRID_HYBRID_ZIP_RUNNER_H_
