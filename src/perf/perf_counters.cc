#include "perf/perf_counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace hef {

namespace {

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int OpenCounter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, /*flags=*/0));
}

std::uint64_t NowNanos() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t ReadCounter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) {
    value = 0;
  }
  return value;
}

}  // namespace

PerfCounters::PerfCounters() {
  group_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
                          /*group_fd=*/-1);
  if (group_fd_ < 0) {
    error_ = std::string("perf_event_open failed: ") + std::strerror(errno) +
             " (PMU unavailable; counter columns will report n/a)";
    return;
  }
  cycles_fd_ =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, group_fd_);
  // LLC misses are optional — some PMUs expose instructions/cycles only.
  llc_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                        group_fd_);
}

PerfCounters::~PerfCounters() {
  if (llc_fd_ >= 0) close(llc_fd_);
  if (cycles_fd_ >= 0) close(cycles_fd_);
  if (group_fd_ >= 0) close(group_fd_);
}

void PerfCounters::Start() {
  start_nanos_ = NowNanos();
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfReading PerfCounters::Stop() {
  PerfReading r;
  r.elapsed_seconds =
      static_cast<double>(NowNanos() - start_nanos_) * 1e-9;
  if (group_fd_ < 0) return r;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  r.instructions = ReadCounter(group_fd_);
  r.cycles = ReadCounter(cycles_fd_);
  r.llc_misses = ReadCounter(llc_fd_);
  r.valid = r.instructions > 0 && r.cycles > 0;
  return r;
}

}  // namespace hef
