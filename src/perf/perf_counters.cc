#include "perf/perf_counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstring>

#include "common/stopwatch.h"

namespace hef {

namespace {

// Group read layout for
// PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING.
struct GroupReadBuffer {
  std::uint64_t nr = 0;
  std::uint64_t time_enabled = 0;
  std::uint64_t time_running = 0;
  std::uint64_t values[3] = {0, 0, 0};
};

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int OpenCounter(std::uint32_t type, std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // The whole group is read through the leader, with enabled/running
  // times so multiplexed windows can be scaled instead of silently
  // under-reported.
  attr.read_format = PERF_FORMAT_GROUP | PERF_FORMAT_TOTAL_TIME_ENABLED |
                     PERF_FORMAT_TOTAL_TIME_RUNNING;
  return static_cast<int>(
      PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, /*flags=*/0));
}

// Extrapolates a raw count over the unscheduled fraction of the window.
std::uint64_t Scale(std::uint64_t raw, std::uint64_t enabled,
                    std::uint64_t running) {
  if (running == 0 || running >= enabled) return raw;
  const double factor = static_cast<double>(enabled) /
                        static_cast<double>(running);
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(raw) * factor));
}

}  // namespace

PerfCounters::PerfCounters() {
  group_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS,
                          /*group_fd=*/-1);
  if (group_fd_ < 0) {
    error_ = std::string("perf_event_open failed: ") + std::strerror(errno) +
             " (PMU unavailable; counter columns will report n/a)";
    return;
  }
  n_values_ = 1;
  cycles_fd_ =
      OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES, group_fd_);
  if (cycles_fd_ >= 0) {
    cycles_index_ = n_values_++;
  }
  // LLC misses are optional — some PMUs expose instructions/cycles only.
  llc_fd_ = OpenCounter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CACHE_MISSES,
                        group_fd_);
  if (llc_fd_ >= 0) {
    llc_index_ = n_values_++;
  }
}

PerfCounters::~PerfCounters() {
  if (llc_fd_ >= 0) close(llc_fd_);
  if (cycles_fd_ >= 0) close(cycles_fd_);
  if (group_fd_ >= 0) close(group_fd_);
}

void PerfCounters::Start() {
  start_nanos_ = MonotonicNanos();
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

PerfReading PerfCounters::ReadGroup() const {
  PerfReading r;
  r.elapsed_seconds =
      static_cast<double>(MonotonicNanos() - start_nanos_) * 1e-9;
  if (group_fd_ < 0) return r;

  GroupReadBuffer buf;
  const std::size_t want =
      sizeof(std::uint64_t) * (3 + static_cast<std::size_t>(n_values_));
  const ssize_t got = read(group_fd_, &buf, sizeof(buf));
  if (got < static_cast<ssize_t>(want) ||
      buf.nr != static_cast<std::uint64_t>(n_values_)) {
    return r;
  }

  r.instructions = Scale(buf.values[0], buf.time_enabled, buf.time_running);
  if (cycles_index_ >= 0) {
    r.cycles =
        Scale(buf.values[cycles_index_], buf.time_enabled, buf.time_running);
  }
  if (llc_index_ >= 0) {
    r.llc_misses =
        Scale(buf.values[llc_index_], buf.time_enabled, buf.time_running);
  }
  r.scaled = buf.time_running < buf.time_enabled;
  r.running_fraction =
      buf.time_enabled == 0
          ? 0.0
          : static_cast<double>(buf.time_running) /
                static_cast<double>(buf.time_enabled);
  r.valid = buf.time_running > 0 && r.instructions > 0 && r.cycles > 0;
  return r;
}

PerfReading PerfCounters::ReadNow() const { return ReadGroup(); }

PerfReading PerfCounters::Stop() {
  if (group_fd_ >= 0) {
    ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  }
  return ReadGroup();
}

}  // namespace hef
