// Hardware performance-counter access via perf_event_open.
//
// The paper's evaluation reports instructions, IPC, LLC misses and core
// frequency for every implementation (Tables III-IX). PerfCounters wraps
// the Linux perf_event interface to collect the same columns. Virtualized
// or locked-down environments often forbid PMU access; in that case every
// read reports `valid = false` and the harnesses print "n/a" for PMU
// columns while keeping wall-clock results — measurement must degrade, not
// fail.

#ifndef HEF_PERF_PERF_COUNTERS_H_
#define HEF_PERF_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace hef {

// One measurement window's counter deltas.
struct PerfReading {
  bool valid = false;           // PMU was available and counters ran
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t llc_misses = 0;
  double elapsed_seconds = 0;   // wall clock, always valid

  // Instructions per cycle; 0 when invalid.
  double Ipc() const {
    return (valid && cycles > 0)
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  // Average frequency in GHz over the window; 0 when invalid.
  double FrequencyGhz() const {
    return (valid && elapsed_seconds > 0)
               ? static_cast<double>(cycles) / elapsed_seconds * 1e-9
               : 0.0;
  }
};

// Counter group covering the paper's table columns. Usage:
//
//   PerfCounters perf;
//   perf.Start();
//   RunKernel();
//   PerfReading r = perf.Stop();
//
// Start()/Stop() pairs may be reused. If perf_event_open fails the object
// stays usable and Stop() returns readings with valid == false.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  HEF_DISALLOW_COPY_AND_ASSIGN(PerfCounters);

  // True when the PMU opened successfully and readings will be valid.
  bool available() const { return group_fd_ >= 0; }
  // Human-readable reason when unavailable.
  const std::string& error() const { return error_; }

  void Start();
  PerfReading Stop();

 private:
  int group_fd_ = -1;   // leader: instructions
  int cycles_fd_ = -1;
  int llc_fd_ = -1;
  std::string error_;
  std::uint64_t start_nanos_ = 0;
};

}  // namespace hef

#endif  // HEF_PERF_PERF_COUNTERS_H_
