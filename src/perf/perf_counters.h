// Hardware performance-counter access via perf_event_open.
//
// The paper's evaluation reports instructions, IPC, LLC misses and core
// frequency for every implementation (Tables III-IX). PerfCounters wraps
// the Linux perf_event interface to collect the same columns. Virtualized
// or locked-down environments often forbid PMU access; in that case every
// read reports `valid = false` and the harnesses print "n/a" for PMU
// columns while keeping wall-clock results — measurement must degrade, not
// fail.
//
// Multiplexing: when more events are programmed on a core than it has
// hardware counters, the kernel time-slices them and a naive read
// under-reports. The counters here are read with
// PERF_FORMAT_TOTAL_TIME_ENABLED|RUNNING and every value is scaled by
// enabled/running; readings taken under multiplexing carry
// `scaled == true` and their `running_fraction` so downstream consumers
// can tell an extrapolated count from an exact one.
//
// Threading and fd-set ownership: a PerfCounters object is NOT
// thread-safe and must be started, read, and stopped by one owner.
// Concurrent *measurements* use separate instances — the engine gives
// every worker its own group for per-operator attribution, and the PMU
// timeline sampler (perf/pmu_sampler.h) opens yet another, process-wide
// group on its own thread. Separate groups never share state in user
// space; when they oversubscribe the hardware the kernel multiplexes
// them and the enabled/running scaling above keeps each reading
// individually correct. So "sampler on + per-operator attribution on"
// is a supported configuration by construction, not by locking.

#ifndef HEF_PERF_PERF_COUNTERS_H_
#define HEF_PERF_PERF_COUNTERS_H_

#include <cstdint>
#include <string>

#include "common/macros.h"

namespace hef {

// One measurement window's counter deltas.
struct PerfReading {
  bool valid = false;           // PMU was available and counters ran
  std::uint64_t instructions = 0;
  std::uint64_t cycles = 0;
  std::uint64_t llc_misses = 0;
  double elapsed_seconds = 0;   // wall clock, always valid
  // True when the counter group was multiplexed during the window and the
  // counts above are extrapolated (raw * enabled/running).
  bool scaled = false;
  // time_running / time_enabled over the window; 1.0 when the group owned
  // its hardware counters for the whole window, 0 when invalid.
  double running_fraction = 0.0;

  // Instructions per cycle; 0 when invalid.
  double Ipc() const {
    return (valid && cycles > 0)
               ? static_cast<double>(instructions) / static_cast<double>(cycles)
               : 0.0;
  }
  // Average frequency in GHz over the window; 0 when invalid.
  double FrequencyGhz() const {
    return (valid && elapsed_seconds > 0)
               ? static_cast<double>(cycles) / elapsed_seconds * 1e-9
               : 0.0;
  }
};

// Counter group covering the paper's table columns. Usage:
//
//   PerfCounters perf;
//   perf.Start();
//   RunKernel();
//   PerfReading r = perf.Stop();
//
// Start()/Stop() pairs may be reused. If perf_event_open fails the object
// stays usable and Stop() returns readings with valid == false.
//
// ReadNow() samples the running group without stopping it (one read(2) of
// the whole group), so telemetry can attribute counter deltas to
// sub-windows — e.g. per-operator PMU columns in the engine.
class PerfCounters {
 public:
  PerfCounters();
  ~PerfCounters();
  HEF_DISALLOW_COPY_AND_ASSIGN(PerfCounters);

  // True when the PMU opened successfully and readings will be valid.
  bool available() const { return group_fd_ >= 0; }
  // Human-readable reason when unavailable.
  const std::string& error() const { return error_; }

  void Start();
  PerfReading Stop();

  // Scaled totals since Start() while the group keeps running. Deltas of
  // two ReadNow() results bracket a sub-window.
  PerfReading ReadNow() const;

 private:
  PerfReading ReadGroup() const;

  int group_fd_ = -1;   // leader: instructions
  int cycles_fd_ = -1;
  int llc_fd_ = -1;
  int cycles_index_ = -1;  // position in the group read's value array
  int llc_index_ = -1;
  int n_values_ = 0;
  std::string error_;
  std::uint64_t start_nanos_ = 0;
};

}  // namespace hef

#endif  // HEF_PERF_PERF_COUNTERS_H_
