#include "perf/pmu_sampler.h"

#include <chrono>

#include "common/stopwatch.h"
#include "perf/perf_counters.h"
#include "telemetry/span.h"

namespace hef {

Status PmuSampler::Start(const PmuSamplerOptions& options) {
  if (running_.load(std::memory_order_relaxed)) {
    return Status::Internal("pmu sampler already running");
  }
  stop_.store(false, std::memory_order_relaxed);
  samples_.store(0, std::memory_order_relaxed);
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this, options] { SampleLoop(options); });
  return Status::OK();
}

void PmuSampler::Stop() {
  if (!running_.load(std::memory_order_relaxed)) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  running_.store(false, std::memory_order_relaxed);
}

void PmuSampler::SampleLoop(PmuSamplerOptions options) {
  // The sampler's own counter group: deliberately separate from the
  // engine workers' per-thread groups (see header comment on
  // multiplexing), opened and closed entirely on this thread.
  PerfCounters perf;
  if (!perf.available()) {
    // Nothing to record; still honor the loop so Stop() semantics match.
    while (!stop_.load(std::memory_order_relaxed)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return;
  }
  perf.Start();
  telemetry::SpanTracer& tracer = telemetry::SpanTracer::Get();
  PerfReading prev = perf.ReadNow();
  while (!stop_.load(std::memory_order_relaxed)) {
    std::this_thread::sleep_for(
        std::chrono::nanoseconds(options.period_nanos));
    const PerfReading now = perf.ReadNow();
    const std::uint64_t nanos = MonotonicNanos();
    if (!now.valid || !prev.valid) {
      prev = now;
      continue;
    }
    const double d_instructions =
        static_cast<double>(now.instructions - prev.instructions);
    const double d_cycles = static_cast<double>(now.cycles - prev.cycles);
    const double d_llc = static_cast<double>(now.llc_misses - prev.llc_misses);
    const double d_seconds = now.elapsed_seconds - prev.elapsed_seconds;
    if (d_cycles > 0) {
      tracer.RecordCounter("pmu.ipc", nanos, d_instructions / d_cycles);
    }
    tracer.RecordCounter("pmu.llc_misses", nanos, d_llc);
    if (d_seconds > 0) {
      tracer.RecordCounter("pmu.ghz", nanos, d_cycles / d_seconds * 1e-9);
    }
    samples_.fetch_add(1, std::memory_order_relaxed);
    prev = now;
  }
  perf.Stop();
}

}  // namespace hef
