// Periodic PMU timeline sampling for trace counter tracks.
//
// A background thread owns a private PerfCounters group and reads it on a
// fixed period (default 10 ms); each window's deltas are recorded into
// the SpanTracer as counter events ("pmu.ipc", "pmu.llc_misses",
// "pmu.ghz"), which export as chrome://tracing "C" tracks — value lanes
// that line up under the span timeline, so an IPC dip or an LLC-miss
// burst is visually attributable to the operator running at that moment.
//
// Concurrency with per-operator attribution: the engine's workers each
// own their *own* PerfCounters instance (see engine.cc), and this sampler
// never touches them — it opens a second, process-wide counter group.
// perf_event multiplexing makes the two coexist correctly: when hardware
// counters are oversubscribed the kernel time-slices the groups and every
// reading is scaled by enabled/running (and flagged `scaled`), so the
// sampler adds no data race and no double counting, only (bounded)
// multiplexing noise. This is asserted under TSan in profiler_test.cc.
//
// On machines without PMU access (containers, locked-down VMs) Start()
// succeeds but records nothing; the trace simply has no PMU lanes.

#ifndef HEF_PERF_PMU_SAMPLER_H_
#define HEF_PERF_PMU_SAMPLER_H_

#include <atomic>
#include <cstdint>
#include <thread>

#include "common/macros.h"
#include "common/status.h"

namespace hef {

struct PmuSamplerOptions {
  std::uint64_t period_nanos = 10'000'000;  // 10 ms per counter sample
};

class PmuSampler {
 public:
  PmuSampler() = default;
  ~PmuSampler() { Stop(); }
  HEF_DISALLOW_COPY_AND_ASSIGN(PmuSampler);

  // Starts the sampling thread. Internal when already running. Always OK
  // otherwise — PMU unavailability degrades to an empty timeline.
  Status Start(const PmuSamplerOptions& options = PmuSamplerOptions());

  // Stops and joins the sampling thread. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_relaxed); }
  // Counter windows recorded so far (0 when the PMU is unavailable).
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

 private:
  void SampleLoop(PmuSamplerOptions options);

  std::atomic<bool> stop_{false};
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> samples_{0};
  std::thread thread_;
};

}  // namespace hef

#endif  // HEF_PERF_PMU_SAMPLER_H_
