#include "perf/uops_counters.h"

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace hef {

namespace {

long PerfEventOpen(perf_event_attr* attr, pid_t pid, int cpu, int group_fd,
                   unsigned long flags) {
  return syscall(SYS_perf_event_open, attr, pid, cpu, group_fd, flags);
}

int OpenRaw(std::uint64_t config, int group_fd) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_RAW;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = group_fd == -1 ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, group_fd, /*flags=*/0));
}

int OpenCycles() {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = PERF_COUNT_HW_CPU_CYCLES;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  return static_cast<int>(
      PerfEventOpen(&attr, /*pid=*/0, /*cpu=*/-1, /*group_fd=*/-1, 0));
}

std::uint64_t ReadCounter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && read(fd, &value, sizeof(value)) != sizeof(value)) {
    value = 0;
  }
  return value;
}

// Intel UOPS_EXECUTED.CORE: event 0xB1, umask 0x02; the cycle-threshold
// variants set CMASK in bits 24..31 (raw config layout:
// event | umask<<8 | cmask<<24).
std::uint64_t UopsExecutedGe(int threshold) {
  return 0xB1ULL | (0x02ULL << 8) |
         (static_cast<std::uint64_t>(threshold) << 24);
}

}  // namespace

UopsCounters::UopsCounters() {
  group_fd_ = OpenCycles();
  if (group_fd_ < 0) {
    error_ = std::string("perf_event_open(cycles) failed: ") +
             std::strerror(errno);
    return;
  }
  for (int n = 1; n <= 4; ++n) {
    ge_fds_[n - 1] = OpenRaw(UopsExecutedGe(n), group_fd_);
    if (ge_fds_[n - 1] < 0) {
      error_ = std::string("raw uops event unavailable: ") +
               std::strerror(errno) +
               " (expected on VMs / non-Intel hosts; use the port model)";
      for (int k = 0; k < n - 1; ++k) {
        close(ge_fds_[k]);
        ge_fds_[k] = -1;
      }
      close(group_fd_);
      group_fd_ = -1;
      return;
    }
  }
}

UopsCounters::~UopsCounters() {
  for (int fd : ge_fds_) {
    if (fd >= 0) close(fd);
  }
  if (group_fd_ >= 0) close(group_fd_);
}

void UopsCounters::Start() {
  if (group_fd_ < 0) return;
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
}

UopsReading UopsCounters::Stop() {
  UopsReading r;
  if (group_fd_ < 0) return r;
  ioctl(group_fd_, PERF_EVENT_IOC_DISABLE, PERF_IOC_FLAG_GROUP);
  r.cycles = ReadCounter(group_fd_);
  for (int n = 0; n < 4; ++n) {
    r.cycles_ge[n] = ReadCounter(ge_fds_[n]);
  }
  r.valid = r.cycles > 0;
  return r;
}

}  // namespace hef
