// Raw-PMU µop-parallelism counters: UOPS_EXECUTED.CORE with cycle
// thresholds (CMASK >= 1..4) — the events the paper's Figs. 11-14 are
// built from ("we use perf_event to capture the detailed runtime
// information"). On hosts whose PMU exposes raw events (bare-metal
// Intel), this measures the real histograms; on VMs it degrades exactly
// like PerfCounters and the port-model simulation stands in.

#ifndef HEF_PERF_UOPS_COUNTERS_H_
#define HEF_PERF_UOPS_COUNTERS_H_

#include <array>
#include <cstdint>
#include <string>

#include "common/macros.h"

namespace hef {

struct UopsReading {
  bool valid = false;
  std::uint64_t cycles = 0;
  // cycles_ge[n-1] = cycles in which >= n µops executed (n = 1..4).
  std::array<std::uint64_t, 4> cycles_ge{};

  double FractionGe(int n) const {
    if (!valid || cycles == 0 || n < 1 || n > 4) return 0.0;
    return static_cast<double>(cycles_ge[n - 1]) /
           static_cast<double>(cycles);
  }
};

class UopsCounters {
 public:
  UopsCounters();
  ~UopsCounters();
  HEF_DISALLOW_COPY_AND_ASSIGN(UopsCounters);

  bool available() const { return group_fd_ >= 0; }
  const std::string& error() const { return error_; }

  void Start();
  UopsReading Stop();

 private:
  int group_fd_ = -1;  // leader: cycles
  std::array<int, 4> ge_fds_{-1, -1, -1, -1};
  std::string error_;
};

}  // namespace hef

#endif  // HEF_PERF_UOPS_COUNTERS_H_
