#include "portmodel/kernel_trace.h"

#include "common/macros.h"

namespace hef {

KernelTrace KernelTrace::Build(const std::vector<OpClass>& ops,
                               const HybridConfig& cfg, Isa vector_isa) {
  HEF_CHECK_MSG(cfg.valid(), "invalid hybrid config %s",
                cfg.ToString().c_str());
  KernelTrace trace;
  trace.elements_per_chunk_ = cfg.ElementsPerChunk(IsaLanes64(vector_isa));

  // Enumerate instances (pack-major: vector statements then scalar
  // statements of pack 0, then pack 1, ...).
  std::vector<Isa> instance_isa;
  for (int p = 0; p < cfg.p; ++p) {
    for (int v = 0; v < cfg.v; ++v) instance_isa.push_back(vector_isa);
    for (int s = 0; s < cfg.s; ++s) instance_isa.push_back(Isa::kScalar);
  }
  trace.instances_ = static_cast<int>(instance_isa.size());

  // Emit uops position-major — all instances' statement k before any
  // statement k+1 — matching the SLP pack layout the translator generates
  // (Fig. 2(c)): adjacent uops in program order are mutually independent,
  // the chains interleave.
  std::vector<int> last_uop(instance_isa.size(), -1);
  for (std::size_t k = 0; k < ops.size(); ++k) {
    for (std::size_t inst = 0; inst < instance_isa.size(); ++inst) {
      MicroOp uop;
      uop.op = ops[k];
      uop.isa = instance_isa[inst];
      uop.instance = static_cast<int>(inst);
      uop.dep = last_uop[inst];
      last_uop[inst] = static_cast<int>(trace.uops_.size());
      trace.uops_.push_back(uop);
    }
  }
  return trace;
}

}  // namespace hef
