// KernelTrace — a micro-operation stream for one chunk of a hybrid
// operator, the input of the issue-port simulator.
//
// A hybrid implementation at (v, s, p) consists of v*p vector statement
// instances and s*p scalar statement instances per chunk, each executing
// the operator's op sequence on its own registers. Ops within one instance
// form a dependent chain (the kernel bodies HEF targets — hash chains,
// CRC chains — are strictly sequential per element group); instances are
// mutually independent. That is exactly the structure the pack
// transformation creates, and it is what lets the simulator reproduce the
// paper's µop-parallelism histograms (Figs 11-14).

#ifndef HEF_PORTMODEL_KERNEL_TRACE_H_
#define HEF_PORTMODEL_KERNEL_TRACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hybrid/hybrid_config.h"
#include "procinfo/cpu_features.h"
#include "procinfo/instruction_table.h"

namespace hef {

struct MicroOp {
  OpClass op;
  Isa isa;
  // Statement instance this uop belongs to; uops of one instance chain.
  int instance = 0;
  // Index of the uop this one consumes, or -1 for chain heads. Filled by
  // KernelTrace (previous uop of the same instance).
  int dep = -1;
};

class KernelTrace {
 public:
  // Expands the operator's op sequence into a chunk's micro-op stream for
  // implementation `cfg`: v*p instances at `vector_isa`, s*p instances at
  // scalar. Instance uop chains are built in stage-major order (all loads,
  // then computes, then stores are interleaved per instance by the
  // simulator's readiness rules anyway, so program order here follows
  // instance-major for simplicity).
  static KernelTrace Build(const std::vector<OpClass>& ops,
                           const HybridConfig& cfg, Isa vector_isa);

  const std::vector<MicroOp>& uops() const { return uops_; }
  int instances() const { return instances_; }
  // 64-bit data elements one chunk covers (p * (v*lanes + s)).
  int elements_per_chunk() const { return elements_per_chunk_; }

  // Randomly-accessed working set of the kernel's gathers (lookup table /
  // hash-table slabs). Defaults to L1-resident (the synthetic kernels'
  // 2 KiB CRC table); the simulator adds the processor model's cache-level
  // latency penalty to gathers when this outgrows a level.
  std::size_t gather_footprint_bytes() const {
    return gather_footprint_bytes_;
  }
  void set_gather_footprint_bytes(std::size_t bytes) {
    gather_footprint_bytes_ = bytes;
  }

 private:
  std::vector<MicroOp> uops_;
  int instances_ = 0;
  int elements_per_chunk_ = 0;
  std::size_t gather_footprint_bytes_ = 2048;
};

}  // namespace hef

#endif  // HEF_PORTMODEL_KERNEL_TRACE_H_
