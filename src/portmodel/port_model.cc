#include "portmodel/port_model.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "procinfo/instruction_table.h"

namespace hef {

PortModel::PortModel(const ProcessorModel& model) : model_(model) {
  // Build the port list from the pipe counts. Shared pipes (the Skylake
  // fused port-0/1 unit and port 5) serve both SIMD and scalar uops;
  // exclusive scalar pipes serve scalar uops only. The first SIMD pipe and
  // the first scalar pipe carry the respective multiply units.
  const int simd = model.simd_pipes;
  const int shared = std::min(model.shared_pipes, model.scalar_alu_pipes);
  const int exclusive_scalar = model.scalar_alu_pipes - shared;

  for (int i = 0; i < simd; ++i) {
    Port p;
    p.simd_alu = true;
    p.simd_mul = i < model.simd_mul_pipes;
    p.scalar_alu = i < shared;  // shared issue port
    ports_.push_back(p);
  }
  // Shared ports beyond the SIMD pipe count (possible on asymmetric
  // configs) fall through to plain scalar ports below.
  for (int i = 0; i < exclusive_scalar + std::max(0, shared - simd); ++i) {
    Port p;
    p.scalar_alu = true;
    p.scalar_mul = i == 0;  // one scalar multiply pipe (SKX port 1)
    ports_.push_back(p);
  }
  for (int i = 0; i < model.load_ports; ++i) {
    Port p;
    p.load = true;
    ports_.push_back(p);
  }
  for (int i = 0; i < model.store_ports; ++i) {
    Port p;
    p.store = true;
    ports_.push_back(p);
  }
}

std::string PortModel::DescribePorts() const {
  std::string out;
  for (std::size_t i = 0; i < ports_.size(); ++i) {
    const Port& p = ports_[i];
    out += "port" + std::to_string(i) + ":";
    if (p.simd_alu) out += " simd-alu";
    if (p.simd_mul) out += " simd-mul";
    if (p.scalar_alu) out += " scalar-alu";
    if (p.scalar_mul) out += " scalar-mul";
    if (p.load) out += " load";
    if (p.store) out += " store";
    out += "\n";
  }
  return out;
}

PortSimResult PortModel::Simulate(const KernelTrace& trace,
                                  int iterations) const {
  HEF_CHECK(iterations >= 1);
  const InstructionTable& table = InstructionTable::Get();

  // Materialize the full stream: `iterations` independent copies of the
  // chunk trace (streaming kernels carry no loop dependence).
  struct Scheduled {
    OpClass op;
    Isa isa;
    int dep;               // absolute index or -1
    std::int64_t ready = 0;    // earliest issue cycle (dep latency)
    std::int64_t finish = -1;  // result availability; -1 = not issued
    bool issued = false;
  };
  const auto& chunk = trace.uops();
  std::vector<Scheduled> stream;
  stream.reserve(chunk.size() * static_cast<std::size_t>(iterations));
  bool any_avx512 = false;
  for (int it = 0; it < iterations; ++it) {
    const int base = static_cast<int>(stream.size());
    for (const MicroOp& u : chunk) {
      Scheduled s;
      s.op = u.op;
      s.isa = u.isa;
      s.dep = u.dep < 0 ? -1 : base + u.dep;
      stream.push_back(s);
      if (u.isa == Isa::kAvx512) any_avx512 = true;
    }
  }

  std::vector<std::int64_t> port_busy_until(ports_.size(), 0);

  PortSimResult result;
  result.elements =
      static_cast<std::uint64_t>(trace.elements_per_chunk()) * iterations;
  result.assumed_ghz = any_avx512 ? model_.avx512_ghz : model_.base_ghz;

  std::size_t oldest_unissued = 0;
  std::int64_t cycle = 0;
  const std::int64_t kMaxCycles =
      static_cast<std::int64_t>(stream.size()) * 64 + 1024;

  while (oldest_unissued < stream.size()) {
    HEF_CHECK_MSG(cycle < kMaxCycles, "port model did not converge");
    int issued_this_cycle = 0;
    int uops_this_cycle = 0;

    const std::size_t window_end = std::min(
        stream.size(),
        oldest_unissued + static_cast<std::size_t>(model_.scheduler_entries));
    for (std::size_t i = oldest_unissued;
         i < window_end && issued_this_cycle < model_.issue_width; ++i) {
      Scheduled& s = stream[i];
      if (s.issued) continue;
      // Dependence: the producing instruction's result must be available.
      if (s.dep >= 0) {
        const Scheduled& d = stream[static_cast<std::size_t>(s.dep)];
        if (!d.issued || d.finish > cycle) continue;
      }
      const InstructionInfo& info = table.Lookup(s.op, s.isa);
      // Gathers pay the cache-level penalty of the kernel's random-access
      // footprint (instruction tables record L1-resident latency).
      const std::int64_t mem_penalty =
          (s.op == OpClass::kGather)
              ? model_.LoadLatencyPenalty(trace.gather_footprint_bytes())
              : 0;
      // Find a free supporting port.
      int port = -1;
      for (std::size_t p = 0; p < ports_.size(); ++p) {
        if (ports_[p].Supports(info.port) && port_busy_until[p] <= cycle) {
          port = static_cast<int>(p);
          break;
        }
      }
      if (port < 0) continue;
      // Issue.
      s.issued = true;
      const std::int64_t occupancy =
          std::max<std::int64_t>(1, std::llround(std::ceil(info.throughput)));
      port_busy_until[static_cast<std::size_t>(port)] = cycle + occupancy;
      s.finish = cycle +
                 std::max<std::int64_t>(1, std::llround(info.latency)) +
                 mem_penalty;
      ++issued_this_cycle;
      uops_this_cycle += info.uops;
      result.total_uops += static_cast<std::uint64_t>(info.uops);
      ++result.total_instructions;
    }

    // Histogram: cycles with >= n uops executed.
    for (int n = 0; n < static_cast<int>(result.cycles_with_ge.size());
         ++n) {
      if (uops_this_cycle >= n) ++result.cycles_with_ge[n];
    }

    while (oldest_unissued < stream.size() &&
           stream[oldest_unissued].issued) {
      ++oldest_unissued;
    }
    ++cycle;
  }

  // Drain: account for the cycles until the last result is ready.
  std::int64_t last_finish = cycle;
  for (const Scheduled& s : stream) {
    last_finish = std::max(last_finish, s.finish);
  }
  const std::int64_t drain = last_finish - cycle;
  result.total_cycles = static_cast<std::uint64_t>(cycle + drain);
  result.cycles_with_ge[0] = result.total_cycles;

  return result;
}

}  // namespace hef
