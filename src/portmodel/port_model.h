// PortModel — an out-of-order issue-port simulator.
//
// Reproduces the microarchitectural argument of the paper without PMU
// access: given a kernel's micro-op stream (KernelTrace) and a processor
// description (ProcessorModel), it schedules uops cycle by cycle onto
// execution ports honouring
//   * data dependences (instruction latency),
//   * per-port occupancy (reciprocal throughput — the vpgatherqq 26 vs 5
//     cycle distinction at the heart of the pack optimization),
//   * issue width and scheduler window,
//   * port sharing between SIMD and scalar pipes (the Silver 4110's fused
//     port-0/1 pipe serves both families; the model arbitrates).
//
// Outputs are the paper's Fig. 11-14 series — the fraction of cycles in
// which >= N micro-operations executed — plus cycle counts, IPC and a
// predicted per-element time that folds in AVX-512 frequency licensing.

#ifndef HEF_PORTMODEL_PORT_MODEL_H_
#define HEF_PORTMODEL_PORT_MODEL_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "portmodel/kernel_trace.h"
#include "procinfo/processor_model.h"

namespace hef {

struct PortSimResult {
  std::uint64_t total_cycles = 0;
  std::uint64_t total_uops = 0;
  std::uint64_t total_instructions = 0;
  std::uint64_t elements = 0;

  // cycles_with_ge[n] = cycles in which >= n uops executed (n = 0..6;
  // index 0 therefore equals total_cycles).
  std::array<std::uint64_t, 7> cycles_with_ge{};

  // Fraction of cycles with >= n uops executed.
  double FractionGe(int n) const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(cycles_with_ge[n]) /
                                   static_cast<double>(total_cycles);
  }

  double UopsPerCycle() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(total_uops) /
                                   static_cast<double>(total_cycles);
  }
  double Ipc() const {
    return total_cycles == 0 ? 0.0
                             : static_cast<double>(total_instructions) /
                                   static_cast<double>(total_cycles);
  }
  double CyclesPerElement() const {
    return elements == 0 ? 0.0
                         : static_cast<double>(total_cycles) /
                               static_cast<double>(elements);
  }

  // Frequency the model assumed (GHz) and the resulting predicted time.
  double assumed_ghz = 0.0;
  double NanosPerElement() const {
    return assumed_ghz == 0 ? 0.0 : CyclesPerElement() / assumed_ghz;
  }
};

class PortModel {
 public:
  explicit PortModel(const ProcessorModel& model);

  // Simulates `iterations` back-to-back chunks of the trace (successive
  // iterations are independent — streaming kernels carry no loop
  // dependence) and returns steady-state statistics.
  PortSimResult Simulate(const KernelTrace& trace, int iterations = 64) const;

  // Human-readable port topology (for docs/tests).
  std::string DescribePorts() const;

 private:
  struct Port {
    bool simd_alu = false;
    bool simd_mul = false;
    bool scalar_alu = false;
    bool scalar_mul = false;
    bool load = false;
    bool store = false;
    bool Supports(PortKind kind) const {
      switch (kind) {
        case PortKind::kSimdAlu: return simd_alu;
        case PortKind::kSimdMul: return simd_mul;
        case PortKind::kScalarAlu: return scalar_alu;
        case PortKind::kScalarMul: return scalar_mul;
        case PortKind::kLoad: return load;
        case PortKind::kStore: return store;
      }
      return false;
    }
  };

  ProcessorModel model_;
  std::vector<Port> ports_;
};

}  // namespace hef

#endif  // HEF_PORTMODEL_PORT_MODEL_H_
