#include "procinfo/cpu_features.h"

#include <cpuid.h>

#include <array>
#include <cstring>

namespace hef {

const char* IsaName(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
  }
  return "unknown";
}

int IsaLanes64(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return 1;
    case Isa::kAvx2:
      return 4;
    case Isa::kAvx512:
      return 8;
  }
  return 1;
}

namespace {

CpuFeatures Detect() {
  CpuFeatures f;
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;

  // Vendor string from leaf 0.
  if (__get_cpuid(0, &eax, &ebx, &ecx, &edx)) {
    char vendor[13] = {};
    std::memcpy(vendor + 0, &ebx, 4);
    std::memcpy(vendor + 4, &edx, 4);
    std::memcpy(vendor + 8, &ecx, 4);
    f.vendor = vendor;
  }

  // Extended features from leaf 7 subleaf 0.
  if (__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) {
    f.avx2 = (ebx >> 5) & 1;
    f.avx512f = (ebx >> 16) & 1;
    f.avx512dq = (ebx >> 17) & 1;
    f.avx512cd = (ebx >> 28) & 1;
    f.avx512bw = (ebx >> 30) & 1;
    f.avx512vl = (ebx >> 31) & 1;
  }

  // Brand string from extended leaves 0x80000002..4.
  std::array<unsigned, 12> brand_words = {};
  bool have_brand = true;
  for (unsigned leaf = 0; leaf < 3; ++leaf) {
    if (!__get_cpuid(0x80000002U + leaf, &eax, &ebx, &ecx, &edx)) {
      have_brand = false;
      break;
    }
    brand_words[leaf * 4 + 0] = eax;
    brand_words[leaf * 4 + 1] = ebx;
    brand_words[leaf * 4 + 2] = ecx;
    brand_words[leaf * 4 + 3] = edx;
  }
  if (have_brand) {
    char brand[49] = {};
    std::memcpy(brand, brand_words.data(), 48);
    f.brand = brand;
    // Trim leading spaces Intel pads with.
    const auto pos = f.brand.find_first_not_of(' ');
    if (pos != std::string::npos) f.brand = f.brand.substr(pos);
  }
  return f;
}

}  // namespace

const CpuFeatures& CpuFeatures::Get() {
  static const CpuFeatures kFeatures = Detect();
  return kFeatures;
}

Isa CpuFeatures::BestIsa() const {
  if (avx512f && avx512dq) return Isa::kAvx512;
  if (avx2) return Isa::kAvx2;
  return Isa::kScalar;
}

}  // namespace hef
