// Runtime detection of the vector ISA features HEF kernels can use.

#ifndef HEF_PROCINFO_CPU_FEATURES_H_
#define HEF_PROCINFO_CPU_FEATURES_H_

#include <string>

namespace hef {

// Best vector ISA usable for a kernel. kScalar is always available; the
// hybrid intermediate description lowers to whichever is present (paper
// Table I lists the scalar / AVX2 / AVX-512 lowerings side by side).
enum class Isa {
  kScalar,
  kAvx2,
  kAvx512,
};

const char* IsaName(Isa isa);

// Number of 64-bit lanes a register of the given ISA holds.
int IsaLanes64(Isa isa);

struct CpuFeatures {
  bool avx2 = false;
  bool avx512f = false;
  bool avx512dq = false;   // needed for vpmullq (64-bit multiply)
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512cd = false;   // conflict detection (vpconflictd)
  std::string vendor;
  std::string brand;

  // Queries CPUID once and caches the result for the process lifetime.
  static const CpuFeatures& Get();

  // The widest ISA whose Table-I op set is fully supported. AVX-512 requires
  // F+DQ (64-bit integer multiply and compress); AVX2 alone falls back to
  // the AVX2 lowering.
  Isa BestIsa() const;
};

}  // namespace hef

#endif  // HEF_PROCINFO_CPU_FEATURES_H_
