#include "procinfo/instruction_table.h"

#include "common/macros.h"

namespace hef {

const char* OpClassName(OpClass op) {
  switch (op) {
    case OpClass::kAdd: return "add";
    case OpClass::kSub: return "sub";
    case OpClass::kMul: return "mul";
    case OpClass::kAnd: return "and";
    case OpClass::kOr: return "or";
    case OpClass::kXor: return "xor";
    case OpClass::kShiftLeft: return "sll";
    case OpClass::kShiftRight: return "srl";
    case OpClass::kLoad: return "load";
    case OpClass::kStore: return "store";
    case OpClass::kGather: return "gather";
    case OpClass::kCmpEq: return "cmpeq";
    case OpClass::kCmpGt: return "cmpgt";
    case OpClass::kCompress: return "compress";
    case OpClass::kBlend: return "blend";
    case OpClass::kSet1: return "set1";
  }
  return "unknown";
}

const char* PortKindName(PortKind kind) {
  switch (kind) {
    case PortKind::kSimdAlu: return "simd-alu";
    case PortKind::kSimdMul: return "simd-mul";
    case PortKind::kScalarAlu: return "scalar-alu";
    case PortKind::kScalarMul: return "scalar-mul";
    case PortKind::kLoad: return "load";
    case PortKind::kStore: return "store";
  }
  return "unknown";
}

namespace {

// Shorthand builders keep the table readable.
constexpr InstructionInfo S(OpClass op, double lat, double tp, int uops,
                            PortKind port, int argc = 3) {
  return InstructionInfo{op, Isa::kScalar, lat, tp, uops, port, argc};
}
constexpr InstructionInfo V2(OpClass op, double lat, double tp, int uops,
                             PortKind port, int argc = 3) {
  return InstructionInfo{op, Isa::kAvx2, lat, tp, uops, port, argc};
}
constexpr InstructionInfo V5(OpClass op, double lat, double tp, int uops,
                             PortKind port, int argc = 3) {
  return InstructionInfo{op, Isa::kAvx512, lat, tp, uops, port, argc};
}

}  // namespace

InstructionTable::InstructionTable() {
  // Skylake-SP reference numbers (Intel intrinsics guide / optimization
  // manual, the paper's sources). Latency = cycles to a dependent use with
  // L1-resident data; throughput = reciprocal throughput in cycles.
  entries_ = {
      // --- scalar (64-bit GPR) ---
      S(OpClass::kAdd, 1, 0.25, 1, PortKind::kScalarAlu),
      S(OpClass::kSub, 1, 0.25, 1, PortKind::kScalarAlu),
      S(OpClass::kMul, 3, 1.0, 1, PortKind::kScalarMul),
      S(OpClass::kAnd, 1, 0.25, 1, PortKind::kScalarAlu),
      S(OpClass::kOr, 1, 0.25, 1, PortKind::kScalarAlu),
      S(OpClass::kXor, 1, 0.25, 1, PortKind::kScalarAlu),
      S(OpClass::kShiftLeft, 1, 0.5, 1, PortKind::kScalarAlu),
      S(OpClass::kShiftRight, 1, 0.5, 1, PortKind::kScalarAlu),
      S(OpClass::kLoad, 4, 0.5, 1, PortKind::kLoad, 2),
      S(OpClass::kStore, 4, 1.0, 1, PortKind::kStore, 2),
      // A scalar "gather" is simply an indexed load.
      S(OpClass::kGather, 4, 0.5, 1, PortKind::kLoad, 2),
      S(OpClass::kCmpEq, 1, 0.25, 1, PortKind::kScalarAlu),
      S(OpClass::kCmpGt, 1, 0.25, 1, PortKind::kScalarAlu),
      // Scalar compress = compare + conditional store + cursor bump.
      S(OpClass::kCompress, 2, 1.0, 2, PortKind::kStore, 3),
      S(OpClass::kBlend, 1, 0.5, 1, PortKind::kScalarAlu),
      S(OpClass::kSet1, 1, 0.25, 1, PortKind::kScalarAlu, 1),

      // --- AVX2 (ymm, 4x64) ---
      V2(OpClass::kAdd, 1, 0.33, 1, PortKind::kSimdAlu),
      V2(OpClass::kSub, 1, 0.33, 1, PortKind::kSimdAlu),
      // No vpmullq below AVX-512DQ: emulated with 3 vpmuludq + shifts/adds.
      V2(OpClass::kMul, 10, 3.0, 5, PortKind::kSimdMul),
      V2(OpClass::kAnd, 1, 0.33, 1, PortKind::kSimdAlu),
      V2(OpClass::kOr, 1, 0.33, 1, PortKind::kSimdAlu),
      V2(OpClass::kXor, 1, 0.33, 1, PortKind::kSimdAlu),
      V2(OpClass::kShiftLeft, 1, 0.5, 1, PortKind::kSimdAlu),
      V2(OpClass::kShiftRight, 1, 0.5, 1, PortKind::kSimdAlu),
      V2(OpClass::kLoad, 7, 0.5, 1, PortKind::kLoad, 2),
      V2(OpClass::kStore, 5, 1.0, 1, PortKind::kStore, 2),
      V2(OpClass::kGather, 22, 5.0, 4, PortKind::kLoad, 3),
      V2(OpClass::kCmpEq, 1, 0.5, 1, PortKind::kSimdAlu),
      V2(OpClass::kCmpGt, 1, 0.5, 1, PortKind::kSimdAlu),
      // No compress instruction in AVX2: shuffle-table emulation.
      V2(OpClass::kCompress, 6, 2.0, 4, PortKind::kSimdAlu, 3),
      V2(OpClass::kBlend, 1, 0.33, 1, PortKind::kSimdAlu),
      V2(OpClass::kSet1, 3, 1.0, 1, PortKind::kSimdAlu, 1),

      // --- AVX-512 (zmm, 8x64) ---
      V5(OpClass::kAdd, 1, 0.5, 1, PortKind::kSimdAlu),
      V5(OpClass::kSub, 1, 0.5, 1, PortKind::kSimdAlu),
      // vpmullq zmm: 3 uops on the FMA pipes, latency 15, rtp 1.5.
      V5(OpClass::kMul, 15, 1.5, 3, PortKind::kSimdMul),
      V5(OpClass::kAnd, 1, 0.5, 1, PortKind::kSimdAlu),
      V5(OpClass::kOr, 1, 0.5, 1, PortKind::kSimdAlu),
      V5(OpClass::kXor, 1, 0.5, 1, PortKind::kSimdAlu),
      V5(OpClass::kShiftLeft, 1, 1.0, 1, PortKind::kSimdAlu),
      V5(OpClass::kShiftRight, 1, 1.0, 1, PortKind::kSimdAlu),
      V5(OpClass::kLoad, 8, 0.5, 1, PortKind::kLoad, 2),
      V5(OpClass::kStore, 5, 1.0, 1, PortKind::kStore, 2),
      // vpgatherqq zmm: the paper's flagship example — latency 26, rtp 5.
      V5(OpClass::kGather, 26, 5.0, 5, PortKind::kLoad, 4),
      V5(OpClass::kCmpEq, 3, 1.0, 1, PortKind::kSimdAlu),
      V5(OpClass::kCmpGt, 3, 1.0, 1, PortKind::kSimdAlu),
      // vpcompressq + store.
      V5(OpClass::kCompress, 6, 2.0, 2, PortKind::kStore, 3),
      V5(OpClass::kBlend, 1, 0.5, 1, PortKind::kSimdAlu),
      V5(OpClass::kSet1, 3, 1.0, 1, PortKind::kSimdAlu, 1),
  };
}

const InstructionTable& InstructionTable::Get() {
  static const InstructionTable* table = new InstructionTable();
  return *table;
}

const InstructionInfo& InstructionTable::Lookup(OpClass op, Isa isa) const {
  for (const auto& e : entries_) {
    if (e.op == op && e.isa == isa) return e;
  }
  HEF_CHECK_MSG(false, "no instruction table entry for %s/%s",
                OpClassName(op), IsaName(isa));
  __builtin_unreachable();
}

const InstructionInfo& InstructionTable::MaxLatencyOverThroughput(
    const std::vector<OpClass>& ops, Isa isa) const {
  HEF_CHECK_MSG(!ops.empty(), "empty op list");
  const InstructionInfo* best = &Lookup(ops[0], isa);
  double best_ratio = best->latency / best->throughput;
  for (std::size_t i = 1; i < ops.size(); ++i) {
    const InstructionInfo& info = Lookup(ops[i], isa);
    const double ratio = info.latency / info.throughput;
    if (ratio > best_ratio) {
      best = &info;
      best_ratio = ratio;
    }
  }
  return *best;
}

}  // namespace hef
