// Instruction latency / throughput tables.
//
// The paper's candidate generator picks the initial pack size from the
// instruction with the largest latency/throughput ratio in an operator
// template (§IV-A), quoting the Intel intrinsics guide numbers (e.g.
// vpgatherqq: latency 26, reciprocal throughput 5). This table records
// those reference numbers for every operation class the hybrid intermediate
// description can emit, per ISA, together with the issue-port class the
// port-model simulator schedules them on.

#ifndef HEF_PROCINFO_INSTRUCTION_TABLE_H_
#define HEF_PROCINFO_INSTRUCTION_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "procinfo/cpu_features.h"

namespace hef {

// Operation classes of the hybrid intermediate description (paper Table I,
// extended with the comparison/compress ops the SSB pipelines need).
enum class OpClass {
  kAdd,       // hi_add_epi64 / scalar add
  kSub,       // hi_sub_epi64
  kMul,       // hi_mullo_epi64 / imul (vpmullq on AVX-512DQ)
  kAnd,       // hi_and_epi64
  kOr,        // hi_or_epi64
  kXor,       // hi_xor_epi64
  kShiftLeft,   // hi_slli_epi64
  kShiftRight,  // hi_srli_epi64
  kLoad,      // hi_load_epi64 (contiguous)
  kStore,     // hi_store_epi64
  kGather,    // hi_gather_epi64 (indexed load)
  kCmpEq,     // hi_cmpeq_epi64 -> mask
  kCmpGt,     // hi_cmpgt_epi64 -> mask
  kCompress,  // hi_compressstore (AVX-512) / branchy append (scalar)
  kBlend,     // hi_blend (mask select)
  kSet1,      // hi_set1_epi64 (broadcast constant)
};

const char* OpClassName(OpClass op);

// Which execution-pipe family the uop issues to. The port model maps these
// onto ProcessorModel pipe counts.
enum class PortKind {
  kSimdAlu,    // vector ALU (add/logic/shift/compare/blend)
  kSimdMul,    // vector multiply-capable pipe
  kScalarAlu,  // scalar integer ALU
  kScalarMul,  // scalar integer multiply pipe
  kLoad,       // load AGU+data port
  kStore,      // store port
};

const char* PortKindName(PortKind kind);

struct InstructionInfo {
  OpClass op;
  Isa isa;
  // Cycles until the result is consumable by a dependent instruction.
  double latency = 1.0;
  // Reciprocal throughput: cycles between issues of this instruction on the
  // same pipe when independent instances are available.
  double throughput = 1.0;
  // Micro-operations the instruction decodes into.
  int uops = 1;
  PortKind port = PortKind::kSimdAlu;
  // Number of register operands consumed/produced — the `argc` of the
  // paper's pack formula (gather on AVX-512 takes base+index+mask+dest).
  int argc = 3;
};

// Read-only view of the built-in description table (Skylake-SP reference
// numbers, matching the figures quoted in the paper).
class InstructionTable {
 public:
  // Singleton accessor for the built-in table.
  static const InstructionTable& Get();

  // Lookup; aborts on unknown (op, isa) pairs — every HID op must be
  // covered for every ISA by construction, and the unit tests enforce it.
  const InstructionInfo& Lookup(OpClass op, Isa isa) const;

  // All entries (for iteration in tests/benches).
  const std::vector<InstructionInfo>& entries() const { return entries_; }

  // The entry with the maximum latency/throughput ratio among `ops` for
  // `isa` — the pack-size driver of the candidate generator.
  const InstructionInfo& MaxLatencyOverThroughput(
      const std::vector<OpClass>& ops, Isa isa) const;

 private:
  InstructionTable();
  std::vector<InstructionInfo> entries_;
};

}  // namespace hef

#endif  // HEF_PROCINFO_INSTRUCTION_TABLE_H_
