#include "procinfo/processor_model.h"

#include "procinfo/cpu_features.h"

namespace hef {

ProcessorModel ProcessorModel::Silver4110() {
  ProcessorModel m;
  m.name = "silver4110";
  m.simd_pipes = 1;  // single fused AVX-512 unit (ports 0+1)
  m.scalar_alu_pipes = 4;
  m.scalar_mul_pipes = 1;
  m.simd_mul_pipes = 1;
  m.shared_pipes = 1;  // the fused p0/p1 pipe also serves scalar uops
  m.load_ports = 2;
  m.store_ports = 1;
  m.base_ghz = 3.0;     // 4110 all-core turbo ~2.7-3.0
  m.avx512_ghz = 2.2;   // heavy AVX-512 license
  m.issue_width = 4;
  m.scheduler_entries = 97;
  return m;
}

ProcessorModel ProcessorModel::Gold6240R() {
  ProcessorModel m;
  m.name = "gold6240r";
  m.simd_pipes = 2;  // fused p0+p1 plus the dedicated port-5 AVX-512 unit
  m.scalar_alu_pipes = 4;
  m.scalar_mul_pipes = 1;
  m.simd_mul_pipes = 2;
  m.shared_pipes = 2;  // both SIMD pipes sit on scalar-capable ports
  m.load_ports = 2;
  m.store_ports = 1;
  m.base_ghz = 3.3;
  m.avx512_ghz = 2.4;
  m.issue_width = 4;
  m.scheduler_entries = 97;
  return m;
}

ProcessorModel ProcessorModel::Host() {
  // Without a microarchitecture database we assume the Skylake-SP shape the
  // paper describes, upgraded to two SIMD pipes when AVX-512 is present
  // (most post-Skylake server parts) and downgraded to the AVX2 shape when
  // it is not.
  const CpuFeatures& f = CpuFeatures::Get();
  ProcessorModel m =
      f.avx512f ? Gold6240R() : Silver4110();
  m.name = "host";
  if (!f.avx512f) {
    m.simd_pipes = f.avx2 ? 2 : 0;
  }
  return m;
}

Result<ProcessorModel> ProcessorModel::ByName(const std::string& name) {
  if (name == "silver4110") return Silver4110();
  if (name == "gold6240r") return Gold6240R();
  if (name == "host") return Host();
  return Status::InvalidArgument("unknown processor model '" + name +
                                 "' (expected silver4110|gold6240r|host)");
}

}  // namespace hef
