// Processor microarchitecture models.
//
// The paper's candidate generator (§IV-A) consumes exactly two kinds of
// hardware information: (1) how many SIMD and scalar pipelines the core has
// and which are shared, and (2) instruction latency/throughput tables. The
// port-model simulator (src/portmodel) additionally consumes per-port
// topology. ProcessorModel bundles both, with presets for the two testbed
// CPUs the paper evaluates on so the reproduction can reason about both
// microarchitectures from a single host:
//
//   * Intel Xeon Silver 4110 (Skylake-SP): ONE fused AVX-512 pipe (port 0+1
//     fuse for 512-bit ops) and four scalar ALU pipes (ports 0, 1, 5, 6),
//     of which one shares its issue port with the AVX-512 unit.
//   * Intel Xeon Gold 6240R (Cascade Lake-SP): TWO AVX-512 pipes (port 0+1
//     fused plus the dedicated port-5 unit), same scalar side.

#ifndef HEF_PROCINFO_PROCESSOR_MODEL_H_
#define HEF_PROCINFO_PROCESSOR_MODEL_H_

#include <string>

#include "common/status.h"

namespace hef {

struct ProcessorModel {
  std::string name;

  // Execution-engine shape (per physical core).
  int simd_pipes = 1;        // usable 512-bit SIMD execution pipes
  int scalar_alu_pipes = 4;  // scalar integer ALU pipes
  int scalar_mul_pipes = 1;  // scalar integer multiply pipes (SKX: port 1)
  int simd_mul_pipes = 1;    // SIMD integer-multiply-capable pipes
  int shared_pipes = 1;      // pipes issuing both SIMD and scalar uops
  int load_ports = 2;
  int store_ports = 1;

  // Register budget visible to the candidate generator. The paper's pack
  // formula assumes "32 general purpose scalar and vector registers"
  // (§IV-A); AVX-512 indeed has 32 architectural zmm registers and the
  // renamer gives roughly that many live scalar names before spilling.
  int scalar_registers = 32;
  int vector_registers = 32;

  // Clock behaviour: sustained frequency for scalar-only code and under
  // heavy 512-bit load (AVX-512 license throttling the paper observes in
  // its Frequency rows).
  double base_ghz = 3.0;
  double avx512_ghz = 2.8;

  // Front-end width (uops renamed/issued per cycle); bounds the port model.
  int issue_width = 4;

  // Out-of-order window (scheduler entries); bounds how far the port model
  // looks ahead for ready uops.
  int scheduler_entries = 97;

  // Cache hierarchy (per core for L1/L2, per socket share for LLC) and the
  // additional latency cycles a load pays at each level beyond L1. The
  // instruction tables record L1-resident latencies ("the latency to
  // access data from the L1 cache", §IV-A); the port model adds these
  // penalties when a kernel's gather footprint outgrows a level — the
  // mechanism behind the paper's scale-dependent SSB speedups.
  std::size_t l1_bytes = 32 * 1024;
  std::size_t l2_bytes = 1024 * 1024;
  std::size_t llc_bytes = 11 * 1024 * 1024;
  int l2_extra_latency = 10;
  int llc_extra_latency = 40;
  int dram_extra_latency = 160;

  // Extra load latency for a randomly accessed working set of this size.
  int LoadLatencyPenalty(std::size_t footprint_bytes) const {
    if (footprint_bytes <= l1_bytes) return 0;
    if (footprint_bytes <= l2_bytes) return l2_extra_latency;
    if (footprint_bytes <= llc_bytes) return llc_extra_latency;
    return dram_extra_latency;
  }

  // Presets for the paper's two testbeds and a generic host description.
  static ProcessorModel Silver4110();
  static ProcessorModel Gold6240R();
  // Builds a model from host CPUID information (pipe counts default to the
  // Skylake-SP shape; unknown parts are conservative).
  static ProcessorModel Host();

  // Looks a preset up by name: "silver4110", "gold6240r", "host".
  static Result<ProcessorModel> ByName(const std::string& name);

  // Scalar pipes NOT shared with the SIMD unit — the count the paper's
  // stage-1 heuristic assigns to `s` ("we treat such [shared] pipelines as
  // SIMD exclusive").
  int ExclusiveScalarPipes() const {
    const int exclusive = scalar_alu_pipes - shared_pipes;
    return exclusive > 0 ? exclusive : 0;
  }
};

}  // namespace hef

#endif  // HEF_PROCINFO_PROCESSOR_MODEL_H_
