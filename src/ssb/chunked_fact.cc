#include "ssb/chunked_fact.h"

#include <algorithm>
#include <numeric>

#include "common/macros.h"

namespace hef::ssb {

namespace {

// The nine fact columns in schema order, paired with their names.
struct FactColumn {
  const char* name;
  const Column LineorderFact::* member;
};

constexpr FactColumn kFactColumns[] = {
    {"lo_orderdate", &LineorderFact::orderdate},
    {"lo_custkey", &LineorderFact::custkey},
    {"lo_suppkey", &LineorderFact::suppkey},
    {"lo_partkey", &LineorderFact::partkey},
    {"lo_quantity", &LineorderFact::quantity},
    {"lo_discount", &LineorderFact::discount},
    {"lo_extendedprice", &LineorderFact::extendedprice},
    {"lo_revenue", &LineorderFact::revenue},
    {"lo_supplycost", &LineorderFact::supplycost},
};

}  // namespace

ChunkedFact ChunkedFact::Build(const LineorderFact& lineorder,
                               const ChunkedFactOptions& options) {
  HEF_CHECK(options.chunk_rows > 0);
  ChunkedFact fact;
  fact.rows_ = lineorder.n;
  fact.options_ = options;

  std::vector<std::uint64_t> perm;
  if (options.cluster_by_orderdate && lineorder.n > 0) {
    perm.resize(lineorder.n);
    std::iota(perm.begin(), perm.end(), 0);
    const std::uint64_t* dates = lineorder.orderdate.data();
    std::stable_sort(perm.begin(), perm.end(),
                     [dates](std::uint64_t a, std::uint64_t b) {
                       return dates[a] < dates[b];
                     });
  }

  AlignedBuffer<std::uint64_t> reordered;
  fact.columns_.reserve(std::size(kFactColumns));
  for (const FactColumn& fc : kFactColumns) {
    const Column& flat = lineorder.*fc.member;
    const std::uint64_t* values = flat.data();
    if (!perm.empty()) {
      reordered.Allocate(lineorder.n);
      for (std::size_t i = 0; i < lineorder.n; ++i) {
        reordered[i] = flat[perm[i]];
      }
      values = reordered.data();
    }
    fact.columns_.push_back(
        {fc.name, &flat,
         storage::ChunkedColumn::Encode(values, lineorder.n,
                                        options.chunk_rows, options.policy)});
  }
  return fact;
}

const storage::ChunkedColumn* ChunkedFact::Find(const Column* flat) const {
  for (const ColumnEntry& entry : columns_) {
    if (entry.flat == flat) return &entry.data;
  }
  return nullptr;
}

std::size_t ChunkedFact::EncodedBytes() const {
  std::size_t bytes = 0;
  for (const ColumnEntry& entry : columns_) {
    bytes += entry.data.EncodedBytes();
  }
  return bytes;
}

void EnsureChunked(SsbDatabase& db, const ChunkedFactOptions& options) {
  if (db.chunked != nullptr) return;
  db.chunked =
      std::make_shared<const ChunkedFact>(ChunkedFact::Build(db.lineorder,
                                                             options));
}

void DropFlatFact(SsbDatabase& db) {
  HEF_CHECK_MSG(db.chunked != nullptr,
                "DropFlatFact requires a built chunked fact");
  LineorderFact& lo = db.lineorder;
  for (Column* col : {&lo.orderdate, &lo.custkey, &lo.suppkey, &lo.partkey,
                      &lo.quantity, &lo.discount, &lo.extendedprice,
                      &lo.revenue, &lo.supplycost}) {
    *col = Column();
  }
}

}  // namespace hef::ssb
