// Chunked, encoded shadow of the LINEORDER fact table.
//
// ChunkedFact re-stores the nine fact columns through the storage layer
// (src/storage): fixed-size chunks, per-chunk {plain, dict, FoR} encoding,
// zone maps and histograms for scan pruning. The flat columns stay in
// place as the compatibility shim — plans keep pointing at the same
// ssb::Column objects, and ChunkedFact::Find maps those pointers to their
// chunked shadows — so both engines run unchanged queries whether or not
// the chunked path is enabled. Once a bench has no further use for the
// flat arrays (e.g. SF 1 under the compressed footprint criterion),
// DropFlatFact frees their payloads while keeping the Column objects (and
// thus plan pointer identity) alive.
//
// SSB's generator draws orderdate uniformly per row, which defeats zone
// maps: every chunk spans the full date range. Build therefore clusters
// the chunked representation by orderdate (a stable sort applied to all
// nine columns; the flat columns are untouched). Group-by aggregates are
// order-independent, so query results are unchanged.

#ifndef HEF_SSB_CHUNKED_FACT_H_
#define HEF_SSB_CHUNKED_FACT_H_

#include <cstddef>
#include <vector>

#include "ssb/database.h"
#include "storage/chunked_column.h"

namespace hef::ssb {

struct ChunkedFactOptions {
  std::size_t chunk_rows = storage::kDefaultChunkRows;
  storage::EncodingPolicy policy = storage::EncodingPolicy::kAuto;
  // Cluster the chunked representation by orderdate (see file comment).
  bool cluster_by_orderdate = true;
};

class ChunkedFact {
 public:
  struct ColumnEntry {
    const char* name;         // schema column name ("lo_orderdate", ...)
    const Column* flat;       // the flat column this entry shadows
    storage::ChunkedColumn data;
  };

  static ChunkedFact Build(const LineorderFact& lineorder,
                           const ChunkedFactOptions& options);

  std::size_t rows() const { return rows_; }
  std::size_t chunk_rows() const { return options_.chunk_rows; }
  std::size_t num_chunks() const {
    return columns_.empty() ? 0 : columns_.front().data.num_chunks();
  }
  const ChunkedFactOptions& options() const { return options_; }
  const std::vector<ColumnEntry>& columns() const { return columns_; }

  // The chunked shadow of a flat fact column (by pointer identity), or
  // nullptr for anything that is not a LINEORDER column.
  const storage::ChunkedColumn* Find(const Column* flat) const;

  std::size_t EncodedBytes() const;
  std::size_t PlainBytes() const {
    return rows_ * columns_.size() * sizeof(std::uint64_t);
  }

 private:
  std::size_t rows_ = 0;
  ChunkedFactOptions options_;
  std::vector<ColumnEntry> columns_;
};

// Builds db.chunked from db.lineorder if not already built (no-op
// otherwise — callers that need different options must reset db.chunked
// first).
void EnsureChunked(SsbDatabase& db, const ChunkedFactOptions& options = {});

// Frees the flat LINEORDER column payloads, keeping the Column objects
// (and plan pointer identity) alive. Only legal once db.chunked is built;
// afterwards only the chunked engine path can run fact scans.
void DropFlatFact(SsbDatabase& db);

}  // namespace hef::ssb

#endif  // HEF_SSB_CHUNKED_FACT_H_
