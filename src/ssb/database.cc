#include "ssb/database.h"

#include <algorithm>
#include <cmath>

#include "common/macros.h"
#include "common/rng.h"
#include "ssb/chunked_fact.h"

namespace hef::ssb {

SsbDatabase::SsbDatabase() = default;
SsbDatabase::SsbDatabase(SsbDatabase&&) noexcept = default;
SsbDatabase& SsbDatabase::operator=(SsbDatabase&&) noexcept = default;
SsbDatabase::~SsbDatabase() = default;

namespace {

constexpr int kDaysPerMonth[12] = {31, 28, 31, 30, 31, 30,
                                   31, 31, 30, 31, 30, 31};

bool IsLeapYear(int year) {
  return (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
}

void GenerateDate(DateDim* date) {
  date->n = kDaysInSsb;
  date->datekey.Allocate(date->n, 8);
  date->year.Allocate(date->n, 8);
  date->yearmonthnum.Allocate(date->n, 8);
  date->weeknuminyear.Allocate(date->n, 8);

  // The 1992-1998 calendar has 2557 days, but the SSB dbgen date table has
  // exactly 2556 rows (it stops at 1998-12-30); we match dbgen.
  std::size_t row = 0;
  for (int y = kFirstYear; y <= kLastYear && row < date->n; ++y) {
    int day_of_year = 1;
    for (int m = 1; m <= 12 && row < date->n; ++m) {
      int days = kDaysPerMonth[m - 1];
      if (m == 2 && IsLeapYear(y)) days += 1;
      for (int d = 1; d <= days && row < date->n; ++d, ++day_of_year, ++row) {
        date->datekey[row] =
            static_cast<std::uint64_t>(y) * 10000 + m * 100 + d;
        date->year[row] = static_cast<std::uint64_t>(y);
        date->yearmonthnum[row] =
            static_cast<std::uint64_t>(y) * 100 + m;
        date->weeknuminyear[row] =
            static_cast<std::uint64_t>((day_of_year - 1) / 7 + 1);
      }
    }
  }
  HEF_CHECK_MSG(row == kDaysInSsb, "calendar produced %zu days", row);
}

void GenerateGeo(std::size_t n, std::uint64_t seed, Column* city,
                 Column* nation, Column* region) {
  Rng rng(seed);
  city->Allocate(n, 8);
  nation->Allocate(n, 8);
  region->Allocate(n, 8);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t c = rng.Uniform(0, kNumCities - 1);
    (*city)[i] = c;
    (*nation)[i] = NationOfCity(c);
    (*region)[i] = RegionOfNation(NationOfCity(c));
  }
}

void GeneratePart(std::size_t n, std::uint64_t seed, PartDim* part) {
  Rng rng(seed);
  part->n = n;
  part->mfgr.Allocate(n, 8);
  part->category.Allocate(n, 8);
  part->brand1.Allocate(n, 8);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t m = rng.Uniform(1, 5);
    const std::uint64_t c = m * 10 + rng.Uniform(1, 5);
    const std::uint64_t b = m * 1000 + (c % 10) * 100 + rng.Uniform(1, 40);
    part->mfgr[i] = m;
    part->category[i] = c;
    part->brand1[i] = b;
  }
}

}  // namespace

SsbDatabase SsbDatabase::Generate(double sf, std::uint64_t seed) {
  HEF_CHECK_MSG(sf > 0, "scale factor must be positive");
  SsbDatabase db;
  db.scale_factor = sf;

  GenerateDate(&db.date);

  const auto n_customers = static_cast<std::size_t>(
      std::max(1.0, std::llround(30000.0 * sf) * 1.0));
  const auto n_suppliers = static_cast<std::size_t>(
      std::max(1.0, std::llround(2000.0 * sf) * 1.0));
  // dbgen: parts scale logarithmically — 200k * (1 + floor(log2(sf))).
  const double log_scale = sf >= 1.0 ? std::floor(std::log2(sf)) : 0.0;
  const auto n_parts = static_cast<std::size_t>(
      std::max(1.0, 200000.0 * (1.0 + log_scale) * std::min(1.0, sf)));
  const auto n_lineorder = static_cast<std::size_t>(
      std::max(1.0, std::llround(6000000.0 * sf) * 1.0));

  db.customer.n = n_customers;
  GenerateGeo(n_customers, seed ^ 0xC0FFEE, &db.customer.city,
              &db.customer.nation, &db.customer.region);
  db.supplier.n = n_suppliers;
  GenerateGeo(n_suppliers, seed ^ 0x5A5A5A, &db.supplier.city,
              &db.supplier.nation, &db.supplier.region);
  GeneratePart(n_parts, seed ^ 0x9A97, &db.part);

  LineorderFact& lo = db.lineorder;
  lo.n = n_lineorder;
  lo.orderdate.Allocate(lo.n, 8);
  lo.custkey.Allocate(lo.n, 8);
  lo.suppkey.Allocate(lo.n, 8);
  lo.partkey.Allocate(lo.n, 8);
  lo.quantity.Allocate(lo.n, 8);
  lo.discount.Allocate(lo.n, 8);
  lo.extendedprice.Allocate(lo.n, 8);
  lo.revenue.Allocate(lo.n, 8);
  lo.supplycost.Allocate(lo.n, 8);

  Rng rng(seed ^ 0x11E0DDE5);
  for (std::size_t i = 0; i < lo.n; ++i) {
    const std::uint64_t day = rng.Uniform(0, kDaysInSsb - 1);
    lo.orderdate[i] = db.date.datekey[day];
    lo.custkey[i] = rng.Uniform(1, n_customers);
    lo.suppkey[i] = rng.Uniform(1, n_suppliers);
    lo.partkey[i] = rng.Uniform(1, n_parts);
    const std::uint64_t quantity = rng.Uniform(1, 50);
    const std::uint64_t discount = rng.Uniform(0, 10);
    // Unit price in cents, dbgen-like magnitude (~900..2100).
    const std::uint64_t unit_price = 900 + rng.Uniform(0, 1200);
    const std::uint64_t extendedprice = quantity * unit_price;
    lo.quantity[i] = quantity;
    lo.discount[i] = discount;
    lo.extendedprice[i] = extendedprice;
    lo.revenue[i] = extendedprice * (100 - discount) / 100;
    // Supply cost averages ~60% of price with +-10% jitter.
    lo.supplycost[i] = extendedprice * rng.Uniform(50, 70) / 100;
  }
  return db;
}

std::size_t SsbDatabase::TotalBytes() const {
  auto bytes = [](const Column& c) { return c.capacity() * sizeof(std::uint64_t); };
  std::size_t total = 0;
  total += bytes(date.datekey) + bytes(date.year) + bytes(date.yearmonthnum) +
           bytes(date.weeknuminyear);
  total += bytes(customer.city) + bytes(customer.nation) +
           bytes(customer.region);
  total += bytes(supplier.city) + bytes(supplier.nation) +
           bytes(supplier.region);
  total += bytes(part.mfgr) + bytes(part.category) + bytes(part.brand1);
  total += bytes(lineorder.orderdate) + bytes(lineorder.custkey) +
           bytes(lineorder.suppkey) + bytes(lineorder.partkey) +
           bytes(lineorder.quantity) + bytes(lineorder.discount) +
           bytes(lineorder.extendedprice) + bytes(lineorder.revenue) +
           bytes(lineorder.supplycost);
  if (chunked != nullptr) total += chunked->EncodedBytes();
  return total;
}

}  // namespace hef::ssb
