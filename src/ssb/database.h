// In-memory SSB database: column-store tables plus the deterministic data
// generator (the in-repo substitute for the SSB dbgen binary).
//
// Layout is struct-of-arrays with 64-byte-aligned integer columns — the
// storage model the paper's vectorized pipelines scan. Surrogate keys are
// 1-based and dense (custkey in [1, n_customers]), matching dbgen.

#ifndef HEF_SSB_DATABASE_H_
#define HEF_SSB_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/aligned_buffer.h"
#include "ssb/schema.h"

namespace hef::ssb {

class ChunkedFact;

using Column = AlignedBuffer<std::uint64_t>;

// DATE dimension: one row per calendar day 1992-01-01 .. 1998-12-31.
struct DateDim {
  std::size_t n = 0;
  Column datekey;        // yyyymmdd
  Column year;           // 1992..1998
  Column yearmonthnum;   // yyyymm
  Column weeknuminyear;  // 1..53
};

// CUSTOMER dimension. Row i holds custkey i+1.
struct CustomerDim {
  std::size_t n = 0;
  Column city;    // 0..249
  Column nation;  // 0..24
  Column region;  // 0..4
};

// SUPPLIER dimension. Row i holds suppkey i+1.
struct SupplierDim {
  std::size_t n = 0;
  Column city;
  Column nation;
  Column region;
};

// PART dimension. Row i holds partkey i+1.
struct PartDim {
  std::size_t n = 0;
  Column mfgr;      // 1..5
  Column category;  // 11..55
  Column brand1;    // 1101..5540
};

// LINEORDER fact table (only the columns the SSB queries touch).
struct LineorderFact {
  std::size_t n = 0;
  Column orderdate;      // datekey (yyyymmdd)
  Column custkey;        // 1..customers
  Column suppkey;        // 1..suppliers
  Column partkey;        // 1..parts
  Column quantity;       // 1..50
  Column discount;       // 0..10 (percent)
  Column extendedprice;  // quantity * unit price
  Column revenue;        // extendedprice * (100 - discount) / 100
  Column supplycost;     // per-unit supply cost * quantity
};

struct SsbDatabase {
  // Special members live in database.cc: ChunkedFact is incomplete here.
  SsbDatabase();
  SsbDatabase(SsbDatabase&&) noexcept;
  SsbDatabase& operator=(SsbDatabase&&) noexcept;
  ~SsbDatabase();

  double scale_factor = 0;
  DateDim date;
  CustomerDim customer;
  SupplierDim supplier;
  PartDim part;
  LineorderFact lineorder;

  // Chunked, encoded shadow of the fact table; null until
  // ssb::EnsureChunked(db) builds it (see ssb/chunked_fact.h).
  std::shared_ptr<const ChunkedFact> chunked;

  // Generates a database at scale factor `sf` (SF1 = 6M lineorder rows,
  // 30k customers, 2k suppliers, 200k parts — the dbgen row counts).
  // Deterministic in (sf, seed). Fractional sf (e.g. 0.01) is supported
  // for tests.
  static SsbDatabase Generate(double sf, std::uint64_t seed = 19920101);

  // Approximate resident size of all columns, for logging.
  std::size_t TotalBytes() const;
};

}  // namespace hef::ssb

#endif  // HEF_SSB_DATABASE_H_
