#include "ssb/schema.h"

#include <array>
#include <cstdio>

namespace hef::ssb {

namespace {

constexpr std::array<const char*, kNumRegions> kRegionNames = {
    "AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"};

// 25 nations, five per region, in region-major order. Slot 4 of AMERICA is
// UNITED STATES (code 9) and slot 4 of EUROPE is UNITED KINGDOM (code 19),
// which the Q3.x query definitions rely on.
constexpr std::array<const char*, kNumNations> kNationNames = {
    // AFRICA
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
    // AMERICA
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
    // ASIA
    "INDIA", "INDONESIA", "JAPAN", "CHINA", "VIETNAM",
    // EUROPE
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
    // MIDDLE EAST
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA"};

// Nation name truncated or space-padded to exactly nine characters, as the
// SSB dbgen does for city prefixes.
std::string NationPrefix9(std::uint64_t nation) {
  std::string s = kNationNames[nation];
  s.resize(9, ' ');
  return s;
}

}  // namespace

const char* RegionName(std::uint64_t region) {
  return region < kNumRegions ? kRegionNames[region] : "UNKNOWN";
}

std::string NationName(std::uint64_t nation) {
  return nation < kNumNations ? kNationNames[nation] : "UNKNOWN";
}

std::string CityName(std::uint64_t city) {
  if (city >= kNumCities) return "UNKNOWN";
  return NationPrefix9(NationOfCity(city)) +
         static_cast<char>('0' + city % 10);
}

std::string MfgrName(std::uint64_t mfgr) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "MFGR#%llu",
                static_cast<unsigned long long>(mfgr));
  return buf;
}

std::string CategoryName(std::uint64_t category) {
  return MfgrName(category);
}

std::string BrandName(std::uint64_t brand) {
  // brand = m*1000 + c*100 + b with b in 1..40 -> "MFGR#mcbb".
  char buf[16];
  std::snprintf(buf, sizeof(buf), "MFGR#%llu%02llu",
                static_cast<unsigned long long>(brand / 100),
                static_cast<unsigned long long>(brand % 100));
  return buf;
}

Result<std::uint64_t> RegionCode(const std::string& name) {
  for (std::uint64_t i = 0; i < kNumRegions; ++i) {
    if (name == kRegionNames[i]) return i;
  }
  return Status::InvalidArgument("unknown region '" + name + "'");
}

Result<std::uint64_t> NationCode(const std::string& name) {
  for (std::uint64_t i = 0; i < kNumNations; ++i) {
    if (name == kNationNames[i]) return i;
  }
  return Status::InvalidArgument("unknown nation '" + name + "'");
}

Result<std::uint64_t> CityCode(const std::string& name) {
  if (name.size() != 10) {
    return Status::InvalidArgument("city names are 10 characters: '" + name +
                                   "'");
  }
  for (std::uint64_t nation = 0; nation < kNumNations; ++nation) {
    if (name.compare(0, 9, NationPrefix9(nation)) == 0 &&
        name[9] >= '0' && name[9] <= '9') {
      return nation * 10 + static_cast<std::uint64_t>(name[9] - '0');
    }
  }
  return Status::InvalidArgument("unknown city '" + name + "'");
}

Result<std::uint64_t> MfgrSeriesCode(const std::string& name) {
  unsigned long long code = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "MFGR#%llu%n", &code, &consumed) != 1 ||
      consumed != static_cast<int>(name.size())) {
    return Status::InvalidArgument("malformed MFGR name '" + name + "'");
  }
  return static_cast<std::uint64_t>(code);
}

}  // namespace hef::ssb
