// Star Schema Benchmark schema: dictionary encodings and name mappings.
//
// All SSB attributes HEF touches are dictionary-encoded 64-bit integers
// (the paper: analytics data is primarily integer). The encodings preserve
// the benchmark's hierarchies so every SSB predicate becomes an integer
// comparison:
//
//   region   0..4
//   nation   region * 5 + i            (25 nations, 5 per region)
//   city     nation * 10 + j           (250 cities, 10 per nation)
//   mfgr     m                         (1..5)
//   category m * 10 + c                (c = 1..5  -> "MFGR#mc")
//   brand1   m * 1000 + c * 100 + b    (b = 1..40 -> "MFGR#mcbb")
//
// e.g. "MFGR#2221" encodes to 2221 and BrandToCategory(2221) == 22.

#ifndef HEF_SSB_SCHEMA_H_
#define HEF_SSB_SCHEMA_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace hef::ssb {

inline constexpr int kNumRegions = 5;
inline constexpr int kNumNations = 25;
inline constexpr int kNumCities = 250;
inline constexpr int kDaysInSsb = 2556;  // 1992-01-01 .. 1998-12-31
inline constexpr int kFirstYear = 1992;
inline constexpr int kLastYear = 1998;

// Region codes.
enum Region : std::uint64_t {
  kAfrica = 0,
  kAmerica = 1,
  kAsia = 2,
  kEurope = 3,
  kMiddleEast = 4,
};

const char* RegionName(std::uint64_t region);
std::string NationName(std::uint64_t nation);
// SSB city names are the nation name truncated/padded to 9 characters plus
// a digit, e.g. "UNITED KI1".
std::string CityName(std::uint64_t city);
std::string MfgrName(std::uint64_t mfgr);
std::string CategoryName(std::uint64_t category);
std::string BrandName(std::uint64_t brand);

// Reverse lookups used by query harnesses; return InvalidArgument when the
// name is not part of the schema.
Result<std::uint64_t> RegionCode(const std::string& name);
Result<std::uint64_t> NationCode(const std::string& name);
Result<std::uint64_t> CityCode(const std::string& name);
// "MFGR#12" -> 12 (category) / "MFGR#2221" -> 2221 (brand) / "MFGR#2" -> 2.
Result<std::uint64_t> MfgrSeriesCode(const std::string& name);

inline std::uint64_t NationOfCity(std::uint64_t city) { return city / 10; }
inline std::uint64_t RegionOfNation(std::uint64_t nation) {
  return nation / 5;
}
inline std::uint64_t BrandToCategory(std::uint64_t brand) {
  return brand / 100;
}
inline std::uint64_t CategoryToMfgr(std::uint64_t category) {
  return category / 10;
}

// Well-known codes used by the query definitions (kept symbolic so the
// query code reads like the SQL).
inline constexpr std::uint64_t kNationUnitedStates = 9;    // AMERICA slot 4
inline constexpr std::uint64_t kNationUnitedKingdom = 19;  // EUROPE slot 4
inline constexpr std::uint64_t kCityUnitedKi1 = 191;       // "UNITED KI1"
inline constexpr std::uint64_t kCityUnitedKi5 = 195;       // "UNITED KI5"

}  // namespace hef::ssb

#endif  // HEF_SSB_SCHEMA_H_
