#include "ssb/tbl_loader.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_set>
#include <vector>

namespace hef::ssb {

namespace {

std::string Describe(const std::string& path, std::size_t line) {
  return path + ":" + std::to_string(line);
}

// Parses one "v|v|...|v|" line into `row` (exactly cols fields).
Status ParseLine(const std::string& text, std::size_t cols,
                 const std::string& path, std::size_t line_no,
                 std::vector<std::uint64_t>& row) {
  row.clear();
  const char* p = text.c_str();
  for (std::size_t c = 0; c < cols; ++c) {
    if (*p < '0' || *p > '9') {
      return Status::InvalidArgument(Describe(path, line_no) +
                                     ": expected digit in field " +
                                     std::to_string(c + 1));
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (errno == ERANGE) {
      return Status::InvalidArgument(Describe(path, line_no) +
                                     ": field " + std::to_string(c + 1) +
                                     " out of uint64 range");
    }
    if (end == nullptr || *end != '|') {
      return Status::InvalidArgument(Describe(path, line_no) +
                                     ": field " + std::to_string(c + 1) +
                                     " not terminated by '|'");
    }
    row.push_back(static_cast<std::uint64_t>(v));
    p = end + 1;
  }
  if (*p != '\0') {
    return Status::InvalidArgument(Describe(path, line_no) +
                                   ": trailing data after " +
                                   std::to_string(cols) + " fields");
  }
  return Status::OK();
}

// Counts the non-empty lines of `path` without retaining any of them.
Status CountTblRows(const std::string& path, std::size_t* rows_out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  if (in.bad()) {
    return Status::IoError("read error on " + path + ": " +
                           std::strerror(errno));
  }
  *rows_out = rows;
  return Status::OK();
}

// Streaming load: pass 1 counts rows, the columns are allocated at their
// exact final size, pass 2 parses each line straight into them. Peak
// memory is the resident columns plus one line — the whole-file
// materialization the old loader did made SF 1 (6M rows x 9 columns)
// roughly triple its final footprint during load.
Status LoadTblColumns(const std::string& path,
                      const std::vector<Column*>& cols,
                      std::size_t* n_out) {
  std::size_t rows = 0;
  HEF_RETURN_NOT_OK(CountTblRows(path, &rows));
  for (Column* col : cols) {
    // Same padding the generator uses, so loaded and generated databases
    // are interchangeable for the over-reading SIMD kernels.
    col->Allocate(rows, 8);
  }
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  std::string line;
  std::vector<std::uint64_t> row;
  std::size_t line_no = 0;
  std::size_t filled = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;  // tolerate a trailing blank line
    if (filled == rows) {
      return Status::IoError(Describe(path, line_no) +
                             ": file grew between load passes");
    }
    HEF_RETURN_NOT_OK(ParseLine(line, cols.size(), path, line_no, row));
    for (std::size_t c = 0; c < cols.size(); ++c) {
      (*cols[c])[filled] = row[c];
    }
    ++filled;
  }
  if (in.bad()) {
    return Status::IoError("read error on " + path + ": " +
                           std::strerror(errno));
  }
  if (filled != rows) {
    return Status::IoError(path + ": file shrank between load passes");
  }
  *n_out = rows;
  return Status::OK();
}

Status WriteTblFile(const std::string& path, std::size_t rows,
                    const std::vector<const Column*>& cols) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (const Column* col : cols) {
      std::fprintf(f, "%llu|",
                   static_cast<unsigned long long>((*col)[i]));
    }
    std::fputc('\n', f);
  }
  const bool failed = std::ferror(f) != 0;
  const bool close_failed = std::fclose(f) != 0;
  if (failed || close_failed) {
    return Status::IoError("write error on " + path);
  }
  return Status::OK();
}

Status CheckKeyRange(const Column& keys, std::size_t n, std::size_t dim_n,
                     const char* key_name, const std::string& path) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    if (k < 1 || k > dim_n) {
      return Status::InvalidArgument(
          Describe(path, i + 1) + ": " + key_name + " " +
          std::to_string(k) + " outside dimension [1, " +
          std::to_string(dim_n) + "]");
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteTbl(const SsbDatabase& db, const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           std::strerror(errno));
  }
  {
    const std::string path = dir + "/meta.tbl";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot create " + path + ": " +
                             std::strerror(errno));
    }
    std::fprintf(f, "hef-tbl v1\nsf %.17g\n", db.scale_factor);
    if (std::fclose(f) != 0) {
      return Status::IoError("write error on " + path);
    }
  }
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/date.tbl", db.date.n,
      {&db.date.datekey, &db.date.year, &db.date.yearmonthnum,
       &db.date.weeknuminyear}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/customer.tbl", db.customer.n,
      {&db.customer.city, &db.customer.nation, &db.customer.region}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/supplier.tbl", db.supplier.n,
      {&db.supplier.city, &db.supplier.nation, &db.supplier.region}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/part.tbl", db.part.n,
      {&db.part.mfgr, &db.part.category, &db.part.brand1}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/lineorder.tbl", db.lineorder.n,
      {&db.lineorder.orderdate, &db.lineorder.custkey,
       &db.lineorder.suppkey, &db.lineorder.partkey,
       &db.lineorder.quantity, &db.lineorder.discount,
       &db.lineorder.extendedprice, &db.lineorder.revenue,
       &db.lineorder.supplycost}));
  return Status::OK();
}

Result<SsbDatabase> LoadTblDatabase(const std::string& dir) {
  SsbDatabase db;
  {
    const std::string path = dir + "/meta.tbl";
    std::ifstream in(path);
    if (!in.is_open()) {
      return Status::IoError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    std::string magic;
    std::getline(in, magic);
    if (magic != "hef-tbl v1") {
      return Status::InvalidArgument(Describe(path, 1) +
                                     ": bad magic '" + magic + "'");
    }
    std::string tag;
    double sf = 0;
    if (!(in >> tag >> sf) || tag != "sf" || !(sf >= 0)) {
      return Status::InvalidArgument(Describe(path, 2) +
                                     ": expected 'sf <value>'");
    }
    db.scale_factor = sf;
  }

  {
    const std::string path = dir + "/date.tbl";
    HEF_RETURN_NOT_OK(LoadTblColumns(
        path,
        {&db.date.datekey, &db.date.year, &db.date.yearmonthnum,
         &db.date.weeknuminyear},
        &db.date.n));
    if (db.date.n == 0) {
      return Status::InvalidArgument(path + ": DATE dimension is empty");
    }
  }
  HEF_RETURN_NOT_OK(LoadTblColumns(
      dir + "/customer.tbl",
      {&db.customer.city, &db.customer.nation, &db.customer.region},
      &db.customer.n));
  HEF_RETURN_NOT_OK(LoadTblColumns(
      dir + "/supplier.tbl",
      {&db.supplier.city, &db.supplier.nation, &db.supplier.region},
      &db.supplier.n));
  HEF_RETURN_NOT_OK(LoadTblColumns(
      dir + "/part.tbl", {&db.part.mfgr, &db.part.category, &db.part.brand1},
      &db.part.n));
  {
    const std::string path = dir + "/lineorder.tbl";
    HEF_RETURN_NOT_OK(LoadTblColumns(
        path,
        {&db.lineorder.orderdate, &db.lineorder.custkey,
         &db.lineorder.suppkey, &db.lineorder.partkey,
         &db.lineorder.quantity, &db.lineorder.discount,
         &db.lineorder.extendedprice, &db.lineorder.revenue,
         &db.lineorder.supplycost},
        &db.lineorder.n));

    // Referential integrity: the plan builder indexes dimension columns
    // by fact keys, so a bad key here would become an out-of-bounds read
    // inside a query.
    HEF_RETURN_NOT_OK(CheckKeyRange(db.lineorder.custkey, db.lineorder.n,
                                    db.customer.n, "custkey", path));
    HEF_RETURN_NOT_OK(CheckKeyRange(db.lineorder.suppkey, db.lineorder.n,
                                    db.supplier.n, "suppkey", path));
    HEF_RETURN_NOT_OK(CheckKeyRange(db.lineorder.partkey, db.lineorder.n,
                                    db.part.n, "partkey", path));
    std::unordered_set<std::uint64_t> dates;
    dates.reserve(db.date.n * 2);
    for (std::size_t i = 0; i < db.date.n; ++i) {
      dates.insert(db.date.datekey[i]);
    }
    for (std::size_t i = 0; i < db.lineorder.n; ++i) {
      if (dates.count(db.lineorder.orderdate[i]) == 0) {
        return Status::InvalidArgument(
            Describe(path, i + 1) + ": orderdate " +
            std::to_string(db.lineorder.orderdate[i]) +
            " not present in the DATE dimension");
      }
    }
  }
  return db;
}

}  // namespace hef::ssb
