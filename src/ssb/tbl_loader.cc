#include "ssb/tbl_loader.h"

#include <sys/stat.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <unordered_set>
#include <vector>

namespace hef::ssb {

namespace {

// Column vectors parsed from one .tbl file (column-major so the copy
// into AlignedBuffers is a straight memcpy per column).
using ParsedTable = std::vector<std::vector<std::uint64_t>>;

std::string Describe(const std::string& path, std::size_t line) {
  return path + ":" + std::to_string(line);
}

// Parses one "v|v|...|v|" line into `row` (exactly cols fields).
Status ParseLine(const std::string& text, std::size_t cols,
                 const std::string& path, std::size_t line_no,
                 std::vector<std::uint64_t>& row) {
  row.clear();
  const char* p = text.c_str();
  for (std::size_t c = 0; c < cols; ++c) {
    if (*p < '0' || *p > '9') {
      return Status::InvalidArgument(Describe(path, line_no) +
                                     ": expected digit in field " +
                                     std::to_string(c + 1));
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(p, &end, 10);
    if (errno == ERANGE) {
      return Status::InvalidArgument(Describe(path, line_no) +
                                     ": field " + std::to_string(c + 1) +
                                     " out of uint64 range");
    }
    if (end == nullptr || *end != '|') {
      return Status::InvalidArgument(Describe(path, line_no) +
                                     ": field " + std::to_string(c + 1) +
                                     " not terminated by '|'");
    }
    row.push_back(static_cast<std::uint64_t>(v));
    p = end + 1;
  }
  if (*p != '\0') {
    return Status::InvalidArgument(Describe(path, line_no) +
                                   ": trailing data after " +
                                   std::to_string(cols) + " fields");
  }
  return Status::OK();
}

// Reads `path` into `out` (resized to `cols` column vectors).
Status ReadTblFile(const std::string& path, std::size_t cols,
                   ParsedTable& out) {
  std::ifstream in(path);
  if (!in.is_open()) {
    return Status::IoError("cannot open " + path + ": " +
                           std::strerror(errno));
  }
  out.assign(cols, {});
  std::string line;
  std::vector<std::uint64_t> row;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;  // tolerate a trailing blank line
    HEF_RETURN_NOT_OK(ParseLine(line, cols, path, line_no, row));
    for (std::size_t c = 0; c < cols; ++c) out[c].push_back(row[c]);
  }
  if (in.bad()) {
    return Status::IoError("read error on " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Status WriteTblFile(const std::string& path, std::size_t rows,
                    const std::vector<const Column*>& cols) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot create " + path + ": " +
                           std::strerror(errno));
  }
  for (std::size_t i = 0; i < rows; ++i) {
    for (const Column* col : cols) {
      std::fprintf(f, "%llu|",
                   static_cast<unsigned long long>((*col)[i]));
    }
    std::fputc('\n', f);
  }
  const bool failed = std::ferror(f) != 0;
  const bool close_failed = std::fclose(f) != 0;
  if (failed || close_failed) {
    return Status::IoError("write error on " + path);
  }
  return Status::OK();
}

void CopyColumn(const std::vector<std::uint64_t>& src, Column& dst) {
  // Same padding the generator uses, so loaded and generated databases
  // are interchangeable for the over-reading SIMD kernels.
  dst.Allocate(src.size(), 8);
  std::memcpy(dst.data(), src.data(), src.size() * sizeof(std::uint64_t));
}

Status CheckKeyRange(const Column& keys, std::size_t n, std::size_t dim_n,
                     const char* key_name, const std::string& path) {
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t k = keys[i];
    if (k < 1 || k > dim_n) {
      return Status::InvalidArgument(
          Describe(path, i + 1) + ": " + key_name + " " +
          std::to_string(k) + " outside dimension [1, " +
          std::to_string(dim_n) + "]");
    }
  }
  return Status::OK();
}

}  // namespace

Status WriteTbl(const SsbDatabase& db, const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create directory " + dir + ": " +
                           std::strerror(errno));
  }
  {
    const std::string path = dir + "/meta.tbl";
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot create " + path + ": " +
                             std::strerror(errno));
    }
    std::fprintf(f, "hef-tbl v1\nsf %.17g\n", db.scale_factor);
    if (std::fclose(f) != 0) {
      return Status::IoError("write error on " + path);
    }
  }
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/date.tbl", db.date.n,
      {&db.date.datekey, &db.date.year, &db.date.yearmonthnum,
       &db.date.weeknuminyear}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/customer.tbl", db.customer.n,
      {&db.customer.city, &db.customer.nation, &db.customer.region}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/supplier.tbl", db.supplier.n,
      {&db.supplier.city, &db.supplier.nation, &db.supplier.region}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/part.tbl", db.part.n,
      {&db.part.mfgr, &db.part.category, &db.part.brand1}));
  HEF_RETURN_NOT_OK(WriteTblFile(
      dir + "/lineorder.tbl", db.lineorder.n,
      {&db.lineorder.orderdate, &db.lineorder.custkey,
       &db.lineorder.suppkey, &db.lineorder.partkey,
       &db.lineorder.quantity, &db.lineorder.discount,
       &db.lineorder.extendedprice, &db.lineorder.revenue,
       &db.lineorder.supplycost}));
  return Status::OK();
}

Result<SsbDatabase> LoadTblDatabase(const std::string& dir) {
  SsbDatabase db;
  {
    const std::string path = dir + "/meta.tbl";
    std::ifstream in(path);
    if (!in.is_open()) {
      return Status::IoError("cannot open " + path + ": " +
                             std::strerror(errno));
    }
    std::string magic;
    std::getline(in, magic);
    if (magic != "hef-tbl v1") {
      return Status::InvalidArgument(Describe(path, 1) +
                                     ": bad magic '" + magic + "'");
    }
    std::string tag;
    double sf = 0;
    if (!(in >> tag >> sf) || tag != "sf" || !(sf >= 0)) {
      return Status::InvalidArgument(Describe(path, 2) +
                                     ": expected 'sf <value>'");
    }
    db.scale_factor = sf;
  }

  ParsedTable t;
  {
    const std::string path = dir + "/date.tbl";
    HEF_RETURN_NOT_OK(ReadTblFile(path, 4, t));
    db.date.n = t[0].size();
    if (db.date.n == 0) {
      return Status::InvalidArgument(path + ": DATE dimension is empty");
    }
    CopyColumn(t[0], db.date.datekey);
    CopyColumn(t[1], db.date.year);
    CopyColumn(t[2], db.date.yearmonthnum);
    CopyColumn(t[3], db.date.weeknuminyear);
  }
  {
    HEF_RETURN_NOT_OK(ReadTblFile(dir + "/customer.tbl", 3, t));
    db.customer.n = t[0].size();
    CopyColumn(t[0], db.customer.city);
    CopyColumn(t[1], db.customer.nation);
    CopyColumn(t[2], db.customer.region);
  }
  {
    HEF_RETURN_NOT_OK(ReadTblFile(dir + "/supplier.tbl", 3, t));
    db.supplier.n = t[0].size();
    CopyColumn(t[0], db.supplier.city);
    CopyColumn(t[1], db.supplier.nation);
    CopyColumn(t[2], db.supplier.region);
  }
  {
    HEF_RETURN_NOT_OK(ReadTblFile(dir + "/part.tbl", 3, t));
    db.part.n = t[0].size();
    CopyColumn(t[0], db.part.mfgr);
    CopyColumn(t[1], db.part.category);
    CopyColumn(t[2], db.part.brand1);
  }
  {
    const std::string path = dir + "/lineorder.tbl";
    HEF_RETURN_NOT_OK(ReadTblFile(path, 9, t));
    db.lineorder.n = t[0].size();
    CopyColumn(t[0], db.lineorder.orderdate);
    CopyColumn(t[1], db.lineorder.custkey);
    CopyColumn(t[2], db.lineorder.suppkey);
    CopyColumn(t[3], db.lineorder.partkey);
    CopyColumn(t[4], db.lineorder.quantity);
    CopyColumn(t[5], db.lineorder.discount);
    CopyColumn(t[6], db.lineorder.extendedprice);
    CopyColumn(t[7], db.lineorder.revenue);
    CopyColumn(t[8], db.lineorder.supplycost);

    // Referential integrity: the plan builder indexes dimension columns
    // by fact keys, so a bad key here would become an out-of-bounds read
    // inside a query.
    HEF_RETURN_NOT_OK(CheckKeyRange(db.lineorder.custkey, db.lineorder.n,
                                    db.customer.n, "custkey", path));
    HEF_RETURN_NOT_OK(CheckKeyRange(db.lineorder.suppkey, db.lineorder.n,
                                    db.supplier.n, "suppkey", path));
    HEF_RETURN_NOT_OK(CheckKeyRange(db.lineorder.partkey, db.lineorder.n,
                                    db.part.n, "partkey", path));
    std::unordered_set<std::uint64_t> dates;
    dates.reserve(db.date.n * 2);
    for (std::size_t i = 0; i < db.date.n; ++i) {
      dates.insert(db.date.datekey[i]);
    }
    for (std::size_t i = 0; i < db.lineorder.n; ++i) {
      if (dates.count(db.lineorder.orderdate[i]) == 0) {
        return Status::InvalidArgument(
            Describe(path, i + 1) + ": orderdate " +
            std::to_string(db.lineorder.orderdate[i]) +
            " not present in the DATE dimension");
      }
    }
  }
  return db;
}

}  // namespace hef::ssb
