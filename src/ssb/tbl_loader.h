// .tbl import/export for the SSB database — the serving-path loader.
//
// A server that boots from data files must reject a truncated or corrupt
// dump with an error, not abort the process, so everything here speaks
// Status/Result. The format is dbgen-shaped (one <table>.tbl per table,
// '|'-separated fields, trailing '|') but numeric: fields are the uint64
// column values of ssb/database.h, not dbgen's strings — Generate() +
// WriteTbl() + LoadTblDatabase() round-trips bit-identically.
//
// LoadTblDatabase validates referential integrity before handing the
// database to an engine: fact foreign keys must be dense 1-based keys
// inside their dimension's row count and every orderdate must exist in
// the DATE dimension, because the plan builder indexes dimension arrays
// by these keys and an out-of-range key would otherwise become an
// out-of-bounds read deep inside a query.

#ifndef HEF_SSB_TBL_LOADER_H_
#define HEF_SSB_TBL_LOADER_H_

#include <string>

#include "common/status.h"
#include "ssb/database.h"

namespace hef::ssb {

// Writes `db` into `dir` (created if missing) as meta.tbl, date.tbl,
// customer.tbl, supplier.tbl, part.tbl and lineorder.tbl. IoError when a
// file cannot be created or written.
Status WriteTbl(const SsbDatabase& db, const std::string& dir);

// Loads a database previously written by WriteTbl. IoError for a missing
// or unreadable file, InvalidArgument (naming file and line) for a
// malformed row or a failed integrity check.
Result<SsbDatabase> LoadTblDatabase(const std::string& dir);

}  // namespace hef::ssb

#endif  // HEF_SSB_TBL_LOADER_H_
