// Chunked column storage: per-chunk statistics and encoded payloads.
//
// A column is split into fixed-size chunks (kDefaultChunkRows rows, a
// multiple of the engine block size so one pipeline block never straddles
// chunks). Each chunk is encoded independently — plain, dictionary, or
// frame-of-reference + bit-packing — and carries a zone map (min/max over
// non-null values plus a null count) and a small equal-width histogram.
// The engine's scan-pruning pass (engine/scan.h) consults both to skip
// whole chunks before morsel dispatch.
//
// Null semantics: this storage layer reserves kNullValue (all ones) as the
// null sentinel. Sentinels round-trip bit-exactly through every encoding;
// they are excluded from the zone map's min/max and from the histogram,
// and counted in ZoneMap::null_count instead. Pruning stays sound against
// engines that compare sentinels as plain integers: a predicate whose
// upper bound reaches kNullValue conservatively matches any chunk that
// holds nulls.

#ifndef HEF_STORAGE_CHUNK_H_
#define HEF_STORAGE_CHUNK_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "common/aligned_buffer.h"

namespace hef::storage {

// Rows per chunk: 16 default engine blocks, 512 KiB of uncompressed
// 64-bit values.
inline constexpr std::size_t kDefaultChunkRows = 65536;

// The storage layer's null sentinel (see file comment).
inline constexpr std::uint64_t kNullValue = ~0ULL;

enum class Encoding : std::uint8_t {
  kPlain,  // raw 64-bit values
  kDict,   // bit-packed codes into a sorted per-chunk dictionary
  kFor,    // frame-of-reference: bit-packed deltas from the chunk minimum
};

const char* EncodingName(Encoding encoding);

// Packed widths are restricted to divisors of 64 so a value never
// straddles a word boundary: both the SIMD unpack kernel (one gather, one
// variable shift, one mask — no two-word splice) and its HID template
// stay honest. Width 0 marks a single-value chunk (no payload at all).
inline constexpr std::array<std::uint8_t, 7> kPackedWidths = {0,  1,  2, 4,
                                                              8, 16, 32};

// Smallest packed width that can represent values in [0, range], or 64
// when the range needs more than 32 bits.
std::uint8_t PackedWidthFor(std::uint64_t range);

// Min/max over a chunk's non-null values plus the null count. A chunk of
// nothing but nulls keeps the initial min > max state.
struct ZoneMap {
  std::uint64_t min = kNullValue;
  std::uint64_t max = 0;
  std::uint64_t null_count = 0;

  bool null_free() const { return null_count == 0; }
  bool all_null() const { return min > max; }

  void Observe(std::uint64_t v) {
    if (v == kNullValue) {
      ++null_count;
      return;
    }
    if (v < min) min = v;
    if (v > max) max = v;
  }

  // May any row of the chunk satisfy lo <= value <= hi under plain
  // unsigned comparison? Sentinels compare as kNullValue, so a predicate
  // reaching it must keep any null-bearing chunk alive.
  bool MayContainRange(std::uint64_t lo, std::uint64_t hi) const {
    if (null_count > 0 && hi >= kNullValue) return true;
    if (all_null()) return false;
    return lo <= max && hi >= min;
  }
};

// Equal-width histogram over the zone map's [min, max] span (non-null
// values only). Refines the zone map: a predicate range that only covers
// empty buckets proves the chunk dead even though [min, max] overlaps.
struct EqualWidthHistogram {
  static constexpr int kBuckets = 16;

  std::uint64_t base = 0;         // == zone.min at build time
  std::uint64_t bucket_width = 1; // (max - min) / kBuckets + 1
  std::array<std::uint32_t, kBuckets> counts{};

  void Reset(std::uint64_t min, std::uint64_t max) {
    base = min;
    bucket_width = max >= min ? (max - min) / kBuckets + 1 : 1;
    counts.fill(0);
  }

  int BucketOf(std::uint64_t v) const {
    return static_cast<int>((v - base) / bucket_width);
  }

  void Observe(std::uint64_t v) { ++counts[BucketOf(v)]; }

  // Any non-empty bucket inside [lo, hi]? Callers clamp [lo, hi] to the
  // zone map's span first (MayContainRange below does).
  bool AnyInRange(std::uint64_t lo, std::uint64_t hi) const {
    const int b_lo = BucketOf(lo);
    const int b_hi = BucketOf(hi);
    for (int b = b_lo; b <= b_hi && b < kBuckets; ++b) {
      if (counts[b] != 0) return true;
    }
    return false;
  }
};

// One encoded chunk. `words` holds the payload: raw values (kPlain),
// bit-packed dictionary codes (kDict), or bit-packed deltas from
// `reference` (kFor). Width 0 means every non-payload value equals
// `reference` (kFor) or dict[0] (kDict) and `words` is empty.
struct ColumnChunk {
  Encoding encoding = Encoding::kPlain;
  std::uint32_t rows = 0;
  std::uint8_t width = 64;     // packed bit width; 64 = unpacked
  std::uint64_t reference = 0; // kFor base
  ZoneMap zone;
  EqualWidthHistogram hist;
  AlignedBuffer<std::uint64_t> words;
  AlignedBuffer<std::uint64_t> dict; // kDict only, sorted ascending

  // Zone map + histogram verdict for a conjunctive range predicate.
  bool MayContainRange(std::uint64_t lo, std::uint64_t hi) const {
    if (!zone.MayContainRange(lo, hi)) return false;
    if (zone.null_count > 0 && hi >= kNullValue) return true;
    const std::uint64_t c_lo = lo < zone.min ? zone.min : lo;
    const std::uint64_t c_hi = hi > zone.max ? zone.max : hi;
    return hist.AnyInRange(c_lo, c_hi);
  }

  std::size_t EncodedBytes() const {
    return words.capacity() * sizeof(std::uint64_t) +
           dict.capacity() * sizeof(std::uint64_t) + sizeof(ColumnChunk) -
           2 * sizeof(AlignedBuffer<std::uint64_t>);
  }
};

}  // namespace hef::storage

#endif  // HEF_STORAGE_CHUNK_H_
