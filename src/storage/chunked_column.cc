#include "storage/chunked_column.h"

#include <algorithm>
#include <cstring>

#include "common/macros.h"

namespace hef::storage {
namespace {

// Decodes rows [first, first + count) of one chunk.
void DecodeChunkRange(const ColumnChunk& chunk, const HybridConfig& cfg,
                      std::size_t first, std::size_t count,
                      DecodeScratch& scratch, std::uint64_t* out) {
  HEF_DCHECK(first + count <= chunk.rows);
  switch (chunk.encoding) {
    case Encoding::kPlain:
      std::memcpy(out, chunk.words.data() + first,
                  count * sizeof(std::uint64_t));
      return;
    case Encoding::kFor:
      if (chunk.width == 0) {
        for (std::size_t i = 0; i < count; ++i) out[i] = chunk.reference;
        return;
      }
      scratch.EnsureCapacity(count);
      UnpackBitsArray(cfg, chunk.words.data(), chunk.width, first,
                      scratch.iota(), scratch.stage(), count);
      ForAddArray(cfg, chunk.reference, scratch.stage(), out, count);
      return;
    case Encoding::kDict:
      if (chunk.width == 0) {
        for (std::size_t i = 0; i < count; ++i) out[i] = chunk.dict[0];
        return;
      }
      scratch.EnsureCapacity(count);
      UnpackBitsArray(cfg, chunk.words.data(), chunk.width, first,
                      scratch.iota(), scratch.stage(), count);
      DictGatherArray(cfg, chunk.dict.data(), scratch.stage(), out, count);
      return;
  }
  HEF_CHECK_MSG(false, "unreachable encoding %d",
                static_cast<int>(chunk.encoding));
}

}  // namespace

ChunkedColumn ChunkedColumn::Encode(const std::uint64_t* values,
                                    std::size_t n, std::size_t chunk_rows,
                                    EncodingPolicy policy) {
  HEF_CHECK(chunk_rows > 0);
  ChunkedColumn column;
  column.size_ = n;
  column.chunk_rows_ = chunk_rows;
  column.chunks_.reserve((n + chunk_rows - 1) / chunk_rows);
  for (std::size_t begin = 0; begin < n; begin += chunk_rows) {
    const std::size_t rows = std::min(chunk_rows, n - begin);
    column.chunks_.push_back(EncodeChunk(values + begin, rows, policy));
  }
  return column;
}

void ChunkedColumn::DecodeRange(const HybridConfig& cfg, std::size_t begin,
                                std::size_t count, DecodeScratch& scratch,
                                std::uint64_t* out) const {
  HEF_CHECK_MSG(begin + count <= size_,
                "decode range [%zu, %zu) exceeds column size %zu", begin,
                begin + count, size_);
  while (count > 0) {
    const std::size_t c = begin / chunk_rows_;
    const std::size_t first = begin - c * chunk_rows_;
    const std::size_t take = std::min(count, chunk_rows_ - first);
    DecodeChunkRange(chunks_[c], cfg, first, take, scratch, out);
    begin += take;
    count -= take;
    out += take;
  }
}

std::size_t ChunkedColumn::EncodedBytes() const {
  std::size_t bytes = 0;
  for (const ColumnChunk& chunk : chunks_) {
    bytes += chunk.EncodedBytes();
  }
  return bytes;
}

}  // namespace hef::storage
