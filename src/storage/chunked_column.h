// A column stored as independently encoded fixed-size chunks.

#ifndef HEF_STORAGE_CHUNKED_COLUMN_H_
#define HEF_STORAGE_CHUNKED_COLUMN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hybrid/hybrid_config.h"
#include "storage/chunk.h"
#include "storage/decode.h"
#include "storage/encoding.h"

namespace hef::storage {

class ChunkedColumn {
 public:
  ChunkedColumn() = default;

  // Encodes values[0..n) into chunks of chunk_rows values each (the last
  // chunk may be short). chunk_rows must be > 0.
  static ChunkedColumn Encode(const std::uint64_t* values, std::size_t n,
                              std::size_t chunk_rows, EncodingPolicy policy);

  std::size_t size() const { return size_; }
  std::size_t chunk_rows() const { return chunk_rows_; }
  std::size_t num_chunks() const { return chunks_.size(); }
  const ColumnChunk& chunk(std::size_t c) const { return chunks_[c]; }

  // Decodes rows [begin, begin + count) into out, crossing chunk
  // boundaries as needed. `scratch` supplies the iota stream and staging
  // buffer; it must not be shared across threads.
  void DecodeRange(const HybridConfig& cfg, std::size_t begin,
                   std::size_t count, DecodeScratch& scratch,
                   std::uint64_t* out) const;

  // Payload bytes actually held (packed words + dictionaries + chunk
  // metadata) vs. the flat 8-bytes-per-row layout.
  std::size_t EncodedBytes() const;
  std::size_t PlainBytes() const { return size_ * sizeof(std::uint64_t); }

 private:
  std::size_t size_ = 0;
  std::size_t chunk_rows_ = kDefaultChunkRows;
  std::vector<ColumnChunk> chunks_;
};

}  // namespace hef::storage

#endif  // HEF_STORAGE_CHUNKED_COLUMN_H_
