#include "storage/decode.h"

#include "common/macros.h"
#include "hybrid/hybrid_grid.h"
#include "storage/chunk.h"

namespace hef::storage {

namespace {

// Map kernel: out[i] = (words[(in[i]*width + bit0) >> 6]
//                       >> ((in[i]*width + bit0) & 63)) & mask.
// The input stream is the iota indices; width/bit0/mask are broadcast
// constants. Mirrors examples/templates/unpack_bits.hid.
struct UnpackBitsKernel {
  const std::uint64_t* words = nullptr;
  std::uint64_t width = 0;
  std::uint64_t bit0 = 0;
  std::uint64_t mask = 0;

  template <typename B>
  struct State {
    typename B::Reg v;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.v = B::LoadU(in);
  }
  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    const auto off =
        B::Add(B::Mul(st.v, B::Set1(width)), B::Set1(bit0));
    const auto word = B::Gather(words, B::template Srli<6>(off));
    st.v = B::And(B::SrlVar(word, B::And(off, B::Set1(63))), B::Set1(mask));
  }
  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.v);
  }
};

// Map kernel: out[i] = in[i] + base. Mirrors examples/templates/for_add.hid.
struct ForAddKernel {
  std::uint64_t base = 0;

  template <typename B>
  struct State {
    typename B::Reg v;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.v = B::LoadU(in);
  }
  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    st.v = B::Add(st.v, B::Set1(base));
  }
  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.v);
  }
};

// Map kernel: out[i] = dict[in[i]]. Mirrors
// examples/templates/dict_gather.hid.
struct DictGatherKernel {
  const std::uint64_t* dict = nullptr;

  template <typename B>
  struct State {
    typename B::Reg v;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.v = B::LoadU(in);
  }
  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    st.v = B::Gather(dict, st.v);
  }
  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.v);
  }
};

using UnpackBitsGrid = HybridGrid<UnpackBitsKernel, /*MaxV=*/2, /*MaxS=*/4,
                                  /*MaxP=*/3>;
using ForAddGrid = HybridGrid<ForAddKernel, /*MaxV=*/2, /*MaxS=*/4,
                              /*MaxP=*/3>;
using DictGatherGrid = HybridGrid<DictGatherKernel, /*MaxV=*/2, /*MaxS=*/4,
                                  /*MaxP=*/3>;

}  // namespace

void DecodeScratch::EnsureCapacity(std::size_t n) {
  if (iota_.size() >= n) return;
  iota_.Allocate(n, /*padding_elems=*/kCacheLineBytes / sizeof(std::uint64_t));
  stage_.Allocate(n, /*padding_elems=*/kCacheLineBytes / sizeof(std::uint64_t));
  for (std::size_t i = 0; i < n; ++i) {
    iota_[i] = i;
  }
}

void UnpackBitsArray(const HybridConfig& cfg, const std::uint64_t* words,
                     std::uint8_t width, std::size_t first,
                     const std::uint64_t* idx, std::uint64_t* out,
                     std::size_t n) {
  HEF_DCHECK(width > 0 && width <= 32 && 64 % width == 0);
  UnpackBitsKernel kernel;
  kernel.words = words;
  kernel.width = width;
  kernel.bit0 = first * width;
  kernel.mask = (1ULL << width) - 1;
  UnpackBitsGrid::Run(cfg, kernel, idx, out, n);
}

void ForAddArray(const HybridConfig& cfg, std::uint64_t base,
                 const std::uint64_t* in, std::uint64_t* out, std::size_t n) {
  ForAddKernel kernel;
  kernel.base = base;
  ForAddGrid::Run(cfg, kernel, in, out, n);
}

void DictGatherArray(const HybridConfig& cfg, const std::uint64_t* dict,
                     const std::uint64_t* in, std::uint64_t* out,
                     std::size_t n) {
  DictGatherKernel kernel;
  kernel.dict = dict;
  DictGatherGrid::Run(cfg, kernel, in, out, n);
}

const std::vector<HybridConfig>& UnpackBitsSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(UnpackBitsGrid::Supported());
  return *configs;
}

const std::vector<HybridConfig>& ForAddSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(ForAddGrid::Supported());
  return *configs;
}

const std::vector<HybridConfig>& DictGatherSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(DictGatherGrid::Supported());
  return *configs;
}

std::vector<OpClass> UnpackBitsKernelOps() {
  // SrlVar shares the shift pipe with hi_srli, so it reports as
  // kShiftRight in the port model.
  return {OpClass::kLoad,       OpClass::kMul,  OpClass::kAdd,
          OpClass::kShiftRight, OpClass::kGather, OpClass::kShiftRight,
          OpClass::kAnd,        OpClass::kAnd,  OpClass::kStore};
}

std::vector<OpClass> ForAddKernelOps() {
  return {OpClass::kLoad, OpClass::kAdd, OpClass::kStore};
}

std::vector<OpClass> DictGatherKernelOps() {
  return {OpClass::kLoad, OpClass::kGather, OpClass::kStore};
}

}  // namespace hef::storage
