// Chunk decode primitives as hybrid (v, s, p) map kernels.
//
// The three decode steps — bit-unpack, frame-of-reference add, dictionary
// gather — are each one MapKernel over a contiguous index stream, so they
// lower to scalar/AVX2/AVX-512 through the same HybridRunner machinery as
// the pipeline gather, and the tuner can walk their (v, s, p) grids. The
// matching HID operator templates live in examples/templates/
// {unpack_bits,for_add,dict_gather}.hid so the translator, verifier, and
// dependence prover cover the same op sequences.
//
// UnpackBits reads values packed at a width from kPackedWidths; because
// widths divide 64, each value lives in exactly one word and decode is one
// gather + one variable shift + one mask per lane — no cross-word splice.

#ifndef HEF_STORAGE_DECODE_H_
#define HEF_STORAGE_DECODE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/aligned_buffer.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef::storage {

// Reusable per-thread buffers for DecodeRange: a 0,1,2,... index stream
// feeding the unpack kernel and a staging buffer between the unpack and
// dict-gather/FoR-add passes. Never shared across threads.
class DecodeScratch {
 public:
  // Grows (never shrinks) both buffers to hold n elements and keeps
  // iota[i] == i.
  void EnsureCapacity(std::size_t n);

  const std::uint64_t* iota() const { return iota_.data(); }
  std::uint64_t* stage() { return stage_.data(); }
  std::size_t capacity() const { return iota_.size(); }

 private:
  AlignedBuffer<std::uint64_t> iota_;
  AlignedBuffer<std::uint64_t> stage_;
};

// out[i] = (words[((first + i) * width) >> 6] >> (((first + i) * width) & 63))
//          & (2^width - 1), for i in [0, n).
// `idx` must be the 0,1,2,... stream (DecodeScratch::iota); `first` is the
// chunk-local index of the first value to unpack. width must be a nonzero
// member of kPackedWidths.
void UnpackBitsArray(const HybridConfig& cfg, const std::uint64_t* words,
                     std::uint8_t width, std::size_t first,
                     const std::uint64_t* idx, std::uint64_t* out,
                     std::size_t n);

// out[i] = in[i] + base — the frame-of-reference reconstruction.
void ForAddArray(const HybridConfig& cfg, std::uint64_t base,
                 const std::uint64_t* in, std::uint64_t* out, std::size_t n);

// out[i] = dict[in[i]] — dictionary code materialization.
void DictGatherArray(const HybridConfig& cfg, const std::uint64_t* dict,
                     const std::uint64_t* in, std::uint64_t* out,
                     std::size_t n);

// All (v, s, p) coordinates precompiled for each decode kernel.
const std::vector<HybridConfig>& UnpackBitsSupportedConfigs();
const std::vector<HybridConfig>& ForAddSupportedConfigs();
const std::vector<HybridConfig>& DictGatherSupportedConfigs();

// Op mixes for the candidate generator / port model / pressure check.
std::vector<OpClass> UnpackBitsKernelOps();
std::vector<OpClass> ForAddKernelOps();
std::vector<OpClass> DictGatherKernelOps();

// Live values / constants of the widest decode kernel (unpack_bits), for
// the register-pressure admission check.
inline constexpr int kUnpackBitsLiveValues = 3;
inline constexpr int kUnpackBitsConstants = 3;  // width, bit0, mask

}  // namespace hef::storage

#endif  // HEF_STORAGE_DECODE_H_
