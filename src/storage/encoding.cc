#include "storage/encoding.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "common/macros.h"

namespace hef::storage {
namespace {

// Projected payload bytes for each candidate encoding. ~0 marks "cannot
// represent this chunk".
constexpr std::size_t kInvalidBytes = ~std::size_t{0};

std::size_t ForBytes(std::uint8_t width, std::size_t n) {
  if (width > 32) return kInvalidBytes;
  return PackedWords(n, width) * sizeof(std::uint64_t);
}

std::size_t DictBytes(std::uint8_t width, std::size_t n,
                      std::size_t distinct) {
  if (distinct == 0 || distinct > kDictDistinctCap || width > 32) {
    return kInvalidBytes;
  }
  return PackedWords(n, width) * sizeof(std::uint64_t) +
         distinct * sizeof(std::uint64_t);
}

void PackWith(const std::uint64_t* values, std::size_t n, std::uint8_t width,
              std::uint64_t* out, std::uint64_t (*code)(std::uint64_t,
                                                        std::uint64_t),
              std::uint64_t arg) {
  const std::size_t per_word = 64 / width;
  for (std::size_t i = 0; i < n; ++i) {
    out[i / per_word] |= code(values[i], arg)
                         << (i % per_word) * width;
  }
}

void EncodePlain(const std::uint64_t* values, std::size_t n,
                 ColumnChunk* chunk) {
  chunk->encoding = Encoding::kPlain;
  chunk->width = 64;
  chunk->words.Allocate(n);
  std::memcpy(chunk->words.data(), values, n * sizeof(std::uint64_t));
}

void EncodeFor(const std::uint64_t* values, std::size_t n, std::uint64_t base,
               std::uint8_t width, ColumnChunk* chunk) {
  chunk->encoding = Encoding::kFor;
  chunk->width = width;
  chunk->reference = base;
  if (width == 0) return;  // single-value chunk: no payload
  chunk->words.Allocate(PackedWords(n, width));
  PackWith(
      values, n, width, chunk->words.data(),
      [](std::uint64_t v, std::uint64_t b) { return v - b; }, base);
}

void EncodeDict(const std::uint64_t* values, std::size_t n,
                const std::vector<std::uint64_t>& dict, std::uint8_t width,
                ColumnChunk* chunk) {
  chunk->encoding = Encoding::kDict;
  chunk->width = width;
  chunk->dict.Allocate(dict.size());
  std::memcpy(chunk->dict.data(), dict.data(),
              dict.size() * sizeof(std::uint64_t));
  if (width == 0) return;
  chunk->words.Allocate(PackedWords(n, width));
  const std::size_t per_word = 64 / width;
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t code = static_cast<std::uint64_t>(
        std::lower_bound(dict.begin(), dict.end(), values[i]) - dict.begin());
    chunk->words[i / per_word] |= code << (i % per_word) * width;
  }
}

}  // namespace

const char* EncodingName(Encoding encoding) {
  switch (encoding) {
    case Encoding::kPlain:
      return "plain";
    case Encoding::kDict:
      return "dict";
    case Encoding::kFor:
      return "for";
  }
  return "unknown";
}

const char* EncodingPolicyName(EncodingPolicy policy) {
  switch (policy) {
    case EncodingPolicy::kAuto:
      return "auto";
    case EncodingPolicy::kPlain:
      return "plain";
    case EncodingPolicy::kDict:
      return "dict";
    case EncodingPolicy::kFor:
      return "for";
  }
  return "unknown";
}

bool EncodingPolicyByName(const char* name, EncodingPolicy* out) {
  if (std::strcmp(name, "auto") == 0) {
    *out = EncodingPolicy::kAuto;
  } else if (std::strcmp(name, "plain") == 0) {
    *out = EncodingPolicy::kPlain;
  } else if (std::strcmp(name, "dict") == 0) {
    *out = EncodingPolicy::kDict;
  } else if (std::strcmp(name, "for") == 0) {
    *out = EncodingPolicy::kFor;
  } else {
    return false;
  }
  return true;
}

std::uint8_t PackedWidthFor(std::uint64_t range) {
  if (range == 0) return 0;
  for (std::uint8_t width : kPackedWidths) {
    if (width > 0 && range >> width == 0) return width;
  }
  return 64;
}

void PackBits(const std::uint64_t* values, std::size_t n, std::uint8_t width,
              std::uint64_t* out) {
  HEF_CHECK(width > 0 && width <= 32 && 64 % width == 0);
  PackWith(
      values, n, width, out,
      [](std::uint64_t v, std::uint64_t) { return v; }, 0);
}

ColumnChunk EncodeChunk(const std::uint64_t* values, std::size_t n,
                        EncodingPolicy policy) {
  HEF_CHECK(n > 0);
  ColumnChunk chunk;
  chunk.rows = static_cast<std::uint32_t>(n);

  // Pass 1: statistics. The zone map tracks non-null values only; the
  // FoR frame must cover sentinels too so nulls round-trip bit-exactly.
  std::uint64_t min_all = values[0];
  std::uint64_t max_all = values[0];
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t v = values[i];
    chunk.zone.Observe(v);
    if (v < min_all) min_all = v;
    if (v > max_all) max_all = v;
  }
  if (!chunk.zone.all_null()) {
    chunk.hist.Reset(chunk.zone.min, chunk.zone.max);
    for (std::size_t i = 0; i < n; ++i) {
      if (values[i] != kNullValue) chunk.hist.Observe(values[i]);
    }
  }

  const std::uint8_t for_width = PackedWidthFor(max_all - min_all);
  const std::size_t for_bytes = ForBytes(for_width, n);

  // Dictionary candidate: sort+unique a copy, abandon past the cap.
  std::vector<std::uint64_t> dict(values, values + n);
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  const std::uint8_t dict_width =
      PackedWidthFor(dict.empty() ? 0 : dict.size() - 1);
  const std::size_t dict_bytes = DictBytes(dict_width, n, dict.size());

  Encoding choice = Encoding::kPlain;
  switch (policy) {
    case EncodingPolicy::kPlain:
      break;
    case EncodingPolicy::kFor:
      if (for_bytes != kInvalidBytes) choice = Encoding::kFor;
      break;
    case EncodingPolicy::kDict:
      if (dict_bytes != kInvalidBytes) choice = Encoding::kDict;
      break;
    case EncodingPolicy::kAuto: {
      // Cheapest payload wins; FoR beats dict on ties (one decode pass,
      // no dictionary indirection), anything beats plain on ties.
      const std::size_t plain_bytes = n * sizeof(std::uint64_t);
      std::size_t best = plain_bytes;
      if (dict_bytes != kInvalidBytes && dict_bytes < best) {
        choice = Encoding::kDict;
        best = dict_bytes;
      }
      if (for_bytes != kInvalidBytes && for_bytes <= best) {
        choice = Encoding::kFor;
      }
      break;
    }
  }

  switch (choice) {
    case Encoding::kPlain:
      EncodePlain(values, n, &chunk);
      break;
    case Encoding::kFor:
      EncodeFor(values, n, min_all, for_width, &chunk);
      break;
    case Encoding::kDict:
      EncodeDict(values, n, dict, dict_width, &chunk);
      break;
  }
  return chunk;
}

}  // namespace hef::storage
