// Per-chunk encoding selection and packing.
//
// EncodeChunk builds one ColumnChunk from a raw span of 64-bit values:
// it collects the zone map + histogram in a first pass, then picks the
// cheapest of {plain, dict, FoR} by projected payload size (kAuto) or
// honours a forced policy, and bit-packs the payload. Decode lives in
// decode.h; this header is pure scalar build-time code.

#ifndef HEF_STORAGE_ENCODING_H_
#define HEF_STORAGE_ENCODING_H_

#include <cstddef>
#include <cstdint>

#include "storage/chunk.h"

namespace hef::storage {

// Forced or automatic encoding choice. kAuto picks per chunk by stats;
// the forced policies fall back to kPlain when the requested encoding
// cannot represent the chunk (e.g. kFor on a >32-bit range).
enum class EncodingPolicy : std::uint8_t { kAuto, kPlain, kDict, kFor };

const char* EncodingPolicyName(EncodingPolicy policy);

// Parses "auto" / "plain" / "dict" / "for". Returns false on anything else.
bool EncodingPolicyByName(const char* name, EncodingPolicy* out);

// Dictionary encoding is only attempted when a chunk has at most this
// many distinct values; beyond it the dictionary build (sort + unique)
// costs more than it can save over FoR/plain.
inline constexpr std::size_t kDictDistinctCap = 4096;

// Encodes values[0..n) into one chunk. n must be >= 1.
ColumnChunk EncodeChunk(const std::uint64_t* values, std::size_t n,
                        EncodingPolicy policy);

// Bit-packs values[0..n) (each < 2^width) into out words. width must be a
// nonzero member of kPackedWidths; out must hold PackedWords(n, width)
// zero-initialised words.
void PackBits(const std::uint64_t* values, std::size_t n, std::uint8_t width,
              std::uint64_t* out);

// Number of 64-bit words needed to pack n values at the given width.
inline std::size_t PackedWords(std::size_t n, std::uint8_t width) {
  if (width == 0) return 0;
  const std::size_t per_word = 64 / width;
  return (n + per_word - 1) / per_word;
}

}  // namespace hef::storage

#endif  // HEF_STORAGE_ENCODING_H_
