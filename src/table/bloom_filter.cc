#include "table/bloom_filter.h"

#include <cmath>

#include "common/macros.h"
#include "hybrid/hybrid_grid.h"

namespace hef {

namespace {

std::size_t NextPow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

BloomFilter::BloomFilter(std::size_t expected_keys, double bits_per_key)
    : hash_seed_(kMurmurDefaultSeed) {
  HEF_CHECK_MSG(bits_per_key >= 1, "need at least one bit per key");
  const double wanted =
      static_cast<double>(expected_keys < 1 ? 1 : expected_keys) *
      bits_per_key;
  bit_count_ = NextPow2(static_cast<std::size_t>(wanted) < 512
                            ? 512
                            : static_cast<std::size_t>(wanted));
  bit_mask_ = bit_count_ - 1;
  const int k = static_cast<int>(std::lround(bits_per_key * 0.693));
  num_probes_ = k < 1 ? 1 : (k > 8 ? 8 : k);
  // One vector of slack so 8-lane gathers at the top word cannot fault.
  words_.Allocate(bit_count_ / 64, /*padding_elems=*/8);
}

void BloomFilter::HashPair(std::uint64_t key, std::uint64_t seed,
                           std::uint64_t* h1, std::uint64_t* h2) {
  const std::uint64_t h = Murmur64(key, seed);
  *h1 = h;
  *h2 = ((h >> 32) | (h << 32)) | 1;
}

void BloomFilter::Insert(std::uint64_t key) {
  std::uint64_t h1 = 0, h2 = 0;
  HashPair(key, hash_seed_, &h1, &h2);
  std::uint64_t pos = h1;
  for (int i = 0; i < num_probes_; ++i) {
    const std::uint64_t bit = pos & bit_mask_;
    words_[bit >> 6] |= 1ULL << (bit & 63);
    pos += h2;
  }
}

bool BloomFilter::MayContain(std::uint64_t key) const {
  std::uint64_t h1 = 0, h2 = 0;
  HashPair(key, hash_seed_, &h1, &h2);
  std::uint64_t pos = h1;
  for (int i = 0; i < num_probes_; ++i) {
    const std::uint64_t bit = pos & bit_mask_;
    if (((words_[bit >> 6] >> (bit & 63)) & 1) == 0) {
      return false;
    }
    pos += h2;
  }
  return true;
}

std::vector<OpClass> BloomProbeKernel::Ops(int num_probes) {
  std::vector<OpClass> ops = MurmurKernel::Ops();
  ops.pop_back();  // the hash chain continues instead of storing
  // h2 derivation.
  ops.push_back(OpClass::kShiftRight);
  ops.push_back(OpClass::kShiftLeft);
  ops.push_back(OpClass::kOr);
  ops.push_back(OpClass::kOr);
  for (int i = 0; i < num_probes; ++i) {
    ops.push_back(OpClass::kAnd);         // bit position
    ops.push_back(OpClass::kShiftRight);  // word index
    ops.push_back(OpClass::kGather);      // word fetch
    ops.push_back(OpClass::kShiftRight);  // variable bit test
    ops.push_back(OpClass::kAnd);
    ops.push_back(OpClass::kCmpEq);
    ops.push_back(OpClass::kAdd);  // pos += h2
  }
  ops.push_back(OpClass::kBlend);
  ops.push_back(OpClass::kStore);
  return ops;
}

namespace {

using BloomGrid = HybridGrid<BloomProbeKernel, /*MaxV=*/4, /*MaxS=*/4,
                             /*MaxP=*/3>;

}  // namespace

void BloomProbeArray(const HybridConfig& cfg, const BloomFilter& filter,
                     const std::uint64_t* keys, std::uint64_t* out,
                     std::size_t n) {
  BloomProbeKernel kernel;
  kernel.words = filter.words();
  kernel.bit_mask = filter.bit_count() - 1;
  kernel.num_probes = filter.num_probes();
  kernel.seed = filter.hash_seed();
  BloomGrid::Run(cfg, kernel, keys, out, n);
}

const std::vector<HybridConfig>& BloomProbeSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(BloomGrid::Supported());
  return *configs;
}

}  // namespace hef
