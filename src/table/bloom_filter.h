// Bloom filter with scalar / SIMD / hybrid probe kernels.
//
// Bloom filters are one of the SIMD-accelerated operators the paper's
// related work singles out (ultra-fast SIMD Bloom filters, [24]); in star
// joins they pre-filter probe keys before the hash join. The membership
// probe is a Murmur hash chain followed by k dependent gather+test rounds
// — the same compute-then-gather mix as the join probe, and therefore a
// natural hybrid-execution candidate: packing independent probe chains
// hides the word-gather latency exactly as in CRC64.
//
// Construction: standard double hashing — bit_i(key) = h1 + i * h2 over a
// power-of-two bit array, h1/h2 derived from one MurmurHash64A evaluation.

#ifndef HEF_TABLE_BLOOM_FILTER_H_
#define HEF_TABLE_BLOOM_FILTER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/murmur.h"
#include "common/aligned_buffer.h"
#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"

namespace hef {

class BloomFilter {
 public:
  // Sizes the bit array for `expected_keys` at `bits_per_key` (rounded up
  // to a power of two); k = round(ln2 * bits_per_key) probes, clamped to
  // [1, 8].
  explicit BloomFilter(std::size_t expected_keys, double bits_per_key = 10);

  void Insert(std::uint64_t key);
  // Scalar reference probe: false means definitely absent.
  bool MayContain(std::uint64_t key) const;

  std::size_t bit_count() const { return bit_count_; }
  int num_probes() const { return num_probes_; }
  const std::uint64_t* words() const { return words_.data(); }
  std::uint64_t hash_seed() const { return hash_seed_; }

  // Derives the double-hashing pair from one murmur evaluation.
  static void HashPair(std::uint64_t key, std::uint64_t seed,
                       std::uint64_t* h1, std::uint64_t* h2);

 private:
  std::size_t bit_count_ = 0;   // power of two
  std::uint64_t bit_mask_ = 0;  // bit_count - 1
  int num_probes_ = 1;
  std::uint64_t hash_seed_;
  AlignedBuffer<std::uint64_t> words_;
};

// Map kernel: out[i] = 1 if the filter may contain in[i], else 0.
struct BloomProbeKernel {
  const std::uint64_t* words = nullptr;
  std::uint64_t bit_mask = 0;
  int num_probes = 1;
  std::uint64_t seed = kMurmurDefaultSeed;

  template <typename B>
  struct State {
    typename B::Reg key;
    typename B::Reg result;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.key = B::LoadU(in);
  }

  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    using Reg = typename B::Reg;
    using Mask = typename B::Mask;

    // MurmurHash64A chain (as in BloomFilter::HashPair).
    const Reg m = B::Set1(kMurmurM);
    Reg k = B::Mul(st.key, m);
    k = B::Xor(k, B::template Srli<kMurmurR>(k));
    k = B::Mul(k, m);
    Reg h = B::Set1(seed ^ (8ULL * kMurmurM));
    h = B::Xor(h, k);
    h = B::Mul(h, m);
    h = B::Xor(h, B::template Srli<kMurmurR>(h));
    h = B::Mul(h, m);
    h = B::Xor(h, B::template Srli<kMurmurR>(h));

    // h1 = h; h2 = rot64(h, 32) | 1 (odd => full-period stepping).
    const Reg h2 = B::Or(
        B::Or(B::template Srli<32>(h), B::template Slli<32>(h)), B::Set1(1));

    Reg pos = h;
    Mask hit = B::CmpEq(B::Set1(0), B::Set1(0));  // all-true
    for (int i = 0; i < num_probes; ++i) {
      const Reg bit = B::And(pos, B::Set1(bit_mask));
      const Reg word = B::Gather(words, B::template Srli<6>(bit));
      const Reg tested =
          B::And(B::SrlVar(word, B::And(bit, B::Set1(63))), B::Set1(1));
      hit = B::MaskAnd(hit, B::CmpEq(tested, B::Set1(1)));
      pos = B::Add(pos, h2);
    }
    st.result = B::Blend(hit, B::Set1(0), B::Set1(1));
  }

  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.result);
  }

  // Op mix (one probe round repeated num_probes times); used by the
  // candidate generator and port model.
  static std::vector<OpClass> Ops(int num_probes = 7);
};

// Probes filter membership for keys[0..n) under implementation `cfg`,
// writing 1 (maybe present) / 0 (definitely absent) into out[0..n).
void BloomProbeArray(const HybridConfig& cfg, const BloomFilter& filter,
                     const std::uint64_t* keys, std::uint64_t* out,
                     std::size_t n);

// All (v, s, p) coordinates precompiled for the Bloom probe kernel.
const std::vector<HybridConfig>& BloomProbeSupportedConfigs();

}  // namespace hef

#endif  // HEF_TABLE_BLOOM_FILTER_H_
