#include "table/group_agg.h"

#include "common/macros.h"
#include "hid/hid.h"

#if HEF_HAVE_AVX512 && defined(__AVX512CD__)
#define HEF_HAVE_GROUP_AGG_SIMD 1
#else
#define HEF_HAVE_GROUP_AGG_SIMD 0
#endif

namespace hef {

namespace {

void GroupSumAddScalar(const std::uint64_t* gids,
                       const std::uint64_t* values, std::size_t n,
                       std::uint64_t* agg, std::uint64_t* cnt) {
  for (std::size_t i = 0; i < n; ++i) {
    agg[gids[i]] += values[i];
    cnt[gids[i]] += 1;
  }
}

#if HEF_HAVE_GROUP_AGG_SIMD

void GroupSumAddSimd(const std::uint64_t* gids, const std::uint64_t* values,
                     std::size_t n, std::uint64_t* agg,
                     std::uint64_t* cnt) {
  using B = Avx512Backend;
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512i g = B::LoadU(gids + i);
    const __m512i v = B::LoadU(values + i);
    // conflicts[lane] has a bit set per earlier lane with the same gid;
    // zero means this lane is the only (or first) occurrence.
    const __m512i conflicts = _mm512_conflict_epi64(g);
    const __mmask8 free_lanes =
        _mm512_cmpeq_epi64_mask(conflicts, _mm512_setzero_si512());

    // Fast path: gather-add-scatter the conflict-free lanes.
    const __m512i cur_agg =
        _mm512_mask_i64gather_epi64(_mm512_setzero_si512(), free_lanes, g,
                                    agg, 8);
    const __m512i cur_cnt =
        _mm512_mask_i64gather_epi64(_mm512_setzero_si512(), free_lanes, g,
                                    cnt, 8);
    _mm512_mask_i64scatter_epi64(agg, free_lanes, g,
                                 _mm512_add_epi64(cur_agg, v), 8);
    _mm512_mask_i64scatter_epi64(cnt, free_lanes, g,
                                 _mm512_add_epi64(cur_cnt, B::Set1(1)), 8);

    // Slow path: serial updates for lanes that duplicate an earlier gid.
    std::uint32_t dup = static_cast<std::uint8_t>(~free_lanes);
    if (HEF_UNLIKELY(dup != 0)) {
      while (dup != 0) {
        const int lane = __builtin_ctz(dup);
        dup &= dup - 1;
        const std::uint64_t gid = B::Lane(g, lane);
        agg[gid] += B::Lane(v, lane);
        cnt[gid] += 1;
      }
    }
  }
  GroupSumAddScalar(gids + i, values + i, n - i, agg, cnt);
}

#endif  // HEF_HAVE_GROUP_AGG_SIMD

}  // namespace

bool GroupSumVectorPathAvailable() { return HEF_HAVE_GROUP_AGG_SIMD != 0; }

void GroupSumAdd(bool use_simd, const std::uint64_t* gids,
                 const std::uint64_t* values, std::size_t n,
                 std::uint64_t* agg, std::uint64_t* cnt) {
#if HEF_HAVE_GROUP_AGG_SIMD
  if (use_simd) {
    GroupSumAddSimd(gids, values, n, agg, cnt);
    return;
  }
#endif
  (void)use_simd;
  GroupSumAddScalar(gids, values, n, agg, cnt);
}

}  // namespace hef
