// Vectorized group-by aggregation with conflict detection.
//
// The SIMD aggregation literature the paper cites ([18], [31]) updates a
// dense accumulator array with gather -> add -> scatter, which is wrong
// when one vector holds duplicate group ids (the scatter loses all but
// one update). AVX-512CD's vpconflictq detects intra-vector duplicates:
// conflict-free lanes take the fast gather/scatter path, conflicting
// lanes fall back to serial updates. The scalar lowering is the plain
// accumulate loop, so the operation fits HEF's flavour scheme.
//
// This is the engine's optional vectorized aggregation stage
// (EngineConfig::vectorized_agg); group ids must be < the accumulator
// array size.

#ifndef HEF_TABLE_GROUP_AGG_H_
#define HEF_TABLE_GROUP_AGG_H_

#include <cstddef>
#include <cstdint>

namespace hef {

// agg[gids[i]] += values[i] and cnt[gids[i]] += 1 for i in [0, n).
// `use_simd` selects the conflict-detected vector path (requires
// AVX-512CD; silently falls back to the scalar loop when absent).
void GroupSumAdd(bool use_simd, const std::uint64_t* gids,
                 const std::uint64_t* values, std::size_t n,
                 std::uint64_t* agg, std::uint64_t* cnt);

// True when the vector path is compiled in (AVX-512F+CD present).
bool GroupSumVectorPathAvailable();

}  // namespace hef

#endif  // HEF_TABLE_GROUP_AGG_H_
