#include "table/linear_hash_table.h"

#include <vector>

#include "algo/murmur.h"

namespace hef {

namespace {

std::size_t NextPow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

LinearHashTable::LinearHashTable(std::size_t expected_keys,
                                 double load_factor)
    : hash_seed_(kMurmurDefaultSeed) {
  HEF_CHECK_MSG(load_factor > 0 && load_factor <= 0.9,
                "load factor %.2f out of range", load_factor);
  const auto wanted = static_cast<std::size_t>(
      static_cast<double>(expected_keys < 1 ? 1 : expected_keys) /
      load_factor);
  capacity_ = NextPow2(wanted < 16 ? 16 : wanted);
  mask_ = capacity_ - 1;
  // One extra vector of padding lets 8-lane gathers read index mask_ + 7
  // during speculative probes without faulting.
  keys_.Allocate(capacity_, /*padding_elems=*/8);
  values_.Allocate(capacity_, /*padding_elems=*/8);
  keys_.Fill(kEmptyKey);
}

std::uint64_t LinearHashTable::HomeSlot(std::uint64_t key) const {
  return Murmur64(key, hash_seed_) & mask_;
}

void LinearHashTable::Insert(std::uint64_t key, std::uint64_t value) {
  HEF_CHECK_MSG(key != kEmptyKey, "key collides with the empty marker");
  HEF_CHECK_MSG(size_ < capacity_, "hash table full");
  std::uint64_t slot = HomeSlot(key);
  while (keys_[slot] != kEmptyKey) {
    HEF_CHECK_MSG(keys_[slot] != key, "duplicate key %llu",
                  static_cast<unsigned long long>(key));
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  values_[slot] = value;
  ++size_;
}

void LinearHashTable::InsertBatch(const std::uint64_t* batch_keys,
                                  const std::uint64_t* batch_values,
                                  std::size_t n,
                                  const ParallelFor& parallel_for) {
  // Small batches (or tables too small to partition meaningfully) take the
  // serial path: the parallel build's two extra passes would cost more
  // than they save.
  constexpr std::size_t kParallelThreshold = 4096;
  if (parallel_for == nullptr || n < kParallelThreshold ||
      capacity_ < static_cast<std::size_t>(kBuildPartitions) * 64) {
    for (std::size_t i = 0; i < n; ++i) {
      Insert(batch_keys[i], batch_values[i]);
    }
    return;
  }
  HEF_CHECK_MSG(size_ + n <= capacity_, "hash table full");

  // Phase 1: hash every key once, in parallel over input slices.
  std::vector<std::uint64_t> home(n);
  const std::size_t slice =
      (n + static_cast<std::size_t>(kBuildPartitions) - 1) /
      static_cast<std::size_t>(kBuildPartitions);
  parallel_for(kBuildPartitions, [&](int p) {
    const std::size_t lo = static_cast<std::size_t>(p) * slice;
    const std::size_t hi = lo + slice < n ? lo + slice : n;
    for (std::size_t i = lo; i < hi; ++i) {
      home[i] = HomeSlot(batch_keys[i]);
    }
  });

  // Phase 2: per-partition inserts into disjoint slot regions, input
  // order within each partition.
  const std::size_t stride =
      capacity_ / static_cast<std::size_t>(kBuildPartitions);
  std::vector<std::vector<std::size_t>> spill(kBuildPartitions);
  std::vector<std::size_t> inserted(kBuildPartitions, 0);
  parallel_for(kBuildPartitions, [&](int p) {
    const std::uint64_t region_lo = static_cast<std::uint64_t>(p) * stride;
    const std::uint64_t region_hi = region_lo + stride;
    std::size_t count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t h = home[i];
      if (h < region_lo || h >= region_hi) continue;
      std::uint64_t slot = h;
      bool placed = false;
      while (slot < region_hi) {
        if (keys_[slot] == kEmptyKey) {
          keys_[slot] = batch_keys[i];
          values_[slot] = batch_values[i];
          placed = true;
          ++count;
          break;
        }
        HEF_CHECK_MSG(keys_[slot] != batch_keys[i], "duplicate key %llu",
                      static_cast<unsigned long long>(batch_keys[i]));
        ++slot;
      }
      if (!placed) spill[p].push_back(i);
    }
    inserted[p] = count;
  });

  // Phase 3: region-crossing spills go through the normal (wrapping)
  // insert, serially, in partition-then-input order.
  for (int p = 0; p < kBuildPartitions; ++p) size_ += inserted[p];
  for (int p = 0; p < kBuildPartitions; ++p) {
    for (const std::size_t i : spill[p]) {
      Insert(batch_keys[i], batch_values[i]);
    }
  }
}

bool LinearHashTable::Lookup(std::uint64_t key, std::uint64_t* value) const {
  std::uint64_t slot = HomeSlot(key);
  while (true) {
    const std::uint64_t k = keys_[slot];
    if (k == key) {
      *value = values_[slot];
      return true;
    }
    if (k == kEmptyKey) {
      return false;
    }
    slot = (slot + 1) & mask_;
  }
}

}  // namespace hef
