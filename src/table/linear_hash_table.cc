#include "table/linear_hash_table.h"

#include "algo/murmur.h"

namespace hef {

namespace {

std::size_t NextPow2(std::size_t x) {
  std::size_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

}  // namespace

LinearHashTable::LinearHashTable(std::size_t expected_keys,
                                 double load_factor)
    : hash_seed_(kMurmurDefaultSeed) {
  HEF_CHECK_MSG(load_factor > 0 && load_factor <= 0.9,
                "load factor %.2f out of range", load_factor);
  const auto wanted = static_cast<std::size_t>(
      static_cast<double>(expected_keys < 1 ? 1 : expected_keys) /
      load_factor);
  capacity_ = NextPow2(wanted < 16 ? 16 : wanted);
  mask_ = capacity_ - 1;
  // One extra vector of padding lets 8-lane gathers read index mask_ + 7
  // during speculative probes without faulting.
  keys_.Allocate(capacity_, /*padding_elems=*/8);
  values_.Allocate(capacity_, /*padding_elems=*/8);
  keys_.Fill(kEmptyKey);
}

std::uint64_t LinearHashTable::HomeSlot(std::uint64_t key) const {
  return Murmur64(key, hash_seed_) & mask_;
}

void LinearHashTable::Insert(std::uint64_t key, std::uint64_t value) {
  HEF_CHECK_MSG(key != kEmptyKey, "key collides with the empty marker");
  HEF_CHECK_MSG(size_ < capacity_, "hash table full");
  std::uint64_t slot = HomeSlot(key);
  while (keys_[slot] != kEmptyKey) {
    HEF_CHECK_MSG(keys_[slot] != key, "duplicate key %llu",
                  static_cast<unsigned long long>(key));
    slot = (slot + 1) & mask_;
  }
  keys_[slot] = key;
  values_[slot] = value;
  ++size_;
}

bool LinearHashTable::Lookup(std::uint64_t key, std::uint64_t* value) const {
  std::uint64_t slot = HomeSlot(key);
  while (true) {
    const std::uint64_t k = keys_[slot];
    if (k == key) {
      *value = values_[slot];
      return true;
    }
    if (k == kEmptyKey) {
      return false;
    }
    slot = (slot + 1) & mask_;
  }
}

}  // namespace hef
