// Linear-probe open-addressing hash table for 64-bit keys and payloads.
//
// The paper's SSB joins use "a large linear hash table ... to reduce the
// conflicts and avoid data access becoming the bottleneck" (§V). This table
// follows that design: power-of-two capacity sized at a low load factor,
// parallel key/value arrays (so vector probes gather from flat uint64
// slabs), MurmurHash64A hashing (the same hash the paper benchmarks), and
// linear probing on collision.
//
// Build is scalar (dimension tables are small); probe is the hot path and
// comes in scalar / SIMD / hybrid flavours through ProbeKernel +
// HybridGrid (see probe.h).

#ifndef HEF_TABLE_LINEAR_HASH_TABLE_H_
#define HEF_TABLE_LINEAR_HASH_TABLE_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/aligned_buffer.h"
#include "common/macros.h"

namespace hef {

// Slot marker for an empty bucket. Keys must be < kEmptyKey; SSB dictionary
// codes and surrogate keys are all small positive integers.
inline constexpr std::uint64_t kEmptyKey = ~0ULL;

// Probe result marker for "key not present". Payloads must be < kMissValue.
inline constexpr std::uint64_t kMissValue = ~0ULL;

class LinearHashTable {
 public:
  // Sizes the table for `expected_keys` at `load_factor` occupancy (default
  // 0.25 — the paper's "large" table), rounded up to a power of two with at
  // least one full vector of slack so vector probes can over-gather.
  explicit LinearHashTable(std::size_t expected_keys,
                           double load_factor = 0.25);

  // Inserts a unique key. Duplicate keys abort (dimension primary keys are
  // unique by construction); key must not equal kEmptyKey.
  void Insert(std::uint64_t key, std::uint64_t value);

  // Invokes fn(p) for every p in [0, parts), possibly concurrently. The
  // execution runtime supplies one backed by its worker pool; a null
  // runner means "run serially inline".
  using ParallelFor =
      std::function<void(int parts, const std::function<void(int)>& fn)>;

  // Bulk insert of `n` unique (key, value) pairs. With a non-null
  // `parallel_for` and a large enough batch, the build is partitioned by
  // home slot: the slot array is split into kBuildPartitions contiguous
  // regions and partition p inserts exactly the keys whose home slot falls
  // in region p, probing linearly but never past the region's end — so
  // partitions touch disjoint slots and run concurrently. Keys whose probe
  // sequence would cross a region boundary are spilled and inserted
  // serially afterwards (rare at the default 0.25 load factor). The
  // resulting layout depends only on the input order and the fixed
  // partition count — not on worker count or timing — and every lookup
  // finds the same payloads as a serial row-order build.
  void InsertBatch(const std::uint64_t* batch_keys,
                   const std::uint64_t* batch_values, std::size_t n,
                   const ParallelFor& parallel_for = nullptr);

  // Fixed partition count of the partitioned build (layout determinism).
  static constexpr int kBuildPartitions = 8;

  // Scalar point lookup. Returns true and sets *value on hit.
  bool Lookup(std::uint64_t key, std::uint64_t* value) const;

  std::size_t size() const { return size_; }
  std::size_t capacity() const { return capacity_; }
  std::uint64_t mask() const { return mask_; }
  std::uint64_t hash_seed() const { return hash_seed_; }

  // Raw slabs for vector probes. keys()[i] == kEmptyKey marks empty.
  const std::uint64_t* keys() const { return keys_.data(); }
  const std::uint64_t* values() const { return values_.data(); }

  // Slot index the probe sequence starts at for `key`.
  std::uint64_t HomeSlot(std::uint64_t key) const;

 private:
  std::size_t capacity_ = 0;
  std::uint64_t mask_ = 0;
  std::size_t size_ = 0;
  std::uint64_t hash_seed_;
  AlignedBuffer<std::uint64_t> keys_;
  AlignedBuffer<std::uint64_t> values_;
};

}  // namespace hef

#endif  // HEF_TABLE_LINEAR_HASH_TABLE_H_
