#include "table/probe.h"

#include "hybrid/hybrid_grid.h"

namespace hef {

namespace {

using ProbeGrid = HybridGrid<ProbeKernel, /*MaxV=*/2, /*MaxS=*/4,
                             /*MaxP=*/3>;

}  // namespace

void ProbeArray(const HybridConfig& cfg, const LinearHashTable& table,
                const std::uint64_t* keys, std::uint64_t* out,
                std::size_t n) {
  ProbeKernel kernel;
  kernel.keys = table.keys();
  kernel.values = table.values();
  kernel.mask = table.mask();
  kernel.seed = table.hash_seed();
  ProbeGrid::Run(cfg, kernel, keys, out, n);
}

const std::vector<HybridConfig>& ProbeSupportedConfigs() {
  static const std::vector<HybridConfig>* configs =
      new std::vector<HybridConfig>(ProbeGrid::Supported());
  return *configs;
}

}  // namespace hef
