// Hash-probe kernels over LinearHashTable in scalar / SIMD / hybrid
// flavours.
//
// The probe is the dominant operator of the paper's SSB pipelines (Q2-Q4
// are 3-4 way join queries). It is expressed as a HID map kernel —
// key stream in, payload-or-miss stream out — so the same HybridRunner
// machinery that packs MurmurHash packs the probe: hash computation on the
// SIMD and scalar ALUs, first-bucket access as vpgatherqq, rare collision
// chases on the scalar side.

#ifndef HEF_TABLE_PROBE_H_
#define HEF_TABLE_PROBE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "algo/murmur.h"
#include "hid/hid.h"
#include "hybrid/hybrid_config.h"
#include "procinfo/instruction_table.h"
#include "table/linear_hash_table.h"

namespace hef {

// Map kernel: out[i] = table[in[i]] if present else kMissValue.
struct ProbeKernel {
  const std::uint64_t* keys = nullptr;
  const std::uint64_t* values = nullptr;
  std::uint64_t mask = 0;
  std::uint64_t seed = kMurmurDefaultSeed;

  template <typename B>
  struct State {
    typename B::Reg key;
    typename B::Reg result;
  };

  template <typename B>
  HEF_INLINE void Load(State<B>& st, const std::uint64_t* in) const {
    st.key = B::LoadU(in);
  }

  template <typename B>
  HEF_INLINE void Compute(State<B>& st) const {
    using Reg = typename B::Reg;
    using Mask = typename B::Mask;

    // MurmurHash64A of the key — the same op chain as MurmurKernel.
    const Reg m = B::Set1(kMurmurM);
    Reg k = B::Mul(st.key, m);
    k = B::Xor(k, B::template Srli<kMurmurR>(k));
    k = B::Mul(k, m);
    Reg h = B::Set1(seed ^ (8ULL * kMurmurM));
    h = B::Xor(h, k);
    h = B::Mul(h, m);
    h = B::Xor(h, B::template Srli<kMurmurR>(h));
    h = B::Mul(h, m);
    h = B::Xor(h, B::template Srli<kMurmurR>(h));
    const Reg slot = B::And(h, B::Set1(mask));

    // First bucket: gather keys and payloads.
    const Reg slot_keys = B::Gather(keys, slot);
    const Reg slot_vals = B::Gather(values, slot);
    const Mask hit = B::CmpEq(slot_keys, st.key);
    const Mask empty = B::CmpEq(slot_keys, B::Set1(kEmptyKey));
    st.result = B::Blend(hit, B::Set1(kMissValue), slot_vals);

    // Collision chase: lanes neither hit nor empty continue linearly on
    // the scalar side. With the paper's low-load-factor table this path is
    // rare; it exists for correctness.
    const Mask unresolved = B::MaskAnd(B::MaskNot(hit), B::MaskNot(empty));
    if (HEF_UNLIKELY(!B::MaskNone(unresolved))) {
      ChaseCollisions(st, slot, unresolved);
    }
  }

  template <typename B>
  HEF_INLINE void Store(std::uint64_t* out, const State<B>& st) const {
    B::StoreU(out, st.result);
  }

  // Op mix for the candidate generator / port model: murmur chain + two
  // gathers + compare/blend.
  static std::vector<OpClass> Ops() {
    std::vector<OpClass> ops = MurmurKernel::Ops();
    ops.pop_back();  // drop murmur's trailing store; probe continues
    ops.push_back(OpClass::kAnd);
    ops.push_back(OpClass::kGather);
    ops.push_back(OpClass::kGather);
    ops.push_back(OpClass::kCmpEq);
    ops.push_back(OpClass::kCmpEq);
    ops.push_back(OpClass::kBlend);
    ops.push_back(OpClass::kStore);
    return ops;
  }

 private:
  template <typename B>
  HEF_NOINLINE void ChaseCollisions(State<B>& st,
                                    typename B::Reg first_slot,
                                    typename B::Mask unresolved) const {
    alignas(64) std::uint64_t res[B::kLanes];
    B::StoreU(res, st.result);
    std::uint32_t bits = B::MaskBits(unresolved);
    while (bits != 0) {
      const int lane = __builtin_ctz(bits);
      bits &= bits - 1;
      const std::uint64_t key = B::Lane(st.key, lane);
      std::uint64_t slot =
          (B::Lane(first_slot, lane) + 1) & mask;
      std::uint64_t out = kMissValue;
      while (true) {
        const std::uint64_t k = keys[slot];
        if (k == key) {
          out = values[slot];
          break;
        }
        if (k == kEmptyKey) break;
        slot = (slot + 1) & mask;
      }
      res[lane] = out;
    }
    st.result = B::LoadU(res);
  }
};

// Probes table for keys[0..n) under hybrid implementation `cfg`, writing
// payload-or-kMissValue into out[0..n).
void ProbeArray(const HybridConfig& cfg, const LinearHashTable& table,
                const std::uint64_t* keys, std::uint64_t* out,
                std::size_t n);

// All (v, s, p) coordinates precompiled for the probe kernel.
const std::vector<HybridConfig>& ProbeSupportedConfigs();

}  // namespace hef

#endif  // HEF_TABLE_PROBE_H_
