#include "table/probe_interleaved.h"

#include <immintrin.h>

#include <vector>

#include "algo/murmur.h"
#include "common/macros.h"
#include "hid/hid.h"

namespace hef {

namespace {

#if HEF_HAVE_AVX512

using B = Avx512Backend;

struct InFlight {
  B::Reg keys;
  B::Reg slots;
  std::size_t at = 0;  // output offset of this vector
  bool valid = false;
};

// Stage 1: hash the keys, compute home slots, prefetch both slabs.
HEF_INLINE InFlight Issue(const LinearHashTable& table,
                          const std::uint64_t* keys, std::size_t at) {
  InFlight f;
  f.keys = B::LoadU(keys + at);
  f.at = at;
  f.valid = true;

  const B::Reg m = B::Set1(kMurmurM);
  B::Reg k = B::Mul(f.keys, m);
  k = B::Xor(k, B::Srli<kMurmurR>(k));
  k = B::Mul(k, m);
  B::Reg h = B::Set1(table.hash_seed() ^ (8ULL * kMurmurM));
  h = B::Xor(h, k);
  h = B::Mul(h, m);
  h = B::Xor(h, B::Srli<kMurmurR>(h));
  h = B::Mul(h, m);
  h = B::Xor(h, B::Srli<kMurmurR>(h));
  f.slots = B::And(h, B::Set1(table.mask()));

  alignas(64) std::uint64_t slot_arr[B::kLanes];
  B::StoreU(slot_arr, f.slots);
  for (int lane = 0; lane < B::kLanes; ++lane) {
    _mm_prefetch(
        reinterpret_cast<const char*>(table.keys() + slot_arr[lane]),
        _MM_HINT_T0);
    _mm_prefetch(
        reinterpret_cast<const char*>(table.values() + slot_arr[lane]),
        _MM_HINT_T0);
  }
  return f;
}

// Stage 2: buckets are (hopefully) cache-resident now — resolve.
HEF_INLINE void Resolve(const LinearHashTable& table, const InFlight& f,
                        std::uint64_t* out) {
  const B::Reg slot_keys = B::Gather(table.keys(), f.slots);
  const B::Reg slot_vals = B::Gather(table.values(), f.slots);
  const B::Mask hit = B::CmpEq(slot_keys, f.keys);
  const B::Mask empty = B::CmpEq(slot_keys, B::Set1(kEmptyKey));
  B::Reg result = B::Blend(hit, B::Set1(kMissValue), slot_vals);
  B::StoreU(out + f.at, result);

  const B::Mask unresolved = B::MaskAnd(B::MaskNot(hit), B::MaskNot(empty));
  if (HEF_UNLIKELY(!B::MaskNone(unresolved))) {
    std::uint32_t bits = B::MaskBits(unresolved);
    while (bits != 0) {
      const int lane = __builtin_ctz(bits);
      bits &= bits - 1;
      const std::uint64_t key = B::Lane(f.keys, lane);
      std::uint64_t slot = (B::Lane(f.slots, lane) + 1) & table.mask();
      std::uint64_t value = kMissValue;
      while (true) {
        const std::uint64_t k = table.keys()[slot];
        if (k == key) {
          value = table.values()[slot];
          break;
        }
        if (k == kEmptyKey) break;
        slot = (slot + 1) & table.mask();
      }
      out[f.at + static_cast<std::size_t>(lane)] = value;
    }
  }
}

#endif  // HEF_HAVE_AVX512

void ProbeScalarTail(const LinearHashTable& table, const std::uint64_t* keys,
                     std::uint64_t* out, std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    std::uint64_t value = kMissValue;
    out[i] = table.Lookup(keys[i], &value) ? value : kMissValue;
  }
}

}  // namespace

void ProbeArrayInterleaved(const LinearHashTable& table,
                           const std::uint64_t* keys, std::uint64_t* out,
                           std::size_t n, int depth) {
  HEF_CHECK_MSG(depth >= 1 && depth <= 64, "depth %d out of range", depth);
#if HEF_HAVE_AVX512
  std::vector<InFlight> ring(static_cast<std::size_t>(depth));
  std::size_t head = 0;  // next slot to issue into / resolve from
  std::size_t i = 0;
  for (; i + B::kLanes <= n; i += B::kLanes) {
    InFlight& slot = ring[head];
    if (slot.valid) {
      Resolve(table, slot, out);
    }
    slot = Issue(table, keys, i);
    head = (head + 1) % ring.size();
  }
  for (std::size_t d = 0; d < ring.size(); ++d) {
    InFlight& slot = ring[(head + d) % ring.size()];
    if (slot.valid) {
      Resolve(table, slot, out);
      slot.valid = false;
    }
  }
  ProbeScalarTail(table, keys, out, i, n);
#else
  ProbeScalarTail(table, keys, out, 0, n);
#endif
}

}  // namespace hef
