// IMV-style interleaved vectorized probe (Fang, Zheng & Weng,
// "Interleaved Multi-Vectorizing", VLDB'20 — related work [11] of the
// paper, from the same group). Instead of co-issuing SIMD and scalar
// statements (HEF's approach), IMV hides memory latency by interleaving
// several instances of the *same* vectorized probe: each instance
// computes its hash, issues prefetches for its buckets, and is resumed
// only after younger instances have run — by which time its cache lines
// have arrived.
//
// This implementation keeps a small ring of in-flight probe vectors
// (hash computed, buckets prefetched) and resolves the oldest instance
// when the ring is full. It produces output identical to ProbeArray and
// serves as the fourth probe strategy in the benchmarks: scalar / SIMD /
// HEF hybrid / IMV interleaved.

#ifndef HEF_TABLE_PROBE_INTERLEAVED_H_
#define HEF_TABLE_PROBE_INTERLEAVED_H_

#include <cstddef>
#include <cstdint>

#include "table/linear_hash_table.h"

namespace hef {

// Probes table for keys[0..n) writing payload-or-kMissValue to out[0..n).
// `depth` is the number of probe vectors kept in flight (IMV's group
// count); 1 degenerates to a plain vectorized probe.
void ProbeArrayInterleaved(const LinearHashTable& table,
                           const std::uint64_t* keys, std::uint64_t* out,
                           std::size_t n, int depth = 4);

}  // namespace hef

#endif  // HEF_TABLE_PROBE_INTERLEAVED_H_
