#include "table/radix_partition.h"

#include "algo/murmur.h"
#include "common/macros.h"
#include "table/group_agg.h"

namespace hef {

std::uint64_t RadixPartitionOf(std::uint64_t key, int bits) {
  return Murmur64(key) & ((1ULL << bits) - 1);
}

RadixPartitions RadixPartition(const HybridConfig& hash_cfg,
                               const std::uint64_t* keys,
                               const std::uint64_t* values, std::size_t n,
                               int bits, std::uint64_t* scratch,
                               std::uint64_t* out_keys,
                               std::uint64_t* out_values) {
  HEF_CHECK_MSG(bits >= 1 && bits <= 20, "radix bits %d out of range",
                bits);
  const std::size_t parts = 1ULL << bits;
  const std::uint64_t mask = parts - 1;

  RadixPartitions result;
  result.bits = bits;
  result.offsets.assign(parts + 1, 0);

  // Pass 1a: partition ids via the hybrid Murmur kernel, then mask. The
  // mask runs scalar — it is a 1-cycle op dominated by the hash.
  MurmurHashArray(hash_cfg, keys, scratch, n);
  for (std::size_t i = 0; i < n; ++i) {
    scratch[i] &= mask;
  }

  // Pass 1b: histogram (conflict-detected vector accumulate; the value
  // stream is unused so the counts land in a dummy sum array).
  std::vector<std::uint64_t> hist(parts, 0);
  {
    std::vector<std::uint64_t> dummy_sum(parts, 0);
    GroupSumAdd(/*use_simd=*/true, scratch, scratch /*any values*/, n,
                dummy_sum.data(), hist.data());
  }

  // Prefix sum -> partition offsets.
  std::size_t running = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    result.offsets[p] = running;
    running += hist[p];
  }
  result.offsets[parts] = running;
  HEF_CHECK(running == n);

  // Pass 2: stable scatter.
  std::vector<std::size_t> cursor(result.offsets.begin(),
                                  result.offsets.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t at = cursor[scratch[i]]++;
    out_keys[at] = keys[i];
    if (values != nullptr && out_values != nullptr) {
      out_values[at] = values[i];
    }
  }
  return result;
}

}  // namespace hef
