// Hash radix partitioning — the building block of the partitioned hash
// joins in the paper's related work (Balkesen et al. [2], Kim et al.
// [20]). Rows are split into 2^bits partitions by the low bits of their
// key hash so each partition's build side fits in cache.
//
// The operator composes HEF primitives: the partition-id computation is
// the hybrid Murmur kernel (any (v, s, p) coordinate), the histogram pass
// reuses the conflict-detected vector accumulate, and the scatter pass is
// scalar (its per-partition cursors are serial by nature).

#ifndef HEF_TABLE_RADIX_PARTITION_H_
#define HEF_TABLE_RADIX_PARTITION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "hybrid/hybrid_config.h"

namespace hef {

struct RadixPartitions {
  int bits = 0;
  // partition p occupies out indices [offsets[p], offsets[p + 1]).
  std::vector<std::size_t> offsets;  // size 2^bits + 1

  std::size_t NumPartitions() const { return offsets.size() - 1; }
  std::size_t PartitionSize(std::size_t p) const {
    return offsets[p + 1] - offsets[p];
  }
};

// Partitions keys[0..n) (and optionally values[0..n)) into out_keys /
// out_values by hash radix. `hash_cfg` is the hybrid coordinate of the
// partition-id kernel; `scratch` must hold n elements (stores the
// per-row partition ids between passes). Row order within a partition is
// stable (input order).
RadixPartitions RadixPartition(const HybridConfig& hash_cfg,
                               const std::uint64_t* keys,
                               const std::uint64_t* values, std::size_t n,
                               int bits, std::uint64_t* scratch,
                               std::uint64_t* out_keys,
                               std::uint64_t* out_values);

// Partition id of one key under the same hash (for tests / consumers).
std::uint64_t RadixPartitionOf(std::uint64_t key, int bits);

}  // namespace hef

#endif  // HEF_TABLE_RADIX_PARTITION_H_
