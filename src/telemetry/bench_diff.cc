#include "telemetry/bench_diff.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <utility>

#include "common/text_table.h"
#include "telemetry/json_value.h"
#include "telemetry/json_writer.h"

namespace hef::telemetry {

namespace {

bool Contains(const std::string& haystack, const char* needle) {
  return haystack.find(needle) != std::string::npos;
}

bool EndsWith(const std::string& s, const char* suffix) {
  const std::size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

// +1 higher-better, -1 lower-better, 0 not a performance metric.
int MetricDirection(const std::string& name) {
  if (Contains(name, "qps") || Contains(name, "ipc") ||
      Contains(name, "throughput") || Contains(name, "per_sec") ||
      Contains(name, "speedup") || Contains(name, "ghz")) {
    return 1;
  }
  if (EndsWith(name, "_ms") || EndsWith(name, "_us") ||
      EndsWith(name, "_ns") || EndsWith(name, "_sec") ||
      Contains(name, "latency") || Contains(name, "miss") ||
      Contains(name, "instructions") || Contains(name, "cycles") ||
      Contains(name, "stall") || Contains(name, "branch")) {
    return -1;
  }
  return 0;  // counts, scale factors, ids: not judged
}

// A matched-row identity: the concatenation of the row's string cells,
// minus any the caller asked to ignore (variant axes).
std::string RowKey(const JsonValue& row,
                   const std::vector<std::string>& ignore_fields) {
  std::string key;
  for (const auto& [name, value] : row.object()) {
    if (!value.is_string()) continue;
    if (std::find(ignore_fields.begin(), ignore_fields.end(), name) !=
        ignore_fields.end()) {
      continue;
    }
    if (!key.empty()) key += ' ';
    key += name + "=" + value.string();
  }
  return key.empty() ? "(row)" : key;
}

// Re-serializes a parsed JsonValue (JsonWriter emits the syntax; object
// key order follows the parsed map, which is fine for documents only
// machines read back).
void WriteValue(JsonWriter& w, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull: w.Null(); break;
    case JsonValue::Kind::kBool: w.Bool(v.bool_value()); break;
    case JsonValue::Kind::kNumber: w.Double(v.number()); break;
    case JsonValue::Kind::kString: w.String(v.string()); break;
    case JsonValue::Kind::kArray:
      w.BeginArray();
      for (const JsonValue& item : v.array()) WriteValue(w, item);
      w.EndArray();
      break;
    case JsonValue::Kind::kObject:
      w.BeginObject();
      for (const auto& [name, value] : v.object()) {
        w.Key(name);
        WriteValue(w, value);
      }
      w.EndObject();
      break;
  }
}

double Median(std::vector<double> values) {
  const std::size_t n = values.size();
  std::nth_element(values.begin(), values.begin() + n / 2, values.end());
  const double upper = values[n / 2];
  if (n % 2 == 1) return upper;
  std::nth_element(values.begin(), values.begin() + n / 2 - 1,
                   values.begin() + n / 2);
  return (values[n / 2 - 1] + upper) / 2.0;
}

Status ValidateDoc(const JsonValue& doc, const char* which) {
  if (!doc.is_object()) {
    return Status::InvalidArgument(std::string(which) +
                                   " document is not a JSON object");
  }
  if (doc.StringOr("schema", "") != "hef-bench-v1") {
    return Status::InvalidArgument(std::string(which) +
                                   " document is not schema hef-bench-v1");
  }
  const JsonValue* results = doc.Find("results");
  if (results == nullptr || !results->is_array()) {
    return Status::InvalidArgument(std::string(which) +
                                   " document has no results array");
  }
  return Status::OK();
}

}  // namespace

const char* MetricVerdictName(MetricVerdict verdict) {
  switch (verdict) {
    case MetricVerdict::kImproved: return "improved";
    case MetricVerdict::kRegressed: return "regressed";
    case MetricVerdict::kWithinNoise: return "within-noise";
    case MetricVerdict::kMissing: return "missing-metric";
  }
  return "unknown";
}

bool BenchDiffReport::HasRegressions(bool strict) const {
  for (const MetricDiff& m : metrics) {
    if (m.verdict == MetricVerdict::kRegressed) return true;
    if (strict && m.verdict == MetricVerdict::kMissing) return true;
    // A metric absent from a subset of matched rows is as suspect as a
    // fully missing one: the candidate stopped reporting something the
    // baseline had.
    if (strict && m.missing_rows > 0) return true;
  }
  if (strict && !unmatched_baseline_rows.empty()) return true;
  return false;
}

std::string BenchDiffReport::ToText() const {
  TextTable table;
  table.AddRow({"metric", "dir", "rows", "median_delta", "mad", "threshold",
                "verdict"});
  for (const MetricDiff& m : metrics) {
    char delta[32];
    std::snprintf(delta, sizeof(delta), "%+.2f%%", 100.0 * m.median_delta);
    std::string verdict = MetricVerdictName(m.verdict);
    if (m.missing_rows > 0 && m.verdict != MetricVerdict::kMissing) {
      verdict += " (missing in " + std::to_string(m.missing_rows) +
                 " rows)";
    }
    table.AddRow({m.metric, m.direction > 0 ? "up" : "down",
                  std::to_string(m.rows), delta,
                  TextTable::Num(100.0 * m.mad, 2) + "%",
                  TextTable::Num(100.0 * m.threshold, 2) + "%", verdict});
  }
  int regressed = 0, improved = 0, missing = 0;
  for (const MetricDiff& m : metrics) {
    regressed += m.verdict == MetricVerdict::kRegressed;
    improved += m.verdict == MetricVerdict::kImproved;
    missing += m.verdict == MetricVerdict::kMissing;
  }
  std::string out = table.ToString();
  char line[160];
  std::snprintf(line, sizeof(line),
                "%d matched rows; %zu metrics: %d regressed, %d improved, "
                "%d missing\n",
                matched_rows, metrics.size(), regressed, improved, missing);
  out += line;
  for (const std::string& row : unmatched_baseline_rows) {
    out += "baseline-only row: " + row + "\n";
  }
  for (const std::string& row : unmatched_candidate_rows) {
    out += "candidate-only row: " + row + "\n";
  }
  return out;
}

std::string BenchDiffReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("hef-bench-diff-v1");
  w.Key("bench").String(bench);
  w.Key("matched_rows").Int(matched_rows);
  w.Key("metrics").BeginArray();
  for (const MetricDiff& m : metrics) {
    w.BeginObject();
    w.Key("metric").String(m.metric);
    w.Key("direction").String(m.direction > 0 ? "higher_better"
                                              : "lower_better");
    w.Key("rows").Int(m.rows);
    w.Key("missing_rows").Int(m.missing_rows);
    w.Key("median_delta").Double(m.median_delta);
    w.Key("mad").Double(m.mad);
    w.Key("threshold").Double(m.threshold);
    w.Key("verdict").String(MetricVerdictName(m.verdict));
    w.EndObject();
  }
  w.EndArray();
  w.Key("unmatched_baseline_rows").BeginArray();
  for (const std::string& row : unmatched_baseline_rows) w.String(row);
  w.EndArray();
  w.Key("unmatched_candidate_rows").BeginArray();
  for (const std::string& row : unmatched_candidate_rows) w.String(row);
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Result<BenchDiffReport> DiffBenchReports(const std::string& baseline_json,
                                         const std::string& candidate_json,
                                         const BenchDiffOptions& options) {
  Result<JsonValue> baseline = JsonValue::Parse(baseline_json);
  if (!baseline.ok()) {
    return Status::InvalidArgument("baseline: " +
                                   baseline.status().message());
  }
  Result<JsonValue> candidate = JsonValue::Parse(candidate_json);
  if (!candidate.ok()) {
    return Status::InvalidArgument("candidate: " +
                                   candidate.status().message());
  }
  HEF_RETURN_NOT_OK(ValidateDoc(*baseline, "baseline"));
  HEF_RETURN_NOT_OK(ValidateDoc(*candidate, "candidate"));

  BenchDiffReport report;
  report.bench = baseline->StringOr("bench", "");

  // Index candidate rows by key. Duplicate keys (e.g. repeated runs of
  // the same query) are matched in order of appearance.
  std::map<std::string, std::vector<const JsonValue*>> candidate_rows;
  for (const JsonValue& row : candidate->Find("results")->array()) {
    if (row.is_object()) {
      candidate_rows[RowKey(row, options.ignore_fields)].push_back(&row);
    }
  }
  std::map<std::string, std::size_t> used;

  // metric -> signed relative deltas across matched rows, and -> count of
  // matched rows where the candidate lacked the metric.
  std::map<std::string, std::vector<double>> deltas;
  std::map<std::string, int> missing;

  for (const JsonValue& row : baseline->Find("results")->array()) {
    if (!row.is_object()) continue;
    const std::string key = RowKey(row, options.ignore_fields);
    auto it = candidate_rows.find(key);
    if (it == candidate_rows.end() || used[key] >= it->second.size()) {
      report.unmatched_baseline_rows.push_back(key);
      continue;
    }
    const JsonValue& other = *it->second[used[key]++];
    ++report.matched_rows;
    for (const auto& [name, value] : row.object()) {
      if (!value.is_number() || MetricDirection(name) == 0) continue;
      const JsonValue* counterpart = other.Find(name);
      if (counterpart == nullptr || !counterpart->is_number()) {
        ++missing[name];
        continue;
      }
      const double a = value.number();
      const double b = counterpart->number();
      double delta = 0;
      if (a != 0) {
        delta = (b - a) / std::fabs(a);
      } else if (b != 0) {
        // From zero to nonzero: saturate instead of dividing by zero.
        delta = b > 0 ? 1.0 : -1.0;
      }
      deltas[name].push_back(delta);
    }
  }
  for (const auto& [key, rows] : candidate_rows) {
    for (std::size_t i = used[key]; i < rows.size(); ++i) {
      report.unmatched_candidate_rows.push_back(key);
    }
  }

  for (const auto& [name, values] : deltas) {
    MetricDiff m;
    m.metric = name;
    m.direction = MetricDirection(name);
    m.rows = static_cast<int>(values.size());
    const auto miss_it = missing.find(name);
    if (miss_it != missing.end()) m.missing_rows = miss_it->second;
    m.median_delta = Median(values);
    std::vector<double> abs_dev;
    abs_dev.reserve(values.size());
    for (double d : values) abs_dev.push_back(std::fabs(d - m.median_delta));
    m.mad = Median(std::move(abs_dev));
    m.threshold = options.noise_floor + options.mad_k * m.mad;
    // Direction-adjusted: positive `bad` means the metric got worse.
    const double bad = m.direction > 0 ? -m.median_delta : m.median_delta;
    if (bad > m.threshold) {
      m.verdict = MetricVerdict::kRegressed;
    } else if (bad < -m.threshold) {
      m.verdict = MetricVerdict::kImproved;
    } else {
      m.verdict = MetricVerdict::kWithinNoise;
    }
    report.metrics.push_back(std::move(m));
  }
  for (const auto& [name, count] : missing) {
    if (deltas.count(name) != 0) continue;  // partially missing: above
    MetricDiff m;
    m.metric = name;
    m.direction = MetricDirection(name);
    m.missing_rows = count;
    m.verdict = MetricVerdict::kMissing;
    report.metrics.push_back(std::move(m));
  }
  std::sort(report.metrics.begin(), report.metrics.end(),
            [](const MetricDiff& a, const MetricDiff& b) {
              return a.metric < b.metric;
            });
  return report;
}

Result<std::string> MergeBenchReports(
    const std::vector<std::string>& report_jsons) {
  if (report_jsons.empty()) {
    return Status::InvalidArgument("merge: no reports given");
  }
  std::vector<JsonValue> docs;
  docs.reserve(report_jsons.size());
  for (std::size_t i = 0; i < report_jsons.size(); ++i) {
    Result<JsonValue> doc = JsonValue::Parse(report_jsons[i]);
    if (!doc.ok()) {
      return Status::InvalidArgument("merge input " + std::to_string(i) +
                                     ": " + doc.status().message());
    }
    HEF_RETURN_NOT_OK(ValidateDoc(*doc, "merge input"));
    docs.push_back(std::move(*doc));
  }
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("hef-bench-v1");
  w.Key("bench").String(docs.front().StringOr("bench", ""));
  w.Key("configs").BeginArray();
  for (const JsonValue& doc : docs) {
    const JsonValue* config = doc.Find("config");
    if (config != nullptr) WriteValue(w, *config);
  }
  w.EndArray();
  w.Key("results").BeginArray();
  for (const JsonValue& doc : docs) {
    for (const JsonValue& row : doc.Find("results")->array()) {
      WriteValue(w, row);
    }
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace hef::telemetry
