// Noise-aware comparison of two hef-bench-v1 reports (tools/bench_diff).
//
// Result rows are matched across the two documents by their string-valued
// cells (e.g. query="2.1" variant="hef"); every numeric column shared by
// matched rows becomes a metric series. For each metric the per-row
// relative deltas (candidate - baseline) / |baseline| are reduced to a
// median and a MAD (median absolute deviation); the verdict threshold is
//
//   threshold = noise_floor + mad_k * MAD
//
// so a metric that is intrinsically noisy across rows earns a wider band,
// while the floor still catches a uniform shift that the MAD (zero when
// every row moves identically) would mask. Direction is inferred from the
// metric name: qps/ipc/throughput-like columns are higher-better,
// time/miss/cycle-like columns are lower-better; columns that look like
// neither (row counts, scale factors) are skipped.
//
// Verdicts: improved / regressed / within-noise / missing-metric (present
// in the baseline row but absent in the candidate). HasRegressions()
// drives the CLI exit code; missing metrics — fully missing or missing
// from a subset of matched rows — and unmatched baseline rows fail only
// under strict.

#ifndef HEF_TELEMETRY_BENCH_DIFF_H_
#define HEF_TELEMETRY_BENCH_DIFF_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace hef::telemetry {

struct BenchDiffOptions {
  // MAD multiplier on top of the noise floor.
  double mad_k = 3.0;
  // Minimum relative change (fraction, not percent) treated as signal.
  double noise_floor = 0.05;
  // When set, missing metrics and unmatched baseline rows also count as
  // regressions.
  bool strict = false;
  // String cells excluded from row identity. Lets rows tagged with a
  // variant axis (encoding="flat" vs encoding="auto") match across the
  // two documents, e.g. to judge the pruned run against the flat one.
  std::vector<std::string> ignore_fields;
};

enum class MetricVerdict { kImproved, kRegressed, kWithinNoise, kMissing };

const char* MetricVerdictName(MetricVerdict verdict);

struct MetricDiff {
  std::string metric;
  // +1 when larger is better (qps), -1 when smaller is better (latency).
  int direction = -1;
  int rows = 0;               // matched rows contributing deltas
  // Matched rows where the baseline had this metric but the candidate did
  // not. A metric can be partially missing (present in some rows) and
  // still carry a delta verdict from the rows that have it; under strict
  // any missing row fails the diff.
  int missing_rows = 0;
  double median_delta = 0;    // signed relative delta, median across rows
  double mad = 0;             // MAD of the relative deltas
  double threshold = 0;       // noise_floor + mad_k * mad
  MetricVerdict verdict = MetricVerdict::kWithinNoise;
};

struct BenchDiffReport {
  std::string bench;              // harness name from the baseline doc
  int matched_rows = 0;
  std::vector<std::string> unmatched_baseline_rows;
  std::vector<std::string> unmatched_candidate_rows;
  std::vector<MetricDiff> metrics;

  bool HasRegressions(bool strict) const;
  // Aligned human-readable table plus a one-line summary.
  std::string ToText() const;
  // Machine-readable {"schema":"hef-bench-diff-v1",...} document.
  std::string ToJson() const;
};

// Parses two hef-bench-v1 JSON documents and diffs them. InvalidArgument
// when either document does not parse or is not hef-bench-v1.
Result<BenchDiffReport> DiffBenchReports(const std::string& baseline_json,
                                         const std::string& candidate_json,
                                         const BenchDiffOptions& options);

// Concatenates the results arrays of several hef-bench-v1 documents into
// one (bench name from the first; per-run configs preserved under
// "configs"). How multi-variant documents are built: run the harness once
// per variant (e.g. --encoding=flat, --encoding=auto --pruning), tag the
// rows, merge, diff against a merged baseline. InvalidArgument when the
// list is empty or any document fails hef-bench-v1 validation.
Result<std::string> MergeBenchReports(
    const std::vector<std::string>& report_jsons);

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_BENCH_DIFF_H_
