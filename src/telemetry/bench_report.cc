#include "telemetry/bench_report.h"

#include <cstdio>

#include "telemetry/json_writer.h"

namespace hef::telemetry {

namespace {

void WriteValue(JsonWriter& w, const BenchReport::Value& v) {
  using Kind = BenchReport::Value::Kind;
  switch (v.kind) {
    case Kind::kString:
      w.String(v.s);
      break;
    case Kind::kDouble:
      w.Double(v.d);
      break;
    case Kind::kInt:
      w.Int(v.i);
      break;
    case Kind::kUInt:
      w.UInt(v.u);
      break;
    case Kind::kBool:
      w.Bool(v.b);
      break;
  }
}

void WriteRow(JsonWriter& w,
              const std::vector<std::pair<std::string, BenchReport::Value>>&
                  cells) {
  w.BeginObject();
  for (const auto& [key, value] : cells) {
    w.Key(key);
    WriteValue(w, value);
  }
  w.EndObject();
}

}  // namespace

BenchReport::BenchReport(std::string bench_name)
    : bench_name_(std::move(bench_name)) {}

BenchReport::Row& BenchReport::Row::Set(const std::string& key,
                                        const std::string& value) {
  Value v;
  v.kind = Value::Kind::kString;
  v.s = value;
  cells_.emplace_back(key, std::move(v));
  return *this;
}

BenchReport::Row& BenchReport::Row::Set(const std::string& key,
                                        const char* value) {
  return Set(key, std::string(value));
}

BenchReport::Row& BenchReport::Row::Set(const std::string& key,
                                        double value) {
  Value v;
  v.kind = Value::Kind::kDouble;
  v.d = value;
  cells_.emplace_back(key, v);
  return *this;
}

BenchReport::Row& BenchReport::Row::Set(const std::string& key,
                                        std::int64_t value) {
  Value v;
  v.kind = Value::Kind::kInt;
  v.i = value;
  cells_.emplace_back(key, v);
  return *this;
}

BenchReport::Row& BenchReport::Row::Set(const std::string& key,
                                        std::uint64_t value) {
  Value v;
  v.kind = Value::Kind::kUInt;
  v.u = value;
  cells_.emplace_back(key, v);
  return *this;
}

BenchReport::Row& BenchReport::Row::Set(const std::string& key, int value) {
  return Set(key, static_cast<std::int64_t>(value));
}

BenchReport::Row& BenchReport::Row::Set(const std::string& key, bool value) {
  Value v;
  v.kind = Value::Kind::kBool;
  v.b = value;
  cells_.emplace_back(key, v);
  return *this;
}

void BenchReport::SetConfig(const std::string& key,
                            const std::string& value) {
  config_.Set(key, value);
}
void BenchReport::SetConfig(const std::string& key, const char* value) {
  config_.Set(key, value);
}
void BenchReport::SetConfig(const std::string& key, double value) {
  config_.Set(key, value);
}
void BenchReport::SetConfig(const std::string& key, std::int64_t value) {
  config_.Set(key, value);
}
void BenchReport::SetConfig(const std::string& key, int value) {
  config_.Set(key, value);
}
void BenchReport::SetConfig(const std::string& key, bool value) {
  config_.Set(key, value);
}

BenchReport::Row& BenchReport::AddResult() {
  results_.emplace_back();
  return results_.back();
}

void BenchReport::AddSection(const std::string& key, std::string raw_json) {
  sections_.emplace_back(key, std::move(raw_json));
}

std::string BenchReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String(kBenchSchemaVersion);
  w.Key("bench").String(bench_name_);
  w.Key("config");
  WriteRow(w, config_.cells_);
  w.Key("results").BeginArray();
  for (const Row& row : results_) {
    WriteRow(w, row.cells_);
  }
  w.EndArray();
  w.Key("sections").BeginObject();
  for (const auto& [key, json] : sections_) {
    w.Key(key).Raw(json);
  }
  w.EndObject();
  w.Key("metrics");
  if (include_metrics_) {
    w.Raw(MetricsRegistry::Get().ToJson());
  } else {
    w.BeginObject().EndObject();
  }
  w.EndObject();
  return w.Take();
}

Status BenchReport::WriteFile(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open report file '" + path + "'");
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to report file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace hef::telemetry
