// BenchReport — the one machine-readable result schema shared by every
// benchmark harness and the CLI ("hef-bench-v1").
//
// Document shape (all six top-level keys are always present, so
// downstream diffing never branches on optional structure):
//
//   {
//     "schema":  "hef-bench-v1",
//     "bench":   "<harness name>",
//     "config":  { flag -> value },
//     "results": [ { column -> value }, ... ],
//     "sections":{ name -> arbitrary JSON (e.g. a tuner trace) },
//     "metrics": { the MetricsRegistry dump, or {} }
//   }
//
// Rows are ordered as added; cell order within a row is the insertion
// order, so reports are byte-deterministic given deterministic inputs
// (the golden schema test relies on this).

#ifndef HEF_TELEMETRY_BENCH_REPORT_H_
#define HEF_TELEMETRY_BENCH_REPORT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "telemetry/metrics.h"

namespace hef::telemetry {

inline constexpr const char* kBenchSchemaVersion = "hef-bench-v1";

class BenchReport {
 public:
  explicit BenchReport(std::string bench_name);

  // One key/value cell. Kept as a tagged union so numbers stay numbers in
  // the JSON output.
  struct Value {
    enum class Kind { kString, kDouble, kInt, kUInt, kBool };
    Kind kind = Kind::kString;
    std::string s;
    double d = 0;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    bool b = false;
  };

  class Row {
   public:
    Row& Set(const std::string& key, const std::string& value);
    Row& Set(const std::string& key, const char* value);
    Row& Set(const std::string& key, double value);
    Row& Set(const std::string& key, std::int64_t value);
    Row& Set(const std::string& key, std::uint64_t value);
    Row& Set(const std::string& key, int value);
    Row& Set(const std::string& key, bool value);

   private:
    friend class BenchReport;
    std::vector<std::pair<std::string, Value>> cells_;
  };

  void SetConfig(const std::string& key, const std::string& value);
  void SetConfig(const std::string& key, const char* value);
  void SetConfig(const std::string& key, double value);
  void SetConfig(const std::string& key, std::int64_t value);
  void SetConfig(const std::string& key, int value);
  void SetConfig(const std::string& key, bool value);

  // Appends an empty result row; fill it through the returned reference
  // before the next AddResult call (growth invalidates references).
  Row& AddResult();

  // Attaches a pre-rendered JSON value under "sections".<key> (e.g. the
  // tuner's trace, a spans dump). Caller guarantees validity.
  void AddSection(const std::string& key, std::string raw_json);

  // Includes the process-wide metrics registry dump in the report.
  void IncludeMetrics() { include_metrics_ = true; }

  std::string ToJson() const;
  Status WriteFile(const std::string& path) const;

 private:
  std::string bench_name_;
  Row config_;
  std::vector<Row> results_;
  std::vector<std::pair<std::string, std::string>> sections_;
  bool include_metrics_ = false;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_BENCH_REPORT_H_
