#include "telemetry/diagnostics.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/status.h"
#include "common/stopwatch.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/json_writer.h"

namespace hef::telemetry {

namespace {

double NanosToMs(std::uint64_t nanos) {
  return static_cast<double>(nanos) / 1e6;
}

}  // namespace

std::string FormatTraceId(std::uint64_t trace_id) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id));
  return std::string(buf, 16);
}

Diagnostics::Diagnostics() : start_nanos_(MonotonicNanos()) {}

Diagnostics& Diagnostics::Get() {
  static Diagnostics* instance = new Diagnostics();
  return *instance;
}

std::uint64_t Diagnostics::BeginQuery(const ActiveQuery& query) {
  FlightRecorder::Get().Record(FlightEventKind::kQueryStart,
                               query.query.c_str(), query.trace_id);
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t token = ++next_token_;
  active_.emplace(token, query);
  return token;
}

void Diagnostics::EndQuery(std::uint64_t token) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(token);
}

void Diagnostics::RecordCompletion(const QueryCompletion& completion) {
  const auto code = static_cast<StatusCode>(completion.status_code);
  FlightEventKind kind = FlightEventKind::kQueryFinish;
  if (code == StatusCode::kCancelled) {
    kind = FlightEventKind::kQueryCancelled;
  } else if (code == StatusCode::kDeadlineExceeded) {
    kind = FlightEventKind::kQueryDeadline;
  }
  FlightRecorder::Get().Record(kind, completion.query.c_str(),
                               completion.trace_id, completion.wall_nanos,
                               completion.morsels, completion.status_code);

  bool auto_dump = false;
  std::string slow_line;
  {
    std::lock_guard<std::mutex> lock(mu_);
    completions_.push_back(completion);
    while (completions_.size() > kMaxCompletions) completions_.pop_front();

    const bool slow =
        !slow_log_path_.empty() &&
        (completion.status_code != 0 ||
         NanosToMs(completion.wall_nanos) >= slow_threshold_ms_);
    if (slow) {
      JsonWriter w;
      w.BeginObject();
      w.Key("nanos").UInt(MonotonicNanos());
      w.Key("trace").String(FormatTraceId(completion.trace_id));
      w.Key("query").String(completion.query);
      w.Key("engine").String(completion.engine);
      w.Key("wall_ms").Double(NanosToMs(completion.wall_nanos));
      w.Key("status").String(StatusCodeName(code));
      if (completion.status_code != 0) {
        w.Key("message").String(completion.status_message);
      }
      w.Key("cache_hit").Bool(completion.cache_hit);
      w.Key("morsels").UInt(completion.morsels);
      w.EndObject();
      slow_line = w.Take();
      std::ofstream log(slow_log_path_, std::ios::app);
      if (log) log << slow_line << "\n";
    }

    if (code == StatusCode::kDeadlineExceeded &&
        auto_dumps_ < kMaxAutoDumps) {
      ++auto_dumps_;
      auto_dump = true;
    }
  }

  if (auto_dump) {
    const char* dir = std::getenv("HEF_FLIGHT_DIR");
    if (dir != nullptr && dir[0] != '\0') {
      FlightRecorder::Get().Record(FlightEventKind::kFlightDump, "deadline",
                                   completion.trace_id);
      const std::string path = std::string(dir) + "/hef_flight_deadline_" +
                               FormatTraceId(completion.trace_id) + ".json";
      (void)FlightRecorder::Get().DumpToFile(path);
    }
  }
}

bool Diagnostics::SetSlowQueryLog(const std::string& path,
                                  double threshold_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (path.empty()) {
    slow_log_path_.clear();
    return true;
  }
  std::ofstream probe(path, std::ios::app);
  if (!probe) return false;
  slow_log_path_ = path;
  slow_threshold_ms_ = threshold_ms;
  return true;
}

std::string Diagnostics::StatuszJson() const {
  const std::uint64_t now = MonotonicNanos();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("hef-statusz-v1");
  w.Key("build").BeginObject();
#if defined(__VERSION__)
  w.Key("compiler").String(__VERSION__);
#else
  w.Key("compiler").String("unknown");
#endif
  w.Key("cxx_standard").Int(static_cast<std::int64_t>(__cplusplus));
#if defined(NDEBUG)
  w.Key("optimized").Bool(true);
#else
  w.Key("optimized").Bool(false);
#endif
  w.EndObject();
  w.Key("pid").Int(static_cast<std::int64_t>(getpid()));

  std::lock_guard<std::mutex> lock(mu_);
  w.Key("uptime_seconds")
      .Double(static_cast<double>(now - start_nanos_) / 1e9);
  w.Key("flight_recorded").UInt(FlightRecorder::Get().recorded());
  w.Key("active").BeginArray();
  for (const auto& [token, q] : active_) {
    (void)token;
    w.BeginObject();
    w.Key("trace").String(FormatTraceId(q.trace_id));
    w.Key("query").String(q.query);
    w.Key("engine").String(q.engine);
    w.Key("elapsed_ms").Double(NanosToMs(now - q.start_nanos));
    if (q.deadline_nanos != 0) {
      const double remaining =
          q.deadline_nanos > now
              ? NanosToMs(q.deadline_nanos - now)
              : -NanosToMs(now - q.deadline_nanos);
      w.Key("deadline_ms_remaining").Double(remaining);
    }
    w.EndObject();
  }
  w.EndArray();
  w.Key("recent_completions")
      .UInt(static_cast<std::uint64_t>(completions_.size()));
  w.EndObject();
  return w.Take();
}

std::string Diagnostics::TracezJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("hef-tracez-v1");
  w.Key("entries").BeginArray();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = completions_.rbegin(); it != completions_.rend(); ++it) {
    const QueryCompletion& c = *it;
    const auto code = static_cast<StatusCode>(c.status_code);
    w.BeginObject();
    w.Key("trace").String(FormatTraceId(c.trace_id));
    w.Key("query").String(c.query);
    w.Key("engine").String(c.engine);
    w.Key("wall_ms").Double(NanosToMs(c.wall_nanos));
    w.Key("status").String(StatusCodeName(code));
    if (c.status_code != 0) w.Key("message").String(c.status_message);
    w.Key("cache_hit").Bool(c.cache_hit);
    w.Key("morsels").UInt(c.morsels);
    w.Key("error").Bool(c.status_code != 0);
    if (!c.explain_json.empty()) {
      w.Key("explain").Raw(c.explain_json);
    }
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

void Diagnostics::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  active_.clear();
  completions_.clear();
  slow_log_path_.clear();
  slow_threshold_ms_ = 0;
  auto_dumps_ = 0;
}

ActiveQueryGuard::ActiveQueryGuard(std::uint64_t trace_id,
                                   const std::string& query,
                                   const std::string& engine,
                                   std::uint64_t deadline_nanos) {
  ActiveQuery q;
  q.trace_id = trace_id;
  q.query = query;
  q.engine = engine;
  q.start_nanos = MonotonicNanos();
  q.deadline_nanos = deadline_nanos;
  token_ = Diagnostics::Get().BeginQuery(q);
}

ActiveQueryGuard::~ActiveQueryGuard() {
  Diagnostics::Get().EndQuery(token_);
}

}  // namespace hef::telemetry
