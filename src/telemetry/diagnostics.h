// Diagnostics — the query-scoped introspection registry behind the live
// debug endpoints (/statusz, /tracez) and the slow-query log.
//
// Every engine Run registers itself here for its lifetime
// (ActiveQueryGuard), so /statusz can show which queries are in flight
// with their trace ids, elapsed time and remaining deadline; every
// completion is recorded with its outcome, timings and (optionally) its
// explain tree, feeding /tracez with recent slow/errored exemplars and
// the JSONL slow-query log with threshold-gated lines. Completions also
// forward to the flight recorder (finish / cancelled / deadline events)
// and trigger a bounded automatic flight dump on kDeadlineExceeded when
// HEF_FLIGHT_DIR is set.
//
// Lives in telemetry (not exec) so the HTTP server can serve it without a
// layering inversion; the engines — which see both layers — do the wiring.

#ifndef HEF_TELEMETRY_DIAGNOSTICS_H_
#define HEF_TELEMETRY_DIAGNOSTICS_H_

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace hef::telemetry {

// Renders a trace id as 16 lowercase hex characters (zero-padded), the
// canonical form used in logs, endpoints and Status messages.
std::string FormatTraceId(std::uint64_t trace_id);

// A query currently executing (registered via ActiveQueryGuard).
struct ActiveQuery {
  std::uint64_t trace_id = 0;
  std::string query;            // e.g. "Q2.1"
  std::string engine;           // e.g. "hybrid", "voila"
  std::uint64_t start_nanos = 0;
  std::uint64_t deadline_nanos = 0;  // 0 = none
};

// A finished query, successful or not.
struct QueryCompletion {
  std::uint64_t trace_id = 0;
  std::string query;
  std::string engine;
  std::uint64_t wall_nanos = 0;
  std::uint16_t status_code = 0;  // StatusCode as integer; 0 = OK
  std::string status_message;     // empty when OK
  bool cache_hit = false;
  std::uint64_t morsels = 0;
  std::string explain_json;  // pre-rendered hef-explain-v1; may be empty
};

class Diagnostics {
 public:
  // Retained /tracez exemplars (most recent first in TracezJson()).
  static constexpr std::size_t kMaxCompletions = 64;
  // Cap on automatic deadline-triggered flight dumps per process.
  static constexpr std::size_t kMaxAutoDumps = 8;

  static Diagnostics& Get();

  // Registers an in-flight query; returns a token for EndQuery. Prefer
  // ActiveQueryGuard. Emits a kQueryStart flight event.
  std::uint64_t BeginQuery(const ActiveQuery& query);
  void EndQuery(std::uint64_t token);

  // Records an outcome: /tracez ring, slow-query log (when armed and over
  // threshold), flight finish/cancel/deadline event, and — for
  // kDeadlineExceeded with HEF_FLIGHT_DIR set — a bounded automatic
  // flight-recorder dump.
  void RecordCompletion(const QueryCompletion& completion);

  // Arms the JSONL slow-query log: completions with wall time >=
  // threshold_ms (or any error) append one line to `path`. An empty path
  // disarms. Returns false when the file cannot be opened.
  bool SetSlowQueryLog(const std::string& path, double threshold_ms);

  // {"schema":"hef-statusz-v1",...} — build info, uptime, active queries.
  std::string StatuszJson() const;
  // {"schema":"hef-tracez-v1",...} — recent completions, newest first.
  std::string TracezJson() const;

  // Drops all state (active map, completion ring, slow log). Tests only.
  void ResetForTest();

 private:
  Diagnostics();
  HEF_DISALLOW_COPY_AND_ASSIGN(Diagnostics);

  mutable std::mutex mu_;
  std::uint64_t start_nanos_ = 0;   // process diagnostics epoch (uptime)
  std::uint64_t next_token_ = 0;
  std::map<std::uint64_t, ActiveQuery> active_;
  std::deque<QueryCompletion> completions_;  // newest at back
  std::string slow_log_path_;
  double slow_threshold_ms_ = 0;
  std::size_t auto_dumps_ = 0;
};

// RAII registration of an in-flight query for /statusz.
class ActiveQueryGuard {
 public:
  ActiveQueryGuard(std::uint64_t trace_id, const std::string& query,
                   const std::string& engine, std::uint64_t deadline_nanos);
  ~ActiveQueryGuard();

  HEF_DISALLOW_COPY_AND_ASSIGN(ActiveQueryGuard);

 private:
  std::uint64_t token_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_DIAGNOSTICS_H_
