#include "telemetry/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define HEF_HAVE_EXECINFO 1
#endif
#endif

#include "common/stopwatch.h"
#include "telemetry/json_writer.h"
#include "telemetry/span.h"

namespace hef::telemetry {

namespace {

// ---------------------------------------------------------------------------
// Async-signal-safe formatting helpers for the crash path: no allocation,
// no stdio, just byte pushes into a caller-owned buffer flushed with
// write(2).

struct SafeWriter {
  int fds[2] = {-1, -1};
  char buf[256];
  std::size_t len = 0;

  void Flush() {
    for (const int fd : fds) {
      if (fd < 0) continue;
      std::size_t off = 0;
      while (off < len) {
        const ssize_t n = write(fd, buf + off, len - off);
        if (n <= 0) break;
        off += static_cast<std::size_t>(n);
      }
    }
    len = 0;
  }
  void Char(char c) {
    if (len == sizeof(buf)) Flush();
    buf[len++] = c;
  }
  void Str(const char* s) {
    for (; s != nullptr && *s != '\0'; ++s) Char(*s);
  }
  void Dec(std::uint64_t v) {
    char digits[20];
    int n = 0;
    do {
      digits[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    while (n > 0) Char(digits[--n]);
  }
  void Hex16(std::uint64_t v) {
    for (int shift = 60; shift >= 0; shift -= 4) {
      Char("0123456789abcdef"[(v >> shift) & 0xF]);
    }
  }
};

// Crash-handler state (set once by InstallCrashHandler).
char g_crash_path[512] = {};
std::atomic<bool> g_handler_installed{false};

void CrashHandler(int sig) {
  SafeWriter w;
  w.fds[0] = STDERR_FILENO;
  if (g_crash_path[0] != '\0') {
    w.fds[1] = open(g_crash_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
  }
  w.Str("\n=== hef flight recorder (signal ");
  w.Dec(static_cast<std::uint64_t>(sig));
  w.Str(") ===\n");

  // Snapshot() allocates; the crash path walks slots through the
  // allocation-free CrashDump instead.
  FlightRecorder::Get().CrashDump(&w);

#ifdef HEF_HAVE_EXECINFO
  w.Str("--- backtrace ---\n");
  w.Flush();
  void* frames[64];
  const int n = backtrace(frames, 64);
  for (const int fd : w.fds) {
    if (fd >= 0) backtrace_symbols_fd(frames, n, fd);
  }
#endif
  w.Str("=== end flight recorder ===\n");
  w.Flush();
  if (w.fds[1] >= 0) close(w.fds[1]);

  // Restore the default disposition and re-raise so the process still
  // dies the way the runner expects (core, nonzero exit).
  signal(sig, SIG_DFL);
  raise(sig);
}

}  // namespace

const char* FlightEventKindName(FlightEventKind kind) {
  switch (kind) {
    case FlightEventKind::kQueryStart: return "query_start";
    case FlightEventKind::kQueryFinish: return "query_finish";
    case FlightEventKind::kQueryCancelled: return "query_cancelled";
    case FlightEventKind::kQueryDeadline: return "query_deadline";
    case FlightEventKind::kPlanCacheMiss: return "plan_cache_miss";
    case FlightEventKind::kPlanCacheInvalidate:
      return "plan_cache_invalidate";
    case FlightEventKind::kFaultArmed: return "fault_armed";
    case FlightEventKind::kFaultFired: return "fault_fired";
    case FlightEventKind::kTunerRetune: return "tuner_retune";
    case FlightEventKind::kFlightDump: return "flight_dump";
    case FlightEventKind::kScanPrune: return "scan_prune";
  }
  return "unknown";
}

FlightRecorder& FlightRecorder::Get() {
  static FlightRecorder* instance = new FlightRecorder();
  return *instance;
}

void FlightRecorder::Record(FlightEventKind kind, const char* detail,
                            std::uint64_t trace_id, std::uint64_t arg0,
                            std::uint64_t arg1, std::uint16_t code) {
  const std::uint64_t idx = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[idx & (kCapacity - 1)];
  // Generation protocol: odd while writing, 2*(gen+1) when complete. A
  // reader that observes an odd stamp, or different stamps before/after
  // its copy, discards the slot.
  slot.seq.store(2 * (idx / kCapacity) + 1, std::memory_order_release);
  FlightEvent& e = slot.event;
  e.nanos = MonotonicNanos();
  e.trace_id = trace_id;
  e.arg0 = arg0;
  e.arg1 = arg1;
  e.kind = kind;
  e.code = code;
  e.thread_id = SpanTracer::CurrentThreadId();
  if (detail == nullptr) detail = "";
  std::strncpy(e.detail, detail, FlightEvent::kDetailSize - 1);
  e.detail[FlightEvent::kDetailSize - 1] = '\0';
  slot.seq.store(2 * (idx / kCapacity) + 2, std::memory_order_release);
}

std::vector<FlightEvent> FlightRecorder::Snapshot() const {
  // Oldest-first: with N = recorded(), live slots are [N - cap, N).
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = n > kCapacity ? n - kCapacity : 0;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(n - begin));
  for (std::uint64_t idx = begin; idx < n; ++idx) {
    const Slot& slot = slots_[idx & (kCapacity - 1)];
    const std::uint64_t want = 2 * (idx / kCapacity) + 2;
    const std::uint64_t before = slot.seq.load(std::memory_order_acquire);
    if (before != want) continue;  // overwritten or still being written
    FlightEvent copy = slot.event;
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.seq.load(std::memory_order_relaxed) != want) continue;
    out.push_back(copy);
  }
  return out;
}

std::string FlightRecorder::ToJson() const {
  const std::vector<FlightEvent> events = Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("hef-flight-v1");
  w.Key("recorded").UInt(recorded());
  w.Key("capacity").UInt(kCapacity);
  w.Key("events").BeginArray();
  for (const FlightEvent& e : events) {
    char trace[17];
    std::snprintf(trace, sizeof(trace), "%016llx",
                  static_cast<unsigned long long>(e.trace_id));
    w.BeginObject();
    w.Key("nanos").UInt(e.nanos);
    w.Key("kind").String(FlightEventKindName(e.kind));
    w.Key("detail").String(e.detail);
    if (e.trace_id != 0) w.Key("trace").String(trace);
    if (e.arg0 != 0) w.Key("arg0").UInt(e.arg0);
    if (e.arg1 != 0) w.Key("arg1").UInt(e.arg1);
    if (e.code != 0) w.Key("code").UInt(e.code);
    w.Key("thread").UInt(e.thread_id);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status FlightRecorder::DumpToFile(const std::string& path) const {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return Status::IoError("cannot write flight dump to " + path);
  }
  out << ToJson() << "\n";
  return out.good() ? Status::OK()
                    : Status::IoError("short write to " + path);
}

void FlightRecorder::CrashDump(void* writer) const {
  auto* w = static_cast<SafeWriter*>(writer);
  const std::uint64_t n = next_.load(std::memory_order_acquire);
  const std::uint64_t begin = n > kCapacity ? n - kCapacity : 0;
  w->Str("recorded ");
  w->Dec(n);
  w->Str(" events; showing last ");
  w->Dec(n - begin);
  w->Str("\n");
  for (std::uint64_t idx = begin; idx < n; ++idx) {
    const Slot& slot = slots_[idx & (kCapacity - 1)];
    if (slot.seq.load(std::memory_order_acquire) !=
        2 * (idx / kCapacity) + 2) {
      continue;
    }
    const FlightEvent& e = slot.event;
    w->Dec(e.nanos);
    w->Char(' ');
    w->Str(FlightEventKindName(e.kind));
    w->Char(' ');
    w->Str(e.detail);
    if (e.trace_id != 0) {
      w->Str(" trace=");
      w->Hex16(e.trace_id);
    }
    if (e.code != 0) {
      w->Str(" code=");
      w->Dec(e.code);
    }
    if (e.arg0 != 0) {
      w->Str(" arg0=");
      w->Dec(e.arg0);
    }
    w->Char('\n');
  }
  w->Flush();
}

void FlightRecorder::InstallCrashHandler(const std::string& dir) {
  bool expected = false;
  if (!g_handler_installed.compare_exchange_strong(expected, true)) return;
  if (!dir.empty()) {
    std::snprintf(g_crash_path, sizeof(g_crash_path),
                  "%s/hef_flight_crash_%d.txt", dir.c_str(),
                  static_cast<int>(getpid()));
  }
#ifdef HEF_HAVE_EXECINFO
  // First backtrace() call may lazily load libgcc (allocates); do it now
  // so the signal-context call does not.
  void* warm[4];
  (void)backtrace(warm, 4);
#endif
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &CrashHandler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESETHAND;
  for (const int sig : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    sigaction(sig, &sa, nullptr);
  }
}

}  // namespace hef::telemetry
