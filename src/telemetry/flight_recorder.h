// Flight recorder — an always-on, lock-free, bounded ring of structured
// runtime events, dumpable after the fact.
//
// The paper's hybrid kernels are tuned per machine and per data
// distribution, so when a production query goes wrong the first question
// is "what was the process doing just before?" — which queries ran, with
// which trace ids, whether plans were rebuilt, whether a fault point was
// armed, whether the tuner repointed a kernel. The recorder keeps the
// last kCapacity such events in a fixed ring that costs one relaxed
// fetch_add plus a 64-byte slot write per event (no locks, no
// allocation), cheap enough to leave on permanently: events are emitted
// at query / plan / tuner granularity, never per block.
//
// Readers (the /flightz endpoint, the crash handler, tests) snapshot the
// ring without stopping writers: every slot carries a sequence stamp
// written after the payload, and a slot whose stamp changes mid-copy is
// discarded. The crash handler path (InstallCrashHandler) renders the
// ring plus a backtrace with async-signal-safe primitives only — raw
// write(2) and a hand-rolled formatter — then re-raises so the default
// disposition (core dump, CI failure) still happens.

#ifndef HEF_TELEMETRY_FLIGHT_RECORDER_H_
#define HEF_TELEMETRY_FLIGHT_RECORDER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace hef::telemetry {

enum class FlightEventKind : std::uint16_t {
  kQueryStart = 0,      // detail=query, trace_id set
  kQueryFinish,         // detail=query, code=StatusCode, arg0=wall nanos
  kQueryCancelled,      // detail=query, arg0=wall nanos
  kQueryDeadline,       // detail=query, arg0=wall nanos
  kPlanCacheMiss,       // detail=cache metric prefix, arg0=entries after
  kPlanCacheInvalidate, // detail=cache metric prefix, arg0=entries dropped
  kFaultArmed,          // detail=fault point, arg0=trigger hit
  kFaultFired,          // detail=fault point, arg0=hit number
  kTunerRetune,         // detail=operator, arg0/arg1=(v,s,p) packed/seconds ns
  kFlightDump,          // detail=reason
  kScanPrune,           // per chunk: detail=cause op, arg0=chunk index;
                        // summary: detail=query, arg0=scanned, arg1=total
};

const char* FlightEventKindName(FlightEventKind kind);

// One recorded event. Trivially copyable — the ring snapshots by memcpy
// and the crash handler reads slots in a signal context. `detail` is
// copied (truncated) into the slot so callers may pass transient strings.
struct FlightEvent {
  static constexpr std::size_t kDetailSize = 24;

  std::uint64_t nanos = 0;      // CLOCK_MONOTONIC_RAW at record time
  std::uint64_t trace_id = 0;   // 0 when the event is not query-scoped
  std::uint64_t arg0 = 0;
  std::uint64_t arg1 = 0;
  char detail[kDetailSize] = {};  // NUL-terminated, truncated
  FlightEventKind kind = FlightEventKind::kQueryStart;
  std::uint16_t code = 0;       // StatusCode for kQueryFinish
  std::uint32_t thread_id = 0;  // SpanTracer dense thread id
};

class FlightRecorder {
 public:
  // Ring capacity (power of two). ~4k events x 64 B = 256 KiB resident.
  static constexpr std::size_t kCapacity = 1u << 12;

  static FlightRecorder& Get();

  // Records one event. Lock-free and allocation-free; safe from any
  // thread. `detail` may be null (stored as empty).
  void Record(FlightEventKind kind, const char* detail,
              std::uint64_t trace_id = 0, std::uint64_t arg0 = 0,
              std::uint64_t arg1 = 0, std::uint16_t code = 0);

  // Copies out every fully-written event, oldest first. Slots being
  // overwritten during the copy are skipped (torn reads are detected via
  // the per-slot sequence stamp, never returned).
  std::vector<FlightEvent> Snapshot() const;

  // Events ever recorded (monotonic; exceeds kCapacity once wrapped).
  std::uint64_t recorded() const {
    return next_.load(std::memory_order_relaxed);
  }

  // {"schema":"hef-flight-v1","recorded":N,"events":[...]} — the /flightz
  // payload and the on-demand dump format.
  std::string ToJson() const;

  // Writes ToJson() to `path` (used for deadline auto-dumps and CI
  // artifacts).
  Status DumpToFile(const std::string& path) const;

  // Installs a crash handler for SIGSEGV/SIGBUS/SIGABRT/SIGFPE/SIGILL
  // that writes the flight ring and a backtrace to stderr (and to
  // "<dir>/hef_flight_crash_<pid>.txt" when `dir` is non-empty) using
  // async-signal-safe primitives, then re-raises with the default
  // disposition. Idempotent; not installed in tests by default.
  static void InstallCrashHandler(const std::string& dir = "");

  // Renders the ring through an async-signal-safe writer (internal; the
  // crash handler's allocation-free alternative to ToJson()).
  void CrashDump(void* safe_writer) const;

 private:
  // One ring slot: `seq` is 0 while never written, odd while a writer is
  // inside, and 2*(n+1) once generation-n payload is complete.
  struct Slot {
    std::atomic<std::uint64_t> seq{0};
    FlightEvent event;
  };

  FlightRecorder() = default;
  HEF_DISALLOW_COPY_AND_ASSIGN(FlightRecorder);

  std::atomic<std::uint64_t> next_{0};
  Slot slots_[kCapacity];
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_FLIGHT_RECORDER_H_
