#include "telemetry/json_value.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace hef::telemetry {

namespace {

// Hand-rolled recursive-descent parser over a string_view. Depth is
// bounded so a hostile input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    JsonValue value;
    HEF_RETURN_NOT_OK(ParseValue(&value, 0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Fail(const std::string& what) const {
    return Status::InvalidArgument("json parse error at offset " +
                                   std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Fail("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(out, depth);
      case '[':
        return ParseArray(out, depth);
      case '"': {
        std::string s;
        HEF_RETURN_NOT_OK(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (!ConsumeLiteral("true")) return Fail("expected 'true'");
        *out = JsonValue::MakeBool(true);
        return Status::OK();
      case 'f':
        if (!ConsumeLiteral("false")) return Fail("expected 'false'");
        *out = JsonValue::MakeBool(false);
        return Status::OK();
      case 'n':
        if (!ConsumeLiteral("null")) return Fail("expected 'null'");
        *out = JsonValue();
        return Status::OK();
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(JsonValue* out, int depth) {
    Consume('{');
    std::map<std::string, JsonValue> members;
    SkipWhitespace();
    if (Consume('}')) {
      *out = JsonValue::MakeObject(std::move(members));
      return Status::OK();
    }
    while (true) {
      SkipWhitespace();
      std::string key;
      HEF_RETURN_NOT_OK(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Fail("expected ':' in object");
      JsonValue value;
      HEF_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      members[std::move(key)] = std::move(value);
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) break;
      return Fail("expected ',' or '}' in object");
    }
    *out = JsonValue::MakeObject(std::move(members));
    return Status::OK();
  }

  Status ParseArray(JsonValue* out, int depth) {
    Consume('[');
    std::vector<JsonValue> elements;
    SkipWhitespace();
    if (Consume(']')) {
      *out = JsonValue::MakeArray(std::move(elements));
      return Status::OK();
    }
    while (true) {
      JsonValue value;
      HEF_RETURN_NOT_OK(ParseValue(&value, depth + 1));
      elements.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) break;
      return Fail("expected ',' or ']' in array");
    }
    *out = JsonValue::MakeArray(std::move(elements));
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point; surrogate pairs are not
          // reassembled (bench reports never emit them).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Fail("bad escape character");
      }
    }
    return Fail("unterminated string");
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start || (pos_ == start + 1 && text_[start] == '-')) {
      return Fail("expected a value");
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("malformed number");
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

double JsonValue::NumberOr(const std::string& key, double fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_number() ? v->number() : fallback;
}

std::string JsonValue::StringOr(const std::string& key,
                                const std::string& fallback) const {
  const JsonValue* v = Find(key);
  return v != nullptr && v->is_string() ? v->string() : fallback;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

JsonValue JsonValue::MakeBool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::MakeNumber(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::MakeString(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.array_ = std::move(v);
  return out;
}

JsonValue JsonValue::MakeObject(std::map<std::string, JsonValue> v) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.object_ = std::move(v);
  return out;
}

}  // namespace hef::telemetry
