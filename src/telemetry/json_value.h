// Minimal JSON document model and recursive-descent parser — just enough
// to read back the hef-bench-v1 reports this repository's own JsonWriter
// produces (tools/bench_diff compares two of them). Full JSON is
// accepted; numbers parse to double, so 64-bit integers beyond 2^53 lose
// precision — fine for benchmark metrics, not a general-purpose parser.

#ifndef HEF_TELEMETRY_JSON_VALUE_H_
#define HEF_TELEMETRY_JSON_VALUE_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace hef::telemetry {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;
  // Convenience: Find(key) if it is a number/string, else fallback.
  double NumberOr(const std::string& key, double fallback) const;
  std::string StringOr(const std::string& key,
                       const std::string& fallback) const;

  // Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

  static JsonValue MakeBool(bool v);
  static JsonValue MakeNumber(double v);
  static JsonValue MakeString(std::string v);
  static JsonValue MakeArray(std::vector<JsonValue> v);
  static JsonValue MakeObject(std::map<std::string, JsonValue> v);

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_JSON_VALUE_H_
