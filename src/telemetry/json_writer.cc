#include "telemetry/json_writer.h"

#include <cmath>
#include <cstdio>

namespace hef::telemetry {

std::string JsonWriter::Escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 2);
  for (const char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (!has_value_.empty()) {
    if (has_value_.back() && out_.back() != ':') {
      out_ += ',';
    }
    has_value_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& key) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(key);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(std::int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(std::uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

std::string JsonWriter::Take() {
  has_value_.clear();
  std::string out = std::move(out_);
  out_.clear();
  return out;
}

}  // namespace hef::telemetry
