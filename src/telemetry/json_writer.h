// Minimal streaming JSON writer shared by every telemetry exporter (the
// bench report schema, the metrics dump, the chrome://tracing trace-event
// file). Deliberately tiny: objects/arrays with automatic comma handling
// and correct string escaping — no DOM, no parsing. Writers that need
// parsing (the schema test) use a purpose-built checker instead.

#ifndef HEF_TELEMETRY_JSON_WRITER_H_
#define HEF_TELEMETRY_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace hef::telemetry {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Key inside an object; must be followed by exactly one value.
  JsonWriter& Key(const std::string& key);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(std::int64_t value);
  JsonWriter& UInt(std::uint64_t value);
  JsonWriter& Double(double value);  // NaN / Inf render as null
  JsonWriter& Bool(bool value);
  JsonWriter& Null();
  // Splices a pre-rendered JSON value verbatim (caller guarantees
  // validity) — lets higher layers contribute sections without this
  // writer knowing their shape.
  JsonWriter& Raw(const std::string& json);

  // Finishes the document and returns it. The writer is reset.
  std::string Take();

  static std::string Escape(const std::string& text);

 private:
  void BeforeValue();

  std::string out_;
  // One entry per open container: true once a value was written (so the
  // next value needs a leading comma).
  std::vector<bool> has_value_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_JSON_WRITER_H_
