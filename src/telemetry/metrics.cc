#include "telemetry/metrics.h"

#include <bit>

#include "telemetry/json_writer.h"

namespace hef::telemetry {

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += BucketCount(i);
  return total;
}

double Histogram::Mean() const {
  const std::uint64_t count = Count();
  return count == 0 ? 0.0
                    : static_cast<double>(Sum()) / static_cast<double>(count);
}

std::uint64_t Histogram::ApproxPercentile(double p) const {
  const std::uint64_t count = Count();
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += BucketCount(i);
    if (seen > 0 && seen >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

int Histogram::BucketIndex(std::uint64_t value) {
  return std::bit_width(value);  // 0 for value 0, else 1 + floor(log2)
}

std::uint64_t Histogram::BucketLowerBound(int i) {
  HEF_DCHECK(i >= 0 && i < kBuckets);
  return i == 0 ? 0 : 1ull << (i - 1);
}

std::uint64_t Histogram::BucketUpperBound(int i) {
  HEF_DCHECK(i >= 0 && i < kBuckets);
  if (i == 0) return 0;
  if (i == 64) return ~0ull;
  return (1ull << i) - 1;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w.Key(name).UInt(c->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w.Key(name).Double(g->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h->Count());
    w.Key("sum").UInt(h->Sum());
    w.Key("mean").Double(h->Mean());
    w.Key("p50").UInt(h->ApproxPercentile(0.50));
    w.Key("p99").UInt(h->ApproxPercentile(0.99));
    w.Key("buckets").BeginArray();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t count = h->BucketCount(i);
      if (count == 0) continue;
      w.BeginObject();
      w.Key("le").UInt(Histogram::BucketUpperBound(i));
      w.Key("count").UInt(count);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace hef::telemetry
