#include "telemetry/metrics.h"

#include <algorithm>
#include <bit>

#include "telemetry/json_writer.h"
#include "telemetry/prometheus.h"

namespace hef::telemetry {

std::uint64_t Histogram::Count() const {
  std::uint64_t total = 0;
  for (int i = 0; i < kBuckets; ++i) total += BucketCount(i);
  return total;
}

double Histogram::Mean() const {
  const std::uint64_t count = Count();
  return count == 0 ? 0.0
                    : static_cast<double>(Sum()) / static_cast<double>(count);
}

std::uint64_t Histogram::ApproxPercentile(double p) const {
  const std::uint64_t count = Count();
  if (count == 0) return 0;
  const auto target = static_cast<std::uint64_t>(
      p * static_cast<double>(count));
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += BucketCount(i);
    if (seen > 0 && seen >= target) return BucketUpperBound(i);
  }
  return BucketUpperBound(kBuckets - 1);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t count = Count();
  if (count == 0) return 0.0;
  if (q < 0) q = 0;
  if (q > 1) q = 1;
  // Nearest-rank position (1-based) of the requested quantile.
  const double rank = q * static_cast<double>(count);
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    const std::uint64_t after = seen + in_bucket;
    if (static_cast<double>(after) >= rank) {
      // Interpolate linearly between the bucket's bounds by how far the
      // rank sits among this bucket's samples.
      const double lo = static_cast<double>(BucketLowerBound(i));
      const double hi = static_cast<double>(BucketUpperBound(i));
      const double within =
          (rank - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::min(1.0, std::max(0.0, within));
    }
    seen = after;
  }
  return static_cast<double>(BucketUpperBound(kBuckets - 1));
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

int Histogram::BucketIndex(std::uint64_t value) {
  const int w = std::bit_width(value);  // 0 for value 0, else 1+floor(log2)
  if (w <= kSubBucketBits + 1) return static_cast<int>(value);  // exact
  // value lies in octave [2^(w-1), 2^w); keep the top kSubBucketBits+1
  // bits: the leading 1 plus the linear sub-bucket within the octave.
  const int shift = w - kSubBucketBits - 1;
  return ((w - kSubBucketBits - 1) << kSubBucketBits) +
         static_cast<int>(value >> shift);
}

std::uint64_t Histogram::BucketLowerBound(int i) {
  HEF_DCHECK(i >= 0 && i < kBuckets);
  if (i < 2 * kSubBuckets) return static_cast<std::uint64_t>(i);
  // Inverse of BucketIndex: i = ((w - kSubBucketBits - 1) << kSubBucketBits)
  // + m with m in [kSubBuckets, 2*kSubBuckets), so w = (i >> kSubBucketBits)
  // + kSubBucketBits and the bucket starts at m << (w - kSubBucketBits - 1).
  const int shift = (i >> kSubBucketBits) - 1;
  const std::uint64_t m =
      static_cast<std::uint64_t>(kSubBuckets + (i & (kSubBuckets - 1)));
  return m << shift;
}

std::uint64_t Histogram::BucketUpperBound(int i) {
  HEF_DCHECK(i >= 0 && i < kBuckets);
  if (i == kBuckets - 1) return ~0ull;
  return BucketLowerBound(i + 1) - 1;
}

MetricsRegistry& MetricsRegistry::Get() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, c] : counters_) {
    w.Key(name).UInt(c->value());
  }
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, g] : gauges_) {
    w.Key(name).Double(g->value());
  }
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name).BeginObject();
    w.Key("count").UInt(h->Count());
    w.Key("sum").UInt(h->Sum());
    w.Key("mean").Double(h->Mean());
    w.Key("p50").UInt(h->ApproxPercentile(0.50));
    w.Key("p90").UInt(h->ApproxPercentile(0.90));
    w.Key("p99").UInt(h->ApproxPercentile(0.99));
    w.Key("p999").UInt(h->ApproxPercentile(0.999));
    w.Key("buckets").BeginArray();
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t count = h->BucketCount(i);
      if (count == 0) continue;
      w.BeginObject();
      w.Key("lower").UInt(Histogram::BucketLowerBound(i));
      w.Key("le").UInt(Histogram::BucketUpperBound(i));
      w.Key("count").UInt(count);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.Take();
}

void MetricsRegistry::ResetAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace hef::telemetry
