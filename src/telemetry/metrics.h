// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-scale (power-of-two) buckets.
//
// Producers look a metric up once (the returned reference is stable for
// the registry's lifetime) and bump it with relaxed atomics, so metrics
// can live on warm paths: a counter increment is one lock-free add. The
// registry itself is only locked during lookup and export.
//
// Naming convention (see docs/observability.md): dot-separated
// "<subsystem>.<noun>[.<detail>]", e.g. "engine.rows_scanned",
// "tuner.nodes_pruned", "table.probe_length".

#ifndef HEF_TELEMETRY_METRICS_H_
#define HEF_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace hef::telemetry {

class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

// Log-linear (HDR-style) histogram over unsigned 64-bit samples. Values
// below 2^(kSubBucketBits+1) land in exact singleton buckets; every
// higher power-of-two octave is split into 2^kSubBucketBits linear
// sub-buckets, so the relative width of any bucket is at most
// 2^-kSubBucketBits (6.25%) — tight enough that a percentile read off the
// bucket grid is within one bucket bound of the exact order statistic.
// Fixed buckets keep Observe() allocation-free and exports schema-stable.
class Histogram {
 public:
  // 16 linear sub-buckets per octave; values < 32 are exact.
  static constexpr int kSubBucketBits = 4;
  static constexpr int kSubBuckets = 1 << kSubBucketBits;
  // Index of the last bucket (holding values up to 2^64-1) plus one:
  // BucketIndex(~0ull) == ((64 - kSubBucketBits - 1) << kSubBucketBits)
  //                       + 2 * kSubBuckets - 1.
  static constexpr int kBuckets =
      ((64 - kSubBucketBits - 1) << kSubBucketBits) + 2 * kSubBuckets;

  void Observe(std::uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t Count() const;
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  std::uint64_t BucketCount(int i) const {
    HEF_DCHECK(i >= 0 && i < kBuckets);
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Upper bound (inclusive) of the bucket where the cumulative count first
  // reaches `p` (0 < p <= 1) of the total; 0 on an empty histogram.
  std::uint64_t ApproxPercentile(double p) const;
  // Quantile estimate with linear interpolation inside the target bucket
  // (q in [0, 1]); bounded by the bucket's value range, so the error is at
  // most one bucket width. 0 on an empty histogram.
  double Quantile(double q) const;
  void Reset();

  static int BucketIndex(std::uint64_t value);
  // Inclusive value range covered by bucket i.
  static std::uint64_t BucketLowerBound(int i);
  static std::uint64_t BucketUpperBound(int i);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

// Named metric store. `Get()` is the process-wide instance; tests may
// construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  HEF_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  static MetricsRegistry& Get();

  // Find-or-create; returned references remain valid for the registry's
  // lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  // lexicographic order (deterministic for golden tests).
  std::string ToJson() const;

  // Prometheus text exposition format (version 0.0.4): counters render as
  // counter series, gauges as gauges, histograms as cumulative
  // `_bucket{le=...}` series plus `_sum`/`_count`. Metric names are
  // sanitized through PrometheusName (see telemetry/prometheus.h).
  std::string ToPrometheusText() const;

  // Zeroes every metric (names stay registered). For benches and tests.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_METRICS_H_
