// Process-wide metrics registry: counters, gauges, and histograms with
// fixed log-scale (power-of-two) buckets.
//
// Producers look a metric up once (the returned reference is stable for
// the registry's lifetime) and bump it with relaxed atomics, so metrics
// can live on warm paths: a counter increment is one lock-free add. The
// registry itself is only locked during lookup and export.
//
// Naming convention (see docs/observability.md): dot-separated
// "<subsystem>.<noun>[.<detail>]", e.g. "engine.rows_scanned",
// "tuner.nodes_pruned", "table.probe_length".

#ifndef HEF_TELEMETRY_METRICS_H_
#define HEF_TELEMETRY_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/macros.h"

namespace hef::telemetry {

class Counter {
 public:
  void Increment(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0); }

 private:
  std::atomic<double> value_{0};
};

// Log-scale histogram over unsigned 64-bit samples. Bucket 0 holds the
// value 0; bucket i (1 <= i <= 64) holds values in [2^(i-1), 2^i) — i.e.
// a sample lands in the bucket indexed by its bit width. Fixed buckets
// keep Observe() allocation-free and exports schema-stable.
class Histogram {
 public:
  static constexpr int kBuckets = 65;

  void Observe(std::uint64_t value) {
    buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  std::uint64_t Count() const;
  std::uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  double Mean() const;
  std::uint64_t BucketCount(int i) const {
    HEF_DCHECK(i >= 0 && i < kBuckets);
    return buckets_[i].load(std::memory_order_relaxed);
  }
  // Upper bound (inclusive) of the bucket where the cumulative count first
  // reaches `p` (0 < p <= 1) of the total; 0 on an empty histogram.
  std::uint64_t ApproxPercentile(double p) const;
  void Reset();

  static int BucketIndex(std::uint64_t value);
  // Inclusive value range covered by bucket i.
  static std::uint64_t BucketLowerBound(int i);
  static std::uint64_t BucketUpperBound(int i);

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> sum_{0};
};

// Named metric store. `Get()` is the process-wide instance; tests may
// construct private registries.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  HEF_DISALLOW_COPY_AND_ASSIGN(MetricsRegistry);

  static MetricsRegistry& Get();

  // Find-or-create; returned references remain valid for the registry's
  // lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  // {"counters":{...},"gauges":{...},"histograms":{...}} with names in
  // lexicographic order (deterministic for golden tests).
  std::string ToJson() const;

  // Zeroes every metric (names stay registered). For benches and tests.
  void ResetAll();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_METRICS_H_
