#include "telemetry/metrics_http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "telemetry/diagnostics.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/metrics.h"

namespace hef::telemetry {

namespace {

// Writes the whole buffer, retrying on EINTR; best-effort (a scraper that
// hangs up mid-response is its problem, not ours).
void WriteAll(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;
    }
    off += static_cast<std::size_t>(n);
  }
}

std::string HttpResponse(const char* status_line, const std::string& body,
                         const char* content_type) {
  std::string out(status_line);
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: " + std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

}  // namespace

Status MetricsHttpServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status::Internal("metrics server already started");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::IoError(
        "bind 127.0.0.1:" + std::to_string(port) + ": " +
        std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, 8) != 0) {
    const Status st =
        Status::IoError(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
    port_ = ntohs(addr.sin_port);
  } else {
    port_ = port;
  }
  listen_fd_ = fd;
  stop_.store(false, std::memory_order_relaxed);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MetricsHttpServer::Stop() {
  if (listen_fd_ < 0) return;
  stop_.store(true, std::memory_order_relaxed);
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void MetricsHttpServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0) continue;  // timeout or EINTR: re-check the stop flag
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    HandleConnection(conn);
    close(conn);
  }
}

void MetricsHttpServer::HandleConnection(int conn) {
  // Bound the time a client may take to deliver its request: a stalled
  // connection gets 408 and is dropped instead of wedging the accept loop.
  pollfd cfd{conn, POLLIN, 0};
  int ready;
  do {
    ready = poll(&cfd, 1, read_timeout_ms_);
  } while (ready < 0 && errno == EINTR);
  if (ready <= 0) {
    WriteAll(conn, HttpResponse("HTTP/1.1 408 Request Timeout",
                                "request not received in time\n",
                                "text/plain"));
    return;
  }
  // One short read is enough for the request line of a scrape; anything
  // longer than 4 KiB of headers is not a scraper we serve.
  char buf[4096];
  const ssize_t n = read(conn, buf, sizeof(buf) - 1);
  if (n <= 0) return;
  buf[n] = '\0';
  const std::string request(buf);
  const bool get = request.rfind("GET ", 0) == 0;
  const std::string::size_type sp = request.find(' ', 4);
  const std::string path =
      get && sp != std::string::npos ? request.substr(4, sp - 4) : "";
  if (!get) {
    WriteAll(conn, HttpResponse("HTTP/1.1 405 Method Not Allowed",
                                "method not allowed\n", "text/plain"));
  } else if (path == "/metrics") {
    WriteAll(conn,
             HttpResponse("HTTP/1.1 200 OK",
                          MetricsRegistry::Get().ToPrometheusText(),
                          "text/plain; version=0.0.4; charset=utf-8"));
  } else if (path == "/healthz") {
    WriteAll(conn, HttpResponse("HTTP/1.1 200 OK", "ok\n", "text/plain"));
  } else if (path == "/statusz") {
    WriteAll(conn, HttpResponse("HTTP/1.1 200 OK",
                                Diagnostics::Get().StatuszJson() + "\n",
                                "application/json"));
  } else if (path == "/tracez") {
    WriteAll(conn, HttpResponse("HTTP/1.1 200 OK",
                                Diagnostics::Get().TracezJson() + "\n",
                                "application/json"));
  } else if (path == "/flightz") {
    WriteAll(conn, HttpResponse("HTTP/1.1 200 OK",
                                FlightRecorder::Get().ToJson() + "\n",
                                "application/json"));
  } else {
    WriteAll(conn,
             HttpResponse("HTTP/1.1 404 Not Found",
                          "unknown path; served endpoints: /metrics "
                          "/healthz /statusz /tracez /flightz\n",
                          "text/plain"));
  }
}

}  // namespace hef::telemetry
