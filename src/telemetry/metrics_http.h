// Minimal blocking HTTP endpoint exposing the observability surface —
// enough for `curl localhost:PORT/metrics` or a Prometheus scrape job
// against a long bench run, deliberately nothing more (one accept loop,
// one request per connection, no keep-alive, no TLS). Binds loopback
// only: this is an observability side-channel, not a serving surface.
//
//   MetricsHttpServer server;
//   Status st = server.Start(9464);          // 0 picks an ephemeral port
//   ... run the workload; curl http://127.0.0.1:<server.port()>/metrics
//   server.Stop();                           // also runs at destruction
//
// Routes (GET only; any other method 405, unknown path 404 with a body
// listing what exists):
//   /metrics  Prometheus text 0.0.4 from MetricsRegistry
//   /healthz  200 "ok" liveness probe
//   /statusz  hef-statusz-v1 JSON: build info, uptime, active queries
//   /tracez   hef-tracez-v1 JSON: recent completions with explain trees
//   /flightz  hef-flight-v1 JSON: flight-recorder ring dump
//
// The accept loop runs on one background thread and polls with a short
// timeout so Stop() returns promptly. Each accepted connection gets a
// bounded read window (read_timeout_ms) — a client that connects and
// stalls gets 408 and is dropped instead of wedging the loop.

#ifndef HEF_TELEMETRY_METRICS_HTTP_H_
#define HEF_TELEMETRY_METRICS_HTTP_H_

#include <atomic>
#include <thread>

#include "common/macros.h"
#include "common/status.h"

namespace hef::telemetry {

class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  HEF_DISALLOW_COPY_AND_ASSIGN(MetricsHttpServer);

  // Binds 127.0.0.1:port (port 0 = kernel-assigned) and starts the accept
  // thread. IoError when the socket cannot be created or bound; Internal
  // when already started.
  Status Start(int port);

  // Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return listen_fd_ >= 0; }
  // The bound port (useful with Start(0)); 0 when not running.
  int port() const { return port_; }

  // How long an accepted connection may take to deliver its request
  // before it is answered 408 and closed. Call before Start. Tests use a
  // small value to exercise the stalled-client path quickly.
  void set_read_timeout_ms(int ms) { read_timeout_ms_ = ms; }

 private:
  void AcceptLoop();
  void HandleConnection(int conn);

  int listen_fd_ = -1;
  int port_ = 0;
  int read_timeout_ms_ = 2000;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_METRICS_HTTP_H_
