// Minimal blocking HTTP endpoint exposing the metrics registry in
// Prometheus text format — enough for `curl localhost:PORT/metrics` or a
// Prometheus scrape job against a long bench run, deliberately nothing
// more (one accept loop, one request per connection, no keep-alive, no
// TLS). Binds loopback only: this is an observability side-channel, not
// a serving surface.
//
//   MetricsHttpServer server;
//   Status st = server.Start(9464);          // 0 picks an ephemeral port
//   ... run the workload; curl http://127.0.0.1:<server.port()>/metrics
//   server.Stop();                           // also runs at destruction
//
// GET /metrics returns 200 text/plain (version 0.0.4) from
// MetricsRegistry::Get().ToPrometheusText(); any other path is 404, any
// other method 405. The accept loop runs on one background thread and
// polls with a short timeout so Stop() returns promptly.

#ifndef HEF_TELEMETRY_METRICS_HTTP_H_
#define HEF_TELEMETRY_METRICS_HTTP_H_

#include <atomic>
#include <thread>

#include "common/macros.h"
#include "common/status.h"

namespace hef::telemetry {

class MetricsHttpServer {
 public:
  MetricsHttpServer() = default;
  ~MetricsHttpServer() { Stop(); }
  HEF_DISALLOW_COPY_AND_ASSIGN(MetricsHttpServer);

  // Binds 127.0.0.1:port (port 0 = kernel-assigned) and starts the accept
  // thread. IoError when the socket cannot be created or bound; Internal
  // when already started.
  Status Start(int port);

  // Stops the accept thread and closes the socket. Idempotent.
  void Stop();

  bool running() const { return listen_fd_ >= 0; }
  // The bound port (useful with Start(0)); 0 when not running.
  int port() const { return port_; }

 private:
  void AcceptLoop();

  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_METRICS_HTTP_H_
