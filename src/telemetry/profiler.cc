#include "telemetry/profiler.h"

#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/stopwatch.h"
#include "common/text_table.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

// glibc exposes SIGEV_THREAD_ID / sigev_notify_thread_id only under
// _GNU_SOURCE; provide the stable Linux ABI values when the headers do
// not (the syscall interface itself is unconditional).
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif

namespace hef::telemetry {

namespace {

// A sample as the signal handler writes it: fixed-size, no allocation.
struct RawSample {
  std::uint64_t nanos = 0;
  std::int32_t depth = 0;
  const char* frames[ProfileSample::kMaxFrames] = {};
};

// Per-thread profiling state. Heap-allocated, registered in a global
// list, and never freed: a late signal delivered while a thread is
// tearing down must still find valid memory, and the count of threads
// that ever register is small (main + pool workers).
struct ThreadState {
  static constexpr std::uint64_t kRingSize = 1u << 14;  // 16384 samples

  pid_t tid = 0;
  std::uint32_t thread_id = 0;
  internal::SpanStack* stack = nullptr;

  timer_t timer{};
  bool timer_armed = false;
  bool alive = true;  // guarded by g_mu; false once the thread exited

  // Signal-handler-shared state. `head` counts samples ever produced;
  // the ring holds the last kRingSize of them. `in_handler` lets Stop()
  // wait out an in-flight handler before restoring the old disposition.
  std::atomic<int> in_handler{0};
  std::atomic<std::uint64_t> head{0};
  std::uint64_t drained = 0;  // consumed by TakeSamples (main thread only)
  RawSample* ring = nullptr;  // allocated on first arm, never freed
};

std::atomic<bool> g_active{false};
std::atomic<std::uint64_t> g_period_nanos{0};
std::atomic<std::uint64_t> g_dropped{0};
std::mutex g_mu;  // guards the registry, timers, and start/stop protocol
struct sigaction g_old_action;

std::vector<ThreadState*>& Registry() {
  static auto* registry = new std::vector<ThreadState*>();
  return *registry;
}

thread_local ThreadState* t_state = nullptr;

Counter& SamplesDroppedCounter() {
  static Counter& counter =
      MetricsRegistry::Get().counter("telemetry.profiler_samples_dropped");
  return counter;
}

// clock_gettime is async-signal-safe (POSIX) and the vDSO fast path does
// not even enter the kernel. Matches MonotonicNanos() (span timestamps)
// so profiler samples and trace events share a time base.
std::uint64_t HandlerNanos() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC_RAW, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void SigprofHandler(int /*signo*/, siginfo_t* /*info*/, void* /*ctx*/) {
  const int saved_errno = errno;
  ThreadState* state = t_state;
  if (state != nullptr) {
    state->in_handler.store(1, std::memory_order_seq_cst);
    // Re-check after publishing in_handler: Stop() clears g_active first,
    // then waits for in_handler to drop, so a handler that passes this
    // check is guaranteed to finish its ring write before rings are read.
    if (g_active.load(std::memory_order_seq_cst) && state->ring != nullptr) {
      const std::uint64_t head = state->head.load(std::memory_order_relaxed);
      RawSample& slot = state->ring[head & (ThreadState::kRingSize - 1)];
      slot.nanos = HandlerNanos();
      const int depth = state->stack->depth.load(std::memory_order_relaxed);
      // Pairs with the signal fence in SpanScope::Begin/End on this same
      // thread: a depth of d implies frames[0..d) are fully written.
      std::atomic_signal_fence(std::memory_order_acquire);
      slot.depth = depth;
      const int copy = std::min(
          {depth, ProfileSample::kMaxFrames, internal::SpanStack::kMaxDepth});
      for (int i = 0; i < copy; ++i) slot.frames[i] = state->stack->frames[i];
      state->head.store(head + 1, std::memory_order_release);
    }
    state->in_handler.store(0, std::memory_order_seq_cst);
  }
  errno = saved_errno;
}

Status ArmTimer(ThreadState* state) {
  if (state->timer_armed || !state->alive) return Status::OK();
  if (state->ring == nullptr) {
    state->ring = new RawSample[ThreadState::kRingSize];
  }
  sigevent sev;
  std::memset(&sev, 0, sizeof(sev));
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = state->tid;
  if (timer_create(CLOCK_MONOTONIC, &sev, &state->timer) != 0) {
    return Status::IoError(std::string("timer_create: ") +
                           std::strerror(errno));
  }
  const std::uint64_t period = g_period_nanos.load(std::memory_order_relaxed);
  itimerspec its;
  std::memset(&its, 0, sizeof(its));
  its.it_interval.tv_sec = static_cast<time_t>(period / 1000000000ull);
  its.it_interval.tv_nsec = static_cast<long>(period % 1000000000ull);
  its.it_value = its.it_interval;
  if (timer_settime(state->timer, 0, &its, nullptr) != 0) {
    const Status st = Status::IoError(std::string("timer_settime: ") +
                                      std::strerror(errno));
    timer_delete(state->timer);
    return st;
  }
  state->timer_armed = true;
  return Status::OK();
}

void DisarmTimer(ThreadState* state) {
  if (!state->timer_armed) return;
  timer_delete(state->timer);  // also disarms
  state->timer_armed = false;
}

// Registers the calling thread; caller holds g_mu.
ThreadState* RegisterCurrentThreadLocked() {
  if (t_state != nullptr) return t_state;
  auto* state = new ThreadState();
  state->tid = static_cast<pid_t>(syscall(SYS_gettid));
  state->thread_id = SpanTracer::CurrentThreadId();
  // Materialize the thread-local span stack now so the signal handler
  // never takes a lazy-init path.
  state->stack = &internal::CurrentSpanStack();
  Registry().push_back(state);
  t_state = state;
  return state;
}

// Disarms the exiting thread's timer so SIGPROF is never delivered to a
// dead tid (Linux would reuse the id). The state object itself stays in
// the registry so buffered samples survive until TakeSamples().
struct ThreadUnregisterer {
  bool armed = false;
  ~ThreadUnregisterer() {
    if (t_state == nullptr) return;
    std::lock_guard<std::mutex> lock(g_mu);
    DisarmTimer(t_state);
    t_state->alive = false;
    t_state = nullptr;
  }
};
thread_local ThreadUnregisterer t_unregisterer;

std::string SampleStackKey(const ProfileSample& sample) {
  if (sample.depth <= 0) return "(no span)";
  std::string key;
  const int frames =
      std::min<int>(sample.depth, ProfileSample::kMaxFrames);
  for (int i = 0; i < frames; ++i) {
    if (i > 0) key += ';';
    key += sample.frames[i] != nullptr ? sample.frames[i] : "(null)";
  }
  if (sample.depth > ProfileSample::kMaxFrames) key += ";(truncated)";
  return key;
}

const char* InnermostSpan(const ProfileSample& sample) {
  if (sample.depth <= 0) return "(no span)";
  if (sample.depth > ProfileSample::kMaxFrames) return "(truncated)";
  const char* name = sample.frames[sample.depth - 1];
  return name != nullptr ? name : "(null)";
}

}  // namespace

Profiler& Profiler::Get() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

Status Profiler::Start(const ProfilerOptions& options) {
  std::lock_guard<std::mutex> lock(g_mu);
  if (g_active.load(std::memory_order_relaxed)) {
    return Status::Internal("profiler already running");
  }
  const int hz = std::clamp(options.sample_hz, 1, 10000);
  g_period_nanos.store(1000000000ull / static_cast<std::uint64_t>(hz),
                       std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_sigaction = SigprofHandler;
  action.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&action.sa_mask);
  if (sigaction(SIGPROF, &action, &g_old_action) != 0) {
    return Status::IoError(std::string("sigaction: ") + std::strerror(errno));
  }

  // Span stacks must be maintained before the first signal fires.
  SpanTracer::Get().SetProfiling(true);
  g_active.store(true, std::memory_order_seq_cst);

  ThreadState* self = RegisterCurrentThreadLocked();
  t_unregisterer.armed = true;
  Status status = Status::OK();
  for (ThreadState* state : Registry()) {
    Status st = ArmTimer(state);
    if (!st.ok() && status.ok()) status = st;
  }
  (void)self;
  if (!status.ok()) {
    StopLocked();
    return status;
  }
  return Status::OK();
}

void Profiler::StopLocked() {
  if (!g_active.load(std::memory_order_relaxed)) return;
  // Order matters: clear the active flag, delete the timers, wait out
  // in-flight handlers, then restore the old disposition. A handler that
  // starts after the flag clears records nothing; one that started
  // before is waited for, so rings are quiescent when this returns.
  g_active.store(false, std::memory_order_seq_cst);
  for (ThreadState* state : Registry()) DisarmTimer(state);
  for (ThreadState* state : Registry()) {
    while (state->in_handler.load(std::memory_order_seq_cst) != 0) {
      sched_yield();
    }
  }
  sigaction(SIGPROF, &g_old_action, nullptr);
  SpanTracer::Get().SetProfiling(false);
}

void Profiler::Stop() {
  std::lock_guard<std::mutex> lock(g_mu);
  StopLocked();
}

bool Profiler::running() const {
  return g_active.load(std::memory_order_relaxed);
}

void Profiler::RegisterCurrentThread() {
  std::lock_guard<std::mutex> lock(g_mu);
  ThreadState* state = RegisterCurrentThreadLocked();
  t_unregisterer.armed = true;
  if (g_active.load(std::memory_order_relaxed)) {
    (void)ArmTimer(state);  // best-effort: a worker that cannot arm is
                            // simply not sampled
  }
}

std::vector<ProfileSample> Profiler::TakeSamples() {
  std::lock_guard<std::mutex> lock(g_mu);
  // Draining while timers fire would race the rings; a caller that
  // forgets to Stop() gets an implicit one.
  StopLocked();
  std::vector<ProfileSample> out;
  for (ThreadState* state : Registry()) {
    if (state->ring == nullptr) continue;
    const std::uint64_t head = state->head.load(std::memory_order_acquire);
    const std::uint64_t produced = head - state->drained;
    const std::uint64_t kept = std::min(produced, ThreadState::kRingSize);
    const std::uint64_t lost = produced - kept;
    if (lost > 0) {
      g_dropped.fetch_add(lost, std::memory_order_relaxed);
      SamplesDroppedCounter().Increment(lost);
    }
    for (std::uint64_t i = head - kept; i != head; ++i) {
      const RawSample& raw = state->ring[i & (ThreadState::kRingSize - 1)];
      ProfileSample sample;
      sample.nanos = raw.nanos;
      sample.thread_id = state->thread_id;
      sample.depth = raw.depth;
      const int copy =
          std::min<int>(std::max(raw.depth, 0), ProfileSample::kMaxFrames);
      for (int f = 0; f < copy; ++f) sample.frames[f] = raw.frames[f];
      out.push_back(sample);
    }
    state->drained = head;
  }
  std::sort(out.begin(), out.end(),
            [](const ProfileSample& a, const ProfileSample& b) {
              return a.nanos < b.nanos;
            });
  return out;
}

std::uint64_t Profiler::samples_dropped() const {
  return g_dropped.load(std::memory_order_relaxed);
}

std::uint64_t Profiler::period_nanos() const {
  return g_period_nanos.load(std::memory_order_relaxed);
}

std::string Profiler::FoldedStacks(const std::vector<ProfileSample>& samples) {
  std::map<std::string, std::uint64_t> counts;
  for (const ProfileSample& sample : samples) {
    ++counts[SampleStackKey(sample)];
  }
  std::string out;
  for (const auto& [stack, count] : counts) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string Profiler::SelfTimeTable(const std::vector<ProfileSample>& samples,
                                    std::uint64_t period_nanos) {
  std::map<std::string, std::uint64_t> self;
  for (const ProfileSample& sample : samples) {
    ++self[InnermostSpan(sample)];
  }
  std::vector<std::pair<std::string, std::uint64_t>> rows(self.begin(),
                                                          self.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  TextTable table;
  table.AddRow({"span", "samples", "self_ms", "self_pct"});
  const double total = samples.empty() ? 1.0 : static_cast<double>(samples.size());
  for (const auto& [name, count] : rows) {
    table.AddRow({name, std::to_string(count),
                  TextTable::Num(static_cast<double>(count) *
                                 static_cast<double>(period_nanos) * 1e-6),
                  TextTable::Num(100.0 * static_cast<double>(count) / total,
                                 1)});
  }
  char line[96];
  std::snprintf(line, sizeof(line),
                "%zu samples, %.1f%% attributed to spans\n", samples.size(),
                100.0 * AttributedFraction(samples));
  return table.ToString() + line;
}

double Profiler::AttributedFraction(
    const std::vector<ProfileSample>& samples) {
  if (samples.empty()) return 0.0;
  std::uint64_t attributed = 0;
  for (const ProfileSample& sample : samples) {
    if (sample.depth > 0) ++attributed;
  }
  return static_cast<double>(attributed) /
         static_cast<double>(samples.size());
}

Status Profiler::WriteFoldedFile(const std::string& path,
                                 const std::vector<ProfileSample>& samples) {
  const std::string folded = FoldedStacks(samples);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open folded-stack file '" + path + "'");
  }
  const std::size_t written = std::fwrite(folded.data(), 1, folded.size(), f);
  std::fclose(f);
  if (written != folded.size()) {
    return Status::IoError("short write to folded-stack file '" + path + "'");
  }
  return Status::OK();
}

}  // namespace hef::telemetry
