// Signal-based sampling wall-clock profiler attributing samples to spans.
//
// A per-thread POSIX timer (timer_create + SIGEV_THREAD_ID) delivers
// SIGPROF to every registered thread at a fixed wall-clock rate; the
// async-signal-safe handler copies the thread's open-span stack (pushed
// by HEF_TRACE_SPAN scopes while profiling is on, see telemetry/span.h)
// into a lock-free per-thread ring buffer. Sampling wall time — rather
// than CPU time — is deliberate: a serving engine's latency includes its
// stalls, and an idle worker shows up as samples outside any span
// instead of disappearing.
//
// Output renders two ways:
//   - FoldedStacks(): collapsed-stack ("folded") text, one
//     `outer;inner count` line per distinct stack — feed to
//     flamegraph.pl or paste into speedscope.app.
//   - SelfTimeTable(): per-span self-time attribution (samples whose
//     *innermost* open span is that span), with the attributed fraction
//     the acceptance gate checks.
//
// Cost model: when the profiler is off nothing is installed — no signal
// handler, no timers, and spans keep their one-atomic-load fast path.
// While profiling, each sample costs one signal delivery (~1-2 us); the
// default 499 Hz rate perturbs a query run by well under 1%.
//
// Threads: Start() registers the calling thread; TaskPool workers
// register themselves at spawn. Other threads opt in with
// RegisterCurrentThread(). Registration while stopped is recorded and
// armed on the next Start().

#ifndef HEF_TELEMETRY_PROFILER_H_
#define HEF_TELEMETRY_PROFILER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace hef::telemetry {

struct ProfilerOptions {
  // Wall-clock sampling rate per thread. Prime by default so sampling
  // cannot phase-lock with millisecond-periodic work.
  int sample_hz = 499;
};

// One captured sample: the sampled thread's open-span stack, outermost
// first. Frames are static string literals (span names). depth == 0 means
// the thread held no open span (idle, or outside instrumented code).
struct ProfileSample {
  static constexpr int kMaxFrames = 16;
  std::uint64_t nanos = 0;  // CLOCK_MONOTONIC_RAW capture time
  std::uint32_t thread_id = 0;
  std::int32_t depth = 0;   // open spans at capture (may exceed kMaxFrames)
  const char* frames[kMaxFrames] = {};
};

class Profiler {
 public:
  static Profiler& Get();
  HEF_DISALLOW_COPY_AND_ASSIGN(Profiler);

  // Installs the SIGPROF handler, arms a timer for every registered
  // thread (and registers + arms the calling thread), and turns on span
  // stack maintenance. Internal when already running; IoError when the
  // handler or timers cannot be installed.
  Status Start(const ProfilerOptions& options = ProfilerOptions());

  // Disarms and deletes all timers, restores the previous SIGPROF
  // disposition, and waits for in-flight handlers to retire. Samples stay
  // buffered until TakeSamples(). Idempotent.
  void Stop();

  bool running() const;

  // Arms a sampling timer for the calling thread (no-op if already
  // registered). Safe to call whether or not the profiler is running.
  static void RegisterCurrentThread();

  // Removes and returns all buffered samples, ordered by capture time.
  // Ring overflow (a thread producing faster than the rings hold between
  // Start and TakeSamples) is counted in samples_dropped() and in the
  // `telemetry.profiler_samples_dropped` metric.
  std::vector<ProfileSample> TakeSamples();
  std::uint64_t samples_dropped() const;

  // The sampling period of the last Start(), in nanoseconds (0 before
  // any Start) — multiply by a sample count to estimate self time.
  std::uint64_t period_nanos() const;

  // Collapsed-stack text: `span;span;span count\n` per distinct stack,
  // lexicographically sorted. Stackless samples fold into "(no span)";
  // stacks deeper than kMaxFrames get a ";(truncated)" leaf.
  static std::string FoldedStacks(const std::vector<ProfileSample>& samples);

  // Aligned per-span self-time table plus a trailing attribution line
  // ("N samples, X% attributed to spans"). `period_nanos` scales sample
  // counts to estimated self milliseconds.
  static std::string SelfTimeTable(const std::vector<ProfileSample>& samples,
                                   std::uint64_t period_nanos);

  // Fraction of samples whose stack holds at least one open span
  // (0 when there are no samples).
  static double AttributedFraction(
      const std::vector<ProfileSample>& samples);

  // FoldedStacks() to a file.
  static Status WriteFoldedFile(const std::string& path,
                                const std::vector<ProfileSample>& samples);

 private:
  Profiler() = default;

  // Stop() body; caller holds the profiler mutex.
  void StopLocked();
};

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_PROFILER_H_
