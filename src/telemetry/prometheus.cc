#include "telemetry/prometheus.h"

#include <cmath>
#include <cstdio>

#include "telemetry/metrics.h"

namespace hef::telemetry {

namespace {

bool IsNameChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void AppendUInt(std::string* out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu",
                static_cast<unsigned long long>(v));
  *out += buf;
}

}  // namespace

std::string PrometheusName(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (const char c : name) {
    out += IsNameChar(c) ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string PrometheusEscapeLabel(const std::string& value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string PrometheusDouble(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  // Trim to the shortest representation that round-trips.
  for (int precision = 1; precision < 17; ++precision) {
    char probe[64];
    std::snprintf(probe, sizeof(probe), "%.*g", precision, value);
    double parsed = 0;
    if (std::sscanf(probe, "%lf", &parsed) == 1 && parsed == value) {
      return probe;
    }
  }
  return buf;
}

// Defined here rather than metrics.cc so the exposition format and its
// helpers stay in one translation unit.
std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    const std::string n = PrometheusName(name);
    out += "# TYPE " + n + " counter\n" + n + " ";
    AppendUInt(&out, c->value());
    out += "\n";
  }
  for (const auto& [name, g] : gauges_) {
    const std::string n = PrometheusName(name);
    out += "# TYPE " + n + " gauge\n" + n + " " +
           PrometheusDouble(g->value()) + "\n";
  }
  for (const auto& [name, h] : histograms_) {
    const std::string n = PrometheusName(name);
    out += "# TYPE " + n + " histogram\n";
    std::uint64_t cumulative = 0;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      const std::uint64_t count = h->BucketCount(i);
      if (count == 0) continue;
      cumulative += count;
      out += n + "_bucket{le=\"";
      AppendUInt(&out, Histogram::BucketUpperBound(i));
      out += "\"} ";
      AppendUInt(&out, cumulative);
      out += "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} ";
    AppendUInt(&out, cumulative);
    out += "\n" + n + "_sum ";
    AppendUInt(&out, h->Sum());
    out += "\n" + n + "_count ";
    AppendUInt(&out, cumulative);
    out += "\n";
  }
  return out;
}

}  // namespace hef::telemetry
