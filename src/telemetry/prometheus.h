// Prometheus text exposition (format version 0.0.4) for the metrics
// registry, plus the name/label sanitization helpers the renderer uses.
//
// The registry's dot-separated names ("exec.morsels_dispatched") map to
// Prometheus series names by replacing every character outside
// [a-zA-Z0-9_:] with '_' ("exec_morsels_dispatched"); a leading digit is
// prefixed with '_'. Histograms render as the conventional cumulative
// `<name>_bucket{le="..."}` series (only populated bucket boundaries plus
// the mandatory `le="+Inf"`), then `<name>_sum` and `<name>_count`.
// Scrape the output via MetricsHttpServer (telemetry/metrics_http.h).

#ifndef HEF_TELEMETRY_PROMETHEUS_H_
#define HEF_TELEMETRY_PROMETHEUS_H_

#include <string>

namespace hef::telemetry {

// Sanitizes a metric name to [a-zA-Z_:][a-zA-Z0-9_:]*. Empty input
// becomes "_".
std::string PrometheusName(const std::string& name);

// Escapes a label value per the exposition format: backslash, double
// quote and newline become \\, \" and \n.
std::string PrometheusEscapeLabel(const std::string& value);

// Renders a finite double the way Prometheus expects ("+Inf"/"-Inf"/"NaN"
// for non-finite values, shortest round-trip decimal otherwise).
std::string PrometheusDouble(double value);

}  // namespace hef::telemetry

#endif  // HEF_TELEMETRY_PROMETHEUS_H_
