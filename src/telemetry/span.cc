#include "telemetry/span.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/stopwatch.h"
#include "telemetry/json_writer.h"

namespace hef::telemetry {

namespace {

std::atomic<std::uint32_t> g_next_thread_id{0};
thread_local std::uint32_t t_thread_id = ~0u;
thread_local std::uint32_t t_depth = 0;

}  // namespace

SpanTracer& SpanTracer::Get() {
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

std::uint32_t SpanTracer::CurrentThreadId() {
  if (t_thread_id == ~0u) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

void SpanTracer::Record(SpanEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> SpanTracer::Drain() {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(events_);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_nanos < b.start_nanos;
                   });
  return out;
}

std::size_t SpanTracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string SpanTracer::ToTraceEventJson(
    const std::vector<SpanEvent>& events) {
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const SpanEvent& e : events) base = std::min(base, e.start_nanos);
  if (events.empty()) base = 0;

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ns");
  w.Key("traceEvents").BeginArray();
  for (const SpanEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String("hef");
    w.Key("ph").String("X");
    w.Key("ts").Double(static_cast<double>(e.start_nanos - base) * 1e-3);
    w.Key("dur").Double(static_cast<double>(e.duration_nanos) * 1e-3);
    w.Key("pid").Int(1);
    w.Key("tid").UInt(e.thread_id);
    w.Key("args").BeginObject();
    w.Key("depth").UInt(e.depth);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status SpanTracer::WriteTraceFile(const std::string& path) {
  const std::string json = ToTraceEventJson(Drain());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

void SpanScope::Begin(const char* name) {
  active_ = true;
  name_ = name;
  depth_ = t_depth++;
  start_ = MonotonicNanos();
}

void SpanScope::End() {
  const std::uint64_t end = MonotonicNanos();
  --t_depth;
  SpanEvent event;
  event.name = name_;
  event.start_nanos = start_;
  event.duration_nanos = end - start_;
  event.thread_id = SpanTracer::CurrentThreadId();
  event.depth = depth_;
  SpanTracer::Get().Record(std::move(event));
}

}  // namespace hef::telemetry
