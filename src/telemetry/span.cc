#include "telemetry/span.h"

#include <algorithm>
#include <cstdio>
#include <limits>

#include "common/stopwatch.h"
#include "telemetry/json_writer.h"
#include "telemetry/metrics.h"

namespace hef::telemetry {

namespace {

std::atomic<std::uint32_t> g_next_thread_id{0};
thread_local std::uint32_t t_thread_id = ~0u;
thread_local std::uint32_t t_depth = 0;
thread_local internal::SpanStack t_span_stack;

Counter& SpansDroppedCounter() {
  static Counter& counter =
      MetricsRegistry::Get().counter("telemetry.spans_dropped");
  return counter;
}

}  // namespace

namespace internal {

SpanStack& CurrentSpanStack() { return t_span_stack; }

}  // namespace internal

SpanTracer& SpanTracer::Get() {
  static SpanTracer* tracer = new SpanTracer();
  return *tracer;
}

std::uint32_t SpanTracer::CurrentThreadId() {
  if (t_thread_id == ~0u) {
    t_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

void SpanTracer::Record(SpanEvent event) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() < capacity_) {
      events_.push_back(std::move(event));
      return;
    }
    ++dropped_;
  }
  // Dropping must be observable, not silent: the counter survives Drain().
  SpansDroppedCounter().Increment();
}

void SpanTracer::RecordCounter(const char* track, std::uint64_t nanos,
                               double value) {
  std::lock_guard<std::mutex> lock(mu_);
  // Counter samples arrive at a bounded rate (the PMU sampler's period),
  // but share the capacity guard so a runaway producer cannot grow the
  // buffer without bound either.
  if (counter_events_.size() < capacity_) {
    counter_events_.push_back(CounterEvent{track, nanos, value});
  }
}

void SpanTracer::SetCapacity(std::size_t max_events) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = max_events;
}

std::uint64_t SpanTracer::spans_dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<SpanEvent> SpanTracer::Drain() {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(events_);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_nanos < b.start_nanos;
                   });
  return out;
}

std::vector<CounterEvent> SpanTracer::DrainCounters() {
  std::vector<CounterEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.swap(counter_events_);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const CounterEvent& a, const CounterEvent& b) {
                     return a.nanos < b.nanos;
                   });
  return out;
}

std::size_t SpanTracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string SpanTracer::ToTraceEventJson(
    const std::vector<SpanEvent>& events) {
  return ToTraceEventJson(events, {});
}

std::string SpanTracer::ToTraceEventJson(
    const std::vector<SpanEvent>& events,
    const std::vector<CounterEvent>& counters) {
  std::uint64_t base = std::numeric_limits<std::uint64_t>::max();
  for (const SpanEvent& e : events) base = std::min(base, e.start_nanos);
  for (const CounterEvent& c : counters) base = std::min(base, c.nanos);
  if (events.empty() && counters.empty()) base = 0;

  JsonWriter w;
  w.BeginObject();
  w.Key("displayTimeUnit").String("ns");
  w.Key("traceEvents").BeginArray();
  for (const SpanEvent& e : events) {
    w.BeginObject();
    w.Key("name").String(e.name);
    w.Key("cat").String("hef");
    w.Key("ph").String("X");
    w.Key("ts").Double(static_cast<double>(e.start_nanos - base) * 1e-3);
    w.Key("dur").Double(static_cast<double>(e.duration_nanos) * 1e-3);
    w.Key("pid").Int(1);
    w.Key("tid").UInt(e.thread_id);
    w.Key("args").BeginObject();
    w.Key("depth").UInt(e.depth);
    w.EndObject();
    w.EndObject();
  }
  for (const CounterEvent& c : counters) {
    w.BeginObject();
    w.Key("name").String(c.track);
    w.Key("cat").String("pmu");
    w.Key("ph").String("C");
    w.Key("ts").Double(static_cast<double>(c.nanos - base) * 1e-3);
    w.Key("pid").Int(1);
    w.Key("args").BeginObject();
    w.Key("value").Double(c.value);
    w.EndObject();
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

Status SpanTracer::WriteTraceFile(const std::string& path) {
  const std::string json = ToTraceEventJson(Drain(), DrainCounters());
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IoError("cannot open trace file '" + path + "'");
  }
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file '" + path + "'");
  }
  return Status::OK();
}

void SpanScope::Begin(const char* name, std::uint32_t mask) {
  name_ = name;
  depth_ = t_depth++;
  if ((mask & SpanTracer::kCaptureProfile) != 0) {
    // Publish the frame before the depth so a signal interrupting this
    // thread never reads an unwritten slot. Signal fences order the
    // stores against the handler on the same thread without any hardware
    // barrier cost.
    internal::SpanStack& stack = t_span_stack;
    const int d = stack.depth.load(std::memory_order_relaxed);
    if (d < internal::SpanStack::kMaxDepth) stack.frames[d] = name;
    std::atomic_signal_fence(std::memory_order_release);
    stack.depth.store(d + 1, std::memory_order_relaxed);
    flags_ |= SpanTracer::kCaptureProfile;
  }
  if ((mask & SpanTracer::kCaptureTrace) != 0) {
    start_ = MonotonicNanos();
    flags_ |= SpanTracer::kCaptureTrace;
  }
}

void SpanScope::End() {
  --t_depth;
  if ((flags_ & SpanTracer::kCaptureProfile) != 0) {
    internal::SpanStack& stack = t_span_stack;
    const int d = stack.depth.load(std::memory_order_relaxed);
    if (d > 0) {
      stack.depth.store(d - 1, std::memory_order_relaxed);
      std::atomic_signal_fence(std::memory_order_release);
    }
  }
  if ((flags_ & SpanTracer::kCaptureTrace) == 0) return;
  const std::uint64_t end = MonotonicNanos();
  SpanEvent event;
  event.name = name_;
  event.start_nanos = start_;
  event.duration_nanos = end - start_;
  event.thread_id = SpanTracer::CurrentThreadId();
  event.depth = depth_;
  SpanTracer::Get().Record(std::move(event));
}

}  // namespace hef::telemetry
