// Span tracing — decomposes a run into named, nested wall-clock scopes.
//
// The paper's analysis is per-operator (Tables III-IX attribute time and
// micro-architectural events to individual kernels); the tracer provides
// the substrate: any code can open a scope with HEF_TRACE_SPAN("name")
// and, when tracing is enabled, the scope's start/duration/thread/depth
// is recorded into a process-wide buffer that exports to the
// chrome://tracing / Perfetto trace-event format.
//
// Cost model: when all capture is disabled (the default) a scope is one
// relaxed atomic load and a predictable branch — cheap enough to leave in
// engine code permanently. Per-*block* operator timing inside the engine
// hot loop is NOT implemented with spans (it accumulates into plain
// arrays, see engine.cc); spans mark phase boundaries: query runs, hash
// builds, pipeline execution, tuner measurements.
//
// Two consumers share the same scopes through one capture mask:
//   - kCaptureTrace: closed scopes are recorded into the (bounded)
//     process-wide buffer for trace-event export.
//   - kCaptureProfile: open scopes are additionally pushed onto a
//     per-thread stack of static name pointers that the sampling
//     profiler's signal handler reads (telemetry/profiler.h).
// The buffer is bounded (SetCapacity); events beyond the cap are dropped
// and counted in the `telemetry.spans_dropped` metric — a long
// throughput run degrades observably instead of growing without bound.

#ifndef HEF_TELEMETRY_SPAN_H_
#define HEF_TELEMETRY_SPAN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace hef::telemetry {

// One closed scope.
struct SpanEvent {
  std::string name;
  std::uint64_t start_nanos = 0;     // CLOCK_MONOTONIC_RAW
  std::uint64_t duration_nanos = 0;
  std::uint32_t thread_id = 0;       // dense per-process id (0 = first)
  std::uint32_t depth = 0;           // nesting depth when opened
};

// One point on a named counter track (e.g. a PMU timeline sample).
// Exported as a chrome://tracing "C" event, which Perfetto renders as a
// value lane alongside the span tracks.
struct CounterEvent {
  const char* track = nullptr;       // static string (track name)
  std::uint64_t nanos = 0;           // CLOCK_MONOTONIC_RAW
  double value = 0;
};

namespace internal {

// Per-thread stack of the names of currently-open spans, maintained so an
// async signal arriving on this thread can attribute the sample to the
// innermost open span. Names are string literals (stable storage); depth
// is published with a signal fence after the frame write, so a handler
// interrupting Push/Pop always sees a consistent prefix.
struct SpanStack {
  static constexpr int kMaxDepth = 48;
  const char* frames[kMaxDepth] = {};
  std::atomic<int> depth{0};
};

// The calling thread's stack. The first call materializes the
// thread-local; the profiler touches it at thread registration so signal
// handlers never take the lazy-init path.
SpanStack& CurrentSpanStack();

}  // namespace internal

// Process-wide collector. All methods are thread-safe.
class SpanTracer {
 public:
  // Capture-mask bits (see file comment).
  static constexpr std::uint32_t kCaptureTrace = 1u;
  static constexpr std::uint32_t kCaptureProfile = 2u;

  static SpanTracer& Get();

  bool enabled() const {
    return (capture_mask() & kCaptureTrace) != 0;
  }
  void SetEnabled(bool on) { SetMaskBit(kCaptureTrace, on); }
  // Turns the per-thread open-span stacks on/off for the profiler.
  void SetProfiling(bool on) { SetMaskBit(kCaptureProfile, on); }

  std::uint32_t capture_mask() const {
    return mask_.load(std::memory_order_relaxed);
  }

  void Record(SpanEvent event);
  void RecordCounter(const char* track, std::uint64_t nanos, double value);

  // Caps the buffered span events (drops beyond it are counted in
  // `telemetry.spans_dropped`). Applies to future Records only.
  void SetCapacity(std::size_t max_events);
  std::uint64_t spans_dropped() const;

  // Removes and returns all recorded events, ordered by start time.
  std::vector<SpanEvent> Drain();
  std::vector<CounterEvent> DrainCounters();
  std::size_t event_count() const;

  // Renders events as a chrome://tracing / Perfetto trace-event JSON
  // document ("X" complete events plus "C" counter events, microsecond
  // timestamps relative to the earliest event).
  static std::string ToTraceEventJson(const std::vector<SpanEvent>& events);
  static std::string ToTraceEventJson(
      const std::vector<SpanEvent>& events,
      const std::vector<CounterEvent>& counters);

  // Drains spans and counter tracks and writes the trace-event file.
  Status WriteTraceFile(const std::string& path);

  // Dense id of the calling thread (assigned on first use).
  static std::uint32_t CurrentThreadId();

 private:
  SpanTracer() = default;

  void SetMaskBit(std::uint32_t bit, bool on) {
    if (on) {
      mask_.fetch_or(bit, std::memory_order_relaxed);
    } else {
      mask_.fetch_and(~bit, std::memory_order_relaxed);
    }
  }

  std::atomic<std::uint32_t> mask_{0};
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::vector<CounterEvent> counter_events_;
  std::size_t capacity_ = kDefaultCapacity;
  std::uint64_t dropped_ = 0;

  static constexpr std::size_t kDefaultCapacity = 1u << 18;  // ~262k spans
};

// RAII scope. Inactive (no clock read, no allocation) unless some capture
// was enabled at construction time.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    const std::uint32_t mask = SpanTracer::Get().capture_mask();
    if (HEF_UNLIKELY(mask != 0)) Begin(name, mask);
  }
  ~SpanScope() {
    if (HEF_UNLIKELY(flags_ != 0)) End();
  }
  HEF_DISALLOW_COPY_AND_ASSIGN(SpanScope);

 private:
  void Begin(const char* name, std::uint32_t mask);
  void End();

  std::uint8_t flags_ = 0;  // capture bits this scope participates in
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace hef::telemetry

#define HEF_TELEMETRY_CONCAT_INNER(a, b) a##b
#define HEF_TELEMETRY_CONCAT(a, b) HEF_TELEMETRY_CONCAT_INNER(a, b)

// Opens a span covering the rest of the enclosing block.
#define HEF_TRACE_SPAN(name)                                        \
  ::hef::telemetry::SpanScope HEF_TELEMETRY_CONCAT(hef_trace_span_, \
                                                   __LINE__)(name)

#endif  // HEF_TELEMETRY_SPAN_H_
