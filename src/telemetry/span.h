// Span tracing — decomposes a run into named, nested wall-clock scopes.
//
// The paper's analysis is per-operator (Tables III-IX attribute time and
// micro-architectural events to individual kernels); the tracer provides
// the substrate: any code can open a scope with HEF_TRACE_SPAN("name")
// and, when tracing is enabled, the scope's start/duration/thread/depth
// is recorded into a process-wide buffer that exports to the
// chrome://tracing / Perfetto trace-event format.
//
// Cost model: when tracing is disabled (the default) a scope is one
// relaxed atomic load and a predictable branch — cheap enough to leave in
// engine code permanently. Per-*block* operator timing inside the engine
// hot loop is NOT implemented with spans (it accumulates into plain
// arrays, see engine.cc); spans mark phase boundaries: query runs, hash
// builds, pipeline execution, tuner measurements.

#ifndef HEF_TELEMETRY_SPAN_H_
#define HEF_TELEMETRY_SPAN_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/macros.h"
#include "common/status.h"

namespace hef::telemetry {

// One closed scope.
struct SpanEvent {
  std::string name;
  std::uint64_t start_nanos = 0;     // CLOCK_MONOTONIC_RAW
  std::uint64_t duration_nanos = 0;
  std::uint32_t thread_id = 0;       // dense per-process id (0 = first)
  std::uint32_t depth = 0;           // nesting depth when opened
};

// Process-wide collector. All methods are thread-safe.
class SpanTracer {
 public:
  static SpanTracer& Get();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void SetEnabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void Record(SpanEvent event);

  // Removes and returns all recorded events, ordered by start time.
  std::vector<SpanEvent> Drain();
  std::size_t event_count() const;

  // Renders events as a chrome://tracing / Perfetto trace-event JSON
  // document ("X" complete events, microsecond timestamps relative to the
  // earliest event).
  static std::string ToTraceEventJson(const std::vector<SpanEvent>& events);

  // Drains and writes the trace-event file.
  Status WriteTraceFile(const std::string& path);

  // Dense id of the calling thread (assigned on first use).
  static std::uint32_t CurrentThreadId();

 private:
  SpanTracer() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

// RAII scope. Inactive (no clock read, no allocation) unless the tracer
// was enabled at construction time.
class SpanScope {
 public:
  explicit SpanScope(const char* name) {
    if (HEF_UNLIKELY(SpanTracer::Get().enabled())) Begin(name);
  }
  ~SpanScope() {
    if (HEF_UNLIKELY(active_)) End();
  }
  HEF_DISALLOW_COPY_AND_ASSIGN(SpanScope);

 private:
  void Begin(const char* name);
  void End();

  bool active_ = false;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  std::uint32_t depth_ = 0;
};

}  // namespace hef::telemetry

#define HEF_TELEMETRY_CONCAT_INNER(a, b) a##b
#define HEF_TELEMETRY_CONCAT(a, b) HEF_TELEMETRY_CONCAT_INNER(a, b)

// Opens a span covering the rest of the enclosing block.
#define HEF_TRACE_SPAN(name)                                        \
  ::hef::telemetry::SpanScope HEF_TELEMETRY_CONCAT(hef_trace_span_, \
                                                   __LINE__)(name)

#endif  // HEF_TELEMETRY_SPAN_H_
