#include "tuner/candidate_generator.h"

#include <algorithm>
#include <cmath>

#include "analysis/register_pressure.h"
#include "common/macros.h"

namespace hef {

HybridConfig GenerateInitialCandidate(const ProcessorModel& model,
                                      const OperatorTraits& traits) {
  HEF_CHECK_MSG(!traits.ops.empty(), "operator template has no ops");

  // Stage 1: statement counts from pipeline counts. Shared pipes count as
  // SIMD-exclusive.
  int v = std::max(0, model.simd_pipes);
  int s = model.ExclusiveScalarPipes();
  if (v + s == 0) {
    s = 1;  // degenerate model: fall back to one scalar statement
  }

  // Stage 2: pack size. Dominant instruction = max latency/throughput in
  // the template at the vector ISA.
  const InstructionTable& table = InstructionTable::Get();
  const InstructionInfo& dominant =
      table.MaxLatencyOverThroughput(traits.ops, traits.vector_isa);

  // argc of the SIMD instruction with the most register parameters in the
  // template.
  int argc = 1;
  for (OpClass op : traits.ops) {
    argc = std::max(argc, table.Lookup(op, traits.vector_isa).argc);
  }

  const double register_budget =
      static_cast<double>(std::min(model.scalar_registers,
                                   model.vector_registers));
  const double by_throughput = register_budget / dominant.throughput;
  const double register_pressure =
      static_cast<double>(std::max(s * 3, v * argc));
  const double by_registers =
      register_pressure > 0 ? register_budget / register_pressure
                            : by_throughput;

  int p = static_cast<int>(std::floor(std::min(by_throughput, by_registers)));
  p = std::max(1, p);

  return HybridConfig{v, s, p};
}

HybridConfig GenerateInitialCandidate(const ProcessorModel& model,
                                      const OperatorTraits& traits,
                                      int max_live_vars,
                                      int num_constants) {
  HybridConfig cfg = GenerateInitialCandidate(model, traits);
  auto fits = [&](const HybridConfig& c) {
    return analysis::EstimatePressure(max_live_vars, num_constants, c,
                                      traits.vector_isa)
        .fits();
  };
  while (!fits(cfg)) {
    if (cfg.p > 1) {
      --cfg.p;
    } else if (cfg.s >= cfg.v && cfg.s > 0 && cfg.v + cfg.s > 1) {
      --cfg.s;
    } else if (cfg.v > 0 && cfg.v + cfg.s > 1) {
      --cfg.v;
    } else {
      break;  // minimal config; let the tuner's root exemption handle it
    }
  }
  return cfg;
}

}  // namespace hef
