// CandidateGenerator — the two-stage model seeding the (v, s, p) search
// (paper §IV-A).
//
// Stage 1 uses only the processor's pipeline counts: pipelines shared
// between SIMD and scalar are treated as SIMD-exclusive ("SIMD is more
// efficient than scalar in most cases under the data analytics workload"),
// so v = simd_pipes and s = scalar pipes not shared with the SIMD unit.
//
// Stage 2 sets the pack size from the instruction tables: find the
// instruction with the maximum latency/throughput ratio in the operator
// template, take the argument count `argc` of the SIMD instruction with
// the most parameters, and compute
//
//     p = min( 32 / throughput, 32 / max(s * 3, v * argc) )
//
// — the register-budget heuristic (Skylake has 32 architectural vector
// registers and roughly as many renamable scalar names; most scalar
// instructions touch three registers).

#ifndef HEF_TUNER_CANDIDATE_GENERATOR_H_
#define HEF_TUNER_CANDIDATE_GENERATOR_H_

#include <vector>

#include "hybrid/hybrid_config.h"
#include "procinfo/cpu_features.h"
#include "procinfo/instruction_table.h"
#include "procinfo/processor_model.h"

namespace hef {

struct OperatorTraits {
  // Op mix of the operator template (one statement instance's body).
  std::vector<OpClass> ops;
  // Vector ISA the SIMD statements lower to.
  Isa vector_isa = Isa::kAvx512;
};

// Returns the initial candidate node. Never returns an invalid config:
// v + s >= 1 and p >= 1 always hold.
HybridConfig GenerateInitialCandidate(const ProcessorModel& model,
                                      const OperatorTraits& traits);

// Pressure-aware variant: runs the heuristic, then shrinks the seed
// (p first, then whichever of v/s is wider) until the static
// register-pressure estimate (analysis::EstimatePressure with the given
// template live-variable and constant counts) fits the register file.
// Guarantees the search never *starts* on a node the tuner's
// static_check would have rejected.
HybridConfig GenerateInitialCandidate(const ProcessorModel& model,
                                      const OperatorTraits& traits,
                                      int max_live_vars, int num_constants);

}  // namespace hef

#endif  // HEF_TUNER_CANDIDATE_GENERATOR_H_
