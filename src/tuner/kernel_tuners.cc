#include "tuner/kernel_tuners.h"

#include <algorithm>
#include <limits>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "algo/reduce.h"
#include "analysis/register_pressure.h"
#include "codegen/operator_template.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "engine/primitives.h"
#include "storage/decode.h"
#include "storage/encoding.h"
#include "table/bloom_filter.h"
#include "table/linear_hash_table.h"
#include "table/probe.h"
#include "tuner/candidate_generator.h"

namespace hef {

namespace {

// Min-of-repetitions wall-clock measurement of a runnable.
template <typename Fn>
double MeasureSeconds(const Fn& fn, int repetitions) {
  fn();  // warm-up: page in buffers, prime caches and branch predictors
  double best = std::numeric_limits<double>::max();
  for (int r = 0; r < repetitions; ++r) {
    Stopwatch sw;
    fn();
    best = std::min(best, sw.ElapsedSeconds());
  }
  return best;
}

SupportedFn InGrid(const std::vector<HybridConfig>& configs) {
  return [&configs](const HybridConfig& cfg) {
    return std::find(configs.begin(), configs.end(), cfg) != configs.end();
  };
}

// Register-pressure admission for the two template-backed kernels: the
// live-variable and constant counts come straight off the builtin HID
// templates, so the tuner and the translator reason from the same model.
const OperatorTemplate& MurmurTemplate() {
  static const OperatorTemplate t =
      OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  return t;
}

const OperatorTemplate& Crc64Template() {
  static const OperatorTemplate t =
      OperatorTemplate::Parse(BuiltinCrc64Template()).value();
  return t;
}

StaticCheckFn MurmurPressureCheck() {
  return analysis::MakePressureCheck(MurmurTemplate(),
                                     CpuFeatures::Get().BestIsa());
}

StaticCheckFn Crc64PressureCheck() {
  return analysis::MakePressureCheck(Crc64Template(),
                                     CpuFeatures::Get().BestIsa());
}

// The gather kernel is just index + loaded value (the probe profile lives
// in kernel_tuners.h so the query tuner shares it).
constexpr int kProbeLiveValues = kProbePipelineLiveValues;
constexpr int kProbeConstants = kProbePipelineConstants;
constexpr int kGatherLiveValues = 2;
constexpr int kGatherConstants = 0;

// Clamps the candidate generator's seed into the compiled grid so the
// search always has a valid starting node.
HybridConfig ClampToGrid(HybridConfig cfg,
                         const std::vector<HybridConfig>& configs) {
  int max_v = 0, max_s = 0, max_p = 1;
  for (const HybridConfig& c : configs) {
    max_v = std::max(max_v, c.v);
    max_s = std::max(max_s, c.s);
    max_p = std::max(max_p, c.p);
  }
  cfg.v = std::min(cfg.v, max_v);
  cfg.s = std::min(cfg.s, max_s);
  cfg.p = std::min(cfg.p, max_p);
  if (cfg.v + cfg.s == 0) cfg.s = std::min(1, max_s);
  return cfg;
}

}  // namespace

TuneResult TuneMurmur(const KernelTuneOptions& options) {
  AlignedBuffer<std::uint64_t> in(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  Rng rng(11);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.Next();

  const auto& grid = MurmurSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model,
          {MurmurKernel::Ops(), CpuFeatures::Get().BestIsa()},
          analysis::MaxLiveTemplateVars(MurmurTemplate()),
          static_cast<int>(MurmurTemplate().constants.size())),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  tune.static_check = MurmurPressureCheck();
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] { MurmurHashArray(cfg, in.data(), out.data(), in.size()); },
            options.repetitions);
      },
      tune);
}

TuneResult TuneCrc64(const KernelTuneOptions& options) {
  AlignedBuffer<std::uint64_t> in(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  Rng rng(13);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.Next();

  const auto& grid = Crc64SupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model, {Crc64Kernel::Ops(), CpuFeatures::Get().BestIsa()},
          analysis::MaxLiveTemplateVars(Crc64Template()),
          static_cast<int>(Crc64Template().constants.size())),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  tune.static_check = Crc64PressureCheck();
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] { Crc64Array(cfg, in.data(), out.data(), in.size()); },
            options.repetitions);
      },
      tune);
}

TuneResult TuneProbe(const KernelTuneOptions& options) {
  // Table sized by the caller (SSB harnesses pass their dimension-table
  // cardinality); key stream mixed to the requested hit rate.
  const std::size_t table_keys =
      options.probe_table_keys == 0 ? 1 : options.probe_table_keys;
  LinearHashTable table(table_keys);
  for (std::uint64_t k = 0; k < table_keys; ++k) {
    table.Insert(k * 2 + 1, k);
  }
  AlignedBuffer<std::uint64_t> keys(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  Rng rng(17);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    if (rng.Bernoulli(options.probe_hit_rate)) {
      keys[i] = rng.Uniform(0, table_keys - 1) * 2 + 1;  // hit
    } else {
      keys[i] = rng.Uniform(0, table_keys - 1) * 2;  // miss
    }
  }

  const auto& grid = ProbeSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model, {ProbeKernel::Ops(), CpuFeatures::Get().BestIsa()},
          kProbeLiveValues, kProbeConstants),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  tune.static_check = analysis::MakePressureCheck(
      kProbeLiveValues, kProbeConstants, CpuFeatures::Get().BestIsa());
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] {
              ProbeArray(cfg, table, keys.data(), out.data(), keys.size());
            },
            options.repetitions);
      },
      tune);
}

TuneResult TuneGather(const KernelTuneOptions& options) {
  AlignedBuffer<std::uint64_t> base(options.elements, 256);
  AlignedBuffer<std::uint64_t> idx(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  Rng rng(19);
  for (std::size_t i = 0; i < base.size(); ++i) base[i] = rng.Next();
  for (std::size_t i = 0; i < idx.size(); ++i) {
    idx[i] = rng.Uniform(0, options.elements - 1);
  }

  const auto& grid = GatherSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model, {GatherKernelOps(), CpuFeatures::Get().BestIsa()},
          kGatherLiveValues, kGatherConstants),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  tune.static_check = analysis::MakePressureCheck(
      kGatherLiveValues, kGatherConstants, CpuFeatures::Get().BestIsa());
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] {
              GatherArray(cfg, base.data(), idx.data(), out.data(),
                          idx.size());
            },
            options.repetitions);
      },
      tune);
}

TuneResult TuneBloomProbe(const KernelTuneOptions& options) {
  BloomFilter filter(options.probe_table_keys == 0
                         ? 1
                         : options.probe_table_keys);
  Rng rng(23);
  for (std::size_t k = 0; k < options.probe_table_keys; ++k) {
    filter.Insert(rng.Uniform(0, options.probe_table_keys * 4));
  }
  AlignedBuffer<std::uint64_t> keys(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.Uniform(0, options.probe_table_keys * 4);
  }

  const auto& grid = BloomProbeSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model,
          {BloomProbeKernel::Ops(filter.num_probes()),
           CpuFeatures::Get().BestIsa()}),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] {
              BloomProbeArray(cfg, filter, keys.data(), out.data(),
                              keys.size());
            },
            options.repetitions);
      },
      tune);
}

TuneResult TuneUnpackBits(const KernelTuneOptions& options) {
  // Tuning workload: a 16-bit packed payload (the modal SSB fact width —
  // orderdate/custkey/suppkey all land there) unpacked from the front of
  // the chunk, the way DecodeRange drives the kernel.
  constexpr std::uint8_t kWidth = 16;
  AlignedBuffer<std::uint64_t> values(options.elements, 256);
  Rng rng(31);
  for (std::size_t i = 0; i < values.size(); ++i) {
    values[i] = rng.Uniform(0, (1ULL << kWidth) - 1);
  }
  AlignedBuffer<std::uint64_t> words(
      storage::PackedWords(options.elements, kWidth), 8);
  storage::PackBits(values.data(), values.size(), kWidth, words.data());
  storage::DecodeScratch scratch;
  scratch.EnsureCapacity(options.elements);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);

  const auto& grid = storage::UnpackBitsSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model,
          {storage::UnpackBitsKernelOps(), CpuFeatures::Get().BestIsa()},
          storage::kUnpackBitsLiveValues, storage::kUnpackBitsConstants),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  tune.static_check = analysis::MakePressureCheck(
      storage::kUnpackBitsLiveValues, storage::kUnpackBitsConstants,
      CpuFeatures::Get().BestIsa());
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] {
              storage::UnpackBitsArray(cfg, words.data(), kWidth,
                                       /*first=*/0, scratch.iota(),
                                       out.data(), options.elements);
            },
            options.repetitions);
      },
      tune);
}

TuneResult TuneForAdd(const KernelTuneOptions& options) {
  AlignedBuffer<std::uint64_t> in(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  Rng rng(37);
  for (std::size_t i = 0; i < in.size(); ++i) {
    in[i] = rng.Uniform(0, 1 << 16);
  }

  const auto& grid = storage::ForAddSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model,
          {storage::ForAddKernelOps(), CpuFeatures::Get().BestIsa()}),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] {
              storage::ForAddArray(cfg, /*base=*/19920101, in.data(),
                                   out.data(), in.size());
            },
            options.repetitions);
      },
      tune);
}

TuneResult TuneDictGather(const KernelTuneOptions& options) {
  // Dictionary sized at the encoder's distinct-value cap: the worst
  // (most cache-hungry) dictionary a chunk can carry.
  const std::size_t dict_size = storage::kDictDistinctCap;
  AlignedBuffer<std::uint64_t> dict(dict_size, 256);
  AlignedBuffer<std::uint64_t> codes(options.elements, 256);
  AlignedBuffer<std::uint64_t> out(options.elements, 256);
  Rng rng(41);
  for (std::size_t i = 0; i < dict.size(); ++i) dict[i] = rng.Next();
  for (std::size_t i = 0; i < codes.size(); ++i) {
    codes[i] = rng.Uniform(0, dict_size - 1);
  }

  const auto& grid = storage::DictGatherSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model,
          {storage::DictGatherKernelOps(), CpuFeatures::Get().BestIsa()},
          kGatherLiveValues, kGatherConstants),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  tune.static_check = analysis::MakePressureCheck(
      kGatherLiveValues, kGatherConstants, CpuFeatures::Get().BestIsa());
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] {
              storage::DictGatherArray(cfg, dict.data(), codes.data(),
                                       out.data(), codes.size());
            },
            options.repetitions);
      },
      tune);
}

TuneResult TuneSumReduce(const KernelTuneOptions& options) {
  AlignedBuffer<std::uint64_t> in(options.elements, 256);
  Rng rng(29);
  for (std::size_t i = 0; i < in.size(); ++i) in[i] = rng.Next();

  const auto& grid = ReduceSupportedConfigs();
  const HybridConfig initial = ClampToGrid(
      GenerateInitialCandidate(
          options.model, {SumKernel::Ops(), CpuFeatures::Get().BestIsa()}),
      grid);
  TuneOptions tune;
  tune.is_supported = InGrid(grid);
  return Tune(
      initial,
      [&](const HybridConfig& cfg) {
        return MeasureSeconds(
            [&] { DoNotOptimize(SumArray(cfg, in.data(), in.size())); },
            options.repetitions);
      },
      tune);
}

}  // namespace hef
