// End-to-end tuners for the built-in kernels: wire the candidate generator,
// the wall-clock measurement harness, and the pruning optimizer together
// (the full offline phase of Fig. 4 for one operator).

#ifndef HEF_TUNER_KERNEL_TUNERS_H_
#define HEF_TUNER_KERNEL_TUNERS_H_

#include <cstddef>

#include "procinfo/processor_model.h"
#include "tuner/optimizer.h"

namespace hef {

struct KernelTuneOptions {
  // Elements per measurement run; sized to be compute-bound (L2-resident)
  // by default, as the paper's operators are.
  std::size_t elements = 1 << 15;
  // Repetitions per measurement; the minimum over repetitions is used
  // (robust against scheduling noise).
  int repetitions = 9;
  // Processor model feeding the candidate generator.
  ProcessorModel model = ProcessorModel::Host();
  // Keys in the hash table the probe tuner builds. The tuning workload
  // must resemble the deployment workload (the paper tunes against
  // "predefined test queries"); SSB harnesses size this like their
  // dimension tables so the tuned point carries over.
  std::size_t probe_table_keys = 1 << 13;
  // Fraction of probe keys that hit the table.
  double probe_hit_rate = 0.5;
};

// Probe-pipeline register profile for static pressure admission
// (analysis::MakePressureCheck), shared by the probe kernel tuner and the
// per-query tuner: each instance keeps the key, the hash-chain temporary,
// and the probe result live, over three shared constants (murmur
// multiplier, seed fold, slot mask).
inline constexpr int kProbePipelineLiveValues = 3;
inline constexpr int kProbePipelineConstants = 3;

// Each returns the pruning-search result for the respective kernel; the
// initial node comes from GenerateInitialCandidate on the kernel's op mix.
TuneResult TuneMurmur(const KernelTuneOptions& options = {});
TuneResult TuneCrc64(const KernelTuneOptions& options = {});
TuneResult TuneProbe(const KernelTuneOptions& options = {});
TuneResult TuneGather(const KernelTuneOptions& options = {});
TuneResult TuneBloomProbe(const KernelTuneOptions& options = {});
TuneResult TuneSumReduce(const KernelTuneOptions& options = {});
// Chunk-decode kernels (storage/decode.h): bit-unpack over a packed
// payload, frame-of-reference add, dictionary-code gather.
TuneResult TuneUnpackBits(const KernelTuneOptions& options = {});
TuneResult TuneForAdd(const KernelTuneOptions& options = {});
TuneResult TuneDictGather(const KernelTuneOptions& options = {});

}  // namespace hef

#endif  // HEF_TUNER_KERNEL_TUNERS_H_
