#include "tuner/optimizer.h"

#include <algorithm>
#include <map>

#include "common/macros.h"

namespace hef {

namespace {

std::vector<HybridConfig> Neighbors(const HybridConfig& node) {
  return {
      HybridConfig{node.v + 1, node.s, node.p},
      HybridConfig{node.v - 1, node.s, node.p},
      HybridConfig{node.v, node.s + 1, node.p},
      HybridConfig{node.v, node.s - 1, node.p},
      HybridConfig{node.v, node.s, node.p + 1},
      HybridConfig{node.v, node.s, node.p - 1},
  };
}

}  // namespace

TuneResult Tune(const HybridConfig& initial, const MeasureFn& measure,
                const TuneOptions& options) {
  HEF_CHECK_MSG(options.is_supported != nullptr, "missing support filter");
  HEF_CHECK_MSG(initial.valid() && options.is_supported(initial),
                "initial candidate %s unsupported",
                initial.ToString().c_str());

  TuneResult result;
  std::map<HybridConfig, double> tested;

  auto run = [&](const HybridConfig& cfg) {
    const double t = measure(cfg);
    tested[cfg] = t;
    ++result.nodes_tested;
    result.history.emplace_back(cfg, t);
    return t;
  };

  HybridConfig current = initial;
  double current_time = run(current);
  result.best = current;
  result.best_time = current_time;

  // Candidate list: winners waiting to be expanded (Algorithm 2's
  // candidate_list). Losers are simply never expanded (end_list).
  std::vector<std::pair<HybridConfig, double>> candidates;

  while (result.nodes_tested < options.max_measurements) {
    for (const HybridConfig& next : Neighbors(current)) {
      if (!next.valid() || !options.is_supported(next)) continue;
      if (tested.count(next) != 0) continue;
      const double t = run(next);
      if (t < current_time) {
        candidates.emplace_back(next, t);  // winner
      }
      // else: loser -> end list; its variants are pruned.
    }
    if (candidates.empty()) break;

    // Move to the fastest pending winner.
    auto best_it = std::min_element(
        candidates.begin(), candidates.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    current = best_it->first;
    current_time = best_it->second;
    candidates.erase(best_it);

    if (current_time < result.best_time) {
      result.best = current;
      result.best_time = current_time;
    }
  }
  return result;
}

TuneResult TuneExhaustive(const std::vector<HybridConfig>& space,
                          const MeasureFn& measure) {
  HEF_CHECK_MSG(!space.empty(), "empty search space");
  TuneResult result;
  bool first = true;
  for (const HybridConfig& cfg : space) {
    if (!cfg.valid()) continue;
    const double t = measure(cfg);
    ++result.nodes_tested;
    result.history.emplace_back(cfg, t);
    if (first || t < result.best_time) {
      result.best = cfg;
      result.best_time = t;
      first = false;
    }
  }
  return result;
}

}  // namespace hef
