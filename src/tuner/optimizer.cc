#include "tuner/optimizer.h"

#include <algorithm>
#include <map>

#include "common/macros.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace hef {

namespace {

std::vector<HybridConfig> Neighbors(const HybridConfig& node) {
  return {
      HybridConfig{node.v + 1, node.s, node.p},
      HybridConfig{node.v - 1, node.s, node.p},
      HybridConfig{node.v, node.s + 1, node.p},
      HybridConfig{node.v, node.s - 1, node.p},
      HybridConfig{node.v, node.s, node.p + 1},
      HybridConfig{node.v, node.s, node.p - 1},
  };
}

}  // namespace

TuneResult Tune(const HybridConfig& initial, const MeasureFn& measure,
                const TuneOptions& options) {
  HEF_CHECK_MSG(options.is_supported != nullptr, "missing support filter");
  HEF_CHECK_MSG(initial.valid() && options.is_supported(initial),
                "initial candidate %s unsupported",
                initial.ToString().c_str());

  HEF_TRACE_SPAN("tuner.search");
  TuneResult result;
  std::map<HybridConfig, double> tested;

  auto run = [&](const HybridConfig& cfg, const HybridConfig& parent) {
    HEF_TRACE_SPAN("tuner.measure");
    const double t = measure(cfg);
    tested[cfg] = t;
    ++result.nodes_tested;
    result.history.emplace_back(cfg, t);
    // Classification is patched to `winner` by the caller when the node
    // beats its expansion source.
    result.trace.push_back(TuneStep{cfg, t, parent, /*winner=*/false});
    return t;
  };

  HybridConfig current = initial;
  double current_time = run(current, current);
  result.trace.back().winner = true;  // the root is always expanded
  result.best = current;
  result.best_time = current_time;

  // Candidate list: winners waiting to be expanded (Algorithm 2's
  // candidate_list). Losers are simply never expanded (end_list).
  std::vector<std::pair<HybridConfig, double>> candidates;

  while (result.nodes_tested < options.max_measurements) {
    for (const HybridConfig& next : Neighbors(current)) {
      if (!next.valid() || !options.is_supported(next)) continue;
      if (tested.count(next) != 0) continue;
      const double t = run(next, current);
      if (t < current_time) {
        result.trace.back().winner = true;
        candidates.emplace_back(next, t);  // winner
      } else {
        // Loser -> end list; its variants are pruned.
        ++result.nodes_pruned;
      }
    }
    if (candidates.empty()) break;

    // Move to the fastest pending winner.
    auto best_it = std::min_element(
        candidates.begin(), candidates.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    current = best_it->first;
    current_time = best_it->second;
    candidates.erase(best_it);

    if (current_time < result.best_time) {
      result.best = current;
      result.best_time = current_time;
    }
  }

  auto& registry = telemetry::MetricsRegistry::Get();
  registry.counter("tuner.nodes_tested")
      .Increment(static_cast<std::uint64_t>(result.nodes_tested));
  registry.counter("tuner.nodes_pruned")
      .Increment(static_cast<std::uint64_t>(result.nodes_pruned));
  return result;
}

TuneResult TuneExhaustive(const std::vector<HybridConfig>& space,
                          const MeasureFn& measure) {
  HEF_CHECK_MSG(!space.empty(), "empty search space");
  HEF_TRACE_SPAN("tuner.exhaustive");
  TuneResult result;
  bool first = true;
  for (const HybridConfig& cfg : space) {
    if (!cfg.valid()) continue;
    double t;
    {
      HEF_TRACE_SPAN("tuner.measure");
      t = measure(cfg);
    }
    ++result.nodes_tested;
    result.history.emplace_back(cfg, t);
    // Exhaustive search has no expansion tree; every node is its own
    // parent and "winner" marks new running optima.
    const bool improved = first || t < result.best_time;
    result.trace.push_back(TuneStep{cfg, t, cfg, improved});
    if (improved) {
      result.best = cfg;
      result.best_time = t;
      first = false;
    }
  }
  telemetry::MetricsRegistry::Get()
      .counter("tuner.nodes_tested")
      .Increment(static_cast<std::uint64_t>(result.nodes_tested));
  return result;
}

}  // namespace hef
