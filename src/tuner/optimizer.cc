#include "tuner/optimizer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <vector>

#include "common/macros.h"
#include "common/stopwatch.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace hef {

namespace {

std::vector<HybridConfig> Neighbors(const HybridConfig& node) {
  return {
      HybridConfig{node.v + 1, node.s, node.p},
      HybridConfig{node.v - 1, node.s, node.p},
      HybridConfig{node.v, node.s + 1, node.p},
      HybridConfig{node.v, node.s - 1, node.p},
      HybridConfig{node.v, node.s, node.p + 1},
      HybridConfig{node.v, node.s, node.p - 1},
  };
}

// One candidate's hardened measurement: up to options.trials calls of
// `measure`, aborted once the accumulated wall clock crosses
// options.watchdog_seconds.
struct CandidateSample {
  double median = 0;     // of the completed trials
  bool timed_out = false;
};

CandidateSample MeasureCandidate(const MeasureFn& measure,
                                 const HybridConfig& cfg,
                                 const TuneOptions& options) {
  HEF_TRACE_SPAN("tuner.measure");
  const int trials = options.trials < 1 ? 1 : options.trials;
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(trials));
  CandidateSample sample;
  const std::uint64_t t0 = MonotonicNanos();
  for (int i = 0; i < trials; ++i) {
    times.push_back(measure(cfg));
    const double spent =
        static_cast<double>(MonotonicNanos() - t0) * 1e-9;
    if (options.watchdog_seconds > 0 &&
        spent > options.watchdog_seconds) {
      sample.timed_out = true;
      break;
    }
  }
  std::sort(times.begin(), times.end());
  const std::size_t n = times.size();
  sample.median = n % 2 == 1
                      ? times[n / 2]
                      : 0.5 * (times[n / 2 - 1] + times[n / 2]);
  return sample;
}

// What the search compares: timed-out candidates always lose.
double EffectiveSeconds(const CandidateSample& sample) {
  return sample.timed_out ? std::numeric_limits<double>::infinity()
                          : sample.median;
}

}  // namespace

TuneResult Tune(const HybridConfig& initial, const MeasureFn& measure,
                const TuneOptions& options) {
  HEF_CHECK_MSG(options.is_supported != nullptr, "missing support filter");
  HEF_CHECK_MSG(initial.valid() && options.is_supported(initial),
                "initial candidate %s unsupported",
                initial.ToString().c_str());

  HEF_TRACE_SPAN("tuner.search");
  TuneResult result;
  std::map<HybridConfig, double> tested;

  auto run = [&](const HybridConfig& cfg, const HybridConfig& parent) {
    const CandidateSample sample = MeasureCandidate(measure, cfg, options);
    // Timed-out candidates compare as +inf, so they lose against every
    // measured node and the search routes around them.
    const double t = EffectiveSeconds(sample);
    tested[cfg] = t;
    ++result.nodes_tested;
    if (sample.timed_out) ++result.nodes_timed_out;
    result.history.emplace_back(cfg, t);
    // Classification is patched to `winner` by the caller when the node
    // beats its expansion source.
    result.trace.push_back(TuneStep{cfg, sample.median, parent,
                                    /*winner=*/false, sample.timed_out});
    return t;
  };

  HybridConfig current = initial;
  double current_time = run(current, current);
  result.trace.back().winner = true;  // the root is always expanded
  result.best = current;
  result.best_time = current_time;

  // Candidate list: winners waiting to be expanded (Algorithm 2's
  // candidate_list). Losers are simply never expanded (end_list).
  std::vector<std::pair<HybridConfig, double>> candidates;

  while (result.nodes_tested < options.max_measurements) {
    for (const HybridConfig& next : Neighbors(current)) {
      if (!next.valid()) continue;
      if (tested.count(next) != 0) continue;
      if (options.static_check) {
        const Status admitted = options.static_check(next);
        if (!admitted.ok()) {
          // Rejected before measurement: record (trace + counter), mark
          // tested so other expansions don't re-reject it, and never
          // call MeasureCandidate.
          tested[next] = std::numeric_limits<double>::infinity();
          ++result.nodes_rejected_static;
          result.trace.push_back(TuneStep{next, 0.0, current,
                                          /*winner=*/false,
                                          /*timed_out=*/false,
                                          /*rejected_static=*/true});
          continue;
        }
      }
      if (!options.is_supported(next)) continue;
      const double t = run(next, current);
      if (t < current_time) {
        result.trace.back().winner = true;
        candidates.emplace_back(next, t);  // winner
      } else {
        // Loser -> end list; its variants are pruned.
        ++result.nodes_pruned;
      }
    }
    if (candidates.empty()) break;

    // Move to the fastest pending winner.
    auto best_it = std::min_element(
        candidates.begin(), candidates.end(),
        [](const auto& a, const auto& b) { return a.second < b.second; });
    current = best_it->first;
    current_time = best_it->second;
    candidates.erase(best_it);

    if (current_time < result.best_time) {
      result.best = current;
      result.best_time = current_time;
    }
  }

  auto& registry = telemetry::MetricsRegistry::Get();
  registry.counter("tuner.nodes_tested")
      .Increment(static_cast<std::uint64_t>(result.nodes_tested));
  registry.counter("tuner.nodes_pruned")
      .Increment(static_cast<std::uint64_t>(result.nodes_pruned));
  registry.counter("tuner.candidates_timed_out")
      .Increment(static_cast<std::uint64_t>(result.nodes_timed_out));
  registry.counter("tuner.candidates_rejected_static")
      .Increment(static_cast<std::uint64_t>(result.nodes_rejected_static));
  return result;
}

TuneResult TuneExhaustive(const std::vector<HybridConfig>& space,
                          const MeasureFn& measure) {
  return TuneExhaustive(space, measure, TuneOptions{});
}

TuneResult TuneExhaustive(const std::vector<HybridConfig>& space,
                          const MeasureFn& measure,
                          const TuneOptions& options) {
  HEF_CHECK_MSG(!space.empty(), "empty search space");
  HEF_TRACE_SPAN("tuner.exhaustive");
  TuneResult result;
  bool first = true;
  for (const HybridConfig& cfg : space) {
    if (!cfg.valid()) continue;
    if (options.static_check) {
      const Status admitted = options.static_check(cfg);
      if (!admitted.ok()) {
        ++result.nodes_rejected_static;
        result.trace.push_back(TuneStep{cfg, 0.0, cfg, /*winner=*/false,
                                        /*timed_out=*/false,
                                        /*rejected_static=*/true});
        continue;
      }
    }
    const CandidateSample sample = MeasureCandidate(measure, cfg, options);
    const double t = EffectiveSeconds(sample);
    ++result.nodes_tested;
    if (sample.timed_out) ++result.nodes_timed_out;
    result.history.emplace_back(cfg, t);
    // Exhaustive search has no expansion tree; every node is its own
    // parent and "winner" marks new running optima. A timed-out node can
    // only become "best" as the degenerate first entry.
    const bool improved = first || t < result.best_time;
    result.trace.push_back(TuneStep{cfg, sample.median, cfg, improved,
                                    sample.timed_out});
    if (improved) {
      result.best = cfg;
      result.best_time = t;
      first = false;
    }
  }
  auto& registry = telemetry::MetricsRegistry::Get();
  registry.counter("tuner.nodes_tested")
      .Increment(static_cast<std::uint64_t>(result.nodes_tested));
  registry.counter("tuner.candidates_timed_out")
      .Increment(static_cast<std::uint64_t>(result.nodes_timed_out));
  registry.counter("tuner.candidates_rejected_static")
      .Increment(static_cast<std::uint64_t>(result.nodes_rejected_static));
  return result;
}

}  // namespace hef
