// Optimizer — the test-based pruning search over (v, s, p) implementations
// (paper §IV-C, Algorithm 2).
//
// From the current node the optimizer generates the six single-step
// variants {v±1, s±1, p±1}, measures the untested ones, and classifies
// each as *winner* (faster than the current node; appended to the
// candidate list) or *loser* (appended to the end list — its own variants
// are never generated, the pruning step). The search then moves to the
// fastest candidate and repeats until the candidate list is exhausted.
// The pruning rationale: runtime is monotone on both sides of the optimum
// along each axis (adding statements first fills idle pipelines, then
// overruns the register budget), so a slower neighbour's subtree cannot
// contain the optimum via that edge — while the neighbourhood graph stays
// strongly connected, so the optimum remains reachable around pruned
// nodes (the paper's n_132 -> n_113 example).

#ifndef HEF_TUNER_OPTIMIZER_H_
#define HEF_TUNER_OPTIMIZER_H_

#include <functional>
#include <utility>
#include <vector>

#include "common/status.h"
#include "hybrid/hybrid_config.h"

namespace hef {

// Measures one implementation; returns its runtime in seconds (the
// optimizer only compares values, any monotone unit works).
using MeasureFn = std::function<double(const HybridConfig&)>;

// Filters the space to implementations that exist (e.g. inside a compiled
// HybridGrid). Nodes failing the filter are silently skipped.
using SupportedFn = std::function<bool(const HybridConfig&)>;

// Static admission check (e.g. the register-pressure estimate from
// src/analysis): OK admits the candidate, an error rejects it with a
// reason. Unlike is_supported, rejections are *recorded* — the node
// appears in the trace with rejected_static = true and is counted in
// nodes_rejected_static / tuner.candidates_rejected_static.
using StaticCheckFn = std::function<Status(const HybridConfig&)>;

struct TuneOptions {
  SupportedFn is_supported;  // required
  // Optional: evaluated before is_supported and before any measurement —
  // a rejected candidate never reaches MeasureCandidate (the whole point:
  // pruning doomed configs costs an estimate, not a benchmark run). The
  // search root is exempt; the caller chose it, and clamped fallback
  // roots must stay usable even when the estimate dislikes them.
  StaticCheckFn static_check;
  // Safety valve on total measurements (the space is finite anyway).
  int max_measurements = 1000;
  // Measurement repetitions per candidate; the candidate's effective time
  // is the median of its trials, so one preempted / cache-cold trial
  // cannot misclassify a winner as a loser (or vice versa). 1 keeps the
  // pre-hardening single-shot behaviour.
  int trials = 1;
  // Per-candidate wall-clock budget in seconds across its trials; 0
  // disables. A candidate that exhausts the budget stops measuring
  // immediately, scores +inf (so it is always classified a loser and
  // never expanded or chosen), and is flagged timed_out in the trace —
  // a pathological implementation point cannot stall the whole search.
  double watchdog_seconds = 0;
};

// One measurement in the search trace. The steps, in test order, encode
// the full expansion tree of Algorithm 2: every node carries the node it
// was generated from and whether it entered the candidate list (winner)
// or was pruned (loser — its own variants are never generated).
struct TuneStep {
  HybridConfig config{1, 0, 1};
  // Median of the completed trials (what the search compared); for a
  // timed-out candidate, the median of whatever trials finished in
  // budget — the search itself scored it +inf.
  double seconds = 0;
  // Expansion source; equals `config` for the search root.
  HybridConfig parent{1, 0, 1};
  bool winner = false;
  // The candidate blew its watchdog budget and was force-pruned.
  bool timed_out = false;
  // The candidate failed TuneOptions::static_check and was rejected
  // without being measured (seconds is 0 and meaningless).
  bool rejected_static = false;
};

struct TuneResult {
  HybridConfig best{1, 0, 1};
  double best_time = 0;
  // Nodes actually generated + measured — the cost the pruning saves.
  int nodes_tested = 0;
  // Losers: measured but never expanded (Algorithm 2's end list).
  int nodes_pruned = 0;
  // Candidates force-pruned by the per-candidate watchdog (also counted
  // in nodes_pruned when they would have been expanded otherwise).
  int nodes_timed_out = 0;
  // Candidates rejected by static_check before measurement (not counted
  // in nodes_tested — they were never benchmarked).
  int nodes_rejected_static = 0;
  // Measurement log in test order (config, seconds).
  std::vector<std::pair<HybridConfig, double>> history;
  // Measurement log with parent/winner classification (same order as
  // `history`); exported by TuneTraceToJson.
  std::vector<TuneStep> trace;
};

// Runs the pruning search from `initial` (typically the candidate
// generator's output). `initial` itself is measured first.
TuneResult Tune(const HybridConfig& initial, const MeasureFn& measure,
                const TuneOptions& options);

// Measures every node in `space` (the brute-force baseline of §II-C whose
// O(v*s*p) cost the pruning search avoids). Used by tests and the
// tuner_search bench to validate that pruning finds the same optimum at a
// fraction of the measurements.
TuneResult TuneExhaustive(const std::vector<HybridConfig>& space,
                          const MeasureFn& measure);

// As above with measurement hardening (options.trials median,
// options.watchdog_seconds force-prune); options.is_supported is unused
// here — the caller already enumerated the space.
TuneResult TuneExhaustive(const std::vector<HybridConfig>& space,
                          const MeasureFn& measure,
                          const TuneOptions& options);

}  // namespace hef

#endif  // HEF_TUNER_OPTIMIZER_H_
