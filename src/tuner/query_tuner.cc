#include "tuner/query_tuner.h"

#include <algorithm>
#include <limits>

#include "analysis/register_pressure.h"
#include "common/stopwatch.h"
#include "procinfo/cpu_features.h"
#include "engine/engine.h"
#include "table/probe.h"
#include "tuner/kernel_tuners.h"

namespace hef {

QueryTuneResult TuneQueriesProbe(const ssb::SsbDatabase& db,
                                 const std::vector<QueryId>& queries,
                                 const QueryTuneOptions& options) {
  HEF_CHECK_MSG(!queries.empty(), "no test queries given");
  const auto& grid = ProbeSupportedConfigs();
  auto supported = [&grid](const HybridConfig& cfg) {
    return std::find(grid.begin(), grid.end(), cfg) != grid.end();
  };

  HybridConfig initial = options.initial_probe;
  if (!supported(initial)) {
    initial = HybridConfig{1, 1, 1};
  }

  auto measure = [&](const HybridConfig& cfg) {
    EngineConfig config;
    config.flavor = Flavor::kHybrid;
    config.probe_cfg = cfg;
    config.gather_cfg = options.gather;
    config.block_size = options.block_size;
    // The tuner characterizes per-core kernel behaviour: one worker, and
    // plan reuse on so repeated Runs time the probe pipeline, not the
    // join build.
    config.threads = 1;
    config.plan_cache = true;
    SsbEngine engine(db, config);
    double total = 0;
    for (const QueryId id : queries) {
      engine.Run(id);  // warm-up (pages, caches, branch predictors)
      double best = std::numeric_limits<double>::max();
      for (int r = 0; r < options.repetitions; ++r) {
        Stopwatch sw;
        engine.Run(id);
        best = std::min(best, sw.ElapsedSeconds());
      }
      total += best;
    }
    return total;
  };

  TuneOptions tune;
  tune.is_supported = supported;
  tune.trials = options.trials;
  tune.watchdog_seconds = options.watchdog_seconds;
  if (options.static_pressure_check) {
    tune.static_check = analysis::MakePressureCheck(
        kProbePipelineLiveValues, kProbePipelineConstants,
        CpuFeatures::Get().BestIsa());
  }
  TuneResult r = Tune(initial, measure, tune);

  QueryTuneResult out;
  out.probe = r.best;
  out.best_seconds = r.best_time;
  out.nodes_tested = r.nodes_tested;
  out.search = std::move(r);
  return out;
}

QueryTuneResult TuneQueryProbe(const ssb::SsbDatabase& db, QueryId id,
                               const QueryTuneOptions& options) {
  return TuneQueriesProbe(db, {id}, options);
}

}  // namespace hef
