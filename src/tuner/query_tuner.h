// QueryTuner — dynamic per-query operator selection.
//
// The paper assembles queries from operators tuned on standalone test
// workloads and names per-query dynamic selection as future work (§VII:
// "enable HEF to ... dynamically select operators with different
// implementations according to queries"). This module implements that
// extension: the pruning search runs with the *whole query* as the
// measurement function, so the chosen (v, s, p) reflects the query's real
// selectivities and cache footprint rather than a proxy workload.

#ifndef HEF_TUNER_QUERY_TUNER_H_
#define HEF_TUNER_QUERY_TUNER_H_

#include <vector>

#include "engine/flavor.h"
#include "engine/query_id.h"
#include "ssb/database.h"
#include "tuner/optimizer.h"

namespace hef {

struct QueryTuneOptions {
  // Initial probe candidate (e.g. the globally tuned point or the
  // candidate generator's seed).
  HybridConfig initial_probe{1, 1, 1};
  // Gather coordinate held fixed while the probe is searched (probes
  // dominate SSB pipelines; a joint search would square the space).
  HybridConfig gather{1, 0, 1};
  // Wall-clock repetitions per candidate; min is used.
  int repetitions = 3;
  int block_size = 4096;
  // Search-level hardening, forwarded to TuneOptions: independent trials
  // of the whole measurement (median used, so one noisy trial cannot
  // flip a winner/loser call) and a per-candidate watchdog budget in
  // seconds (0 = off; a candidate exceeding it scores +inf and is
  // pruned, recorded as timed_out in the trace).
  int trials = 1;
  double watchdog_seconds = 0;
  // Static register-pressure admission (src/analysis): candidates whose
  // estimated probe-pipeline pressure exceeds the register file are
  // rejected before the query ever runs, counted in
  // search.nodes_rejected_static / tuner.candidates_rejected_static.
  bool static_pressure_check = true;
};

struct QueryTuneResult {
  HybridConfig probe{1, 0, 1};
  double best_seconds = 0;
  int nodes_tested = 0;
  // Full search log (history + winner/loser trace, see TuneResult); feed
  // to TuneTraceToJson for the machine-readable expansion tree.
  TuneResult search;
};

// Finds the per-query probe optimum by running `id` end to end under each
// candidate coordinate.
QueryTuneResult TuneQueryProbe(const ssb::SsbDatabase& db, QueryId id,
                               const QueryTuneOptions& options = {});

// Tunes one probe coordinate against a set of predefined test queries
// (the paper's §III-A workflow: "the optimizer compiles predefined test
// queries"); the cost of a candidate is the sum of the queries'
// best-of-repetitions times.
QueryTuneResult TuneQueriesProbe(const ssb::SsbDatabase& db,
                                 const std::vector<QueryId>& queries,
                                 const QueryTuneOptions& options = {});

}  // namespace hef

#endif  // HEF_TUNER_QUERY_TUNER_H_
