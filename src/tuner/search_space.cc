#include "tuner/search_space.h"

#include "common/macros.h"

namespace hef {

std::uint64_t SearchSpaceSize(int v, int s, int p) {
  HEF_CHECK_MSG(v >= 0 && s >= 0 && p >= 1, "bad space bounds");
  HEF_CHECK_MSG(v + s >= 1, "Eq. 2 requires v + s >= 1");
  return static_cast<std::uint64_t>(v) * s * (p - 1) + v + s - 1;
}

std::vector<HybridConfig> EnumerateSearchSpace(int v, int s, int p) {
  std::vector<HybridConfig> space;
  for (int vv = 0; vv <= v; ++vv) {
    for (int ss = 0; ss <= s; ++ss) {
      for (int pp = 1; pp <= p; ++pp) {
        const HybridConfig cfg{vv, ss, pp};
        if (cfg.valid()) space.push_back(cfg);
      }
    }
  }
  return space;
}

}  // namespace hef
