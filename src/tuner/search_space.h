// Search-space arithmetic (paper §II-C, Eq. 1 / Eq. 2): the number of
// concrete implementations of an operator when the vector statement count
// ranges over 0..v, the scalar count over 0..s and the pack size over 1..p.

#ifndef HEF_TUNER_SEARCH_SPACE_H_
#define HEF_TUNER_SEARCH_SPACE_H_

#include <cstdint>
#include <vector>

#include "hybrid/hybrid_config.h"

namespace hef {

// Eq. 2 as printed in the paper: space = v*s*(p-1) + v + s - 1 for
// v + s >= 1. (Note: the paper's reduction of Eq. 1 to Eq. 2 drops the
// p = 1 plane of the mixed region; both are O(v*s*p), which is the claim
// the formula supports. EnumerateSearchSpace() below counts the actual
// grid.)
std::uint64_t SearchSpaceSize(int v, int s, int p);

// The actual implementation grid the optimizer can visit: every valid
// (v', s', p') with v' <= v, s' <= s, p' <= p; mixed nodes vary over all
// pack sizes, pure nodes too (packing pure-SIMD statements is exactly the
// SLP transformation). Size = (v+1)*(s+1)*p - p.
std::vector<HybridConfig> EnumerateSearchSpace(int v, int s, int p);

}  // namespace hef

#endif  // HEF_TUNER_SEARCH_SPACE_H_
