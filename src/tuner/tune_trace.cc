#include "tuner/tune_trace.h"

#include "telemetry/json_writer.h"

namespace hef {

namespace {

void WriteConfig(telemetry::JsonWriter& w, const HybridConfig& cfg) {
  w.BeginObject();
  w.Key("v").Int(cfg.v);
  w.Key("s").Int(cfg.s);
  w.Key("p").Int(cfg.p);
  w.EndObject();
}

}  // namespace

std::string TuneTraceToJson(const TuneResult& result) {
  telemetry::JsonWriter w;
  w.BeginObject();
  w.Key("best");
  WriteConfig(w, result.best);
  w.Key("best_seconds").Double(result.best_time);
  w.Key("nodes_tested").Int(result.nodes_tested);
  w.Key("nodes_pruned").Int(result.nodes_pruned);
  w.Key("nodes_timed_out").Int(result.nodes_timed_out);
  w.Key("nodes_rejected_static").Int(result.nodes_rejected_static);
  w.Key("steps").BeginArray();
  for (const TuneStep& step : result.trace) {
    w.BeginObject();
    w.Key("v").Int(step.config.v);
    w.Key("s").Int(step.config.s);
    w.Key("p").Int(step.config.p);
    w.Key("seconds").Double(step.seconds);
    w.Key("parent");
    WriteConfig(w, step.parent);
    w.Key("winner").Bool(step.winner);
    w.Key("timed_out").Bool(step.timed_out);
    w.Key("rejected_static").Bool(step.rejected_static);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.Take();
}

}  // namespace hef
