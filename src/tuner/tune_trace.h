// JSON export of a pruning-search trace (TuneResult::trace).
//
// The emitted document reconstructs Algorithm 2's full expansion tree:
// every measured node with its (v, s, p), runtime, the node it was
// expanded from, and its winner/loser classification — losers are the
// pruned subtrees. Embedded as a section of the shared bench schema by
// bench/tuner_search and `tools/hef tune --json`.

#ifndef HEF_TUNER_TUNE_TRACE_H_
#define HEF_TUNER_TUNE_TRACE_H_

#include <string>

#include "tuner/optimizer.h"

namespace hef {

// {"best":{"v":..,"s":..,"p":..},"best_seconds":..,"nodes_tested":..,
//  "nodes_pruned":..,"steps":[{"v":..,"s":..,"p":..,"seconds":..,
//  "parent":{"v":..,"s":..,"p":..},"winner":..}, ...]}
std::string TuneTraceToJson(const TuneResult& result);

}  // namespace hef

#endif  // HEF_TUNER_TUNE_TRACE_H_
