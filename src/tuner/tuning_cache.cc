#include "tuner/tuning_cache.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "procinfo/cpu_features.h"
#include "telemetry/flight_recorder.h"

namespace hef {

TuningCache::TuningCache(std::string path) : path_(std::move(path)) {}

std::string TuningCache::HostTag() {
  const std::string& brand = CpuFeatures::Get().brand;
  return brand.empty() ? "unknown-host" : brand;
}

Status TuningCache::Load() {
  entries_.clear();
  host_mismatch_ = false;
  std::ifstream file(path_);
  if (!file) {
    return Status::OK();  // no cache yet
  }
  std::string line;
  if (!std::getline(file, line) || line != "hef-tuning-cache v1") {
    return Status::IoError("not a tuning cache: " + path_);
  }
  if (!std::getline(file, line) || line.rfind("host ", 0) != 0) {
    return Status::IoError("tuning cache missing host line: " + path_);
  }
  if (line.substr(5) != HostTag()) {
    host_mismatch_ = true;
    return Status::OK();  // tuned elsewhere: start fresh
  }
  int line_no = 2;
  while (std::getline(file, line)) {
    ++line_no;
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string keyword, op, cfg_text;
    double seconds = 0;
    if (!(in >> keyword >> op >> cfg_text >> seconds) || keyword != "op") {
      return Status::IoError("malformed tuning cache line " +
                             std::to_string(line_no) + " in " + path_);
    }
    auto cfg = HybridConfig::Parse(cfg_text);
    if (!cfg.ok()) {
      return Status::IoError("bad config on line " +
                             std::to_string(line_no) + ": " +
                             cfg.status().message());
    }
    entries_[op] = Entry{cfg.value(), seconds};
  }
  return Status::OK();
}

Status TuningCache::Save() const {
  const std::string tmp = path_ + ".tmp";
  {
    std::ofstream file(tmp);
    if (!file) {
      return Status::IoError("cannot write " + tmp);
    }
    file << "hef-tuning-cache v1\n";
    file << "host " << HostTag() << "\n";
    for (const auto& [op, entry] : entries_) {
      char buf[160];
      std::snprintf(buf, sizeof(buf), "op %s %s %.9f\n", op.c_str(),
                    entry.config.ToString().c_str(), entry.seconds);
      file << buf;
    }
    if (!file.good()) {
      return Status::IoError("write failed for " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    return Status::IoError("rename to " + path_ + " failed");
  }
  return Status::OK();
}

bool TuningCache::Contains(const std::string& op) const {
  return entries_.count(op) != 0;
}

Result<TuningCache::Entry> TuningCache::Get(const std::string& op) const {
  auto it = entries_.find(op);
  if (it == entries_.end()) {
    return Status::NotFound("operator '" + op + "' not in tuning cache");
  }
  return it->second;
}

void TuningCache::Put(const std::string& op, const HybridConfig& config,
                      double seconds) {
  // arg0 packs the tuned point (v,s,p in 16-bit lanes), arg1 its cost in
  // nanoseconds — enough to reconstruct "the tuner repointed gather to
  // v1 s2 p3" from a flight dump alone.
  const std::uint64_t packed =
      (static_cast<std::uint64_t>(static_cast<std::uint16_t>(config.v))
       << 32) |
      (static_cast<std::uint64_t>(static_cast<std::uint16_t>(config.s))
       << 16) |
      static_cast<std::uint64_t>(static_cast<std::uint16_t>(config.p));
  telemetry::FlightRecorder::Get().Record(
      telemetry::FlightEventKind::kTunerRetune, op.c_str(), /*trace_id=*/0,
      packed, static_cast<std::uint64_t>(seconds * 1e9));
  entries_[op] = Entry{config, seconds};
}

}  // namespace hef
