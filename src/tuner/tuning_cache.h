// TuningCache — persistence of the offline phase's results.
//
// The paper's workflow (Fig. 4) runs the search once, offline; afterwards
// "we could use them to implement various queries directly without further
// training". TuningCache stores the per-operator optimum (v, s, p) and its
// measured time in a small text file, tagged with the host CPU brand so a
// cache tuned on one microarchitecture is not silently reused on another
// (the whole point of the paper is that optima are machine-specific).
//
// File format (line-oriented):
//   hef-tuning-cache v1
//   host <cpu brand string>
//   op <name> <v1s3p2> <seconds>

#ifndef HEF_TUNER_TUNING_CACHE_H_
#define HEF_TUNER_TUNING_CACHE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "hybrid/hybrid_config.h"

namespace hef {

class TuningCache {
 public:
  struct Entry {
    HybridConfig config;
    double seconds = 0;
  };

  explicit TuningCache(std::string path);

  // Loads the cache file. A missing file yields an empty cache (OK); a
  // file recorded on a different host yields an empty cache and sets
  // host_mismatch(). Malformed files are IoError.
  Status Load();

  // Writes all entries atomically (temp file + rename).
  Status Save() const;

  bool Contains(const std::string& op) const;
  // NotFound when the operator was never tuned on this host.
  Result<Entry> Get(const std::string& op) const;
  void Put(const std::string& op, const HybridConfig& config,
           double seconds);

  std::size_t size() const { return entries_.size(); }
  bool host_mismatch() const { return host_mismatch_; }
  const std::string& path() const { return path_; }

  // Brand string used for host tagging (CPUID, with a stable fallback).
  static std::string HostTag();

 private:
  std::string path_;
  std::map<std::string, Entry> entries_;
  bool host_mismatch_ = false;
};

}  // namespace hef

#endif  // HEF_TUNER_TUNING_CACHE_H_
