#include "voila/voila_engine.h"

#include <immintrin.h>

#include <algorithm>
#include <vector>

#include "algo/murmur.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "engine/star_plan.h"
#include "table/linear_hash_table.h"
#include "telemetry/span.h"

namespace hef {

struct VoilaEngine::Impl {
  const ssb::SsbDatabase& db;
  VoilaConfig config;

  // Interpreter vectors (Voila materializes one output vector per
  // primitive; these are its registers).
  std::vector<std::uint32_t> sel;        // selection vector
  std::vector<std::uint32_t> sel_next;   // output selection vector
  std::vector<std::uint64_t> key_vec;    // materialized key column
  std::vector<std::uint64_t> hash_vec;   // materialized hash values
  std::vector<std::uint64_t> slot_vec;   // materialized home slots
  std::vector<std::uint64_t> val_vec;    // materialized measure / filter col
  std::vector<std::uint64_t> val2_vec;   // second measure column
  std::array<std::vector<std::uint64_t>, 4> payload_vec;

  Impl(const ssb::SsbDatabase& database, VoilaConfig cfg)
      : db(database), config(cfg) {
    HEF_CHECK_MSG(config.vector_size >= 16, "vector size too small");
    HEF_CHECK_MSG(config.prefetch_group >= 1, "prefetch group too small");
    const auto n = static_cast<std::size_t>(config.vector_size);
    sel.resize(n);
    sel_next.resize(n);
    key_vec.resize(n);
    hash_vec.resize(n);
    slot_vec.resize(n);
    val_vec.resize(n);
    val2_vec.resize(n);
    for (auto& p : payload_vec) p.resize(n);
  }

  // Primitive: materialize col[base + sel[j]] into out[sel[j]].
  void GatherColumn(const ssb::Column& col, std::size_t base, std::size_t n,
                    std::vector<std::uint64_t>& out) const {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = sel[j];
      out[i] = col[base + i];
    }
  }

  // Primitive: sel_next = positions with lo <= val <= hi.
  std::size_t SelectRange(std::size_t n, std::uint64_t lo, std::uint64_t hi) {
    std::size_t m = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = sel[j];
      sel_next[m] = i;
      m += (val_vec[i] >= lo) & (val_vec[i] <= hi);
    }
    std::swap(sel, sel_next);
    return m;
  }

  // Primitive: hash_vec = murmur(key_vec), slot_vec = hash & mask.
  void ComputeSlots(const LinearHashTable& table, std::size_t n) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = sel[j];
      hash_vec[i] = Murmur64(key_vec[i], table.hash_seed());
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = sel[j];
      slot_vec[i] = hash_vec[i] & table.mask();
    }
  }

  // Primitive: probe with group prefetching; writes payloads and shrinks
  // the selection to hits.
  std::size_t ProbeFsm(const LinearHashTable& table, std::size_t n,
                       std::vector<std::uint64_t>& payload_out) {
    const std::uint64_t* keys = table.keys();
    const std::uint64_t* values = table.values();
    const std::uint64_t mask = table.mask();
    const auto group = static_cast<std::size_t>(config.prefetch_group);

    std::size_t m = 0;
    for (std::size_t g0 = 0; g0 < n; g0 += group) {
      const std::size_t gn = std::min(group, n - g0);
      if (config.prefetch) {
        // FSM stage 1: issue all slot prefetches for the group before any
        // dereference (concurrent_fsms = 1 -> one group in flight).
        for (std::size_t j = 0; j < gn; ++j) {
          const std::uint64_t slot = slot_vec[sel[g0 + j]];
          _mm_prefetch(reinterpret_cast<const char*>(keys + slot),
                       _MM_HINT_T0);
          _mm_prefetch(reinterpret_cast<const char*>(values + slot),
                       _MM_HINT_T0);
        }
      }
      // FSM stage 2: resolve the group.
      for (std::size_t j = 0; j < gn; ++j) {
        const std::uint32_t i = sel[g0 + j];
        const std::uint64_t key = key_vec[i];
        std::uint64_t slot = slot_vec[i];
        while (true) {
          const std::uint64_t k = keys[slot];
          if (k == key) {
            payload_out[i] = values[slot];
            sel_next[m++] = i;
            break;
          }
          if (k == kEmptyKey) break;
          slot = (slot + 1) & mask;
        }
      }
    }
    std::swap(sel, sel_next);
    return m;
  }

  QueryResult ExecutePlan(const StarPlan& plan) {
    const auto vec = static_cast<std::size_t>(config.vector_size);
    const std::size_t total = db.lineorder.n;

    std::vector<std::uint64_t> agg(plan.gid_domain, 0);
    std::vector<std::uint64_t> cnt(plan.gid_domain, 0);
    std::uint64_t qualifying = 0;

    // Per-stage accumulation, same layout as the HEF engine (filters,
    // probes, group-by) so tools can render both engines' stats alike.
    const bool stats = config.collect_stats;
    struct StageAcc {
      std::uint64_t nanos = 0, calls = 0, rows_in = 0, rows_out = 0;
    };
    const std::size_t probe_base = plan.filters.size();
    const std::size_t groupby_idx = probe_base + plan.joins.size();
    std::vector<StageAcc> accs(stats ? groupby_idx + 1 : 0);
    std::uint64_t t0 = 0;
    auto stage_begin = [&] {
      if (stats) t0 = MonotonicNanos();
    };
    auto stage_end = [&](std::size_t idx, std::uint64_t in_rows,
                         std::uint64_t out_rows) {
      if (!stats) return;
      StageAcc& a = accs[idx];
      a.nanos += MonotonicNanos() - t0;
      ++a.calls;
      a.rows_in += in_rows;
      a.rows_out += out_rows;
    };

    for (std::size_t b0 = 0; b0 < total; b0 += vec) {
      const std::size_t bn = std::min(vec, total - b0);
      std::size_t n = bn;
      for (std::size_t j = 0; j < n; ++j) {
        sel[j] = static_cast<std::uint32_t>(j);
      }
      int live_payloads = 0;
      std::array<int, 4> probed_slots{};

      for (std::size_t fi = 0; fi < plan.filters.size(); ++fi) {
        const RangeFilter& f = plan.filters[fi];
        if (n == 0) break;
        stage_begin();
        const std::size_t in_rows = n;
        GatherColumn(*f.col, b0, n, val_vec);
        n = SelectRange(n, f.lo, f.hi);
        stage_end(fi, in_rows, n);
      }

      for (std::size_t ji = 0; ji < plan.joins.size(); ++ji) {
        const JoinStage& j = plan.joins[ji];
        if (n == 0) break;
        HEF_DCHECK(j.payload_slot >= 0 && j.payload_slot < 4);
        stage_begin();
        const std::size_t in_rows = n;
        GatherColumn(*j.fact_key, b0, n, key_vec);
        ComputeSlots(*j.table, n);
        // Payloads land in the schema-order slot the gid mapping expects,
        // independent of probe order.
        n = ProbeFsm(*j.table, n, payload_vec[j.payload_slot]);
        probed_slots[live_payloads++] = j.payload_slot;
        stage_end(probe_base + ji, in_rows, n);
      }
      if (n == 0) continue;
      qualifying += n;

      stage_begin();
      GatherColumn(*plan.value_a, b0, n, val_vec);
      if (plan.value_b != nullptr) {
        GatherColumn(*plan.value_b, b0, n, val2_vec);
        // Materialize the combined measure (a separate primitive in the
        // interpreted engine).
        if (plan.value_op == ValueOp::kSumProduct) {
          for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t i = sel[j];
            val_vec[i] *= val2_vec[i];
          }
        } else if (plan.value_op == ValueOp::kSumDiff) {
          for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t i = sel[j];
            val_vec[i] -= val2_vec[i];
          }
        }
      }

      std::array<std::uint64_t, 4> p{};
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t i = sel[j];
        for (int k = 0; k < live_payloads; ++k) {
          const int slot = probed_slots[k];
          p[slot] = payload_vec[slot][i];
        }
        const std::uint64_t g = plan.gid(p);
        HEF_DCHECK(g < plan.gid_domain);
        agg[g] += val_vec[i];
        cnt[g] += 1;
      }
      stage_end(groupby_idx, n, n);
    }

    QueryResult result;
    result.qualifying_rows = qualifying;
    if (stats) {
      const ssb::LineorderFact& lo = db.lineorder;
      auto to_stats = [](const std::string& name, const StageAcc& a) {
        OperatorStats s;
        s.name = name;
        s.wall_nanos = a.nanos;
        s.invocations = a.calls;
        s.rows_in = a.rows_in;
        s.rows_out = a.rows_out;
        return s;
      };
      auto& ops = result.operator_stats;
      ops.reserve(accs.size());
      std::size_t idx = 0;
      for (const RangeFilter& f : plan.filters) {
        ops.push_back(to_stats(
            std::string("filter.") + FactColumnName(lo, f.col),
            accs[idx++]));
      }
      for (const JoinStage& j : plan.joins) {
        ops.push_back(to_stats(
            std::string("probe.") + FactColumnName(lo, j.fact_key),
            accs[idx++]));
      }
      ops.push_back(to_stats("groupby", accs[idx]));
    }
    for (std::size_t g = 0; g < plan.gid_domain; ++g) {
      if (cnt[g] == 0) continue;
      GroupRow row;
      row.keys = plan.decode(g);
      row.value = agg[g];
      result.rows.push_back(row);
    }
    std::sort(result.rows.begin(), result.rows.end());
    return result;
  }
};

VoilaEngine::VoilaEngine(const ssb::SsbDatabase& db, VoilaConfig config)
    : impl_(std::make_unique<Impl>(db, config)) {}

VoilaEngine::~VoilaEngine() = default;

const VoilaConfig& VoilaEngine::config() const { return impl_->config; }

QueryResult VoilaEngine::Run(QueryId id) {
  HEF_TRACE_SPAN("voila.query");
  const bool stats = impl_->config.collect_stats;
  OperatorStats build;
  std::uint64_t t0 = 0;
  if (stats) {
    build.name = "build";
    t0 = MonotonicNanos();
  }
  BoundPlan bound;
  {
    HEF_TRACE_SPAN("voila.build");
    bound = BuildQueryPlan(impl_->db, id);
  }
  if (stats) {
    build.wall_nanos = MonotonicNanos() - t0;
    build.invocations = 1;
    for (const auto& table : bound.tables) {
      build.rows_in += table->size();
      build.rows_out += table->size();
    }
  }
  QueryResult result;
  {
    HEF_TRACE_SPAN("voila.pipeline");
    result = impl_->ExecutePlan(bound.plan);
  }
  if (stats) {
    result.operator_stats.insert(result.operator_stats.begin(),
                                 std::move(build));
  }
  return result;
}

}  // namespace hef
