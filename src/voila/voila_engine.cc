#include "voila/voila_engine.h"

#include <immintrin.h>

#include <algorithm>
#include <atomic>
#include <vector>

#include "algo/murmur.h"
#include "common/macros.h"
#include "common/stopwatch.h"
#include "engine/star_plan.h"
#include "exec/fault_injection.h"
#include "exec/plan_cache.h"
#include "exec/runtime.h"
#include "exec/task_pool.h"
#include "engine/explain.h"
#include "table/linear_hash_table.h"
#include "telemetry/diagnostics.h"
#include "telemetry/span.h"

namespace hef {

struct VoilaEngine::Impl {
  const ssb::SsbDatabase& db;
  VoilaConfig config;

  // One worker's interpreter registers (Voila materializes one output
  // vector per primitive; these are its registers). Each worker owns a
  // private set, so the interpreter loops need no synchronization.
  struct Regs {
    std::vector<std::uint32_t> sel;       // selection vector
    std::vector<std::uint32_t> sel_next;  // output selection vector
    std::vector<std::uint64_t> key_vec;   // materialized key column
    std::vector<std::uint64_t> hash_vec;  // materialized hash values
    std::vector<std::uint64_t> slot_vec;  // materialized home slots
    std::vector<std::uint64_t> val_vec;   // materialized measure / filter
    std::vector<std::uint64_t> val2_vec;  // second measure column
    std::array<std::vector<std::uint64_t>, 4> payload_vec;

    explicit Regs(std::size_t n) {
      sel.resize(n);
      sel_next.resize(n);
      key_vec.resize(n);
      hash_vec.resize(n);
      slot_vec.resize(n);
      val_vec.resize(n);
      val2_vec.resize(n);
      for (auto& p : payload_vec) p.resize(n);
    }
  };

  // Registers for the single-threaded path, built once per engine.
  Regs main_regs;

  // Built plans keyed by query, shared-prefix metrics with the HEF
  // engine (both report engine.plan_cache.{hit,miss}).
  exec::PlanCache<QueryId, BoundPlan> plan_cache{"engine.plan_cache"};

  Impl(const ssb::SsbDatabase& database, VoilaConfig cfg)
      : db(database),
        config(cfg),
        main_regs(static_cast<std::size_t>(
            cfg.vector_size < 16 ? 16 : cfg.vector_size)) {
    HEF_CHECK_MSG(config.vector_size >= 16, "vector size too small");
    HEF_CHECK_MSG(config.prefetch_group >= 1, "prefetch group too small");
    HEF_CHECK_MSG(config.threads >= 0 && config.threads <= 256,
                  "thread count %d out of range", config.threads);
  }

  // Builds one query's plan. With multiple workers configured, the
  // dimension hash tables build through the partitioned InsertBatch path
  // on the persistent pool; the plan is identical either way.
  BoundPlan BuildPlan(QueryId id) const {
    HEF_TRACE_SPAN("voila.build");
    PlanBuildOptions options;
    const int workers = exec::ResolveThreads(config.threads);
    if (workers > 1) {
      options.parallel_for = [workers](
                                 int parts,
                                 const std::function<void(int)>& fn) {
        const int w = workers < parts ? workers : parts;
        std::atomic<int> next{0};
        exec::TaskPool::Get().Run(w, [&](int) {
          int p;
          while ((p = next.fetch_add(1)) < parts) fn(p);
        });
      };
    }
    return BuildQueryPlan(db, id, options);
  }

  // The fallible build used by the serving path (see
  // SsbEngine::Impl::TryBuildEntry — same contract, "voila.build" site).
  Result<BoundPlan> TryBuildPlan(QueryId id,
                                 const exec::QueryContext& ctx) const {
    HEF_RETURN_NOT_OK(ctx.Check());
    HEF_FAULT_POINT_STATUS("voila.build");
    try {
      return BuildPlan(id);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("plan build failed for ") +
                              QueryName(id) + ": " + e.what());
    }
  }

  // Primitive: materialize col[base + sel[j]] into out[sel[j]].
  void GatherColumn(Regs& r, const ssb::Column& col, std::size_t base,
                    std::size_t n, std::vector<std::uint64_t>& out) const {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = r.sel[j];
      out[i] = col[base + i];
    }
  }

  // Primitive: sel_next = positions with lo <= val <= hi.
  std::size_t SelectRange(Regs& r, std::size_t n, std::uint64_t lo,
                          std::uint64_t hi) const {
    std::size_t m = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = r.sel[j];
      r.sel_next[m] = i;
      m += (r.val_vec[i] >= lo) & (r.val_vec[i] <= hi);
    }
    std::swap(r.sel, r.sel_next);
    return m;
  }

  // Primitive: hash_vec = murmur(key_vec), slot_vec = hash & mask.
  void ComputeSlots(Regs& r, const LinearHashTable& table,
                    std::size_t n) const {
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = r.sel[j];
      r.hash_vec[i] = Murmur64(r.key_vec[i], table.hash_seed());
    }
    for (std::size_t j = 0; j < n; ++j) {
      const std::uint32_t i = r.sel[j];
      r.slot_vec[i] = r.hash_vec[i] & table.mask();
    }
  }

  // Primitive: probe with group prefetching; writes payloads and shrinks
  // the selection to hits.
  std::size_t ProbeFsm(Regs& r, const LinearHashTable& table, std::size_t n,
                       std::vector<std::uint64_t>& payload_out) const {
    const std::uint64_t* keys = table.keys();
    const std::uint64_t* values = table.values();
    const std::uint64_t mask = table.mask();
    const auto group = static_cast<std::size_t>(config.prefetch_group);

    std::size_t m = 0;
    for (std::size_t g0 = 0; g0 < n; g0 += group) {
      const std::size_t gn = std::min(group, n - g0);
      if (config.prefetch) {
        // FSM stage 1: issue all slot prefetches for the group before any
        // dereference (concurrent_fsms = 1 -> one group in flight).
        for (std::size_t j = 0; j < gn; ++j) {
          const std::uint64_t slot = r.slot_vec[r.sel[g0 + j]];
          _mm_prefetch(reinterpret_cast<const char*>(keys + slot),
                       _MM_HINT_T0);
          _mm_prefetch(reinterpret_cast<const char*>(values + slot),
                       _MM_HINT_T0);
        }
      }
      // FSM stage 2: resolve the group.
      for (std::size_t j = 0; j < gn; ++j) {
        const std::uint32_t i = r.sel[g0 + j];
        const std::uint64_t key = r.key_vec[i];
        std::uint64_t slot = r.slot_vec[i];
        while (true) {
          const std::uint64_t k = keys[slot];
          if (k == key) {
            payload_out[i] = values[slot];
            r.sel_next[m++] = i;
            break;
          }
          if (k == kEmptyKey) break;
          slot = (slot + 1) & mask;
        }
      }
    }
    std::swap(r.sel, r.sel_next);
    return m;
  }

  // Per-stage accumulation, same layout as the HEF engine (filters,
  // probes, group-by) so tools can render both engines' stats alike.
  struct StageAcc {
    std::uint64_t nanos = 0, calls = 0, rows_in = 0, rows_out = 0;

    void Merge(const StageAcc& o) {
      nanos += o.nanos;
      calls += o.calls;
      rows_in += o.rows_in;
      rows_out += o.rows_out;
    }
  };

  // Interprets fact rows [row_begin, row_end) — the per-worker run loop
  // body — accumulating into the caller's agg/cnt arrays (sized
  // plan.gid_domain) and `accs` (when non-null).
  void RunBlocks(const StarPlan& plan, Regs& regs, std::size_t row_begin,
                 std::size_t row_end, std::vector<std::uint64_t>& agg,
                 std::vector<std::uint64_t>& cnt,
                 std::uint64_t* qualifying_out,
                 std::vector<StageAcc>* stage_accs,
                 const exec::QueryContext* ctx = nullptr) const {
    const auto vec = static_cast<std::size_t>(config.vector_size);
    const bool stats = stage_accs != nullptr;
    const std::size_t probe_base = plan.filters.size();
    const std::size_t groupby_idx = probe_base + plan.joins.size();
    std::uint64_t qualifying = 0;

    std::uint64_t t0 = 0;
    auto stage_begin = [&] {
      if (stats) t0 = MonotonicNanos();
    };
    auto stage_end = [&](std::size_t idx, std::uint64_t in_rows,
                         std::uint64_t out_rows) {
      if (!stats) return;
      StageAcc& a = (*stage_accs)[idx];
      a.nanos += MonotonicNanos() - t0;
      ++a.calls;
      a.rows_in += in_rows;
      a.rows_out += out_rows;
    };

    for (std::size_t b0 = row_begin; b0 < row_end; b0 += vec) {
      // Vector boundary = cancellation granularity, same contract as the
      // HEF engine's block loop.
      if (ctx != nullptr && HEF_UNLIKELY(ctx->ShouldStop())) break;
      HEF_FAULT_POINT("voila.morsel");
      const std::size_t bn = std::min(vec, row_end - b0);
      std::size_t n = bn;
      for (std::size_t j = 0; j < n; ++j) {
        regs.sel[j] = static_cast<std::uint32_t>(j);
      }
      int live_payloads = 0;
      std::array<int, 4> probed_slots{};

      for (std::size_t fi = 0; fi < plan.filters.size(); ++fi) {
        const RangeFilter& f = plan.filters[fi];
        if (n == 0) break;
        stage_begin();
        const std::size_t in_rows = n;
        GatherColumn(regs, *f.col, b0, n, regs.val_vec);
        n = SelectRange(regs, n, f.lo, f.hi);
        stage_end(fi, in_rows, n);
      }

      for (std::size_t ji = 0; ji < plan.joins.size(); ++ji) {
        const JoinStage& j = plan.joins[ji];
        if (n == 0) break;
        HEF_DCHECK(j.payload_slot >= 0 && j.payload_slot < 4);
        stage_begin();
        const std::size_t in_rows = n;
        GatherColumn(regs, *j.fact_key, b0, n, regs.key_vec);
        ComputeSlots(regs, *j.table, n);
        // Payloads land in the schema-order slot the gid mapping expects,
        // independent of probe order.
        n = ProbeFsm(regs, *j.table, n, regs.payload_vec[j.payload_slot]);
        probed_slots[live_payloads++] = j.payload_slot;
        stage_end(probe_base + ji, in_rows, n);
      }
      if (n == 0) continue;
      qualifying += n;

      stage_begin();
      GatherColumn(regs, *plan.value_a, b0, n, regs.val_vec);
      if (plan.value_b != nullptr) {
        GatherColumn(regs, *plan.value_b, b0, n, regs.val2_vec);
        // Materialize the combined measure (a separate primitive in the
        // interpreted engine).
        if (plan.value_op == ValueOp::kSumProduct) {
          for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t i = regs.sel[j];
            regs.val_vec[i] *= regs.val2_vec[i];
          }
        } else if (plan.value_op == ValueOp::kSumDiff) {
          for (std::size_t j = 0; j < n; ++j) {
            const std::uint32_t i = regs.sel[j];
            regs.val_vec[i] -= regs.val2_vec[i];
          }
        }
      }

      std::array<std::uint64_t, 4> p{};
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint32_t i = regs.sel[j];
        for (int k = 0; k < live_payloads; ++k) {
          const int slot = probed_slots[k];
          p[slot] = regs.payload_vec[slot][i];
        }
        const std::uint64_t g = plan.gid(p);
        HEF_DCHECK(g < plan.gid_domain);
        agg[g] += regs.val_vec[i];
        cnt[g] += 1;
      }
      stage_end(groupby_idx, n, n);
    }
    *qualifying_out += qualifying;
  }

  QueryResult ExecutePlan(const StarPlan& plan,
                          const exec::QueryContext* ctx = nullptr) {
    const auto vec = static_cast<std::size_t>(config.vector_size);
    const std::size_t total = db.lineorder.n;

    std::vector<std::uint64_t> agg(plan.gid_domain, 0);
    std::vector<std::uint64_t> cnt(plan.gid_domain, 0);
    std::uint64_t qualifying = 0;

    const bool stats = config.collect_stats;
    const std::size_t n_stages = plan.filters.size() + plan.joins.size() + 1;
    std::vector<StageAcc> accs(stats ? n_stages : 0);

    const std::size_t blocks_total = (total + vec - 1) / vec;
    std::uint64_t morsels = blocks_total;  // serial path: one per vector
    const int threads =
        std::min<int>(exec::ResolveThreads(config.threads),
                      static_cast<int>(blocks_total == 0 ? 1 : blocks_total));
    if (threads <= 1) {
      RunBlocks(plan, main_regs, 0, total, agg, cnt, &qualifying,
                stats ? &accs : nullptr, ctx);
    } else {
      // Morsel parallelism over the persistent pool, same scheduler as
      // the HEF engine: workers claim vector-sized morsels dynamically,
      // stealing when their shard drains. Private accumulators merge in
      // worker order (commutative sums -> bit-identical results).
      std::vector<std::vector<std::uint64_t>> worker_agg(
          threads, std::vector<std::uint64_t>(plan.gid_domain, 0));
      std::vector<std::vector<std::uint64_t>> worker_cnt(
          threads, std::vector<std::uint64_t>(plan.gid_domain, 0));
      std::vector<std::uint64_t> worker_qualifying(threads, 0);
      std::vector<std::vector<StageAcc>> worker_accs(
          threads, std::vector<StageAcc>(stats ? n_stages : 0));
      const exec::MorselRunInfo info = exec::RunMorsels(
          blocks_total, threads,
          [&](int t, exec::MorselScheduler& sched) {
            HEF_TRACE_SPAN("voila.worker");
            Regs regs(vec);
            std::size_t blk_begin = 0;
            std::size_t blk_end = 0;
            while (sched.Next(t, &blk_begin, &blk_end)) {
              RunBlocks(plan, regs, blk_begin * vec,
                        std::min(total, blk_end * vec), worker_agg[t],
                        worker_cnt[t], &worker_qualifying[t],
                        stats ? &worker_accs[t] : nullptr, ctx);
            }
          },
          ctx);
      morsels = info.dispatched;
      for (int t = 0; t < threads; ++t) {
        qualifying += worker_qualifying[t];
        for (std::size_t g = 0; g < plan.gid_domain; ++g) {
          agg[g] += worker_agg[t][g];
          cnt[g] += worker_cnt[t][g];
        }
        if (stats) {
          for (std::size_t i = 0; i < n_stages; ++i) {
            accs[i].Merge(worker_accs[t][i]);
          }
        }
      }
    }

    QueryResult result;
    result.qualifying_rows = qualifying;
    result.morsels = morsels;
    if (stats) {
      const ssb::LineorderFact& lo = db.lineorder;
      auto to_stats = [](const std::string& name, const StageAcc& a) {
        OperatorStats s;
        s.name = name;
        s.wall_nanos = a.nanos;
        s.invocations = a.calls;
        s.rows_in = a.rows_in;
        s.rows_out = a.rows_out;
        return s;
      };
      auto& ops = result.operator_stats;
      ops.reserve(accs.size());
      std::size_t idx = 0;
      for (const RangeFilter& f : plan.filters) {
        ops.push_back(to_stats(
            std::string("filter.") + FactColumnName(lo, f.col),
            accs[idx++]));
      }
      for (const JoinStage& j : plan.joins) {
        ops.push_back(to_stats(
            std::string("probe.") + FactColumnName(lo, j.fact_key),
            accs[idx++]));
      }
      ops.push_back(to_stats("groupby", accs[idx]));
    }
    for (std::size_t g = 0; g < plan.gid_domain; ++g) {
      if (cnt[g] == 0) continue;
      GroupRow row;
      row.keys = plan.decode(g);
      row.value = agg[g];
      result.rows.push_back(row);
    }
    std::sort(result.rows.begin(), result.rows.end());
    return result;
  }

  // The serving path behind Run(id, ctx) — same contract as
  // SsbEngine::Impl::TryRun.
  Result<QueryResult> TryRun(QueryId id, const exec::QueryContext& ctx) {
    HEF_TRACE_SPAN("voila.query");
    HEF_RETURN_NOT_OK(ctx.Check());
    const bool stats = config.collect_stats;
    OperatorStats build;
    std::uint64_t t0 = 0;
    if (stats) {
      build.name = "build";
      t0 = MonotonicNanos();
    }
    bool cache_hit = false;
    const BoundPlan* bound = nullptr;
    BoundPlan fresh;
    if (config.plan_cache) {
      Result<const BoundPlan*> cached = plan_cache.TryGetOrBuild(
          id, [&]() -> Result<BoundPlan> { return TryBuildPlan(id, ctx); },
          &cache_hit);
      HEF_RETURN_NOT_OK(cached.status());
      bound = cached.value();
    } else {
      Result<BoundPlan> built = TryBuildPlan(id, ctx);
      HEF_RETURN_NOT_OK(built.status());
      fresh = std::move(built).value();
      bound = &fresh;
    }
    if (stats) {
      build.wall_nanos = MonotonicNanos() - t0;
      build.invocations = 1;
      for (const auto& table : bound->tables) {
        build.rows_in += table->size();
        build.rows_out += table->size();
      }
    }
    QueryResult result;
    try {
      HEF_TRACE_SPAN("voila.pipeline");
      result = ExecutePlan(bound->plan, &ctx);
    } catch (const std::exception& e) {
      return Status::Internal(std::string("query execution failed for ") +
                              QueryName(id) + ": " + e.what());
    } catch (...) {
      return Status::Internal(
          std::string("query execution failed for ") + QueryName(id) +
          ": unknown exception");
    }
    // A stop mid-scan leaves a partial result; report the reason instead.
    HEF_RETURN_NOT_OK(ctx.Check());
    result.plan_cache_hit = cache_hit;
    if (stats) {
      result.operator_stats.insert(result.operator_stats.begin(),
                                   std::move(build));
    }
    return result;
  }
};

VoilaEngine::VoilaEngine(const ssb::SsbDatabase& db, VoilaConfig config)
    : impl_(std::make_unique<Impl>(db, config)) {}

VoilaEngine::~VoilaEngine() = default;

const VoilaConfig& VoilaEngine::config() const { return impl_->config; }

void VoilaEngine::InvalidatePlanCache() { impl_->plan_cache.Invalidate(); }

QueryResult VoilaEngine::Run(QueryId id) {
  // Abort-on-error convenience form over the same serving path (see
  // SsbEngine::Run for the rationale).
  Result<QueryResult> result = Run(id, exec::QueryContext());
  HEF_CHECK_MSG(result.ok(), "VoilaEngine::Run(%s) failed: %s",
                QueryName(id), result.status().ToString().c_str());
  return std::move(result).value();
}

Result<QueryResult> VoilaEngine::Run(QueryId id,
                                     const exec::QueryContext& ctx) {
  // Same diagnostics envelope as SsbEngine::Run: adopt or mint a trace
  // id, register with /statusz for the run's lifetime, record the
  // completion, and stamp errors with the trace id.
  exec::QueryContext traced = ctx;
  if (traced.trace_id() == 0) traced.set_trace_id(exec::MintTraceId());
  const std::string query = QueryName(id);

  const std::uint64_t t0 = MonotonicNanos();
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    telemetry::ActiveQueryGuard guard(traced.trace_id(), query, "voila",
                                      traced.deadline_nanos());
    return impl_->TryRun(id, traced);
  }();
  const std::uint64_t wall = MonotonicNanos() - t0;
  exec::RecordQueryOutcome(result.status());

  telemetry::QueryCompletion completion;
  completion.trace_id = traced.trace_id();
  completion.query = query;
  completion.engine = "voila";
  completion.wall_nanos = wall;
  if (result.ok()) {
    QueryResult& r = result.value();
    r.trace_id = traced.trace_id();
    r.wall_nanos = wall;
    completion.cache_hit = r.plan_cache_hit;
    completion.morsels = r.morsels;
    if (!r.operator_stats.empty()) {
      ExplainMeta meta;
      meta.query = query;
      meta.engine = "voila";
      meta.flavor = "voila";
      completion.explain_json = ExplainToJson(meta, r);
    }
    telemetry::Diagnostics::Get().RecordCompletion(completion);
    return result;
  }
  completion.status_code =
      static_cast<std::uint16_t>(result.status().code());
  completion.status_message = result.status().message();
  telemetry::Diagnostics::Get().RecordCompletion(completion);
  return Status(result.status().code(),
                result.status().message() + " [trace=" +
                    telemetry::FormatTraceId(traced.trace_id()) + "]");
}

}  // namespace hef
