// VoilaEngine — a comparator engine in the style of Voila (Gubner & Boncz,
// VLDB'21), the state-of-the-art system the paper benchmarks against.
//
// The paper runs Voila as "--optimized --default_blend computation_type =
// vector(1024), concurrent_fsms = 1, prefetch = 1": a vectorized
// interpreter with vectors of 1024 values, selection vectors, software
// prefetching, and FSM-staged probes. This module reproduces those
// structural traits:
//
//   * vector-at-a-time interpretation over 1024-row morsels with
//     selection vectors (positions, never compacted payload copies);
//   * each primitive materializes its full output vector (hash vector,
//     slot vector, match vector, ...) — the source of Voila's higher
//     instruction counts at low selectivity that the paper observes
//     (Table V: more instructions than even the scalar pipeline);
//   * group-prefetching probes: hash slots for a group of pending keys are
//     prefetched before any is dereferenced (the FSM decoupling at
//     concurrent_fsms = 1), which is why Voila's LLC miss counts are ~4x
//     lower in Tables III-V;
//   * results are produced from the same BoundPlan as the HEF engine, so
//     all engines remain bit-comparable.

#ifndef HEF_VOILA_VOILA_ENGINE_H_
#define HEF_VOILA_VOILA_ENGINE_H_

#include <memory>

#include "common/status.h"
#include "engine/query_id.h"
#include "engine/result.h"
#include "exec/query_context.h"
#include "ssb/database.h"

namespace hef {

struct VoilaConfig {
  // Values per interpreted vector (the paper's vector(1024)).
  int vector_size = 1024;
  // Software prefetching of hash-table slots (the paper's prefetch = 1).
  bool prefetch = true;
  // Pending keys whose slots are prefetched before resolution; the
  // group-prefetch realization of the probe FSM.
  int prefetch_group = 16;
  // Collect per-stage statistics into QueryResult::operator_stats (same
  // layout as the HEF engine: build, filters, probes, group-by). Wall
  // clock and row counts only, merged across workers — the interpreter
  // is not PMU-bracketed.
  bool collect_stats = false;
  // Worker threads interpreting vector-sized morsels (dynamic dispatch
  // from the persistent exec::TaskPool, same scheduler as the HEF
  // engine). 0 means "auto": one worker per hardware thread. Results are
  // bit-identical for any thread count. Paper-exhibit benchmarks pin 1.
  int threads = 0;
  // Reuse built plans across repeated Run() calls, keyed by QueryId.
  bool plan_cache = true;
};

class VoilaEngine {
 public:
  // The database must outlive the engine.
  explicit VoilaEngine(const ssb::SsbDatabase& db, VoilaConfig config = {});
  ~VoilaEngine();

  VoilaEngine(const VoilaEngine&) = delete;
  VoilaEngine& operator=(const VoilaEngine&) = delete;

  // Aborts on any failure (tests and paper-exhibit benches).
  QueryResult Run(QueryId id);

  // The serving-path form, mirroring SsbEngine: cancellation and
  // deadline are honoured at every morsel claim and interpreted vector,
  // execution-time exceptions become Status::Internal with the
  // interpreter and pool intact, and outcomes are counted via
  // exec::RecordQueryOutcome.
  Result<QueryResult> Run(QueryId id, const exec::QueryContext& ctx);

  // Drops all cached plans; the next Run of each query rebuilds from the
  // database.
  void InvalidatePlanCache();

  const VoilaConfig& config() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hef

#endif  // HEF_VOILA_VOILA_ENGINE_H_
