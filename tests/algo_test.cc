// Tests for the synthetic-benchmark kernels: MurmurHash64A and CRC64. Every
// hybrid (v, s, p) implementation must agree with the scalar reference, and
// the references themselves are pinned to known-answer vectors.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <set>
#include <vector>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"

namespace hef {
namespace {

TEST(MurmurTest, SpecializationMatchesFullAlgorithm) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t key = rng.Next();
    EXPECT_EQ(Murmur64(key), Murmur64Bytes(&key, 8));
  }
}

TEST(MurmurTest, SeedChangesHash) {
  EXPECT_NE(Murmur64(42, 1), Murmur64(42, 2));
}

TEST(MurmurTest, BytesHandlesAllTailLengths) {
  // The bytewise reference must consume every tail size 0..7 — property:
  // extending the message changes the hash.
  const unsigned char msg[16] = {1, 2,  3,  4,  5,  6,  7,  8,
                                 9, 10, 11, 12, 13, 14, 15, 16};
  std::set<std::uint64_t> hashes;
  for (std::size_t len = 0; len <= 16; ++len) {
    hashes.insert(Murmur64Bytes(msg, len));
  }
  EXPECT_EQ(hashes.size(), 17u);
}

TEST(MurmurTest, AvalancheFlipsRoughlyHalfTheBits) {
  // Murmur's design property; also catches lowering bugs that preserve
  // structure (e.g. missing a multiply).
  Rng rng(3);
  double total_flips = 0;
  const int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const std::uint64_t x = rng.Next();
    const std::uint64_t y = x ^ (1ULL << rng.Uniform(0, 63));
    total_flips += __builtin_popcountll(Murmur64(x) ^ Murmur64(y));
  }
  const double mean = total_flips / kTrials;
  EXPECT_NEAR(mean, 32.0, 1.5);
}

class MurmurConfigTest : public ::testing::TestWithParam<HybridConfig> {};

TEST_P(MurmurConfigTest, MatchesReference) {
  const HybridConfig cfg = GetParam();
  Rng rng(99);
  const std::size_t n = 2051;
  AlignedBuffer<std::uint64_t> in(n, 128), out(n, 128);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();
  MurmurHashArray(cfg, in.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], Murmur64(in[i]))
        << "config " << cfg.ToString() << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, MurmurConfigTest,
    ::testing::ValuesIn(MurmurSupportedConfigs()),
    [](const ::testing::TestParamInfo<HybridConfig>& info) {
      return info.param.ToString();
    });

TEST(Crc64Test, KnownAnswerJonesCheckValue) {
  // The CRC-64/JONES check value ("123456789"), as used by Redis.
  EXPECT_EQ(Crc64Bytes("123456789", 9), 0xe9c6d914c4b8d9caULL);
}

TEST(Crc64Test, EmptyIsZero) { EXPECT_EQ(Crc64Bytes("", 0), 0u); }

TEST(Crc64Test, SingleElementMatchesBytewise) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.Next();
    unsigned char bytes[8];
    std::memcpy(bytes, &v, 8);  // little-endian byte order
    EXPECT_EQ(Crc64(v), Crc64Bytes(bytes, 8));
  }
}

TEST(Crc64Test, TableFirstEntriesAreCanonical) {
  const std::uint64_t* table = Crc64Table();
  EXPECT_EQ(table[0], 0u);
  EXPECT_EQ(table[1], 0x7ad870c830358979ULL);  // reflected Jones poly row 1
}

TEST(Crc64Test, IncrementalEqualsOneShot) {
  const char* msg = "hybrid execution framework";
  const std::size_t len = std::strlen(msg);
  for (std::size_t split = 0; split <= len; ++split) {
    const std::uint64_t part = Crc64Bytes(msg, split);
    EXPECT_EQ(Crc64Bytes(msg + split, len - split, part),
              Crc64Bytes(msg, len));
  }
}

class Crc64ConfigTest : public ::testing::TestWithParam<HybridConfig> {};

TEST_P(Crc64ConfigTest, MatchesReference) {
  const HybridConfig cfg = GetParam();
  Rng rng(123);
  const std::size_t n = 1537;
  AlignedBuffer<std::uint64_t> in(n, 256), out(n, 256);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();
  Crc64Array(cfg, in.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], Crc64(in[i]))
        << "config " << cfg.ToString() << " element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, Crc64ConfigTest, ::testing::ValuesIn(Crc64SupportedConfigs()),
    [](const ::testing::TestParamInfo<HybridConfig>& info) {
      return info.param.ToString();
    });

TEST(AlgoGridTest, PaperOptimaAreCompiled) {
  // §V-C: Murmur optimum on the Silver 4110 is v1 s3 p2; CRC64 optimum is
  // eight SIMD statements with no scalar statements. Both must be inside
  // the compiled grids or the tuner could never find them.
  const auto& murmur = MurmurSupportedConfigs();
  const auto& crc = Crc64SupportedConfigs();
  auto contains = [](const std::vector<HybridConfig>& v, HybridConfig c) {
    for (const auto& x : v) {
      if (x == c) return true;
    }
    return false;
  };
  EXPECT_TRUE(contains(murmur, HybridConfig{1, 3, 2}));
  EXPECT_TRUE(contains(crc, HybridConfig{8, 0, 1}));
}

}  // namespace
}  // namespace hef
