// Tests for src/analysis: one failing golden template per HID rule, clean
// bills of health for the shipped templates, dependence proofs of the
// §IV-B pack claim on real translator output (including the probe shape
// every SSB query kernel runs), and the register-pressure model the tuner
// prunes with.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "analysis/dependence_checker.h"
#include "analysis/hid_verifier.h"
#include "analysis/register_pressure.h"
#include "codegen/description_table.h"
#include "codegen/operator_template.h"
#include "codegen/translator.h"
#include "engine/flavor.h"
#include "engine/query_id.h"
#include "procinfo/cpu_features.h"
#include "table/probe.h"

namespace hef {
namespace {

using analysis::Diagnostic;
using analysis::Severity;

std::vector<Diagnostic> Lint(const std::string& text,
                             Isa isa = Isa::kAvx512) {
  analysis::VerifyOptions options;
  options.vector_isa = isa;
  return analysis::LintTemplateText(text, DescriptionTable::Builtin(),
                                    options);
}

bool HasRule(const std::vector<Diagnostic>& diags, const std::string& id) {
  return std::any_of(diags.begin(), diags.end(), [&](const Diagnostic& d) {
    return d.rule_id == id;
  });
}

int LineOfRule(const std::vector<Diagnostic>& diags,
               const std::string& id) {
  for (const Diagnostic& d : diags) {
    if (d.rule_id == id) return d.line;
  }
  return -1;
}

// A minimal legal template all the golden tests below perturb.
constexpr char kClean[] =
    "operator t\n"
    "const c = 3\n"
    "var a\n"
    "var b\n"
    "body:\n"
    "a = hi_load_epi64(IN)\n"
    "b = hi_mullo_epi64(a, c)\n"
    "b = hi_xor_epi64(b, a)\n"
    "hi_store_epi64(OUT, b)\n";

// --- rule catalogue: every ID has a failing golden template -----------

TEST(HidVerifierTest, CleanTemplateHasNoDiagnostics) {
  EXPECT_TRUE(Lint(kClean).empty());
}

TEST(HidVerifierTest, Hid000GrammarError) {
  const auto diags = Lint("operator t\nbody:\nnot a statement\n");
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule_id, "HID000");
  EXPECT_EQ(diags[0].severity, Severity::kError);
}

TEST(HidVerifierTest, Hid001ReadBeforeAssignment) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "var b\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_xor_epi64(a, b)\n"  // b never assigned
      "hi_store_epi64(OUT, a)\n");
  EXPECT_TRUE(HasRule(diags, "HID001"));
  EXPECT_EQ(LineOfRule(diags, "HID001"), 6);
}

TEST(HidVerifierTest, Hid002UndeclaredDestination) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "z = hi_xor_epi64(a, a)\n"  // z is not a declared var
      "hi_store_epi64(OUT, a)\n");
  EXPECT_TRUE(HasRule(diags, "HID002"));
  EXPECT_EQ(LineOfRule(diags, "HID002"), 5);
}

TEST(HidVerifierTest, Hid002StoreMustNotAssign) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_store_epi64(OUT, a)\n");
  EXPECT_TRUE(HasRule(diags, "HID002"));
}

TEST(HidVerifierTest, Hid003UndeclaredName) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_xor_epi64(a, mystery)\n"
      "hi_store_epi64(OUT, a)\n");
  EXPECT_TRUE(HasRule(diags, "HID003"));
  EXPECT_EQ(LineOfRule(diags, "HID003"), 5);
}

TEST(HidVerifierTest, Hid004StreamDiscipline) {
  // IN as a computational operand.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "var a\n"
                           "body:\n"
                           "a = hi_load_epi64(IN)\n"
                           "a = hi_xor_epi64(IN, a)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID004"));
  // Load not reading IN.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "var a\n"
                           "body:\n"
                           "a = hi_load_epi64(a)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID004"));
}

TEST(HidVerifierTest, Hid005GatherDiscipline) {
  // Gather base must be the declared ptr...
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "ptr lut\n"
                           "var a\n"
                           "body:\n"
                           "a = hi_load_epi64(IN)\n"
                           "a = hi_gather_epi64(a, a)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID005"));
  // ...and the ptr may appear nowhere else.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "ptr lut\n"
                           "var a\n"
                           "body:\n"
                           "a = hi_load_epi64(IN)\n"
                           "a = hi_add_epi64(a, lut)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID005"));
}

TEST(HidVerifierTest, Hid006ArityAndImmediateMismatch) {
  // hi_add takes two operands.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "var a\n"
                           "body:\n"
                           "a = hi_load_epi64(IN)\n"
                           "a = hi_add_epi64(a)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID006"));
  // A shift requires its immediate.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "var a\n"
                           "var b\n"
                           "body:\n"
                           "a = hi_load_epi64(IN)\n"
                           "b = hi_xor_epi64(a, a)\n"
                           "a = hi_srli_epi64(a, b)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID006"));
  // And xor must not get one.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "var a\n"
                           "body:\n"
                           "a = hi_load_epi64(IN)\n"
                           "a = hi_xor_epi64(a, 5)\n"
                           "hi_store_epi64(OUT, a)\n"),
                      "HID006"));
}

TEST(HidVerifierTest, Hid007UnknownOp) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_rotl_epi64(a, a)\n"
      "hi_store_epi64(OUT, a)\n");
  EXPECT_TRUE(HasRule(diags, "HID007"));
  EXPECT_EQ(LineOfRule(diags, "HID007"), 5);
}

TEST(HidVerifierTest, Hid007EmptyIsaColumn) {
  // A custom table whose op lowers for scalar but not the requested
  // vector ISA: legal per-op, illegal for an avx512 translation.
  DescriptionTable table = DescriptionTable::Builtin();
  OpPattern scalar_only;
  scalar_only.arity = 2;
  scalar_only.scalar = "{dst} = {a} + {b};";
  table.AddOp("hi_scalaronly_epi64", scalar_only);
  analysis::VerifyOptions options;
  options.vector_isa = Isa::kAvx512;
  const auto diags = analysis::LintTemplateText(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_scalaronly_epi64(a, a)\n"
      "hi_store_epi64(OUT, a)\n",
      table, options);
  EXPECT_TRUE(HasRule(diags, "HID007"));
}

TEST(HidVerifierTest, Hid008UnusedVarIsWarning) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "var spare\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "hi_store_epi64(OUT, a)\n");
  ASSERT_TRUE(HasRule(diags, "HID008"));
  EXPECT_EQ(LineOfRule(diags, "HID008"), 3);  // the declaration line
  for (const Diagnostic& d : diags) {
    if (d.rule_id == "HID008") {
      EXPECT_EQ(d.severity, Severity::kWarning);
    }
  }
  // Warnings alone do not make the template illegal.
  EXPECT_FALSE(analysis::HasErrors(diags));
  EXPECT_TRUE(analysis::DiagnosticsToStatus("t", diags).ok());
}

TEST(HidVerifierTest, Hid009ShiftImmediateOutOfRange) {
  const auto diags = Lint(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_srli_epi64(a, 64)\n"
      "hi_store_epi64(OUT, a)\n");
  EXPECT_TRUE(HasRule(diags, "HID009"));
  // 63 is the last legal count.
  EXPECT_FALSE(HasRule(Lint("operator t\n"
                            "var a\n"
                            "body:\n"
                            "a = hi_load_epi64(IN)\n"
                            "a = hi_srli_epi64(a, 63)\n"
                            "hi_store_epi64(OUT, a)\n"),
                       "HID009"));
}

TEST(HidVerifierTest, Hid010MissingStreamTraffic) {
  // No store.
  auto diags = Lint(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n");
  EXPECT_TRUE(HasRule(diags, "HID010"));
  EXPECT_EQ(LineOfRule(diags, "HID010"), 0);  // template-wide
  // No load.
  EXPECT_TRUE(HasRule(Lint("operator t\n"
                           "var a\n"
                           "var b\n"
                           "body:\n"
                           "b = hi_xor_epi64(a, a)\n"
                           "hi_store_epi64(OUT, b)\n"),
                      "HID010"));
}

TEST(HidVerifierTest, Hid011HostIsaGate) {
  // Host-dependent by nature: the warning must fire exactly when the
  // host cannot run the requested ISA, and only when opted in.
  analysis::VerifyOptions options;
  options.vector_isa = Isa::kAvx512;
  options.check_host_isa = true;
  const auto diags = analysis::LintTemplateText(
      kClean, DescriptionTable::Builtin(), options);
  const bool host_has_avx512 =
      CpuFeatures::Get().BestIsa() == Isa::kAvx512;
  EXPECT_EQ(HasRule(diags, "HID011"), !host_has_avx512);
  // Off by default, so lint output stays host-independent.
  EXPECT_FALSE(HasRule(Lint(kClean), "HID011"));
}

TEST(HidVerifierTest, Hid012InconsistentTablePattern) {
  DescriptionTable table = DescriptionTable::Builtin();
  OpPattern broken;
  broken.arity = 2;
  broken.scalar = "{dst} = {a};";  // never references {b}
  broken.avx512 = "{dst} = {a};";
  broken.avx2 = "{dst} = {a};";
  table.AddOp("hi_broken_epi64", broken);  // unchecked registration
  analysis::VerifyOptions options;
  const auto diags = analysis::LintTemplateText(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_broken_epi64(a, a)\n"
      "hi_store_epi64(OUT, a)\n",
      table, options);
  EXPECT_TRUE(HasRule(diags, "HID012"));
}

TEST(HidVerifierTest, DiagnosticFormatting) {
  const Diagnostic d{"HID001", Severity::kError, 4, "var 'b' is bad"};
  EXPECT_EQ(d.ToString(), "line 4: error [HID001] var 'b' is bad");
  const Status st = analysis::DiagnosticsToStatus("op", {d});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("HID001"), std::string::npos);
  EXPECT_NE(st.message().find("'op'"), std::string::npos);
}

// --- shipped templates are clean --------------------------------------

TEST(HidVerifierTest, BuiltinTemplatesLintClean) {
  for (const std::string& text :
       {BuiltinMurmurTemplate(), BuiltinCrc64Template()}) {
    for (const Isa isa : {Isa::kAvx512, Isa::kAvx2}) {
      EXPECT_TRUE(Lint(text, isa).empty());
    }
  }
}

// --- translator integration (TranslateOptions::verify) ----------------

TEST(TranslatorVerifyTest, RejectsIllegalTemplateBeforeExpansion) {
  const auto op = OperatorTemplate::ParseSyntaxOnly(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_rotl_epi64(a, a)\n"
      "hi_store_epi64(OUT, a)\n");
  ASSERT_TRUE(op.ok());
  TranslateOptions options;
  options.config = HybridConfig{1, 1, 1};
  const auto source = TranslateOperator(
      op.value(), DescriptionTable::Builtin(), options);
  ASSERT_FALSE(source.ok());
  EXPECT_NE(source.status().message().find("HID007"), std::string::npos);
}

TEST(TranslatorVerifyTest, VerifyOffPreservesLegacyErrorPath) {
  const auto op = OperatorTemplate::ParseSyntaxOnly(
      "operator t\n"
      "var a\n"
      "body:\n"
      "a = hi_load_epi64(IN)\n"
      "a = hi_rotl_epi64(a, a)\n"
      "hi_store_epi64(OUT, a)\n");
  ASSERT_TRUE(op.ok());
  TranslateOptions options;
  options.config = HybridConfig{1, 1, 1};
  options.verify = false;
  const auto source = TranslateOperator(
      op.value(), DescriptionTable::Builtin(), options);
  // Still fails (the op has no lowering), but with the translator's own
  // lookup error, not a verifier diagnostic.
  ASSERT_FALSE(source.ok());
  EXPECT_EQ(source.status().message().find("HID007"), std::string::npos);
}

// --- dependence checker on real translator output ---------------------

analysis::DependenceReport CheckTemplate(const std::string& text,
                                         const HybridConfig& cfg) {
  const auto op = OperatorTemplate::Parse(text);
  EXPECT_TRUE(op.ok()) << op.status().ToString();
  TranslateOptions options;
  options.config = cfg;
  const auto source = TranslateOperator(
      op.value(), DescriptionTable::Builtin(), options);
  EXPECT_TRUE(source.ok()) << source.status().ToString();
  const auto report = analysis::CheckDependences(source.value(), cfg);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return report.value();
}

TEST(DependenceCheckerTest, SyntheticKernelsProvenAtEveryGridPoint) {
  // The paper's two template-backed kernels: the §IV-B claim must hold
  // at every coordinate the tuner can visit, not just the optimum.
  for (const HybridConfig& cfg : MurmurSupportedConfigs()) {
    const auto r = CheckTemplate(BuiltinMurmurTemplate(), cfg);
    EXPECT_TRUE(r.ProvesPackClaim()) << cfg.ToString();
    EXPECT_EQ(r.pack_width, cfg.v + cfg.s) << cfg.ToString();
    EXPECT_EQ(r.instances_per_line, cfg.p * (cfg.v + cfg.s))
        << cfg.ToString();
    if (r.has_dependence) {
      // Line-major expansion spaces dependent statements a full
      // p * (v + s) apart — stronger than the pack-width requirement.
      EXPECT_EQ(r.min_distance, r.instances_per_line) << cfg.ToString();
    }
  }
  for (const HybridConfig& cfg : Crc64SupportedConfigs()) {
    EXPECT_TRUE(CheckTemplate(BuiltinCrc64Template(), cfg)
                    .ProvesPackClaim())
        << cfg.ToString();
  }
}

// The probe pipeline shape every SSB query kernel runs: hash the key,
// mask into the table, gather the payload, combine. Written in HID so the
// checker can prove the same claim the hand-written engine kernels rely
// on.
constexpr char kProbeShape[] =
    "operator probe_shape\n"
    "ptr table\n"
    "const m = 0xc6a4a7935bd1e995\n"
    "const mask = 0x1fff\n"
    "var k\n"
    "var h\n"
    "var r\n"
    "body:\n"
    "k = hi_load_epi64(IN)\n"
    "h = hi_mullo_epi64(k, m)\n"
    "h = hi_xor_epi64(h, k)\n"
    "h = hi_and_epi64(h, mask)\n"
    "r = hi_gather_epi64(table, h)\n"
    "r = hi_add_epi64(r, k)\n"
    "hi_store_epi64(OUT, r)\n";

TEST(DependenceCheckerTest, AllSsbQueryKernelsProvenIndependent) {
  // For each of the 13 queries: the probe config its hybrid engine
  // deploys (EngineConfig's tuned default) plus a query-specific grid
  // point, proven on the probe-shaped pipeline above.
  const auto& grid = ProbeSupportedConfigs();
  const EngineConfig deployed;
  int i = 0;
  for (const QueryId id : AllQueries()) {
    const HybridConfig tuned = deployed.probe_cfg;
    const HybridConfig extra = grid[i++ % grid.size()];
    for (const HybridConfig& cfg : {tuned, extra}) {
      const auto r = CheckTemplate(kProbeShape, cfg);
      EXPECT_TRUE(r.ProvesPackClaim())
          << QueryName(id) << " at " << cfg.ToString();
      EXPECT_GE(r.min_distance, r.pack_width)
          << QueryName(id) << " at " << cfg.ToString();
    }
  }
  EXPECT_EQ(i, 13);
}

TEST(DependenceCheckerTest, FlagsArtificiallyDependentLoop) {
  // A hand-built chunk loop whose adjacent statements form a RAW chain:
  // with pack width 2 the claim must fail.
  const std::string source =
      "void f(const unsigned long long* in, unsigned long long* out,\n"
      "       unsigned long long n) {\n"
      "unsigned long long ofs = 0;\n"
      "for (; ofs + 2 <= n; ofs += 2) {\n"
      "x_s0_p0 = in[ofs];\n"
      "y_s0_p0 = x_s0_p0 * 3;\n"
      "x_s1_p0 = in[ofs + 1];\n"
      "y_s1_p0 = x_s1_p0 * 3;\n"
      "}\n"
      "}\n";
  const auto report =
      analysis::CheckDependences(source, HybridConfig{0, 2, 1});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report.value().has_dependence);
  EXPECT_EQ(report.value().min_distance, 1);
  EXPECT_FALSE(report.value().ProvesPackClaim());
  EXPECT_FALSE(report.value().violations.empty());
}

TEST(DependenceCheckerTest, RejectsSourceWithoutChunkLoop) {
  EXPECT_FALSE(analysis::ParseChunkLoop("int main() { return 0; }").ok());
}

// --- register pressure -------------------------------------------------

TEST(RegisterPressureTest, MaxLiveMatchesHandCount) {
  const auto murmur =
      OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  const auto crc = OperatorTemplate::Parse(BuiltinCrc64Template()).value();
  EXPECT_EQ(analysis::MaxLiveTemplateVars(murmur), 2);
  EXPECT_EQ(analysis::MaxLiveTemplateVars(crc), 3);
}

TEST(RegisterPressureTest, EstimateFormulaAndLimits) {
  // scalar = p*s*live + consts; vector = p*v*live + consts (v > 0).
  const auto p = analysis::EstimatePressure(3, 2, HybridConfig{2, 1, 2},
                                            Isa::kAvx512);
  EXPECT_EQ(p.scalar_live, 2 * 1 * 3 + 2);
  EXPECT_EQ(p.vector_live, 2 * 2 * 3 + 2);
  EXPECT_EQ(p.scalar_limit, analysis::kScalarRegisterLimit);
  EXPECT_EQ(p.vector_limit, analysis::kZmmRegisterLimit);
  EXPECT_TRUE(p.fits());
  // AVX2 has half the vector registers.
  EXPECT_EQ(analysis::EstimatePressure(3, 2, HybridConfig{2, 1, 2},
                                       Isa::kAvx2)
                .vector_limit,
            analysis::kYmmRegisterLimit);
  // A scalar-only config holds no vector values at all.
  EXPECT_EQ(analysis::EstimatePressure(3, 2, HybridConfig{0, 2, 2},
                                       Isa::kAvx512)
                .vector_live,
            0);
}

TEST(RegisterPressureTest, OverPressureConfigsFlagged) {
  // 3 live * 3 scalar * 2 packs + 3 consts = 21 > 16 GPRs.
  const auto over = analysis::EstimatePressure(3, 3, HybridConfig{0, 3, 2},
                                               Isa::kAvx512);
  EXPECT_FALSE(over.fits());
  const auto check =
      analysis::MakePressureCheck(3, 3, Isa::kAvx512);
  const Status st = check(HybridConfig{0, 3, 2});
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("register file"), std::string::npos);
  EXPECT_TRUE(check(HybridConfig{0, 1, 2}).ok());
}

TEST(RegisterPressureTest, TemplateOverloadMatchesManualCounts) {
  const auto murmur =
      OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  const HybridConfig cfg{1, 3, 2};
  const auto from_template =
      analysis::EstimatePressure(murmur, cfg, Isa::kAvx512);
  const auto manual = analysis::EstimatePressure(
      2, static_cast<int>(murmur.constants.size()), cfg, Isa::kAvx512);
  EXPECT_EQ(from_template.scalar_live, manual.scalar_live);
  EXPECT_EQ(from_template.vector_live, manual.vector_live);
}

// --- description-table load validation (the satellite bugfix) ----------

TEST(DescriptionTableTest, BuiltinIsSelfConsistent) {
  EXPECT_TRUE(DescriptionTable::Builtin().Validate().ok());
}

TEST(DescriptionTableTest, AddOpCheckedRejectsInconsistentPattern) {
  DescriptionTable table;
  OpPattern missing_b;
  missing_b.arity = 2;
  missing_b.scalar = "{dst} = {a};";  // arity-2 op that never reads {b}
  const Status st = table.AddOpChecked("hi_bogus_epi64", missing_b);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("hi_bogus_epi64"), std::string::npos);
  EXPECT_FALSE(table.Contains("hi_bogus_epi64"));
}

TEST(DescriptionTableTest, AddOpCheckedAcceptsValidPattern) {
  DescriptionTable table;
  OpPattern rot;
  rot.arity = 1;
  rot.has_immediate = true;
  rot.scalar = "{dst} = ({a} << {imm}) | ({a} >> (64 - {imm}));";
  EXPECT_TRUE(table.AddOpChecked("hi_rotl_epi64", rot).ok());
  EXPECT_TRUE(table.Contains("hi_rotl_epi64"));
}

TEST(DescriptionTableTest, ValidatePatternCatalogue) {
  OpPattern p;
  p.arity = 1;
  p.scalar = "{dst} = {a};";
  EXPECT_TRUE(DescriptionTable::ValidatePattern("op", p).ok());
  // No pattern at all.
  EXPECT_FALSE(
      DescriptionTable::ValidatePattern("op", OpPattern{1, false, "", "",
                                                        ""})
          .ok());
  // Unknown placeholder.
  OpPattern unk = p;
  unk.scalar = "{dst} = {what};";
  EXPECT_FALSE(DescriptionTable::ValidatePattern("op", unk).ok());
  // {imm} without has_immediate.
  OpPattern imm = p;
  imm.scalar = "{dst} = {a} >> {imm};";
  EXPECT_FALSE(DescriptionTable::ValidatePattern("op", imm).ok());
  // Arity out of range.
  OpPattern bad_arity = p;
  bad_arity.arity = 3;
  EXPECT_FALSE(DescriptionTable::ValidatePattern("op", bad_arity).ok());
  // {dst} disagreement across ISA columns.
  OpPattern dst_mismatch = p;
  dst_mismatch.avx512 = "sink({a});";
  EXPECT_FALSE(DescriptionTable::ValidatePattern("op", dst_mismatch).ok());
}

}  // namespace
}  // namespace hef
