// Tests for the hef-bench-v1 diff: JSON parsing, row matching, the
// median/MAD noise model, and the four verdicts (improved, regressed,
// within-noise, missing-metric) that drive the CI gate's exit code.

#include <string>

#include "gtest/gtest.h"
#include "telemetry/bench_diff.h"
#include "telemetry/json_value.h"

namespace hef::telemetry {
namespace {

// ----------------------------------------------------------------- JsonValue

TEST(JsonValueTest, ParsesScalarsContainersAndEscapes) {
  const auto doc = JsonValue::Parse(
      "{\"s\":\"a\\\"b\\n\",\"i\":-3,\"d\":2.5e2,\"t\":true,\"f\":false,"
      "\"n\":null,\"a\":[1,2,[3]],\"o\":{\"k\":\"v\"}}");
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc->Find("s")->string(), "a\"b\n");
  EXPECT_EQ(doc->NumberOr("i", 0), -3);
  EXPECT_EQ(doc->NumberOr("d", 0), 250.0);
  EXPECT_TRUE(doc->Find("t")->bool_value());
  EXPECT_FALSE(doc->Find("f")->bool_value());
  EXPECT_TRUE(doc->Find("n")->is_null());
  ASSERT_EQ(doc->Find("a")->array().size(), 3u);
  EXPECT_EQ(doc->Find("a")->array()[2].array()[0].number(), 3.0);
  EXPECT_EQ(doc->Find("o")->StringOr("k", ""), "v");
  EXPECT_EQ(doc->Find("absent"), nullptr);
}

TEST(JsonValueTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(JsonValue::Parse("").ok());
  EXPECT_FALSE(JsonValue::Parse("{").ok());
  EXPECT_FALSE(JsonValue::Parse("[1,]").ok());
  EXPECT_FALSE(JsonValue::Parse("{\"a\":1} trailing").ok());
  EXPECT_FALSE(JsonValue::Parse("{'a':1}").ok());
  EXPECT_FALSE(JsonValue::Parse("\"unterminated").ok());
  EXPECT_FALSE(JsonValue::Parse("nul").ok());
}

// ---------------------------------------------------------------- BenchDiff

// Builds a minimal hef-bench-v1 doc with one TOTAL row plus per-query
// rows scaled from base latencies.
std::string MakeReport(double qps, double q1_ms, double q2_ms) {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema\":\"hef-bench-v1\",\"bench\":\"ssb_throughput\","
      "\"config\":{},"
      "\"results\":["
      "{\"query\":\"Q1.1\",\"p50_ms\":%f,\"runs\":10},"
      "{\"query\":\"Q2.1\",\"p50_ms\":%f,\"runs\":10},"
      "{\"query\":\"TOTAL\",\"qps\":%f}],"
      "\"sections\":{},\"metrics\":{}}",
      q1_ms, q2_ms, qps);
  return buf;
}

TEST(BenchDiffTest, SelfCompareHasNoRegressions) {
  const std::string doc = MakeReport(100.0, 4.0, 8.0);
  const auto diff = DiffBenchReports(doc, doc, BenchDiffOptions());
  ASSERT_TRUE(diff.ok()) << diff.status().ToString();
  EXPECT_EQ(diff->matched_rows, 3);
  EXPECT_FALSE(diff->HasRegressions(/*strict=*/true));
  for (const MetricDiff& m : diff->metrics) {
    EXPECT_EQ(m.verdict, MetricVerdict::kWithinNoise) << m.metric;
    EXPECT_EQ(m.median_delta, 0.0);
  }
}

TEST(BenchDiffTest, DetectsRegressionsDirectionally) {
  // Latency up 50% and qps down 40%: both directions must regress.
  const auto diff =
      DiffBenchReports(MakeReport(100.0, 4.0, 8.0),
                       MakeReport(60.0, 6.0, 12.0), BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  EXPECT_TRUE(diff->HasRegressions(false));
  for (const MetricDiff& m : diff->metrics) {
    EXPECT_EQ(m.verdict, MetricVerdict::kRegressed) << m.metric;
  }
}

TEST(BenchDiffTest, DetectsImprovementsDirectionally) {
  // Latency down and qps up: improvements, never a failure.
  const auto diff =
      DiffBenchReports(MakeReport(100.0, 4.0, 8.0),
                       MakeReport(150.0, 2.0, 4.0), BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegressions(true));
  for (const MetricDiff& m : diff->metrics) {
    EXPECT_EQ(m.verdict, MetricVerdict::kImproved) << m.metric;
  }
}

TEST(BenchDiffTest, SmallDeltasStayWithinNoise) {
  const auto diff =
      DiffBenchReports(MakeReport(100.0, 4.0, 8.0),
                       MakeReport(99.0, 4.1, 8.1), BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  EXPECT_FALSE(diff->HasRegressions(true));
  for (const MetricDiff& m : diff->metrics) {
    EXPECT_EQ(m.verdict, MetricVerdict::kWithinNoise) << m.metric;
  }
}

TEST(BenchDiffTest, MadWidensTheThresholdForNoisyMetrics) {
  // Per-row deltas +30%, -25%: median +2.5% but MAD ~27.5%, so with
  // mad_k=1 the band covers the spread and nothing regresses...
  const std::string base = MakeReport(100.0, 4.0, 8.0);
  const std::string noisy = MakeReport(100.0, 4.0 * 1.30, 8.0 * 0.75);
  BenchDiffOptions options;
  options.mad_k = 1.0;
  const auto wide = DiffBenchReports(base, noisy, options);
  ASSERT_TRUE(wide.ok());
  EXPECT_FALSE(wide->HasRegressions(false));
  // ...while a uniform +30% shift has MAD 0 and still trips the floor.
  const std::string uniform = MakeReport(100.0, 4.0 * 1.30, 8.0 * 1.30);
  const auto tight = DiffBenchReports(base, uniform, options);
  ASSERT_TRUE(tight.ok());
  EXPECT_TRUE(tight->HasRegressions(false));
}

TEST(BenchDiffTest, MissingMetricVerdictAndStrictness) {
  const std::string base = MakeReport(100.0, 4.0, 8.0);
  // Candidate lacks the per-query p50_ms column entirely.
  const std::string no_p50 =
      "{\"schema\":\"hef-bench-v1\",\"bench\":\"ssb_throughput\","
      "\"config\":{},"
      "\"results\":["
      "{\"query\":\"Q1.1\",\"runs\":10},"
      "{\"query\":\"Q2.1\",\"runs\":10},"
      "{\"query\":\"TOTAL\",\"qps\":100.0}],"
      "\"sections\":{},\"metrics\":{}}";
  const auto diff = DiffBenchReports(base, no_p50, BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  bool saw_missing = false;
  for (const MetricDiff& m : diff->metrics) {
    if (m.metric == "p50_ms") {
      EXPECT_EQ(m.verdict, MetricVerdict::kMissing);
      saw_missing = true;
    }
  }
  EXPECT_TRUE(saw_missing);
  EXPECT_FALSE(diff->HasRegressions(/*strict=*/false));
  EXPECT_TRUE(diff->HasRegressions(/*strict=*/true));
}

TEST(BenchDiffTest, PartiallyMissingMetricFailsOnlyUnderStrict) {
  const std::string base = MakeReport(100.0, 4.0, 8.0);
  // Q1.1 still reports p50_ms (unchanged), Q2.1 silently dropped it — the
  // shape of a harness change that stops emitting a column for one row.
  const std::string partial =
      "{\"schema\":\"hef-bench-v1\",\"bench\":\"ssb_throughput\","
      "\"config\":{},"
      "\"results\":["
      "{\"query\":\"Q1.1\",\"p50_ms\":4.0,\"runs\":10},"
      "{\"query\":\"Q2.1\",\"runs\":10},"
      "{\"query\":\"TOTAL\",\"qps\":100.0}],"
      "\"sections\":{},\"metrics\":{}}";
  const auto diff = DiffBenchReports(base, partial, BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  const MetricDiff* p50 = nullptr;
  for (const MetricDiff& m : diff->metrics) {
    if (m.metric == "p50_ms") p50 = &m;
  }
  ASSERT_NE(p50, nullptr);
  // The surviving row still earns a delta verdict; the gap is counted.
  EXPECT_EQ(p50->rows, 1);
  EXPECT_EQ(p50->missing_rows, 1);
  EXPECT_EQ(p50->verdict, MetricVerdict::kWithinNoise);
  EXPECT_FALSE(diff->HasRegressions(/*strict=*/false));
  EXPECT_TRUE(diff->HasRegressions(/*strict=*/true));
  // Both renderings surface the gap.
  EXPECT_NE(diff->ToText().find("missing in 1 rows"), std::string::npos);
  const auto parsed = JsonValue::Parse(diff->ToJson());
  ASSERT_TRUE(parsed.ok());
  bool saw = false;
  for (const JsonValue& m : parsed->Find("metrics")->array()) {
    if (m.StringOr("metric", "") != "p50_ms") continue;
    saw = true;
    EXPECT_EQ(m.NumberOr("missing_rows", -1), 1.0);
  }
  EXPECT_TRUE(saw);
}

TEST(BenchDiffTest, UnmatchedRowsAreReportedAndStrictFails) {
  const std::string base = MakeReport(100.0, 4.0, 8.0);
  const std::string fewer =
      "{\"schema\":\"hef-bench-v1\",\"bench\":\"ssb_throughput\","
      "\"config\":{},"
      "\"results\":[{\"query\":\"TOTAL\",\"qps\":100.0}],"
      "\"sections\":{},\"metrics\":{}}";
  const auto diff = DiffBenchReports(base, fewer, BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->matched_rows, 1);
  EXPECT_EQ(diff->unmatched_baseline_rows.size(), 2u);
  EXPECT_FALSE(diff->HasRegressions(false));
  EXPECT_TRUE(diff->HasRegressions(true));
}

TEST(BenchDiffTest, RejectsNonBenchDocuments) {
  EXPECT_FALSE(
      DiffBenchReports("not json", MakeReport(1, 1, 1), BenchDiffOptions())
          .ok());
  EXPECT_FALSE(DiffBenchReports(MakeReport(1, 1, 1), "{\"schema\":\"v2\"}",
                                BenchDiffOptions())
                   .ok());
}

// Variant-tagged rows: same query under two encodings must stay two
// distinct rows, unless the variant cells are explicitly ignored.
std::string MakeVariantReport(const char* encoding, double q1_ms) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "{\"schema\":\"hef-bench-v1\",\"bench\":\"ssb_throughput\","
      "\"config\":{},"
      "\"results\":[{\"query\":\"Q1.1\",\"encoding\":\"%s\","
      "\"p50_ms\":%f}]}",
      encoding, q1_ms);
  return buf;
}

TEST(BenchDiffTest, VariantCellsSeparateRowsByDefault) {
  const auto merged = MergeBenchReports(
      {MakeVariantReport("flat", 4.0), MakeVariantReport("auto", 2.0)});
  ASSERT_TRUE(merged.ok()) << merged.status().ToString();
  // Self-diff of the merged doc: both variant rows must match their own
  // counterpart, not each other.
  const auto diff = DiffBenchReports(*merged, *merged, {});
  ASSERT_TRUE(diff.ok());
  EXPECT_EQ(diff->matched_rows, 2);
  EXPECT_TRUE(diff->unmatched_baseline_rows.empty());
  EXPECT_FALSE(diff->HasRegressions(/*strict=*/true));
}

TEST(BenchDiffTest, IgnoreFieldsMatchesAcrossVariants) {
  BenchDiffOptions options;
  options.ignore_fields = {"encoding"};
  const auto diff =
      DiffBenchReports(MakeVariantReport("flat", 4.0),
                       MakeVariantReport("auto", 2.0), options);
  ASSERT_TRUE(diff.ok());
  ASSERT_EQ(diff->matched_rows, 1);
  ASSERT_EQ(diff->metrics.size(), 1u);
  EXPECT_EQ(diff->metrics[0].metric, "p50_ms");
  // 4ms -> 2ms is an improvement once the variant axis is ignored.
  EXPECT_EQ(diff->metrics[0].verdict, MetricVerdict::kImproved);
}

TEST(BenchDiffTest, MergePreservesRowsAndValidatesInputs) {
  const auto merged = MergeBenchReports(
      {MakeReport(100, 2.0, 4.0), MakeVariantReport("auto", 2.0)});
  ASSERT_TRUE(merged.ok());
  const auto doc = JsonValue::Parse(*merged);
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->StringOr("schema", ""), "hef-bench-v1");
  EXPECT_EQ(doc->StringOr("bench", ""), "ssb_throughput");
  EXPECT_EQ(doc->Find("results")->array().size(), 4u);
  EXPECT_EQ(doc->Find("configs")->array().size(), 2u);

  EXPECT_FALSE(MergeBenchReports({}).ok());
  EXPECT_FALSE(MergeBenchReports({"{\"schema\":\"other\"}"}).ok());
  EXPECT_FALSE(MergeBenchReports({"not json"}).ok());
}

TEST(BenchDiffTest, JsonReportIsParseableAndCarriesVerdicts) {
  const auto diff =
      DiffBenchReports(MakeReport(100.0, 4.0, 8.0),
                       MakeReport(60.0, 6.0, 12.0), BenchDiffOptions());
  ASSERT_TRUE(diff.ok());
  const auto parsed = JsonValue::Parse(diff->ToJson());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->StringOr("schema", ""), "hef-bench-diff-v1");
  EXPECT_EQ(parsed->NumberOr("matched_rows", 0), 3.0);
  const JsonValue* metrics = parsed->Find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_FALSE(metrics->array().empty());
  EXPECT_EQ(metrics->array()[0].StringOr("verdict", ""), "regressed");
  // The text rendering carries the verdict summary too.
  EXPECT_NE(diff->ToText().find("regressed"), std::string::npos);
}

}  // namespace
}  // namespace hef::telemetry
