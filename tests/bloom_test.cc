// Tests for the Bloom filter and its hybrid probe kernels: no false
// negatives ever, bounded false-positive rate, and every (v, s, p)
// implementation agreeing bit-for-bit with the scalar reference.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/rng.h"
#include "table/bloom_filter.h"

namespace hef {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter filter(10000);
  Rng rng(1);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 10000; ++i) {
    keys.push_back(rng.Next());
    filter.Insert(keys.back());
  }
  for (const std::uint64_t key : keys) {
    ASSERT_TRUE(filter.MayContain(key));
  }
}

TEST(BloomFilterTest, FalsePositiveRateIsBounded) {
  BloomFilter filter(10000, 10);
  Rng rng(2);
  std::set<std::uint64_t> inserted;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t key = rng.Next();
    inserted.insert(key);
    filter.Insert(key);
  }
  int false_positives = 0;
  const int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) {
    const std::uint64_t key = rng.Next();
    if (inserted.count(key) == 0 && filter.MayContain(key)) {
      ++false_positives;
    }
  }
  // 10 bits/key with k = 7 gives ~0.8% theoretical; allow generous slack.
  EXPECT_LT(static_cast<double>(false_positives) / kTrials, 0.03);
}

TEST(BloomFilterTest, EmptyFilterRejectsEverything) {
  BloomFilter filter(1000);
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(filter.MayContain(rng.Next()));
  }
}

TEST(BloomFilterTest, SizingAndProbeCount) {
  BloomFilter filter(1 << 16, 10);
  EXPECT_EQ(filter.bit_count() & (filter.bit_count() - 1), 0u);
  EXPECT_GE(filter.bit_count(), (1u << 16) * 10u);
  EXPECT_EQ(filter.num_probes(), 7);  // round(10 * ln 2)
  BloomFilter tiny(10, 2);
  EXPECT_EQ(tiny.num_probes(), 1);
}

class BloomProbeConfigTest : public ::testing::TestWithParam<HybridConfig> {
 protected:
  static void SetUpTestSuite() {
    filter_ = new BloomFilter(4096);
    Rng rng(7);
    for (int i = 0; i < 4096; ++i) {
      filter_->Insert(rng.Uniform(0, 1 << 20));
    }
  }
  static void TearDownTestSuite() {
    delete filter_;
    filter_ = nullptr;
  }
  static BloomFilter* filter_;
};

BloomFilter* BloomProbeConfigTest::filter_ = nullptr;

TEST_P(BloomProbeConfigTest, MatchesScalarReference) {
  const HybridConfig cfg = GetParam();
  Rng rng(9);
  const std::size_t n = 2053;
  AlignedBuffer<std::uint64_t> keys(n, 256), out(n, 256);
  for (std::size_t i = 0; i < n; ++i) keys[i] = rng.Uniform(0, 1 << 20);
  BloomProbeArray(cfg, *filter_, keys.data(), out.data(), n);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], filter_->MayContain(keys[i]) ? 1u : 0u)
        << "config " << cfg.ToString() << " key " << keys[i];
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, BloomProbeConfigTest,
    ::testing::ValuesIn(BloomProbeSupportedConfigs()),
    [](const ::testing::TestParamInfo<HybridConfig>& info) {
      return info.param.ToString();
    });

TEST(BloomProbeTest, InsertedKeysAllReportOne) {
  BloomFilter filter(512);
  std::vector<std::uint64_t> keys;
  Rng rng(11);
  for (int i = 0; i < 512; ++i) {
    keys.push_back(rng.Next());
    filter.Insert(keys.back());
  }
  AlignedBuffer<std::uint64_t> in(keys.size(), 64), out(keys.size(), 64);
  for (std::size_t i = 0; i < keys.size(); ++i) in[i] = keys[i];
  for (const HybridConfig cfg :
       {HybridConfig::PureScalar(), HybridConfig::PureSimd(),
        HybridConfig{1, 3, 2}, HybridConfig{4, 0, 2}}) {
    BloomProbeArray(cfg, filter, in.data(), out.data(), keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      ASSERT_EQ(out[i], 1u) << cfg.ToString();
    }
  }
}

TEST(BloomProbeTest, OpsMixContainsGatherPerProbe) {
  const auto ops = BloomProbeKernel::Ops(7);
  int gathers = 0;
  for (OpClass op : ops) {
    if (op == OpClass::kGather) ++gathers;
  }
  EXPECT_EQ(gathers, 7);
}

}  // namespace
}  // namespace hef
