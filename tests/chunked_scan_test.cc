// Engine-level tests for the chunked scan path: bit-identical results
// across flat / chunked / chunked+pruned execution for all 13 SSB
// queries, the pruning bookkeeping surfaced through QueryResult and
// EXPLAIN, and the configuration validation on the fallible Run path.

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "engine/explain.h"
#include "engine/reference.h"
#include "ssb/chunked_fact.h"
#include "ssb/database.h"
#include "telemetry/metrics.h"

namespace hef {
namespace {

// Small scale, small chunks: SF 0.01 is 60k fact rows; 8192-row chunks
// (2 engine blocks) give 8 chunks so pruning has something to skip.
constexpr double kSf = 0.01;
constexpr std::size_t kChunkRows = 8192;

ssb::SsbDatabase MakeChunkedDb() {
  ssb::SsbDatabase db = ssb::SsbDatabase::Generate(kSf);
  ssb::ChunkedFactOptions options;
  options.chunk_rows = kChunkRows;
  ssb::EnsureChunked(db, options);
  return db;
}

EngineConfig Config(Flavor flavor, bool chunked, bool pruning) {
  EngineConfig config;
  config.flavor = flavor;
  config.threads = 1;
  config.chunked_scan = chunked;
  config.scan_pruning = pruning;
  return config;
}

TEST(ChunkedScanTest, AllQueriesBitIdenticalAcrossScanModes) {
  const ssb::SsbDatabase db = MakeChunkedDb();
  for (const Flavor flavor : {Flavor::kScalar, Flavor::kHybrid}) {
    SsbEngine flat(db, Config(flavor, false, false));
    SsbEngine chunked(db, Config(flavor, true, false));
    SsbEngine pruned(db, Config(flavor, true, true));
    for (const QueryId id : AllQueries()) {
      const QueryResult want = flat.Run(id);
      const QueryResult got_chunked = chunked.Run(id);
      const QueryResult got_pruned = pruned.Run(id);
      EXPECT_TRUE(want == got_chunked)
          << QueryName(id) << " chunked mismatch";
      EXPECT_TRUE(want == got_pruned)
          << QueryName(id) << " pruned mismatch";
      // The group rows compare above; qualifying_rows additionally pins
      // the scan cardinality, so pruning provably dropped only dead
      // chunks.
      EXPECT_EQ(want.qualifying_rows, got_pruned.qualifying_rows)
          << QueryName(id);
    }
  }
}

TEST(ChunkedScanTest, ResultsMatchReferenceWithPruning) {
  const ssb::SsbDatabase db = MakeChunkedDb();
  SsbEngine pruned(db, Config(Flavor::kSimd, true, true));
  for (const QueryId id : AllQueries()) {
    EXPECT_TRUE(pruned.Run(id) == RunReferenceQuery(db, id))
        << QueryName(id);
  }
}

TEST(ChunkedScanTest, EnvelopeCountsChunks) {
  const ssb::SsbDatabase db = MakeChunkedDb();
  const std::uint64_t total = db.chunked->num_chunks();

  SsbEngine flat(db, Config(Flavor::kHybrid, false, false));
  EXPECT_EQ(flat.Run(QueryId::kQ1_1).chunks_total, 0u);

  SsbEngine chunked(db, Config(Flavor::kHybrid, true, false));
  const QueryResult unpruned = chunked.Run(QueryId::kQ1_1);
  EXPECT_EQ(unpruned.chunks_total, total);
  EXPECT_EQ(unpruned.chunks_scanned, total);
  EXPECT_EQ(unpruned.chunks_pruned, 0u);

  SsbEngine pruned(db, Config(Flavor::kHybrid, true, true));
  const QueryResult result = pruned.Run(QueryId::kQ1_1);
  EXPECT_EQ(result.chunks_total, total);
  EXPECT_EQ(result.chunks_scanned + result.chunks_pruned, total);
  // Q1.1 filters one year out of seven from date-clustered chunks:
  // pruning must actually drop something at this chunk granularity.
  EXPECT_GT(result.chunks_pruned, 0u);
}

TEST(ChunkedScanTest, OperatorStatsAttributePrunes) {
  const ssb::SsbDatabase db = MakeChunkedDb();
  EngineConfig config = Config(Flavor::kHybrid, true, true);
  config.collect_stats = true;
  SsbEngine engine(db, config);
  const QueryResult result = engine.Run(QueryId::kQ1_1);
  std::uint64_t attributed = 0;
  for (const OperatorStats& op : result.operator_stats) {
    attributed += op.chunks_pruned;
  }
  // First-cause-wins attribution: per-operator prunes sum to the
  // envelope total.
  EXPECT_EQ(attributed, result.chunks_pruned);

  const ExplainMeta meta =
      MakeExplainMeta("Q1.1", "hybrid", engine.config());
  const std::string text = ExplainToText(meta, result);
  EXPECT_NE(text.find("chunks="), std::string::npos);
  EXPECT_NE(text.find("pruned="), std::string::npos);
  const std::string json = ExplainToJson(meta, result);
  EXPECT_NE(json.find("\"chunks_total\""), std::string::npos);
  EXPECT_NE(json.find("\"chunks_pruned\""), std::string::npos);
}

TEST(ChunkedScanTest, StorageMetricsAdvance) {
  const ssb::SsbDatabase db = MakeChunkedDb();
  auto& registry = telemetry::MetricsRegistry::Get();
  const std::uint64_t scanned0 =
      registry.counter("storage.chunks_scanned").value();
  const std::uint64_t pruned0 =
      registry.counter("storage.chunks_pruned").value();
  SsbEngine engine(db, Config(Flavor::kHybrid, true, true));
  EXPECT_GT(registry.gauge("storage.encoded_bytes").value(), 0);
  EXPECT_GT(registry.gauge("storage.plain_bytes").value(), 0);
  engine.Run(QueryId::kQ1_1);
  const std::uint64_t scanned =
      registry.counter("storage.chunks_scanned").value() - scanned0;
  const std::uint64_t pruned =
      registry.counter("storage.chunks_pruned").value() - pruned0;
  EXPECT_EQ(scanned + pruned, db.chunked->num_chunks());
  EXPECT_GT(pruned, 0u);
}

TEST(ChunkedScanTest, ChunkedScanWithoutEnsureChunkedIsInvalidArgument) {
  const ssb::SsbDatabase db = ssb::SsbDatabase::Generate(kSf);
  SsbEngine engine(db, Config(Flavor::kScalar, true, false));
  const Result<QueryResult> r =
      engine.Run(QueryId::kQ1_1, exec::QueryContext());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChunkedScanTest, MisalignedChunkRowsIsInvalidArgument) {
  ssb::SsbDatabase db = ssb::SsbDatabase::Generate(kSf);
  ssb::ChunkedFactOptions options;
  options.chunk_rows = 1000;  // not a multiple of the 4096 block
  ssb::EnsureChunked(db, options);
  SsbEngine engine(db, Config(Flavor::kScalar, true, false));
  const Result<QueryResult> r =
      engine.Run(QueryId::kQ1_1, exec::QueryContext());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(ChunkedScanTest, AnswersAfterDropFlatFact) {
  ssb::SsbDatabase db = MakeChunkedDb();
  // Capture the expected answers while the flat columns are alive.
  SsbEngine flat(db, Config(Flavor::kHybrid, false, false));
  const QueryResult want = flat.Run(QueryId::kQ4_2);

  SsbEngine engine(db, Config(Flavor::kHybrid, true, true));
  ssb::DropFlatFact(db);
  EXPECT_TRUE(engine.Run(QueryId::kQ4_2) == want);
}

TEST(ChunkedScanTest, EnsureChunkedIsIdempotent) {
  ssb::SsbDatabase db = MakeChunkedDb();
  const ssb::ChunkedFact* first = db.chunked.get();
  ssb::EnsureChunked(db);  // different (default) options: still a no-op
  EXPECT_EQ(db.chunked.get(), first);
}

}  // namespace
}  // namespace hef
