// Differential fuzzing of the translator: random HID operator templates
// are translated at random (v, s, p) coordinates, compiled with the real
// compiler, executed, and compared element-by-element against a direct
// interpreter of the template. Any divergence means the translator's
// unrolling / naming / offset arithmetic is wrong for that shape.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/dependence_checker.h"
#include "analysis/hid_verifier.h"
#include "codegen/description_table.h"
#include "codegen/offline_driver.h"
#include "codegen/operator_template.h"
#include "codegen/translator.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"

namespace hef {
namespace {

// Direct elementwise interpreter of a template (the semantic ground
// truth; deliberately naive).
std::uint64_t Interpret(const OperatorTemplate& t, std::uint64_t x,
                        const std::uint64_t* table) {
  std::map<std::string, std::uint64_t> env;
  auto value = [&](const std::string& name) -> std::uint64_t {
    if (t.IsConstant(name)) return t.constants.at(name);
    return env.at(name);
  };
  for (const TemplateStatement& st : t.body) {
    if (st.op == "hi_load_epi64") {
      env[st.dst] = x;
    } else if (st.op == "hi_store_epi64") {
      return value(st.args[1]);
    } else if (st.op == "hi_gather_epi64") {
      env[st.dst] = table[value(st.args[1])];
    } else if (st.op == "hi_add_epi64") {
      env[st.dst] = value(st.args[0]) + value(st.args[1]);
    } else if (st.op == "hi_sub_epi64") {
      env[st.dst] = value(st.args[0]) - value(st.args[1]);
    } else if (st.op == "hi_mullo_epi64") {
      env[st.dst] = value(st.args[0]) * value(st.args[1]);
    } else if (st.op == "hi_and_epi64") {
      env[st.dst] = value(st.args[0]) & value(st.args[1]);
    } else if (st.op == "hi_or_epi64") {
      env[st.dst] = value(st.args[0]) | value(st.args[1]);
    } else if (st.op == "hi_xor_epi64") {
      env[st.dst] = value(st.args[0]) ^ value(st.args[1]);
    } else if (st.op == "hi_srli_epi64") {
      env[st.dst] = value(st.args[0]) >> st.immediate;
    } else if (st.op == "hi_slli_epi64") {
      env[st.dst] = value(st.args[0]) << st.immediate;
    } else {
      ADD_FAILURE() << "interpreter missing op " << st.op;
    }
  }
  ADD_FAILURE() << "template had no store";
  return 0;
}

// Random valid template: a def-before-use-correct chain of binary ops,
// shifts and (optionally) byte-masked gathers over three variables.
std::string RandomTemplate(Rng& rng, bool with_gather) {
  const char* binops[] = {"hi_add_epi64",   "hi_sub_epi64",
                          "hi_mullo_epi64", "hi_and_epi64",
                          "hi_or_epi64",    "hi_xor_epi64"};
  std::string t = "operator fuzz\n";
  if (with_gather) t += "ptr table\n";
  t += "const c0 = " + std::to_string(rng.Next() | 1) + "\n";
  t += "const c1 = " + std::to_string(rng.Next() | 1) + "\n";
  t += "const bytemask = 255\n";
  t += "var a\nvar b\nvar c\nbody:\n";
  t += "a = hi_load_epi64(IN)\n";
  t += "b = hi_xor_epi64(a, c0)\n";
  t += "c = hi_add_epi64(a, c1)\n";
  const std::vector<std::string> vars = {"a", "b", "c"};
  const int steps = 3 + static_cast<int>(rng.Uniform(0, 8));
  for (int s = 0; s < steps; ++s) {
    const std::string dst = vars[rng.Uniform(0, 2)];
    const int kind = static_cast<int>(rng.Uniform(0, with_gather ? 3 : 2));
    if (kind == 0) {  // binary op over variables/constants
      const std::string lhs = vars[rng.Uniform(0, 2)];
      const std::string rhs =
          rng.Bernoulli(0.3) ? (rng.Bernoulli(0.5) ? "c0" : "c1")
                             : vars[rng.Uniform(0, 2)];
      t += dst + " = " + binops[rng.Uniform(0, 5)] + "(" + lhs + ", " +
           rhs + ")\n";
    } else if (kind == 1) {  // shift by immediate
      const std::string lhs = vars[rng.Uniform(0, 2)];
      const auto imm = std::to_string(rng.Uniform(1, 63));
      t += dst + (rng.Bernoulli(0.5)
                      ? " = hi_srli_epi64(" + lhs + ", " + imm + ")\n"
                      : " = hi_slli_epi64(" + lhs + ", " + imm + ")\n");
    } else {  // byte-masked gather
      const std::string lhs = vars[rng.Uniform(0, 2)];
      t += dst + " = hi_and_epi64(" + lhs + ", bytemask)\n";
      t += dst + " = hi_gather_epi64(table, " + dst + ")\n";
    }
  }
  t += "hi_store_epi64(OUT, " + vars[rng.Uniform(0, 2)] + ")\n";
  return t;
}

TEST(CodegenFuzzTest, RandomTemplatesMatchInterpreter) {
  Rng rng(0xF022);
  OfflineDriver driver("/tmp/hef_codegen_fuzz");
  const DescriptionTable table = DescriptionTable::Builtin();

  // Byte-indexed lookup table for gather statements.
  AlignedBuffer<std::uint64_t> lut(256, 8);
  for (int i = 0; i < 256; ++i) lut[i] = rng.Next();

  const std::vector<HybridConfig> configs = {
      {0, 1, 1}, {1, 0, 1}, {1, 3, 2}, {2, 2, 3}};

  for (int round = 0; round < 3; ++round) {
    const bool with_gather = round != 0;
    const std::string text = RandomTemplate(rng, with_gather);
    SCOPED_TRACE(text);
    const auto op = OperatorTemplate::Parse(text);
    ASSERT_TRUE(op.ok()) << op.status().ToString();

    const HybridConfig cfg = configs[rng.Uniform(0, configs.size() - 1)];
    TranslateOptions options;
    options.config = cfg;
    const auto source = TranslateOperator(op.value(), table, options);
    ASSERT_TRUE(source.ok()) << source.status().ToString();

    auto kernel = driver.Compile(
        source.value(), "fuzz_r" + std::to_string(round) + cfg.ToString());
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

    const std::size_t n = 517;  // bulk + tail for every chunk width
    AlignedBuffer<std::uint64_t> in(n, 64), out(n, 64);
    for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();
    kernel.value().Run(in.data(), out.data(), n,
                       with_gather ? lut.data() : nullptr);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], Interpret(op.value(), in[i], lut.data()))
          << "round " << round << " config " << cfg.ToString()
          << " element " << i;
    }
  }
}

// Replaces the first occurrence of `from` in `text`.
std::string ReplaceFirst(std::string text, const std::string& from,
                         const std::string& to) {
  const auto at = text.find(from);
  if (at != std::string::npos) text.replace(at, from.size(), to);
  return text;
}

// Deterministic corruptions of a valid fuzzer template. Every mutation
// produces a template the verifier must reject (each maps to a rule ID).
std::string Mutate(const std::string& text, int kind) {
  switch (kind % 6) {
    case 0:  // undeclared destination/use (HID002/HID003)
      return ReplaceFirst(text, "var b\n", "");
    case 1:  // unknown op (HID007)
      return ReplaceFirst(text, "hi_xor_epi64", "hi_rotl_epi64");
    case 2:  // load not reading IN (HID004)
      return ReplaceFirst(text, "hi_load_epi64(IN)", "hi_load_epi64(c0)");
    case 3:  // no OUT store (HID010)
      return ReplaceFirst(text, "hi_store_epi64(OUT, ", "b = hi_xor_epi64(b, ");
    case 4:  // out-of-range shift (HID009)
      return text + "a = hi_srli_epi64(a, 64)\nhi_store_epi64(OUT, a)\n";
    default:  // wrong arity (HID006)
      return ReplaceFirst(text, "hi_xor_epi64(a, c0)", "hi_xor_epi64(a)");
  }
}

// The static-analysis closure property: every template the fuzzer can
// produce either fails verification, or its translation provably keeps
// adjacent emitted statements a full pack apart (§IV-B). There is no
// third outcome — no template may verify clean and then translate into a
// dependent chunk loop.
TEST(CodegenFuzzTest, VerifiedTemplatesTranslateToProvenLoops) {
  Rng rng(0xA11A);
  const DescriptionTable table = DescriptionTable::Builtin();
  const std::vector<HybridConfig> configs = {
      {0, 1, 1}, {1, 0, 1}, {1, 3, 2}, {2, 2, 3}, {0, 4, 2}};
  int verified = 0;
  int rejected = 0;
  for (int round = 0; round < 36; ++round) {
    std::string text = RandomTemplate(rng, round % 2 == 1);
    const bool mutated = round % 3 == 0;
    if (mutated) text = Mutate(text, round / 3);
    SCOPED_TRACE(text);

    analysis::VerifyOptions vopts;
    OperatorTemplate op;
    const auto diags =
        analysis::LintTemplateText(text, table, vopts, &op);
    if (analysis::HasErrors(diags)) {
      ++rejected;
      // The translator must refuse what the verifier refused.
      if (OperatorTemplate::ParseSyntaxOnly(text).ok()) {
        TranslateOptions options;
        options.config = configs[round % configs.size()];
        EXPECT_FALSE(
            TranslateOperator(op, table, options).ok());
      }
      continue;
    }
    EXPECT_FALSE(mutated) << "mutation escaped the verifier";
    ++verified;

    const HybridConfig cfg = configs[round % configs.size()];
    TranslateOptions options;
    options.config = cfg;
    const auto source = TranslateOperator(op, table, options);
    ASSERT_TRUE(source.ok()) << source.status().ToString();
    const auto report = analysis::CheckDependences(source.value(), cfg);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_TRUE(report.value().ProvesPackClaim()) << cfg.ToString();
    EXPECT_EQ(report.value().instances_per_line,
              cfg.p * (cfg.v + cfg.s));
  }
  EXPECT_GT(verified, 0);
  EXPECT_GT(rejected, 0);
}

}  // namespace
}  // namespace hef
