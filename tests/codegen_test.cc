// Tests for the translator pipeline: template parsing, Algorithm-1 code
// generation (Fig. 6 naming and layout), and the full offline
// generate-compile-load-run loop validated against the library kernels.

#include <gtest/gtest.h>

#include <string>

#include "algo/crc64.h"
#include "algo/murmur.h"
#include "codegen/description_table.h"
#include "codegen/offline_driver.h"
#include "codegen/operator_template.h"
#include "codegen/translator.h"
#include "common/aligned_buffer.h"
#include "common/rng.h"

namespace hef {
namespace {

TEST(DescriptionTableTest, BuiltinCoversTemplateOps) {
  const DescriptionTable table = DescriptionTable::Builtin();
  for (const char* op :
       {"hi_add_epi64", "hi_mullo_epi64", "hi_xor_epi64", "hi_and_epi64",
        "hi_srli_epi64", "hi_load_epi64", "hi_store_epi64",
        "hi_gather_epi64"}) {
    EXPECT_TRUE(table.Contains(op)) << op;
    const OpPattern pattern = table.Lookup(op).value();
    EXPECT_FALSE(pattern.scalar.empty());
    EXPECT_FALSE(pattern.avx2.empty());
    EXPECT_FALSE(pattern.avx512.empty());
  }
  EXPECT_FALSE(table.Lookup("hi_made_up").ok());
}

TEST(DescriptionTableTest, UserExtension) {
  DescriptionTable table = DescriptionTable::Builtin();
  table.AddOp("hi_min_epu64",
              {2, false, "{dst} = {a} < {b} ? {a} : {b};",
               "{dst} = _mm256_min_epu64({a}, {b});",
               "{dst} = _mm512_min_epu64({a}, {b});"});
  EXPECT_TRUE(table.Contains("hi_min_epu64"));
}

TEST(OperatorTemplateTest, ParsesBuiltinMurmur) {
  auto parsed = OperatorTemplate::Parse(BuiltinMurmurTemplate());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const OperatorTemplate& t = parsed.value();
  EXPECT_EQ(t.name, "murmur");
  EXPECT_EQ(t.variables.size(), 3u);
  EXPECT_EQ(t.constants.count("m"), 1u);
  EXPECT_EQ(t.constants.at("m"), kMurmurM);
  EXPECT_TRUE(t.pointer_params.empty());
  EXPECT_EQ(t.body.front().op, "hi_load_epi64");
  EXPECT_EQ(t.body.back().op, "hi_store_epi64");
}

TEST(OperatorTemplateTest, ParsesBuiltinCrc64) {
  auto parsed = OperatorTemplate::Parse(BuiltinCrc64Template());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().pointer_params.size(), 1u);
  // 8 rounds of 6 statements plus load, zero and store.
  EXPECT_EQ(parsed.value().body.size(), 8u * 6 + 3);
}

TEST(OperatorTemplateTest, ParseFileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/hef_tmpl_test.hid";
  {
    FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(BuiltinMurmurTemplate().c_str(), f);
    std::fclose(f);
  }
  auto parsed = OperatorTemplate::ParseFile(path);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().name, "murmur");
  std::remove(path.c_str());
  EXPECT_FALSE(OperatorTemplate::ParseFile("/nonexistent/tmpl").ok());
}

TEST(OperatorTemplateTest, RejectsMalformedTemplates) {
  EXPECT_FALSE(OperatorTemplate::Parse("").ok());
  EXPECT_FALSE(OperatorTemplate::Parse("operator x\nbody:\n").ok());
  // Assignment to undeclared variable.
  EXPECT_FALSE(OperatorTemplate::Parse("operator x\nbody:\n"
                                       "y = hi_load_epi64(IN)\n"
                                       "hi_store_epi64(OUT, y)\n")
                   .ok());
  // Missing store.
  EXPECT_FALSE(OperatorTemplate::Parse("operator x\nvar y\nbody:\n"
                                       "y = hi_load_epi64(IN)\n")
                   .ok());
  // Unknown operand.
  EXPECT_FALSE(OperatorTemplate::Parse("operator x\nvar y\nbody:\n"
                                       "y = hi_load_epi64(IN)\n"
                                       "y = hi_add_epi64(y, zz)\n"
                                       "hi_store_epi64(OUT, y)\n")
                   .ok());
  // Two pointer parameters.
  EXPECT_FALSE(OperatorTemplate::Parse("operator x\nptr a\nptr b\nvar y\n"
                                       "body:\ny = hi_load_epi64(IN)\n"
                                       "hi_store_epi64(OUT, y)\n")
                   .ok());
  // Variable read before assignment (would generate UB C++).
  const auto use_before_def =
      OperatorTemplate::Parse("operator x\nvar y\nvar z\nbody:\n"
                              "y = hi_load_epi64(IN)\n"
                              "y = hi_add_epi64(y, z)\n"
                              "hi_store_epi64(OUT, y)\n");
  ASSERT_FALSE(use_before_def.ok());
  EXPECT_NE(use_before_def.status().message().find("before assignment"),
            std::string::npos);
}

TEST(TranslatorTest, Fig6NamingAndLayout) {
  const auto t = OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  TranslateOptions options;
  options.config = {1, 3, 2};
  options.vector_isa = Isa::kAvx512;
  const std::string source =
      TranslateOperator(t, DescriptionTable::Builtin(), options).value();

  // Fig. 6(b): instance variables data_v0_p0 / data_s2_p1 etc.
  EXPECT_NE(source.find("data_v0_p0"), std::string::npos);
  EXPECT_NE(source.find("data_s2_p1"), std::string::npos);
  EXPECT_EQ(source.find("data_v1_p0"), std::string::npos);  // v = 1
  // Offsets: pack 1's vector load starts at 8 + 3 = 11 (Fig. 6(b)).
  EXPECT_NE(source.find("in + ofs + 11"), std::string::npos);
  // Chunk: 2 * (8 + 3) = 22.
  EXPECT_NE(source.find("ofs += 22"), std::string::npos);
  // Constants unroll to one scalar and one vector copy.
  EXPECT_NE(source.find("m_sc"), std::string::npos);
  EXPECT_NE(source.find("m_vc"), std::string::npos);
  // Line-major: all loads precede the first multiply.
  EXPECT_LT(source.find("in + ofs + 11"), source.find("_mm512_mullo_epi64"));
}

TEST(TranslatorTest, TwoVectorStatementLayout) {
  // Fig. 6(c): v2 s3 p2 — pack 1 vector loads at 19 and 27.
  const auto t = OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  TranslateOptions options;
  options.config = {2, 3, 2};
  const std::string source =
      TranslateOperator(t, DescriptionTable::Builtin(), options).value();
  EXPECT_NE(source.find("in + ofs + 8"), std::string::npos);   // v1_p0
  EXPECT_NE(source.find("in + ofs + 16"), std::string::npos);  // s0_p0
  EXPECT_NE(source.find("in + ofs + 19"), std::string::npos);  // v0_p1
  EXPECT_NE(source.find("in + ofs + 27"), std::string::npos);  // v1_p1
}

TEST(TranslatorTest, PureScalarHasNoVectorCode) {
  const auto t = OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  TranslateOptions options;
  options.config = HybridConfig::PureScalar();
  const std::string source =
      TranslateOperator(t, DescriptionTable::Builtin(), options).value();
  EXPECT_EQ(source.find("_mm512"), std::string::npos);
  EXPECT_NE(source.find("data_s0_p0"), std::string::npos);
}

TEST(TranslatorTest, RejectsInvalidConfig) {
  const auto t = OperatorTemplate::Parse(BuiltinMurmurTemplate()).value();
  TranslateOptions options;
  options.config = {0, 0, 1};
  EXPECT_FALSE(
      TranslateOperator(t, DescriptionTable::Builtin(), options).ok());
}

class OfflineDriverTest : public ::testing::Test {
 protected:
  // Generates, compiles, loads and runs one configuration of `tmpl`,
  // checking `n` outputs against `expect`.
  void RunGenerated(const std::string& tmpl, const HybridConfig& cfg,
                    const std::uint64_t* aux,
                    std::uint64_t (*expect)(std::uint64_t)) {
    const auto op = OperatorTemplate::Parse(tmpl);
    ASSERT_TRUE(op.ok()) << op.status().ToString();
    TranslateOptions options;
    options.config = cfg;
    const auto source = TranslateOperator(
        op.value(), DescriptionTable::Builtin(), options);
    ASSERT_TRUE(source.ok()) << source.status().ToString();

    OfflineDriver driver("/tmp/hef_codegen_test");
    auto kernel = driver.Compile(source.value(),
                                 op.value().name + "_" + cfg.ToString());
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

    const std::size_t n = 301;  // bulk + tail
    AlignedBuffer<std::uint64_t> in(n, 64), out(n, 64);
    Rng rng(5);
    for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();
    kernel.value().Run(in.data(), out.data(), n, aux);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(out[i], expect(in[i])) << cfg.ToString() << " elem " << i;
    }
  }
};

std::uint64_t MurmurExpect(std::uint64_t x) { return Murmur64(x); }
std::uint64_t CrcExpect(std::uint64_t x) { return Crc64(x); }

TEST_F(OfflineDriverTest, GeneratedMurmurMatchesLibrary) {
  for (const HybridConfig cfg :
       {HybridConfig{0, 1, 1}, HybridConfig{1, 0, 1}, HybridConfig{1, 3, 2}}) {
    RunGenerated(BuiltinMurmurTemplate(), cfg, nullptr, MurmurExpect);
  }
}

TEST_F(OfflineDriverTest, GeneratedCrc64MatchesLibrary) {
  for (const HybridConfig cfg :
       {HybridConfig{1, 1, 2}, HybridConfig{2, 0, 1}}) {
    RunGenerated(BuiltinCrc64Template(), cfg, Crc64Table(), CrcExpect);
  }
}

TEST_F(OfflineDriverTest, GeneratedAvx2MurmurMatchesLibrary) {
  // The AVX2 column of the description tables, including the emulated
  // 64-bit multiply helper the translator emits.
  const auto op = OperatorTemplate::Parse(BuiltinMurmurTemplate());
  ASSERT_TRUE(op.ok());
  TranslateOptions options;
  options.config = {1, 2, 2};
  options.vector_isa = Isa::kAvx2;
  const auto source =
      TranslateOperator(op.value(), DescriptionTable::Builtin(), options);
  ASSERT_TRUE(source.ok()) << source.status().ToString();
  EXPECT_NE(source.value().find("hef_mullo_epi64_avx2"), std::string::npos);
  EXPECT_NE(source.value().find("_mm256_loadu_si256"), std::string::npos);
  EXPECT_EQ(source.value().find("_mm512"), std::string::npos);

  OfflineDriver driver("/tmp/hef_codegen_test");
  auto kernel = driver.Compile(source.value(), "murmur_avx2_v1s2p2");
  ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
  const std::size_t n = 123;
  AlignedBuffer<std::uint64_t> in(n, 64), out(n, 64);
  Rng rng(6);
  for (std::size_t i = 0; i < n; ++i) in[i] = rng.Next();
  kernel.value().Run(in.data(), out.data(), n, nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_EQ(out[i], Murmur64(in[i])) << i;
  }
}

TEST(TranslatorTest, Avx2ChunkUsesFourLanes) {
  const auto op = OperatorTemplate::Parse(BuiltinMurmurTemplate());
  TranslateOptions options;
  options.config = {1, 3, 2};
  options.vector_isa = Isa::kAvx2;
  const std::string source =
      TranslateOperator(op.value(), DescriptionTable::Builtin(), options)
          .value();
  // Chunk = 2 * (4 + 3) = 14 with 4-lane ymm registers.
  EXPECT_NE(source.find("ofs += 14"), std::string::npos);
}

TEST(OfflineDriverErrorsTest, CompileFailureIsIoError) {
  OfflineDriver driver("/tmp/hef_codegen_test");
  auto result = driver.Compile("this is not C++", "broken");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
  EXPECT_EQ(driver.compile_count(), 1);
}

}  // namespace
}  // namespace hef
