// Unit tests for hef/common: Status/Result, FlagParser, AlignedBuffer, Rng,
// TextTable.

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <vector>

#include "common/aligned_buffer.h"
#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/text_table.h"

namespace hef {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad flag");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad flag");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad flag");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kOutOfRange, StatusCode::kUnsupported,
        StatusCode::kIoError, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

Status Half(int x, int* out) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  *out = x / 2;
  return Status::OK();
}

Status UseReturnNotOk(int x, int* out) {
  HEF_RETURN_NOT_OK(Half(x, out));
  *out += 1;
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkPropagates) {
  int out = 0;
  EXPECT_TRUE(UseReturnNotOk(4, &out).ok());
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(UseReturnNotOk(5, &out).ok());
}

TEST(FlagParserTest, ParsesAllForms) {
  FlagParser flags;
  flags.AddInt64("sf", 1, "scale factor");
  flags.AddString("query", "2.1", "query id");
  flags.AddBool("csv", false, "csv output");
  flags.AddDouble("ratio", 0.5, "a ratio");

  const char* argv[] = {"prog",       "--sf=4",      "--query", "3.3",
                        "--csv",      "--ratio=2.5", "positional"};
  ASSERT_TRUE(flags.Parse(7, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt64("sf"), 4);
  EXPECT_EQ(flags.GetString("query"), "3.3");
  EXPECT_TRUE(flags.GetBool("csv"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 2.5);
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "positional");
}

TEST(FlagParserTest, RejectsUnknownFlag) {
  FlagParser flags;
  flags.AddInt64("sf", 1, "scale factor");
  const char* argv[] = {"prog", "--unknown=1"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagParserTest, RejectsMalformedValue) {
  FlagParser flags;
  flags.AddInt64("sf", 1, "scale factor");
  const char* argv[] = {"prog", "--sf=abc"};
  EXPECT_FALSE(flags.Parse(2, const_cast<char**>(argv)).ok());
}

TEST(FlagParserTest, HelpShortCircuits) {
  FlagParser flags;
  flags.AddInt64("sf", 1, "scale factor");
  const char* argv[] = {"prog", "--help"};
  ASSERT_TRUE(flags.Parse(2, const_cast<char**>(argv)).ok());
  EXPECT_TRUE(flags.HelpRequested());
}

TEST(FlagParserTest, DefaultsSurviveEmptyParse) {
  FlagParser flags;
  flags.AddInt64("sf", 7, "scale factor");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(flags.Parse(1, const_cast<char**>(argv)).ok());
  EXPECT_EQ(flags.GetInt64("sf"), 7);
}

TEST(AlignedBufferTest, AlignmentAndZeroing) {
  AlignedBuffer<std::uint64_t> buf(1000);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 64, 0u);
  EXPECT_EQ(buf.size(), 1000u);
  for (std::size_t i = 0; i < buf.size(); ++i) {
    ASSERT_EQ(buf[i], 0u);
  }
}

TEST(AlignedBufferTest, PaddingGrantsOverread) {
  AlignedBuffer<std::uint64_t> buf(3, /*padding_elems=*/8);
  EXPECT_GE(buf.capacity(), 11u);
  // Writing into the padding region must be in-bounds of the allocation.
  buf.data()[10] = 42;
  EXPECT_EQ(buf.data()[10], 42u);
}

TEST(AlignedBufferTest, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16);
  a[3] = 9;
  int* p = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(b[3], 9);
  EXPECT_EQ(a.data(), nullptr);
  EXPECT_EQ(a.size(), 0u);
}

TEST(AlignedBufferTest, ZeroSizeStillUsable) {
  AlignedBuffer<std::uint64_t> buf(0);
  EXPECT_TRUE(buf.empty());
  EXPECT_NE(buf.data(), nullptr);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = rng.Uniform(5, 15);
    ASSERT_GE(v, 5u);
    ASSERT_LE(v, 15u);
    seen.insert(v);
  }
  // All 11 values should appear over 10k draws.
  EXPECT_EQ(seen.size(), 11u);
}

TEST(RngTest, UniformSingletonRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.Uniform(9, 9), 9u);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, UniformIsRoughlyUniform) {
  Rng rng(13);
  constexpr int kBuckets = 10;
  int counts[kBuckets] = {};
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.Uniform(0, kBuckets - 1)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  volatile std::uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += i;
  EXPECT_GT(sw.ElapsedNanos(), 0u);
  EXPECT_GE(sw.ElapsedMillis(), 0.0);
}

TEST(TextTableTest, AlignsColumns) {
  TextTable t;
  t.AddRow({"Query", "Time (ms)"});
  t.AddRow({"Q2.1", "123.45"});
  t.AddRow({"Q3.3", "7.00"});
  const std::string s = t.ToString();
  EXPECT_NE(s.find("Query"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_NE(s.find("123.45"), std::string::npos);
}

TEST(TextTableTest, CsvOutput) {
  TextTable t;
  t.AddRow({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(TextTableTest, NumFormatsDigits) {
  EXPECT_EQ(TextTable::Num(1.2345, 2), "1.23");
  EXPECT_EQ(TextTable::Num(10, 0), "10");
}

}  // namespace
}  // namespace hef
