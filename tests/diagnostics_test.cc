// Tests for the query diagnostics layer: the flight-recorder ring
// (record/snapshot/wrap-around, hef-flight-v1 JSON, file dumps), the
// Diagnostics registry (/statusz active queries, /tracez completions,
// the JSONL slow-query log), trace-id formatting, and the debug HTTP
// endpoints including the 404 catalogue, 405, and the stalled-client
// read timeout.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "telemetry/diagnostics.h"
#include "telemetry/flight_recorder.h"
#include "telemetry/json_value.h"
#include "telemetry/metrics_http.h"

namespace hef::telemetry {
namespace {

// The recorder is a process-wide singleton with no reset (it is the
// point: always on). Tests therefore tag their events with distinctive
// detail strings and search the snapshot rather than assuming an empty
// ring.
std::vector<FlightEvent> EventsWithDetail(const std::string& detail) {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : FlightRecorder::Get().Snapshot()) {
    if (detail == e.detail) out.push_back(e);
  }
  return out;
}

TEST(FlightRecorderTest, RecordedEventsComeBackInOrder) {
  auto& rec = FlightRecorder::Get();
  const std::uint64_t before = rec.recorded();
  rec.Record(FlightEventKind::kFaultArmed, "frt.order", 0x1234, 7);
  rec.Record(FlightEventKind::kFaultFired, "frt.order", 0x1234, 8, 9, 3);
  EXPECT_EQ(rec.recorded(), before + 2);

  const auto events = EventsWithDetail("frt.order");
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, FlightEventKind::kFaultArmed);
  EXPECT_EQ(events[0].trace_id, 0x1234u);
  EXPECT_EQ(events[0].arg0, 7u);
  EXPECT_EQ(events[1].kind, FlightEventKind::kFaultFired);
  EXPECT_EQ(events[1].arg0, 8u);
  EXPECT_EQ(events[1].arg1, 9u);
  EXPECT_EQ(events[1].code, 3u);
  EXPECT_LE(events[0].nanos, events[1].nanos);
}

TEST(FlightRecorderTest, DetailIsTruncatedNotOverrun) {
  const std::string longest(200, 'x');
  FlightRecorder::Get().Record(FlightEventKind::kFlightDump,
                               longest.c_str());
  bool found = false;
  for (const FlightEvent& e : FlightRecorder::Get().Snapshot()) {
    if (e.kind != FlightEventKind::kFlightDump) continue;
    const std::string detail = e.detail;
    if (detail.find('x') != 0) continue;
    found = true;
    EXPECT_EQ(detail, std::string(FlightEvent::kDetailSize - 1, 'x'));
  }
  EXPECT_TRUE(found);
  // Null detail is stored as empty, not a crash.
  FlightRecorder::Get().Record(FlightEventKind::kFlightDump, nullptr);
}

TEST(FlightRecorderTest, RingWrapsKeepingTheNewestEvents) {
  auto& rec = FlightRecorder::Get();
  for (std::size_t i = 0; i < FlightRecorder::kCapacity + 64; ++i) {
    rec.Record(FlightEventKind::kTunerRetune, "frt.wrap", 0, i);
  }
  const auto snapshot = rec.Snapshot();
  EXPECT_LE(snapshot.size(), FlightRecorder::kCapacity);
  // The final event survived the wrap; everything retained is ordered.
  const auto wraps = EventsWithDetail("frt.wrap");
  ASSERT_FALSE(wraps.empty());
  EXPECT_EQ(wraps.back().arg0, FlightRecorder::kCapacity + 63);
  for (std::size_t i = 1; i < wraps.size(); ++i) {
    EXPECT_EQ(wraps[i].arg0, wraps[i - 1].arg0 + 1);
  }
}

TEST(FlightRecorderTest, ConcurrentWritersNeverTearReaders) {
  auto& rec = FlightRecorder::Get();
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&rec, t] {
      for (int i = 0; i < 5000; ++i) {
        rec.Record(FlightEventKind::kPlanCacheMiss, "frt.race",
                   static_cast<std::uint64_t>(t), 0xABCDEF,
                   0xABCDEF, 11);
      }
    });
  }
  // A racing reader: every event it sees must be fully written, never a
  // half-copied slot (args always the sentinel pair, code always 11).
  for (int pass = 0; pass < 20; ++pass) {
    for (const FlightEvent& e : EventsWithDetail("frt.race")) {
      EXPECT_EQ(e.arg0, 0xABCDEFu);
      EXPECT_EQ(e.arg1, 0xABCDEFu);
      EXPECT_EQ(e.code, 11u);
    }
  }
  for (auto& w : writers) w.join();
}

TEST(FlightRecorderTest, ToJsonParsesAndDumpsToFile) {
  auto& rec = FlightRecorder::Get();
  rec.Record(FlightEventKind::kQueryDeadline, "frt.json", 0xBEEF, 42);
  const auto doc = JsonValue::Parse(rec.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().StringOr("schema", ""), "hef-flight-v1");
  EXPECT_EQ(doc.value().NumberOr("capacity", 0), FlightRecorder::kCapacity);
  EXPECT_GE(doc.value().NumberOr("recorded", 0), 1.0);
  const JsonValue* events = doc.value().Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  bool found = false;
  for (const JsonValue& e : events->array()) {
    if (e.StringOr("detail", "") != "frt.json") continue;
    found = true;
    EXPECT_EQ(e.StringOr("kind", ""), "query_deadline");
    EXPECT_EQ(e.StringOr("trace", ""), "000000000000beef");
    EXPECT_EQ(e.NumberOr("arg0", 0), 42.0);
  }
  EXPECT_TRUE(found);

  const std::string path = ::testing::TempDir() + "/hef_flight_dump.json";
  ASSERT_TRUE(rec.DumpToFile(path).ok());
  std::ifstream in(path);
  std::stringstream buf;
  buf << in.rdbuf();
  const auto redoc = JsonValue::Parse(buf.str());
  ASSERT_TRUE(redoc.ok()) << redoc.status().ToString();
  EXPECT_EQ(redoc.value().StringOr("schema", ""), "hef-flight-v1");
  std::remove(path.c_str());
  EXPECT_FALSE(rec.DumpToFile("/nonexistent/dir/flight.json").ok());
}

TEST(FlightEventKindTest, EveryKindHasAStableName) {
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kQueryStart),
               "query_start");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kQueryFinish),
               "query_finish");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kQueryCancelled),
               "query_cancelled");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kQueryDeadline),
               "query_deadline");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kPlanCacheMiss),
               "plan_cache_miss");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kPlanCacheInvalidate),
               "plan_cache_invalidate");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kFaultArmed),
               "fault_armed");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kFaultFired),
               "fault_fired");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kTunerRetune),
               "tuner_retune");
  EXPECT_STREQ(FlightEventKindName(FlightEventKind::kFlightDump),
               "flight_dump");
}

// ------------------------------------------------------------- trace ids

TEST(TraceIdTest, FormatsAsSixteenLowercaseHexDigits) {
  EXPECT_EQ(FormatTraceId(0), "0000000000000000");
  EXPECT_EQ(FormatTraceId(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_EQ(FormatTraceId(0xFFFFFFFFFFFFFFFFull), "ffffffffffffffff");
}

// ----------------------------------------------------------- Diagnostics

class DiagnosticsTest : public ::testing::Test {
 protected:
  void SetUp() override { Diagnostics::Get().ResetForTest(); }
  void TearDown() override { Diagnostics::Get().ResetForTest(); }
};

TEST_F(DiagnosticsTest, ActiveQueriesAppearInStatuszWhileGuardLives) {
  auto parse_statusz = [] {
    const auto doc = JsonValue::Parse(Diagnostics::Get().StatuszJson());
    EXPECT_TRUE(doc.ok()) << doc.status().ToString();
    return doc.value();
  };
  {
    ActiveQueryGuard guard(0xAB, "Q4.2", "hybrid", /*deadline_nanos=*/0);
    const JsonValue doc = parse_statusz();
    EXPECT_EQ(doc.StringOr("schema", ""), "hef-statusz-v1");
    EXPECT_GT(doc.NumberOr("pid", 0), 0.0);
    EXPECT_GE(doc.NumberOr("uptime_seconds", -1), 0.0);
    const JsonValue* active = doc.Find("active");
    ASSERT_NE(active, nullptr);
    ASSERT_EQ(active->array().size(), 1u);
    const JsonValue& q = active->array()[0];
    EXPECT_EQ(q.StringOr("trace", ""), "00000000000000ab");
    EXPECT_EQ(q.StringOr("query", ""), "Q4.2");
    EXPECT_EQ(q.StringOr("engine", ""), "hybrid");
    EXPECT_GE(q.NumberOr("elapsed_ms", -1), 0.0);
    EXPECT_EQ(q.Find("deadline_ms_remaining"), nullptr);  // no deadline
  }
  const JsonValue* active = parse_statusz().Find("active");
  ASSERT_NE(active, nullptr);
  EXPECT_TRUE(active->array().empty());  // guard gone
}

TEST_F(DiagnosticsTest, CompletionsFeedTracezNewestFirst) {
  for (int i = 0; i < 3; ++i) {
    QueryCompletion c;
    c.trace_id = static_cast<std::uint64_t>(i + 1);
    c.query = "Q1." + std::to_string(i + 1);
    c.engine = "simd";
    c.wall_nanos = 1'500'000;  // 1.5 ms
    c.cache_hit = (i == 2);
    c.morsels = 15;
    if (i == 1) {
      c.status_code = 7;  // kCancelled
      c.status_message = "cancelled by test";
    }
    if (i == 2) c.explain_json = "{\"schema\":\"hef-explain-v1\"}";
    Diagnostics::Get().RecordCompletion(c);
  }
  const auto doc = JsonValue::Parse(Diagnostics::Get().TracezJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_EQ(doc.value().StringOr("schema", ""), "hef-tracez-v1");
  const JsonValue* entries = doc.value().Find("entries");
  ASSERT_NE(entries, nullptr);
  ASSERT_EQ(entries->array().size(), 3u);
  // Newest first: Q1.3, Q1.2, Q1.1.
  EXPECT_EQ(entries->array()[0].StringOr("query", ""), "Q1.3");
  EXPECT_EQ(entries->array()[2].StringOr("query", ""), "Q1.1");
  const JsonValue& ok = entries->array()[0];
  EXPECT_EQ(ok.StringOr("status", ""), "OK");
  EXPECT_NEAR(ok.NumberOr("wall_ms", 0), 1.5, 1e-9);
  const JsonValue* hit = ok.Find("cache_hit");
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->bool_value());
  const JsonValue* error = ok.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_FALSE(error->bool_value());
  // The pre-rendered explain document is spliced in as JSON, not quoted.
  const JsonValue* explain = ok.Find("explain");
  ASSERT_NE(explain, nullptr);
  ASSERT_TRUE(explain->is_object());
  EXPECT_EQ(explain->StringOr("schema", ""), "hef-explain-v1");
  const JsonValue& cancelled = entries->array()[1];
  EXPECT_EQ(cancelled.StringOr("status", ""), "Cancelled");
  EXPECT_EQ(cancelled.StringOr("message", ""), "cancelled by test");
  const JsonValue* err2 = cancelled.Find("error");
  ASSERT_NE(err2, nullptr);
  EXPECT_TRUE(err2->bool_value());
}

TEST_F(DiagnosticsTest, CompletionRingIsBounded) {
  for (std::size_t i = 0; i < Diagnostics::kMaxCompletions + 10; ++i) {
    QueryCompletion c;
    c.trace_id = i + 1;
    c.query = "Q1.1";
    c.engine = "scalar";
    Diagnostics::Get().RecordCompletion(c);
  }
  const auto doc = JsonValue::Parse(Diagnostics::Get().TracezJson());
  ASSERT_TRUE(doc.ok());
  const JsonValue* entries = doc.value().Find("entries");
  ASSERT_NE(entries, nullptr);
  EXPECT_EQ(entries->array().size(), Diagnostics::kMaxCompletions);
  // Newest first: the highest trace id leads.
  EXPECT_EQ(entries->array()[0].StringOr("trace", ""),
            FormatTraceId(Diagnostics::kMaxCompletions + 10));
}

TEST_F(DiagnosticsTest, SlowQueryLogWritesThresholdedJsonl) {
  const std::string path = ::testing::TempDir() + "/hef_slow_query.jsonl";
  std::remove(path.c_str());
  ASSERT_TRUE(Diagnostics::Get().SetSlowQueryLog(path, /*threshold_ms=*/10));
  EXPECT_FALSE(
      Diagnostics::Get().SetSlowQueryLog("/nonexistent/dir/slow.jsonl", 1));
  ASSERT_TRUE(Diagnostics::Get().SetSlowQueryLog(path, 10));  // re-arm

  QueryCompletion fast;
  fast.trace_id = 1;
  fast.query = "Q1.1";
  fast.engine = "hybrid";
  fast.wall_nanos = 1'000'000;  // 1 ms — under threshold, not logged
  Diagnostics::Get().RecordCompletion(fast);

  QueryCompletion slow = fast;
  slow.trace_id = 2;
  slow.wall_nanos = 25'000'000;  // 25 ms — logged
  slow.morsels = 15;
  Diagnostics::Get().RecordCompletion(slow);

  QueryCompletion failed = fast;
  failed.trace_id = 3;
  failed.status_code = 6;  // kInternal: errors always log, even if fast
  failed.status_message = "injected";
  Diagnostics::Get().RecordCompletion(failed);

  Diagnostics::Get().SetSlowQueryLog("", 0);  // disarm
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  const auto slow_doc = JsonValue::Parse(lines[0]);
  ASSERT_TRUE(slow_doc.ok()) << slow_doc.status().ToString();
  EXPECT_EQ(slow_doc.value().StringOr("trace", ""), FormatTraceId(2));
  EXPECT_EQ(slow_doc.value().StringOr("query", ""), "Q1.1");
  EXPECT_NEAR(slow_doc.value().NumberOr("wall_ms", 0), 25.0, 1e-9);
  EXPECT_EQ(slow_doc.value().NumberOr("morsels", 0), 15.0);
  EXPECT_EQ(slow_doc.value().StringOr("status", ""), "OK");
  const auto err_doc = JsonValue::Parse(lines[1]);
  ASSERT_TRUE(err_doc.ok()) << err_doc.status().ToString();
  EXPECT_EQ(err_doc.value().StringOr("trace", ""), FormatTraceId(3));
  EXPECT_EQ(err_doc.value().StringOr("message", ""), "injected");
  std::remove(path.c_str());
}

// --------------------------------------------------- debug HTTP endpoints

std::string Fetch(int port, const std::string& request,
                  bool send_request = true) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  if (send_request) {
    EXPECT_GT(write(fd, request.data(), request.size()), 0);
  }
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof(buf))) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  close(fd);
  return response;
}

// Strips the HTTP header block so the payload can be JSON-parsed.
std::string Body(const std::string& response) {
  const std::size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST_F(DiagnosticsTest, DebugEndpointsServeDiagnostics) {
  MetricsHttpServer server;
  ASSERT_TRUE(server.Start(0).ok());
  ActiveQueryGuard guard(0x77, "Q3.1", "voila", 0);

  const std::string health = Fetch(server.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_EQ(Body(health), "ok\n");

  const std::string statusz = Fetch(server.port(), "GET /statusz HTTP/1.1\r\n\r\n");
  EXPECT_NE(statusz.find("application/json"), std::string::npos);
  const auto status_doc = JsonValue::Parse(Body(statusz));
  ASSERT_TRUE(status_doc.ok()) << status_doc.status().ToString();
  EXPECT_EQ(status_doc.value().StringOr("schema", ""), "hef-statusz-v1");
  const JsonValue* active = status_doc.value().Find("active");
  ASSERT_NE(active, nullptr);
  ASSERT_EQ(active->array().size(), 1u);
  EXPECT_EQ(active->array()[0].StringOr("query", ""), "Q3.1");

  const auto tracez_doc =
      JsonValue::Parse(Body(Fetch(server.port(), "GET /tracez HTTP/1.1\r\n\r\n")));
  ASSERT_TRUE(tracez_doc.ok()) << tracez_doc.status().ToString();
  EXPECT_EQ(tracez_doc.value().StringOr("schema", ""), "hef-tracez-v1");

  const auto flightz_doc =
      JsonValue::Parse(Body(Fetch(server.port(), "GET /flightz HTTP/1.1\r\n\r\n")));
  ASSERT_TRUE(flightz_doc.ok()) << flightz_doc.status().ToString();
  EXPECT_EQ(flightz_doc.value().StringOr("schema", ""), "hef-flight-v1");

  // 404 names every served endpoint so a misspelled path self-documents.
  const std::string missing = Fetch(server.port(), "GET /status HTTP/1.1\r\n\r\n");
  EXPECT_NE(missing.find("404"), std::string::npos);
  for (const char* endpoint :
       {"/metrics", "/healthz", "/statusz", "/tracez", "/flightz"}) {
    EXPECT_NE(Body(missing).find(endpoint), std::string::npos) << endpoint;
  }
  EXPECT_NE(Fetch(server.port(), "PUT /healthz HTTP/1.1\r\n\r\n").find("405"),
            std::string::npos);
  server.Stop();
}

TEST_F(DiagnosticsTest, StalledClientGetsRequestTimeout) {
  MetricsHttpServer server;
  server.set_read_timeout_ms(100);
  ASSERT_TRUE(server.Start(0).ok());
  // Connect but never send a request: the server must answer 408 and
  // close rather than wedging its accept loop on the silent client.
  const std::string response =
      Fetch(server.port(), "", /*send_request=*/false);
  EXPECT_NE(response.find("408"), std::string::npos);
  // The server survives: a well-behaved request still succeeds after.
  EXPECT_NE(Fetch(server.port(), "GET /healthz HTTP/1.1\r\n\r\n").find("200"),
            std::string::npos);
  server.Stop();
}

}  // namespace
}  // namespace hef::telemetry
